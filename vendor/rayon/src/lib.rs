//! In-tree stand-in for the `rayon` crate.
//!
//! The build container has no network access, so the real rayon cannot be
//! fetched; this shim (vendored like `vendor/proptest` and
//! `vendor/criterion`) provides the tiny subset the experiment drivers in
//! `sm-bench` actually use:
//!
//! - `vec.into_par_iter().map(f).collect::<Vec<_>>()`
//! - `slice.par_iter().map(f).collect::<Vec<_>>()`
//! - `rayon::current_num_threads()`
//!
//! Semantics match rayon where it matters for the sweeps:
//!
//! - **Deterministic output order.** Results are collected in input order
//!   regardless of which worker finishes first, so parallel sweep reports
//!   are byte-identical to serial runs.
//! - **Work stealing, approximately.** Workers claim the next unclaimed
//!   index from a shared atomic counter, so a slow item does not serialize
//!   the items behind it.
//! - **`RAYON_NUM_THREADS`** is honored (0 or unset ⇒ available
//!   parallelism). With one thread the map runs inline on the caller with
//!   no thread spawned at all.
//!
//! Closures run on scoped OS threads (`std::thread::scope`), so borrows of
//! the caller's stack work exactly as with rayon's scoped pools.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel iterator will use.
///
/// `RAYON_NUM_THREADS` overrides (a value of 0 means "auto", like rayon);
/// otherwise the machine's available parallelism, and 1 if that is unknown.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(0) | None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        Some(n) => n,
    }
}

/// Parallel iterator over owned items: supports `.map(f)` followed by
/// `.collect::<Vec<_>>()`, preserving input order in the output.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// The result of `ParIter::map`; terminal operation is `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item, potentially on several threads.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, F> ParMap<T, F> {
    /// Run the map and gather results **in input order**.
    pub fn collect<C>(self) -> C
    where
        C: FromParCollect<T, F>,
    {
        C::from_par_map(self)
    }
}

/// Target of `ParMap::collect`. Implemented for `Vec<R>`.
pub trait FromParCollect<T, F>: Sized {
    fn from_par_map(map: ParMap<T, F>) -> Self;
}

impl<T, R, F> FromParCollect<T, F> for Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    fn from_par_map(map: ParMap<T, F>) -> Vec<R> {
        par_map_vec(map.items, &map.f)
    }
}

fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Each slot is claimed exactly once via the shared counter; items move
    // out through a per-slot Mutex<Option<T>> so workers can take them
    // without unsafe code, and results land in per-slot cells that are
    // drained in input order afterwards.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("slot claimed once");
                let r = f(item);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|cell| cell.into_inner().unwrap().expect("worker filled slot"))
        .collect()
}

/// Conversion into a [`ParIter`]; rayon's entry point for owned collections.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send + Clone> IntoParallelIterator for &[T] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.to_vec(),
        }
    }
}

/// Borrowing entry points (`par_iter`), yielding references like rayon's.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<&'a Self::Item>;
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `use rayon::prelude::*;` — mirrors the real crate's glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_input_order() {
        let xs: Vec<u64> = (0..200).collect();
        let ys: Vec<u64> = xs.clone().into_par_iter().map(|x| x * 3).collect();
        assert_eq!(ys, xs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let xs: Vec<String> = (0..50).map(|i| format!("s{i}")).collect();
        let lens: Vec<usize> = xs.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, xs.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_ordered() {
        let xs: Vec<u32> = (0..64).collect();
        let ys: Vec<u32> = xs
            .clone()
            .into_par_iter()
            .map(|x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x + 1
            })
            .collect();
        assert_eq!(ys, xs.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let e: Vec<u8> = Vec::new();
        let r: Vec<u8> = e.into_par_iter().map(|x| x).collect();
        assert!(r.is_empty());
        let one: Vec<u8> = vec![9].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(one, vec![18]);
    }
}
