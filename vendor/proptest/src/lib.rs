//! In-tree stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *subset* of proptest it actually uses: the `proptest!` macro,
//! `prop_assert*`, `any::<T>()`, integer/float range strategies,
//! `collection::vec` and `option::of`. Semantics differ from upstream in two
//! deliberate ways:
//!
//! * **Deterministic**: each test's input stream is seeded from a hash of the
//!   test's name (overridable via `PROPTEST_SEED`), so failures reproduce
//!   without a persistence file.
//! * **No shrinking**: a failing case reports its case number and message;
//!   inputs are regenerable from the seed.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies (`Strategy` + `any`).

    use crate::test_runner::TestRng;

    /// Generates values of `Self::Value` from a seeded rng.
    pub trait Strategy {
        /// Type of generated values.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy for "any value of T" (`any::<u8>()` etc.).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)`: vectors whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `of(inner)`: `None` a quarter of the time, `Some(inner)` otherwise
    /// (matching upstream's default `Some` weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Test configuration, rng plumbing and failure type.

    /// The rng driving all strategies.
    pub type TestRng = sm_rng::StdRng;

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property (from `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Seed a test's input stream: `PROPTEST_SEED` if set, else a stable
    /// hash of the test name (deterministic across runs and machines).
    pub fn new_rng(test_name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng::seed_from_u64(seed);
            }
        }
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }
}

/// Common imports, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute comes from the block, as upstream)
/// running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::new_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{} (`{:?}` vs `{:?}`)",
                    format!($($fmt)+), a, b
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{} (both `{:?}`)",
                    format!($($fmt)+), a
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u32..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn options_mix(o in crate::option::of(0u32..5)) {
            if let Some(v) = o {
                prop_assert!(v < 5);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_works(b in any::<bool>()) {
            prop_assert_eq!(b, b);
            prop_assert_ne!(b as u32, 2u32);
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_are_reported() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..4) {
                prop_assert!(false, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u32>(), 1..8);
        let a: Vec<Vec<u32>> = {
            let mut rng = crate::test_runner::new_rng("det");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u32>> = {
            let mut rng = crate::test_runner::new_rng("det");
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
