//! In-tree stand-in for the `criterion` crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the subset of the criterion API its benches use: benchmark
//! groups, `iter`/`iter_batched`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a plain
//! warmup + timed-loop mean/min report — enough to compare hot paths
//! release-to-release without statistical machinery.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup (accepted, not acted on: every batch
/// here is per-iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input.
    SmallInput,
    /// Large routine input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_benchmark(name, self.sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    let Some(&min) = b
        .samples
        .iter()
        .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    else {
        println!("{name:<44} (no samples)");
        return;
    };
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} MiB/s", n as f64 / mean / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!(
        "{name:<44} mean {:>12}  min {:>12}{rate}",
        fmt_secs(mean),
        fmt_secs(min),
    );
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that takes ≥ ~1 ms
        // so Instant overhead stays negligible.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            if t.elapsed() >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64());
        }
    }
}

/// Bundle benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs the binary with `--test`; there is
            // nothing to unit-test here, so exit cleanly without timing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("count", |b| {
            let mut n = 0u64;
            b.iter(|| {
                n = n.wrapping_add(1);
                n
            });
        });
        g.finish();
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }
}
