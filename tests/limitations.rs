//! The paper's §7 limitations, demonstrated as executable facts — a
//! faithful reproduction includes what the system *cannot* do.
//!
//! 1. Self-modifying code cannot run under split memory.
//! 2. Attacks that reuse *existing* code (return-into-libc style) are not
//!    stopped.
//! 3. Non-control-data attacks are not stopped.
//!
//! Plus the §4.7 portability claim: the protection (not just the
//! performance) works identically on the software-loaded-TLB machine.

use sm_core::engine::{SplitMemConfig, SplitMemEngine};
use sm_kernel::engine::NullEngine;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::MachineConfig;

fn split_kernel() -> Kernel {
    Kernel::with_engine(Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)))
}

fn run(mut k: Kernel, prog: &BuiltProgram) -> (Kernel, Option<i32>) {
    let pid = k.spawn(&prog.image).unwrap();
    k.run(50_000_000);
    let code = k.sys.proc(pid).exit_code;
    (k, code)
}

/// A legitimate self-modifying program: it writes `mov ebx, 7; ...exit`
/// over its own code and jumps there. Works unprotected; cannot work under
/// split memory (paper §7: "self-modifying programs cannot be protected
/// using our technique").
fn self_modifying_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/selfmod")
        .mixed_segment()
        .code(
            "_start:
                nop                   ; (see single_step_window test below)
                ; patch `patchsite` to load 7 instead of 1 into ebx
                mov byte [patchsite+1], 7
            patchsite:
                mov ebx, 1
                call exit",
        )
        .build()
        .unwrap()
}

#[test]
fn self_modifying_code_works_unprotected() {
    let (_, code) = run(
        Kernel::with_engine(Box::new(NullEngine)),
        &self_modifying_program(),
    );
    assert_eq!(code, Some(7), "the self-patch must take effect");
}

#[test]
fn self_modifying_code_is_broken_by_split_memory() {
    // The write went to the data frame; the fetch still sees the original
    // `mov ebx, 1`. The program RUNS (it is legitimate code, loaded at
    // exec time) but its self-modification silently does not take effect —
    // exactly the §7 limitation.
    let (_, code) = run(split_kernel(), &self_modifying_program());
    assert_eq!(
        code,
        Some(1),
        "the self-patch must be invisible to instruction fetches"
    );
}

#[test]
fn single_step_window_is_reproduced_faithfully() {
    // A fidelity check rather than a feature: on real x86 (and in the
    // paper's prototype), the instruction restarted under the single-step
    // I-TLB load executes while the PTE briefly points at the CODE frame —
    // so if that very instruction stores to its own page, the store lands
    // on the code frame. Our simulator reproduces the window exactly; the
    // debug handler closes it for every *subsequent* access (DESIGN.md
    // "single-step window").
    let prog = ProgramBuilder::new("/bin/window")
        .mixed_segment()
        .code(
            "_start:
                ; this store IS the armed instruction after the I-TLB
                ; reload of this page, so it writes the CODE frame
                mov byte [patchsite+1], 9
            patchsite:
                mov ebx, 1
                call exit",
        )
        .build()
        .unwrap();
    let (_, code) = run(split_kernel(), &prog);
    assert_eq!(
        code,
        Some(9),
        "the armed instruction's own store reaches the code frame (the window)"
    );
}

#[test]
fn code_reuse_attacks_are_not_stopped() {
    // §7: "modifying a function's return address to point to a different
    // part of the original code pages will not be stopped by this scheme."
    // The victim overwrites its return address with the address of an
    // existing function that exits 42 (a return-into-libc-style reuse).
    let prog = ProgramBuilder::new("/bin/reuse")
        .code(
            "_start:
                call victim
                mov ebx, 0
                call exit
            victim:
                push ebp
                mov ebp, esp
                ; 'overflow' redirects the return address to existing code
                mov dword [ebp+4], gadget
                leave
                ret
            gadget:
                mov ebx, 42
                call exit",
        )
        .build()
        .unwrap();
    let (k, code) = run(split_kernel(), &prog);
    assert_eq!(
        code,
        Some(42),
        "code-reuse hijack must succeed even under split memory"
    );
    assert!(
        k.sys.events.first_detection().is_none(),
        "nothing was injected, so nothing can be detected"
    );
}

#[test]
fn non_control_data_attacks_are_not_stopped() {
    // §7: non-control-data attacks "are also not protected by this
    // system". The victim keeps an `is_admin` flag next to a buffer; the
    // overflow flips the flag; no code is ever injected.
    let prog = ProgramBuilder::new("/bin/authd")
        .code(
            "_start:
                ; simulated overflow: the copy runs 4 bytes past the
                ; 32-byte name buffer into the adjacent flag
                mov edi, namebuf
                mov esi, attacker_name
                mov ecx, 36
                call memcpy
                mov eax, [is_admin]
                cmp eax, 0
                je denied
                mov esi, grant
                call print
                mov ebx, 42          ; attacker got privileged access
                call exit
            denied:
                mov ebx, 0
                call exit",
        )
        .data(
            "attacker_name: .space 32, 0x41
             .byte 1, 0, 0, 0
             namebuf: .space 32
             is_admin: .word 0
             grant: .asciz \"access granted\\n\"",
        )
        .build()
        .unwrap();
    let (k, code) = run(split_kernel(), &prog);
    assert_eq!(code, Some(42), "the data-only attack must succeed");
    assert!(k.sys.events.first_detection().is_none());
}

#[test]
fn protection_holds_on_the_software_tlb_machine() {
    // §4.7: the port changes the reload mechanism, not the security
    // property. Same injection test as the x86 machine, soft-TLB hardware.
    let prog = ProgramBuilder::new("/bin/victim")
        .code(
            "_start:
                sub esp, 64
                mov edi, esp
                mov esi, payload
                mov ecx, 12
                call memcpy
                mov eax, esp
                jmp eax",
        )
        .data("payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80")
        .build()
        .unwrap();
    // Unprotected soft-TLB machine: the attack works (the substrate is
    // functionally complete).
    let mut k = Kernel::new(
        MachineConfig {
            software_tlb: true,
            ..MachineConfig::default()
        },
        KernelConfig::default(),
        Box::new(NullEngine),
    );
    let pid = k.spawn(&prog.image).unwrap();
    k.run(50_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(42));
    assert!(k.sys.stats.soft_tlb_fills > 0, "soft TLB mode was active");

    // Split memory on the soft-TLB machine: foiled, no single-step needed.
    let mut k = Kernel::new(
        MachineConfig {
            software_tlb: true,
            ..MachineConfig::default()
        },
        KernelConfig::default(),
        Box::new(SplitMemEngine::new(SplitMemConfig::default())),
    );
    let pid = k.spawn(&prog.image).unwrap();
    k.run(50_000_000);
    assert_ne!(k.sys.proc(pid).exit_code, Some(42));
    assert!(k.sys.events.first_detection().is_some());
    assert_eq!(
        k.sys.machine.stats.debug_traps, 0,
        "the soft-TLB port must not use single-stepping"
    );
}

#[test]
fn softtlb_port_has_noticeably_lower_overhead() {
    // The §4.7 performance claim as a hard assertion.
    let ab = sm_bench::ablation::softtlb_port(25);
    assert!(
        ab.soft_tlb > ab.x86 + 0.2,
        "soft-TLB {:.3} should be well above x86 {:.3}",
        ab.soft_tlb,
        ab.x86
    );
}
