//! Chaos-harness integration tests: the protection verdicts and the
//! engine invariants must survive deterministic fault injection, and the
//! hardened kernel must handle OOM and livelock without panicking.

use sm_attacks::harness::{kernel_with, kernel_with_on};
use sm_attacks::wilander::{self, InjectLocation, Technique};
use sm_bench::chaos::{self, Scenario};
use sm_core::invariants;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::userlib::ProgramBuilder;
use sm_machine::chaos::FaultPlan;
use sm_machine::TlbPreset;

fn split_break() -> Protection {
    Protection::SplitMem(ResponseMode::Break)
}

fn chaos_kernel(protection: &Protection, plan: FaultPlan) -> Kernel {
    kernel_with(
        protection,
        KernelConfig {
            aslr_stack: false,
            chaos: plan,
            ..KernelConfig::default()
        },
    )
}

/// A deliberately hostile plan — flushing both TLBs after *every* step
/// defeats the data-reload path permanently (the D-TLB fill is wiped
/// before the faulting store can restart), so the first data access to a
/// split page spins forever. The livelock watchdog must detect it and
/// surface `RunExit::Livelock` instead of hanging.
#[test]
fn flush_every_step_is_detected_as_livelock() {
    let mut k = chaos_kernel(
        &split_break(),
        FaultPlan {
            flush_every: Some(1),
            ..FaultPlan::default()
        },
    );
    let prog = ProgramBuilder::new("/bin/spin")
        .code(
            "_start:
                mov [v], 7
                mov ebx, 0
                call exit",
        )
        .data("v: .word 0")
        .build()
        .unwrap();
    let pid = k.spawn(&prog.image).unwrap();
    let exit = k.run(50_000_000);
    assert!(
        matches!(exit, RunExit::Livelock { pid: p, .. } if p == pid),
        "expected livelock detection, got {exit:?}"
    );
}

/// Satellite: spurious whole-TLB flush inside the single-step window. The
/// Algorithm-1 reload must converge anyway — the flush costs another
/// round-trip through the fault handler, never correctness. This is the
/// limitations.rs `single_step_window` program under window-targeted
/// chaos: the store still lands on the data frame, the patch still
/// silently fails, exit code still 9.
///
/// Under a plan that *also* fires periodic flushes, a flush can land
/// between the I-TLB fill and the store's fetch, which re-arms the window
/// ON the store itself — the store then writes the code frame and the
/// patch becomes visible (exit 7). That is the documented single-step
/// window of paper §7 widening under TLB pressure, not a protection
/// failure, so such plans accept either exit; the run must still converge
/// with clean invariants.
#[test]
fn window_flush_converges_and_preserves_the_window_semantics() {
    for (plan, allowed) in [
        (
            FaultPlan {
                flush_in_window: true,
                ..FaultPlan::default()
            },
            &[9][..],
        ),
        (
            FaultPlan {
                flush_in_window: true,
                flush_every: Some(5),
                evict_every: Some(3),
                seed: 11,
                ..FaultPlan::default()
            },
            &[7, 9][..],
        ),
    ] {
        let mut k = chaos_kernel(&split_break(), plan);
        let prog = ProgramBuilder::new("/bin/window")
            .mixed_segment()
            .code(
                "_start:
                    nop
                    mov byte [patchsite+1], 7
                patchsite:
                    mov ebx, 9
                    call exit",
            )
            .build()
            .unwrap();
        let pid = k.spawn(&prog.image).unwrap();
        let (exit, violations) = invariants::run_with_checks(&mut k, 50_000_000, 100_000);
        assert_eq!(exit, RunExit::AllExited, "plan {plan:?}");
        assert!(violations.is_empty(), "violations: {violations:?}");
        let code = k.sys.proc(pid).exit_code;
        assert!(
            code.is_some_and(|c| allowed.contains(&c)),
            "exit {code:?} not in {allowed:?} under {plan:?}"
        );
    }
}

/// Satellite: OOM during the second-frame allocation of a page split.
/// Sweep the failure point across the whole spawn/split window: every k
/// must end in a clean death or a degraded (never panicking) run, frame
/// accounting must balance, and at least one k must hit the engine's
/// degradation path specifically.
#[test]
fn oom_at_every_k_is_clean_and_some_k_degrades() {
    let mut saw_degrade = false;
    for k_th in 1..=70u64 {
        let plan = FaultPlan {
            oom_at: Some(k_th),
            ..FaultPlan::default()
        };
        let mut k = chaos_kernel(&Protection::Combined(ResponseMode::Break), plan);
        let prog = ProgramBuilder::new("/bin/oomtest")
            .mixed_segment()
            .code(
                "_start:
                    mov [v], 3
                    mov ebx, 0
                    call exit
                 v: .word 0",
            )
            .build()
            .unwrap();
        match k.spawn(&prog.image) {
            Ok(_) => {
                let exit = k.run(20_000_000);
                assert!(
                    !matches!(exit, RunExit::Livelock { .. }),
                    "oom_at={k_th} livelocked"
                );
            }
            Err(sm_kernel::kernel::SpawnError::OutOfMemory) => {}
            Err(e) => panic!("oom_at={k_th}: unexpected spawn error {e:?}"),
        }
        // Frame accounting balances whatever happened...
        assert_eq!(
            k.sys.machine.phys.allocator.allocated_count() as usize,
            k.sys.frames.tracked(),
            "oom_at={k_th} leaked or double-freed"
        );
        // ...and once every process is gone, nothing stays allocated.
        if k.sys
            .procs
            .values()
            .all(|p| p.state == sm_kernel::process::ProcState::Zombie)
        {
            assert_eq!(
                k.sys.machine.phys.allocator.allocated_count(),
                0,
                "oom_at={k_th} left frames allocated after all exits"
            );
        }
        let degraded = k
            .sys
            .events
            .iter()
            .any(|e| matches!(e, sm_kernel::events::Event::SplitDegraded { .. }));
        saw_degrade |= degraded;
    }
    assert!(
        saw_degrade,
        "no k in 1..=70 hit the engine's OOM degradation path"
    );
}

/// Perturbation plans must keep an injection attack exactly as foiled as
/// the fault-free run, with clean invariants throughout.
#[test]
fn perturbed_attack_verdicts_match_the_fault_free_run() {
    let case = wilander::Case {
        technique: Technique::FuncPtrVariable,
        location: InjectLocation::Stack,
    };
    let scenarios = [Scenario::Wilander(case), Scenario::Benign];
    let results = chaos::sweep(&[7], &scenarios, &split_break());
    assert!(!results.is_empty());
    for r in &results {
        assert!(
            r.verdict_stable,
            "{}/{} seed={}: verdict {:?} != baseline {:?}",
            r.scenario, r.plan, r.seed, r.run.verdict, r.baseline
        );
        assert!(
            r.run.violations.is_empty(),
            "{}/{}: violations {:?}",
            r.scenario,
            r.plan,
            r.run.violations
        );
        assert!(
            !r.run.attack_succeeded,
            "{}/{} attack succeeded",
            r.scenario, r.plan
        );
    }
}

/// OOM plans may change how a run ends but never let the attack win, and
/// never corrupt the engine's structural invariants.
#[test]
fn oom_plans_never_let_the_attack_win() {
    let case = wilander::Case {
        technique: Technique::ReturnAddress,
        location: InjectLocation::Stack,
    };
    let scenarios = [Scenario::Wilander(case)];
    let results = chaos::sweep_oom(&[7], &scenarios, &Protection::Combined(ResponseMode::Break));
    assert!(!results.is_empty());
    for r in &results {
        assert!(
            !r.run.attack_succeeded,
            "{}/{}: attack succeeded under OOM ({})",
            r.scenario, r.plan, r.run.verdict
        );
        assert!(
            r.run.violations.is_empty(),
            "{}/{}: violations {:?}",
            r.scenario,
            r.plan,
            r.run.violations
        );
    }
}

/// Same seed + same plan = byte-for-byte the same run: cycle count, event
/// log and injected-fault statistics all replay exactly.
#[test]
fn chaos_runs_are_deterministic() {
    let plan = FaultPlan {
        flush_every: Some(41),
        evict_every: Some(11),
        preempt_every: Some(23),
        flush_in_window: true,
        seed: 99,
        ..FaultPlan::default()
    };
    let run = || {
        let mut k = chaos_kernel(&split_break(), plan);
        let prog = ProgramBuilder::new("/bin/det")
            .mixed_segment()
            .code(
                "_start:
                    mov ecx, 12
                top:
                    mov [scratch], ecx
                    dec ecx
                    cmp ecx, 0
                    jne top
                    mov ebx, 0
                    call exit
                 scratch: .word 0",
            )
            .build()
            .unwrap();
        k.spawn(&prog.image).unwrap();
        let exit = k.run(50_000_000);
        let stats = k.sys.chaos.as_ref().map(|c| c.stats);
        let events = format!("{:?}", k.sys.events.entries());
        (exit, k.sys.machine.cycles, stats, events)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same (plan, seed) must replay identically");
    let stats = a.2.expect("chaos state present");
    assert!(
        stats.flushes > 0,
        "plan actually injected flushes: {stats:?}"
    );
}

/// Determinism is per `(plan, seed, geometry)`: the same plan replays
/// byte-for-byte on the set-associative Pentium III TLBs too, chaos
/// evictions actually land (set then way from the seeded draw), and the
/// injected evictions are accounted apart from genuine LRU pressure in
/// both TLBs — `TlbStats::evictions` only ever counts replacement.
#[test]
fn chaos_runs_replay_identically_per_geometry() {
    let plan = FaultPlan {
        flush_every: Some(41),
        evict_every: Some(7),
        preempt_every: Some(23),
        seed: 99,
        ..FaultPlan::default()
    };
    let run = |tlb: TlbPreset| {
        let mut k = kernel_with_on(
            &split_break(),
            tlb,
            KernelConfig {
                aslr_stack: false,
                chaos: plan,
                ..KernelConfig::default()
            },
        );
        let prog = ProgramBuilder::new("/bin/det")
            .mixed_segment()
            .code(
                "_start:
                    mov ecx, 12
                top:
                    mov [scratch], ecx
                    dec ecx
                    cmp ecx, 0
                    jne top
                    mov ebx, 0
                    call exit
                 scratch: .word 0",
            )
            .build()
            .unwrap();
        k.spawn(&prog.image).unwrap();
        let exit = k.run(50_000_000);
        let stats = k.sys.chaos.as_ref().map(|c| c.stats);
        let events = format!("{:?}", k.sys.events.entries());
        let itlb = k.sys.machine.itlb.stats;
        let dtlb = k.sys.machine.dtlb.stats;
        (exit, k.sys.machine.cycles, stats, events, itlb, dtlb)
    };
    let p3 = TlbPreset::pentium3();
    let a = run(p3);
    let b = run(p3);
    assert_eq!(a, b, "same (plan, seed, geometry) must replay identically");
    let (_, _, stats, _, itlb, dtlb) = a;
    let stats = stats.expect("chaos state present");
    assert!(stats.evictions > 0, "plan injected evictions: {stats:?}");
    // One round draws once per TLB; a draw on an empty TLB is a no-op, so
    // each TLB's chaos count is bounded by the number of rounds — and the
    // running program guarantees at least some landed.
    assert!(itlb.chaos_evictions > 0 || dtlb.chaos_evictions > 0);
    assert!(itlb.chaos_evictions <= stats.evictions);
    assert!(dtlb.chaos_evictions <= stats.evictions);
    // The compat geometry replays the same plan deterministically as well,
    // even though the victims it picks differ.
    let flat = run(TlbPreset::default());
    assert_eq!(flat, run(TlbPreset::default()));
}
