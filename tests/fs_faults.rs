//! The loader and file syscalls under injected disk faults.
//!
//! The chaos plan's fs-fault clock (`fs_error_every` / `fs_short_every`)
//! fails or truncates filesystem transfers deterministically. Whatever
//! the faulted operation — a `read`, an `execve` image load, a `dlopen`
//! library load — the kernel must unwind cleanly: the right errno reaches
//! the caller, the calling process stays runnable, no frame leaks, and
//! every cross-slice invariant holds.

use sm_core::invariants;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::chaos::FaultPlan;

/// Run `prog` under split memory with `plan`, after installing `files`
/// into the ram fs. Asserts convergence, clean invariants, and frame
/// balance; returns the exit status and the kernel for event inspection.
fn run_under_faults(
    prog: &BuiltProgram,
    files: &[(&str, Vec<u8>)],
    plan: FaultPlan,
) -> (Option<i32>, Kernel) {
    let mut k = Protection::SplitMem(ResponseMode::Break).kernel(KernelConfig {
        aslr_stack: false,
        chaos: plan,
        ..KernelConfig::default()
    });
    for (path, bytes) in files {
        k.sys.fs.install(*path, bytes.clone());
    }
    let free0 = k.sys.machine.phys.allocator.free_count();
    let pid = k.spawn(&prog.image).expect("program spawns");
    let (exit, violations) = invariants::run_with_checks(&mut k, 50_000_000, 100_000);
    assert_eq!(exit, RunExit::AllExited);
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
    let code = k.sys.proc(pid).exit_code;
    k.sys.procs.remove(&pid.0);
    assert_eq!(
        k.sys.machine.phys.allocator.free_count(),
        free0,
        "frames leaked across the faulted operation"
    );
    (code, k)
}

/// Plan failing every filesystem operation with an I/O error.
fn always_eio() -> FaultPlan {
    FaultPlan {
        fs_error_every: Some(1),
        ..FaultPlan::default()
    }
}

/// Plan truncating every filesystem transfer to a single byte.
fn always_short() -> FaultPlan {
    FaultPlan {
        fs_short_every: Some(1),
        ..FaultPlan::default()
    }
}

/// A loadable library image relocated into the library area, exporting
/// one function.
fn library() -> Vec<u8> {
    let lib = ProgramBuilder::new("/lib/libanswer.so")
        .without_stdlib()
        .code("answer: mov eax, 41\n inc eax\n ret")
        .build()
        .unwrap();
    let mut img = lib.image.clone();
    for seg in &mut img.segments {
        seg.vaddr += 0x3800_0000;
    }
    img.to_bytes()
}

/// A guest that dlopens `/lib/libanswer.so` and exits 0 iff the call
/// returned `want` (an errno for the fault cases).
fn dlopen_expecting(want: i32) -> BuiltProgram {
    ProgramBuilder::new("/bin/dl")
        .code(&format!(
            "_start:
                mov eax, SYS_DLOPEN
                mov ebx, path
                int 0x80
                cmp eax, {want}
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit"
        ))
        .data("path: .asciz \"/lib/libanswer.so\"")
        .build()
        .unwrap()
}

/// A guest that execves `/bin/hello` and exits 0 iff the call *failed*
/// with `want` — reaching the check at all proves the caller survived.
fn execve_expecting(want: i32) -> BuiltProgram {
    ProgramBuilder::new("/bin/execer")
        .code(&format!(
            "_start:
                mov eax, SYS_EXECVE
                mov ebx, path
                int 0x80
                cmp eax, {want}
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit"
        ))
        .data("path: .asciz \"/bin/hello\"")
        .build()
        .unwrap()
}

/// A valid image for the execve tests to (fail to) load.
fn hello() -> Vec<u8> {
    ProgramBuilder::new("/bin/hello")
        .code(
            "_start:
                mov ebx, 5
                call exit",
        )
        .build()
        .unwrap()
        .image
        .to_bytes()
}

#[test]
fn dlopen_under_disk_error_returns_eio_and_unwinds() {
    // EIO = -5. The library exists and is valid; only the disk read fails.
    let (code, k) = run_under_faults(
        &dlopen_expecting(-5),
        &[("/lib/libanswer.so", library())],
        always_eio(),
    );
    assert_eq!(code, Some(0));
    assert_eq!(k.sys.stats.libraries_loaded, 0);
}

#[test]
fn dlopen_short_read_is_rejected_as_a_bad_image() {
    // A one-byte truncated library fails to parse: ENOENT = -2, exactly
    // like a corrupt file, with nothing mapped.
    let (code, k) = run_under_faults(
        &dlopen_expecting(-2),
        &[("/lib/libanswer.so", library())],
        always_short(),
    );
    assert_eq!(code, Some(0));
    assert_eq!(k.sys.stats.libraries_loaded, 0);
}

#[test]
fn dlopen_succeeds_once_the_fault_clock_moves_off_it() {
    // Same guest, error on the *second* fs op only: the dlopen (the first
    // and only fs op) succeeds and returns the library base, which is
    // positive — so expecting an errno must fail the guest's check.
    let plan = FaultPlan {
        fs_error_every: Some(2),
        ..FaultPlan::default()
    };
    let (code, k) = run_under_faults(
        &dlopen_expecting(-5),
        &[("/lib/libanswer.so", library())],
        plan,
    );
    assert_eq!(
        code,
        Some(1),
        "dlopen must have succeeded, not returned EIO"
    );
    assert_eq!(k.sys.stats.libraries_loaded, 1);
}

#[test]
fn execve_under_disk_error_keeps_the_caller_alive() {
    // The image read happens before teardown: EIO to the caller, old
    // address space untouched, and the target never execs.
    let (code, k) = run_under_faults(
        &execve_expecting(-5),
        &[("/bin/hello", hello())],
        always_eio(),
    );
    assert_eq!(code, Some(0));
    assert!(!k.sys.events.execed("/bin/hello"));
}

#[test]
fn execve_short_read_truncates_to_enoent() {
    let (code, k) = run_under_faults(
        &execve_expecting(-2),
        &[("/bin/hello", hello())],
        always_short(),
    );
    assert_eq!(code, Some(0));
    assert!(!k.sys.events.execed("/bin/hello"));
}

#[test]
fn file_read_under_disk_error_surfaces_eio() {
    // open() draws no disk fault (it touches no data); the read is the
    // first transfer and eats the injected error.
    let prog = ProgramBuilder::new("/bin/reader")
        .code(
            "_start:
                mov eax, SYS_OPEN
                mov ebx, path
                mov ecx, 0         ; O_RDONLY
                int 0x80
                cmp eax, 0
                jl bad
                mov ebx, eax
                mov eax, SYS_READ
                mov ecx, buf
                mov edx, 16
                int 0x80
                cmp eax, -5
                jne bad
                mov ebx, 0
                call exit
            bad:
                mov ebx, 1
                call exit",
        )
        .data("path: .asciz \"/etc/motd\"\nbuf: .space 16")
        .build()
        .unwrap();
    let (code, _) = run_under_faults(
        &prog,
        &[("/etc/motd", b"hello there".to_vec())],
        always_eio(),
    );
    assert_eq!(code, Some(0));
}
