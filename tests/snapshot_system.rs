//! System tests for the checkpoint/restore subsystem.
//!
//! * **Transparency** — a checkpointed chaos run retires the same
//!   verdict and emits the same trace stream as the uncheckpointed run:
//!   the snapshot-op fault clock is independent of the step/fs streams,
//!   so taking (or corrupting) checkpoints never perturbs the guest.
//! * **Splice correctness** — a run restored from its latest checkpoint
//!   and driven to the original deadline reproduces the original verdict
//!   and splices into the byte-identical trace JSONL, for arbitrary
//!   perturbation plans and checkpoint intervals (proptest).
//! * **Fault containment** — every corrupted snapshot or dump is detected
//!   at load and rejected with an error; nothing panics (fuzz).
//! * **Determinism** — snapshot and dump bytes are identical across rayon
//!   thread counts, and warm-started kernels are byte-identical to cold
//!   boots.
//! * **Trace knobs** — `KernelConfig::trace_capacity` bounds the ring and
//!   `KernelConfig::trace_pid` filters events without assigning sequence
//!   numbers to dropped ones.

use proptest::prelude::*;
use sm_attacks::wilander;
use sm_bench::chaos::{self, Scenario};
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{KernelConfig, RunExit};
use sm_kernel::snapshot as ksnap;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::chaos::{FaultPlan, SnapshotFault};
use sm_machine::trace::mask;
use sm_machine::TlbPreset;

fn split_break() -> Protection {
    Protection::SplitMem(ResponseMode::Break)
}

fn canonical_scenario() -> Scenario {
    Scenario::Wilander(
        wilander::all_cases()
            .into_iter()
            .find(|c| c.applicable())
            .expect("an applicable wilander case"),
    )
}

/// A plan that perturbs the run *and* faults every other checkpoint.
fn snap_faulting_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        flush_every: Some(101),
        evict_every: Some(17),
        snap_fault_every: Some(2),
        seed,
        ..FaultPlan::default()
    }
}

fn dump_of(cp: &chaos::Checkpointed, scenario: Scenario, plan: FaultPlan, stride: u64) -> Vec<u8> {
    chaos::write_dump(&chaos::FailureDump {
        scenario: scenario.name(),
        plan_name: "test",
        protection: split_break(),
        tlb: TlbPreset::default(),
        plan,
        marker: cp.marker,
        pid: cp.pid,
        trace_mask: mask::ALL,
        slice: cp.snapshot_slice,
        seq0: cp.snapshot_seq,
        deadline: cp.deadline,
        stride,
        expected_verdict: cp.run.verdict.clone(),
        tail_sha: cp.tail_sha,
        snapshot: cp.snapshot.clone().expect("checkpoint exists"),
    })
    .expect("dump encodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For arbitrary perturbation plans and checkpoint intervals, the
    /// checkpointed run matches the plain run exactly, and a replay from
    /// its latest checkpoint reproduces the verdict and splices into the
    /// byte-identical trace stream.
    #[test]
    fn replay_from_checkpoint_is_exact(seed in 1u64..32, plan_idx in 0usize..7, every in 1u64..4) {
        let scenario = canonical_scenario();
        let split = split_break();
        let tlb = TlbPreset::default();
        let plans = chaos::perturbation_plans(seed);
        let plan = FaultPlan {
            snap_fault_every: Some(3),
            ..plans[plan_idx % plans.len()].plan
        };
        let (plain, plain_jsonl) =
            chaos::run_scenario_traced_on(scenario, &split, tlb, plan, mask::ALL);
        let cp = chaos::run_scenario_checkpointed_on(
            scenario, &split, tlb, plan, mask::ALL, chaos::Cadence { every, stride: 500 },
        );
        // Checkpointing (and snapshot-fault injection) is invisible to
        // the guest.
        prop_assert_eq!(&cp.run.verdict, &plain.verdict);
        prop_assert_eq!(&cp.jsonl, &plain_jsonl);
        prop_assert_eq!(cp.snap_faults_undetected, 0);
        prop_assert!(cp.run.violations.is_empty());
        // Replay from the latest good checkpoint (present unless snapshot
        // faults ate every single one).
        if cp.snapshot.is_some() {
            let dump = dump_of(&cp, scenario, plan, 500);
            let rep = chaos::replay_dump(&dump).expect("dump replays");
            prop_assert!(rep.verdict_matches, "verdict {} != {}", rep.verdict, rep.expected_verdict);
            prop_assert!(rep.splice_matches, "trace tail diverged");
            prop_assert!(rep.violations.is_empty());
        }
    }
}

/// Deterministic version of the splice property across two different
/// checkpoint intervals, also pinning that multiple checkpoints were
/// actually taken and that every injected snapshot fault was detected.
#[test]
fn replay_reproduces_detection_verdict_across_intervals() {
    let scenario = canonical_scenario();
    let split = split_break();
    let plan = snap_faulting_plan(1);
    for every in [1u64, 2] {
        let (cp, dump) = chaos::checkpointed_dump(
            scenario,
            &split,
            TlbPreset::default(),
            "seeded-detection",
            plan,
            mask::ALL,
            chaos::Cadence { every, stride: 500 },
        )
        .expect("combo dumps");
        assert!(
            cp.checkpoints_taken >= 2,
            "interval {every}: want >=2 checkpoints, got {}",
            cp.checkpoints_taken
        );
        assert!(cp.snap_faults_injected > 0, "plan must fault snapshots");
        assert_eq!(cp.snap_faults_undetected, 0, "all faults must be caught");
        assert_eq!(cp.run.verdict, "foiled(detected=true)");
        let rep = chaos::replay_dump(&dump).expect("dump replays");
        assert!(
            rep.verdict_matches,
            "{} != {}",
            rep.verdict, rep.expected_verdict
        );
        assert_eq!(rep.verdict, "foiled(detected=true)");
        assert!(rep.splice_matches, "interval {every}: trace tail diverged");
        assert!(rep.violations.is_empty());
        assert!(!rep.attack_succeeded);
    }
}

/// Every structured snapshot fault and every unstructured dump mutation
/// is rejected with a typed error — zero panics across the whole fuzz.
#[test]
fn corrupted_snapshots_and_dumps_never_panic() {
    let scenario = canonical_scenario();
    let split = split_break();
    let plan = snap_faulting_plan(7);
    let cp = chaos::run_scenario_checkpointed_on(
        scenario,
        &split,
        TlbPreset::default(),
        plan,
        mask::ALL,
        chaos::Cadence {
            every: 1,
            stride: 500,
        },
    );
    let snap = cp.snapshot.clone().expect("checkpoint exists");
    let dump = dump_of(&cp, scenario, plan, 500);

    // Structured faults on the kernel snapshot: every kind, many seeds.
    for seed in 0..48u64 {
        for fault in [
            SnapshotFault::Truncate,
            SnapshotFault::BitFlip,
            SnapshotFault::SectionReorder,
            SnapshotFault::VersionSkew,
        ] {
            let mut b = snap.clone();
            ksnap::corrupt_snapshot(&mut b, fault, seed);
            assert!(
                ksnap::validate(&b).is_err(),
                "{fault:?} seed {seed} undetected"
            );
            assert!(
                ksnap::restore(&b, split.engine()).is_err(),
                "{fault:?} seed {seed} restored"
            );
        }
    }

    // Unstructured mutations on the dump: bit flips anywhere (including
    // inside the embedded snapshot and the trailing digest) and
    // truncations at arbitrary offsets.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for _ in 0..200 {
        let mut b = dump.clone();
        let i = next() as usize % b.len();
        b[i] ^= 1 << (next() % 8);
        assert!(chaos::replay_dump(&b).is_err(), "flip at {i} accepted");
    }
    for _ in 0..50 {
        let cut = next() as usize % dump.len();
        assert!(
            chaos::replay_dump(&dump[..cut]).is_err(),
            "cut at {cut} accepted"
        );
    }
    assert!(chaos::replay_dump(&[]).is_err());
}

/// Snapshot/dump bytes are a pure function of the run: identical whether
/// the surrounding sweep machinery ran parallel (whatever
/// `RAYON_NUM_THREADS` is pinned to) or on the single-threaded serial
/// reference, and a restored snapshot re-saves to its exact input
/// (canonical round-trip).
#[test]
fn snapshot_bytes_identical_across_thread_counts() {
    let scenario = canonical_scenario();
    let make = || {
        let (cp, dump) = chaos::checkpointed_dump(
            scenario,
            &split_break(),
            TlbPreset::default(),
            "golden",
            snap_faulting_plan(1),
            mask::ALL,
            chaos::Cadence {
                every: 2,
                stride: 500,
            },
        )
        .expect("combo dumps");
        (cp.snapshot.expect("checkpoint exists"), dump)
    };
    let lines = |combos: &[chaos::ComboResult]| -> Vec<String> {
        combos.iter().map(|c| format!("{c:?}")).collect()
    };
    let parallel = chaos::sweep_on(&[1], &[scenario], &split_break(), TlbPreset::default());
    let a = make();
    let serial = chaos::sweep_serial_on(&[1], &[scenario], &split_break(), TlbPreset::default());
    let b = make();
    assert_eq!(lines(&parallel), lines(&serial));
    assert_eq!(a.0, b.0, "snapshot bytes differ across runs/thread counts");
    assert_eq!(a.1, b.1, "dump bytes differ across runs/thread counts");
    let k = ksnap::restore(&a.0, split_break().engine()).expect("snapshot restores");
    assert_eq!(ksnap::save(&k), a.0, "round-trip is not canonical");
}

/// Run-to-run snapshot determinism for the protection engines: the
/// split-memory page-table map is ordered (`BTreeMap`), so two
/// identically-driven kernels built in the same process serialize
/// byte-identically — a `HashMap` there would reorder the serialized
/// tables between instances (each map draws its own hash seed) and break
/// dump diffing, golden snapshots, and replay-from-checkpoint equality.
#[test]
fn engine_snapshot_bytes_deterministic_run_to_run() {
    for protection in [
        split_break(),
        Protection::Combined(ResponseMode::Break),
        Protection::ShadowCombined(ResponseMode::Break),
    ] {
        let bytes = || {
            let (k, _) = sm_attacks::code_reuse::run_libd_benign(&protection);
            ksnap::save(&k)
        };
        let a = bytes();
        let b = bytes();
        assert_eq!(
            a,
            b,
            "snapshot bytes differ run-to-run under {}",
            protection.label()
        );
        let k = ksnap::restore(&a, protection.engine()).expect("snapshot restores");
        assert_eq!(
            ksnap::save(&k),
            a,
            "round-trip not canonical under {}",
            protection.label()
        );
    }
}

fn loop_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/loop")
        .code(
            "_start:
                mov ecx, 5000
            again:
                dec ecx
                jnz again
                mov ebx, 0
                call exit",
        )
        .build()
        .expect("loop assembles")
}

/// Warm-started kernels (restored from the cached post-boot snapshot) are
/// byte-identical to cold boots, at construction and after running a
/// guest to completion.
#[test]
fn warm_start_is_byte_identical_to_cold() {
    let split = split_break();
    let tlb = TlbPreset::default();
    let kconfig = KernelConfig {
        aslr_stack: false,
        ..KernelConfig::default()
    };
    let cold = split.kernel_on(tlb, kconfig);
    // First call seeds the cache (itself a cold boot), second restores.
    let _ = split.kernel_warm_on(tlb, kconfig);
    let warm = split.kernel_warm_on(tlb, kconfig);
    assert_eq!(
        ksnap::save(&cold),
        ksnap::save(&warm),
        "warm boot differs from cold boot"
    );
    let prog = loop_program();
    let mut cold = cold;
    let mut warm = warm;
    cold.spawn(&prog.image).expect("spawns cold");
    warm.spawn(&prog.image).expect("spawns warm");
    assert_eq!(cold.run(50_000_000), RunExit::AllExited);
    assert_eq!(warm.run(50_000_000), RunExit::AllExited);
    assert_eq!(cold.sys.machine.cycles, warm.sys.machine.cycles);
    assert_eq!(
        format!("{:?}", cold.sys.machine.stats),
        format!("{:?}", warm.sys.machine.stats)
    );
    assert_eq!(ksnap::save(&cold), ksnap::save(&warm));
}

/// Warm-start cache keys must distinguish every `KernelConfig` knob —
/// including the trace knobs that postdate the cache. Seeding the cache
/// with one config and then requesting a pid-filtered, capacity-bounded
/// variant must yield a kernel byte-identical to a cold boot of that
/// variant (a key collision would hand back the unfiltered boot), at
/// construction and after running a guest under the filter.
#[test]
fn warm_cache_distinguishes_trace_knobs() {
    let split = split_break();
    let tlb = TlbPreset::default();
    let base = KernelConfig {
        aslr_stack: false,
        trace: mask::ALL,
        ..KernelConfig::default()
    };
    let filtered = KernelConfig {
        trace_pid: Some(1),
        trace_capacity: 8,
        ..base
    };
    // Seed the cache with the unfiltered sibling first — the regression
    // scenario is the *second* lookup aliasing the first's snapshot.
    let _ = split.kernel_warm_on(tlb, base);
    let _ = split.kernel_warm_on(tlb, filtered);
    let warm = split.kernel_warm_on(tlb, filtered);
    let cold = split.kernel_on(tlb, filtered);
    assert_eq!(
        ksnap::save(&cold),
        ksnap::save(&warm),
        "warm-start cache aliased distinct trace configs"
    );
    let prog = loop_program();
    let mut cold = cold;
    let mut warm = warm;
    let pid_c = cold.spawn(&prog.image).expect("spawns cold");
    let pid_w = warm.spawn(&prog.image).expect("spawns warm");
    assert_eq!(pid_c, pid_w);
    assert_eq!(cold.run(50_000_000), RunExit::AllExited);
    assert_eq!(warm.run(50_000_000), RunExit::AllExited);
    assert_eq!(
        cold.sys.machine.tracer.to_jsonl(),
        warm.sys.machine.tracer.to_jsonl(),
        "filtered trace streams diverged between warm and cold boots"
    );
    assert!(
        cold.sys.machine.tracer.snapshot().len() <= 8,
        "capacity knob lost through the warm cache"
    );
    assert_eq!(ksnap::save(&cold), ksnap::save(&warm));
}

/// `trace_capacity` bounds the ring; `trace_pid` filters events before a
/// sequence number is assigned.
#[test]
fn trace_knobs_bound_and_filter_the_ring() {
    let split = split_break();
    let tlb = TlbPreset::default();
    let prog = loop_program();

    // Capacity knob: tiny ring, long event stream.
    let mut k = split.kernel_on(
        tlb,
        KernelConfig {
            aslr_stack: false,
            trace: mask::ALL,
            trace_capacity: 8,
            ..KernelConfig::default()
        },
    );
    k.spawn(&prog.image).expect("spawns");
    assert_eq!(k.run(50_000_000), RunExit::AllExited);
    let ring = k.sys.machine.tracer.snapshot();
    assert!(ring.len() <= 8, "ring exceeded capacity: {}", ring.len());
    assert!(
        k.sys.machine.tracer.emitted() > 8,
        "guest must emit more events than the ring holds"
    );

    // Pid filter: a filter on the real pid keeps only events involving
    // it; a filter on a pid that never exists keeps (and numbers)
    // nothing.
    let spawn_traced = |pid_filter| {
        let mut k = split.kernel_on(
            tlb,
            KernelConfig {
                aslr_stack: false,
                trace: mask::ALL,
                trace_pid: pid_filter,
                ..KernelConfig::default()
            },
        );
        let pid = k.spawn(&prog.image).expect("spawns");
        assert_eq!(k.run(50_000_000), RunExit::AllExited);
        (k, pid)
    };
    let (unfiltered, pid) = spawn_traced(None);
    let (filtered, pid2) = spawn_traced(Some(pid.0));
    assert_eq!(pid, pid2, "spawn order is deterministic");
    let kept = filtered.sys.machine.tracer.snapshot();
    assert!(!kept.is_empty(), "the guest's own events must survive");
    assert!(kept.iter().all(|r| r.event.involves(pid.0)));
    assert!(filtered.sys.machine.tracer.emitted() <= unfiltered.sys.machine.tracer.emitted());
    // A pid that never exists keeps only the ambient machine-layer TLB
    // events (which carry no process id and pass any filter).
    let (none, _) = spawn_traced(Some(9999));
    assert!(
        none.sys
            .machine
            .tracer
            .snapshot()
            .iter()
            .all(|r| r.event.kind().starts_with("tlb_")),
        "per-process events leaked past the filter"
    );
}

/// The checked-in golden dump replays on the current build. Regenerate
/// with `cargo run --release --bin chaos -- --dump-demo
/// tests/golden/chaos_demo.smcdump` after intentional changes to the
/// instruction stream, trace schema or snapshot format.
#[test]
fn golden_dump_replays() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/chaos_demo.smcdump"
    );
    let bytes = std::fs::read(path).expect("golden dump is checked in");
    let rep = chaos::replay_dump(&bytes).expect("golden dump replays");
    assert!(
        rep.verdict_matches,
        "{} != {}",
        rep.verdict, rep.expected_verdict
    );
    assert!(rep.splice_matches, "golden trace tail diverged");
    assert!(rep.violations.is_empty());
    assert_eq!(rep.verdict, "foiled(detected=true)");
}
