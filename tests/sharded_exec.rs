//! System tests for the segment scheduler (`sm_bench::shards`).
//!
//! * **Splice equality** — a sharded run (unchecked pre-pass, parallel
//!   checked segments, zip) produces byte-identical output to the serial
//!   checked run: verdict, exit, violations, trace JSONL, event log,
//!   machine/kernel stats and the cycle counter, across seeds, plans,
//!   segment counts, ring capacities and strides (proptest). CI pins the
//!   same property under a `RAYON_NUM_THREADS` matrix.
//! * **Zero-tail boundaries** — a checkpoint landing exactly on a slice
//!   boundary with no trace events in its interval resumes seq numbering
//!   with no gap and no duplicate (the PR 7 boundary bugfix).
//! * **Mid-window snapshots** — a snapshot taken while a paper-§7
//!   single-step window is armed, or between a COW share and its break,
//!   restores byte-identically and continues byte-identically.

use proptest::prelude::*;
use sm_bench::chaos::{self, Scenario};
use sm_bench::interference;
use sm_bench::shards::{self, ShardSpec};
use sm_core::invariants;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::snapshot as ksnap;
use sm_kernel::userlib::BuiltProgram;
use sm_machine::chaos::FaultPlan;
use sm_machine::trace::mask;
use sm_machine::TlbPreset;

fn split_break() -> Protection {
    Protection::SplitMem(ResponseMode::Break)
}

fn canonical_scenario() -> Scenario {
    Scenario::Wilander(
        sm_attacks::wilander::all_cases()
            .into_iter()
            .find(|c| c.applicable())
            .expect("an applicable wilander case"),
    )
}

/// Build the serial/sharded spec pair for one chaos combo with a test
/// stride (the default 100k-cycle stride leaves short guests with one
/// segment, which would vacuously pass).
fn chaos_spec(
    scenario: Scenario,
    protection: &Protection,
    plan: FaultPlan,
    trace_mask: u32,
    capacity: usize,
    stride: u64,
) -> ShardSpec<'_> {
    let mut spec = ShardSpec::chaos(
        scenario,
        protection,
        TlbPreset::default(),
        plan,
        trace_mask,
        capacity,
    );
    spec.stride = stride;
    spec
}

/// Deterministic core property: the kitchen-sink plan (flushes, evictions,
/// preemptions, in-window flushes) sharded four ways is byte-identical to
/// the serial run, and actually exercised multiple segments.
#[test]
fn sharded_run_is_byte_identical_to_serial() {
    let split = split_break();
    let plan = chaos::plan_by_name("kitchen-sink", 1).expect("plan exists");
    let spec = chaos_spec(canonical_scenario(), &split, plan, mask::ALL, 256, 2_000);
    let serial = shards::run_serial(&spec);
    let sharded = shards::run_sharded(&spec, 4);
    assert!(
        sharded.segments > 1,
        "stride too coarse: run fit in one segment"
    );
    assert!(sharded.zip_ok, "zip notes: {:?}", sharded.zip_notes);
    let notes = shards::compare_runs(&serial, &sharded);
    assert!(notes.is_empty(), "diverged: {notes:?}");
    assert!(!serial.trace_jsonl.is_empty(), "trace must carry events");
}

/// A checkpoint interval whose guest emits *zero* trace events (benign
/// loop under a PROC-only mask: spawn and exit land in the first and last
/// segments, nothing in between) must resume seq numbering at the
/// boundary with no gap and no duplicate — `splice` inside the zipper
/// proves it, and the empty per-segment tails pin that the zero-tail case
/// really occurred rather than the mask leaking events.
#[test]
fn zero_tail_boundary_resumes_seq_without_gap() {
    let split = split_break();
    let plan = chaos::plan_by_name("inert", 1).expect("plan exists");
    let spec = chaos_spec(Scenario::Benign, &split, plan, mask::PROC, 64, 1_000);
    let serial = shards::run_serial(&spec);
    let sharded = shards::run_sharded(&spec, 4);
    assert!(sharded.segments > 1, "need at least one interior boundary");
    assert!(
        sharded.per_segment_jsonl.iter().any(String::is_empty),
        "no zero-event segment occurred; tails: {:?}",
        sharded
            .per_segment_jsonl
            .iter()
            .map(|j| j.lines().count())
            .collect::<Vec<_>>()
    );
    assert!(sharded.zip_ok, "zip notes: {:?}", sharded.zip_notes);
    let notes = shards::compare_runs(&serial, &sharded);
    assert!(notes.is_empty(), "diverged: {notes:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shards-on ≡ shards-off for arbitrary seeds, perturbation plans,
    /// segment counts, ring capacities, strides and protection engines
    /// (the shadow-stack/CFI engine's state must survive the per-segment
    /// snapshot round-trips byte-exactly). `RAYON_NUM_THREADS` varies in
    /// CI; the output must not.
    #[test]
    fn shards_on_equals_shards_off(
        seed in 1u64..64,
        plan_idx in 0usize..7,
        nshards in 1usize..6,
        cap_idx in 0usize..3,
        stride in 1_000u64..20_000,
        prot_idx in 0usize..3,
    ) {
        let protection = [
            split_break(),
            Protection::ShadowStack(ResponseMode::Break),
            Protection::ShadowCombined(ResponseMode::Break),
        ][prot_idx].clone();
        let plans = chaos::perturbation_plans(seed);
        let plan = plans[plan_idx % plans.len()].plan;
        let capacity = [64usize, 512, 4096][cap_idx];
        let spec = chaos_spec(canonical_scenario(), &protection, plan, mask::ALL, capacity, stride);
        let serial = shards::run_serial(&spec);
        let sharded = shards::run_sharded(&spec, nshards);
        prop_assert!(sharded.zip_ok, "zip notes: {:?}", sharded.zip_notes);
        let notes = shards::compare_runs(&serial, &sharded);
        prop_assert!(notes.is_empty(), "diverged: {notes:?}");
    }
}

/// Boot a bare split-memory kernel for the mid-window snapshot tests:
/// deterministic stack, full trace, decode cache off (its warmth is the
/// one state component snapshots do not carry, so it must be off for a
/// restored kernel to continue byte-identically).
fn boot_bare(plan: FaultPlan) -> Kernel {
    let split = split_break();
    let mut k = split.kernel_on(
        TlbPreset::default(),
        KernelConfig {
            aslr_stack: false,
            chaos: plan,
            trace: mask::ALL,
            ..KernelConfig::default()
        },
    );
    k.sys.machine.config.decode_cache = false;
    k
}

/// Run `k` unchecked in `stride`-cycle slices until `armed` holds at a
/// slice boundary (or the guest exits / `max_slices` passes). Returns the
/// snapshot taken at that boundary.
fn snapshot_when(
    k: &mut Kernel,
    stride: u64,
    max_slices: u64,
    armed: impl Fn(&Kernel) -> bool,
) -> Option<Vec<u8>> {
    for _ in 0..max_slices {
        let exit = k.run(stride);
        if armed(k) {
            return Some(ksnap::save(k));
        }
        if exit != RunExit::CyclesExhausted {
            return None;
        }
    }
    None
}

/// The shared tail of both mid-window tests: `snap` was taken from `k` at
/// a slice boundary; a kernel restored from it must save back to the same
/// bytes, and both kernels driven through the identical checked slice
/// sequence must stay byte-identical (state, stats, cycles) and emit the
/// identical trace tail.
fn assert_restore_continues_identically(
    k: &mut Kernel,
    snap: &[u8],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let split = split_break();
    let mut k2 = ksnap::restore(snap, split.engine()).expect("snapshot restores");
    prop_assert_eq!(
        &ksnap::save(k),
        &snap,
        "live state re-saves to the snapshot"
    );
    prop_assert_eq!(
        &ksnap::save(&k2),
        &snap,
        "restored state re-saves to the snapshot"
    );
    let seq0 = k.sys.machine.tracer.emitted();
    prop_assert_eq!(k2.sys.machine.tracer.emitted(), seq0);
    let (e1, v1) = invariants::run_with_checks(k, 5_000_000, 5_000);
    let (e2, v2) = invariants::run_with_checks(&mut k2, 5_000_000, 5_000);
    prop_assert_eq!(e1, e2);
    prop_assert_eq!(v1, v2);
    prop_assert_eq!(
        ksnap::save(k),
        ksnap::save(&k2),
        "continuations diverged after restore"
    );
    prop_assert_eq!(
        chaos::tail_jsonl(&k.sys.machine.tracer.snapshot(), seq0),
        chaos::tail_jsonl(&k2.sys.machine.tracer.snapshot(), seq0),
        "trace tails diverged after restore"
    );
    Ok(())
}

fn spawn_one(k: &mut Kernel, prog: &BuiltProgram) {
    k.spawn(&prog.image).expect("spawns");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A snapshot taken while a single-step window is armed
    /// (`pending_step_addr` set on some process: the §7 I/D-desync window
    /// between a mixed-page write and its re-fetch) restores and
    /// continues byte-identically. Stride 1–3 cycles makes slice
    /// boundaries land on (nearly) every instruction, so the armed window
    /// is caught mid-flight rather than after it resolves.
    #[test]
    fn snapshot_inside_armed_step_window_is_exact(seed in 1u64..32, stride in 1u64..4) {
        let plan = chaos::plan_by_name("window-flush", seed).expect("plan exists");
        let mut k = boot_bare(plan);
        spawn_one(&mut k, &chaos::mixed_patch_program());
        let snap = snapshot_when(&mut k, stride, 400_000, |k| {
            k.sys.procs.values().any(|p| p.pending_step_addr.is_some())
        });
        let snap = snap.expect("self-patcher must arm a step window");
        assert_restore_continues_identically(&mut k, &snap)?;
    }

    /// A snapshot taken between a fork's COW share and its first break
    /// (two processes alive, zero `cow_breaks`) restores and continues
    /// byte-identically — shared-frame refcounts and pending COW state
    /// survive the round-trip.
    #[test]
    fn snapshot_between_cow_share_and_break_is_exact(seed in 1u64..32, stride in 1u64..4) {
        let plan = chaos::plan_by_name("preempt-53", seed).expect("plan exists");
        let mut k = boot_bare(plan);
        spawn_one(&mut k, &interference::interference_program());
        let snap = snapshot_when(&mut k, stride, 400_000, |k| {
            k.sys.stats.processes_spawned >= 2 && k.sys.stats.cow_breaks == 0
        });
        let snap = snap.expect("fork must precede the first COW break");
        assert_restore_continues_identically(&mut k, &snap)?;
    }
}
