//! Response-mode semantics (paper §4.5, Fig. 5): break kills, observe
//! logs-then-allows, forensics dumps and optionally substitutes.

use sm_attacks::harness::Protection;
use sm_attacks::real_world::run_wuftpd_with;
use sm_attacks::shellcode::PAPER_EXIT0;
use sm_attacks::AttackOutcome;
use sm_core::engine::SplitMemConfig;
use sm_kernel::events::{Event, ResponseMode};

#[test]
fn fig5_all_four_demonstrations() {
    let f = sm_bench::fig5::run();

    // (a) break: foiled with detection.
    assert_eq!(f.break_outcome, AttackOutcome::Foiled { detected: true });

    // (b) observe: shell spawned, detection logged first.
    assert_eq!(f.observe_outcome, AttackOutcome::ShellSpawned);
    assert!(f.observe_detections >= 1);
    assert!(
        f.observe_transcript.contains("uid=0(root)"),
        "attacker session: {}",
        f.observe_transcript
    );

    // (c) forensics: the dump leads with the exploit's NOP sled, like the
    // paper's screenshot.
    assert_eq!(f.forensics_dump.len(), 20, "paper dumps 20 bytes");
    assert!(
        f.forensics_dump.starts_with(&[0x90, 0x90, 0x90, 0x90]),
        "dump: {:02x?}",
        f.forensics_dump
    );
    assert!(f.forensics_disasm.iter().any(|l| l == "nop"));

    // (d) Sebek log captured the attacker's keystrokes.
    let joined = f.sebek_log.join("\n");
    assert!(joined.contains("id"), "sebek: {joined}");

    // §6.1.3: the exit(0) forensic shellcode terminates the daemon
    // "without a segmentation fault".
    assert_eq!(f.forensic_substitution_exit, Some(0));
}

#[test]
fn observe_mode_logs_only_the_first_execution_per_page() {
    // "only the first unauthorized code execution on a given page will be
    // logged, as future execution will occur unhindered from the data
    // page" (§5.5) — the two-stage WU-FTPD payload reads stage two onto
    // the SAME page, so a single detection covers both stages.
    let cfg = SplitMemConfig {
        response: ResponseMode::Observe,
        ..SplitMemConfig::default()
    };
    let (report, k, _) = run_wuftpd_with(&Protection::SplitMemCustom(cfg));
    assert_eq!(report.outcome, AttackOutcome::ShellSpawned);
    let detections = k
        .sys
        .events
        .iter()
        .filter(|e| matches!(e, Event::AttackDetected { .. }))
        .count();
    assert_eq!(
        detections, 1,
        "stage two must run unhindered from the locked page"
    );
}

#[test]
fn forensic_dump_contains_the_actual_injected_bytes() {
    let cfg = SplitMemConfig {
        response: ResponseMode::Forensics,
        shellcode_dump_len: 32,
        ..SplitMemConfig::default()
    };
    let (_, k, _) = run_wuftpd_with(&Protection::SplitMemCustom(cfg));
    let dump = k
        .sys
        .events
        .iter()
        .find_map(|e| match e {
            Event::AttackDetected { shellcode, .. } => Some(shellcode.clone()),
            _ => None,
        })
        .expect("detection with dump");
    // 16-byte NOP sled, then stage one's first opcode (push imm32 = 0x68).
    assert_eq!(&dump[..16], &[0x90; 16]);
    assert_eq!(dump[16], 0x68);
}

#[test]
fn forensic_substitution_runs_instead_of_the_attack() {
    let cfg = SplitMemConfig {
        response: ResponseMode::Forensics,
        forensic_shellcode: Some(PAPER_EXIT0.to_vec()),
        ..SplitMemConfig::default()
    };
    let (report, k, _) = run_wuftpd_with(&Protection::SplitMemCustom(cfg));
    // No shell: the attacker's payload was replaced wholesale.
    assert!(!report.outcome.succeeded());
    // The daemon exited gracefully with status 0.
    let exit = k.sys.events.iter().find_map(|e| match e {
        Event::ProcessExit { code, .. } => Some(*code),
        _ => None,
    });
    assert_eq!(exit, Some(0));
}

#[test]
fn recurring_attacks_share_a_fingerprint() {
    // §4.5.3 "attack fingerprinting": the same exploit seen twice yields
    // the same payload digest, so an operator can match recurrences.
    let capture = || {
        let cfg = SplitMemConfig {
            response: ResponseMode::Forensics,
            shellcode_dump_len: 96, // the whole stage-one payload
            ..SplitMemConfig::default()
        };
        let (_, k, _) = run_wuftpd_with(&Protection::SplitMemCustom(cfg));
        let dump = k
            .sys
            .events
            .iter()
            .find_map(|e| match e {
                Event::AttackDetected { shellcode, .. } => Some(shellcode.clone()),
                _ => None,
            })
            .expect("detection");
        sm_core::forensics::fingerprint(&dump)
    };
    let a = capture();
    let b = capture();
    assert_eq!(a.digest, b.digest, "recurring attack must match");
    assert_eq!(a.nop_sled, 16);
    // With 64 bytes captured, the analyser sees stage one's syscalls and
    // classifies the 7350wurm shape correctly.
    assert_eq!(
        a.class,
        sm_core::forensics::PayloadClass::StagedDownloader,
        "listing: {:?}",
        a.listing
    );
}

#[test]
fn mixed_only_policy_limits_response_modes_to_mixed_pages() {
    // §4.2.1: "only protecting the mixed pages using our technique may
    // limit the use of the various response modes." Under the combined
    // engine in observe mode, an attack on an NX-covered (non-mixed) page
    // is *killed* by the execute-disable bit — it cannot be observed —
    // while the same attack on a mixed page is observed and proceeds.
    use sm_core::combined::CombinedEngine;
    use sm_kernel::kernel::{Kernel, KernelConfig};
    use sm_kernel::userlib::ProgramBuilder;
    use sm_machine::MachineConfig;

    let attack_code = "_start:
            mov edi, buf
            mov esi, payload
            mov ecx, 12
            call memcpy
            mov eax, buf
            jmp eax";
    let payload = "payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80
         buf: .space 16";
    let clean = ProgramBuilder::new("/bin/clean")
        .code(attack_code)
        .data(payload)
        .build()
        .unwrap();
    let mixed = ProgramBuilder::new("/bin/mixed")
        .mixed_segment()
        .code(&format!("{attack_code}\n{payload}"))
        .build()
        .unwrap();
    let run = |prog: &sm_kernel::userlib::BuiltProgram| {
        let mut k = Kernel::new(
            MachineConfig {
                nx_enabled: true,
                ..MachineConfig::default()
            },
            KernelConfig::default(),
            Box::new(CombinedEngine::new(ResponseMode::Observe)),
        );
        let pid = k.spawn(&prog.image).unwrap();
        k.run(20_000_000);
        k.sys.procs.get(&pid.0).and_then(|p| p.exit_code)
    };
    // Non-mixed page: NX kills; observe mode never gets a say.
    assert_eq!(run(&clean), Some(128 + 11), "NX page: killed, not observed");
    // Mixed page: split memory observes, the attack proceeds to exit(42).
    assert_eq!(run(&mixed), Some(42), "mixed page: observed and allowed");
}
