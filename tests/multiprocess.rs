//! Multi-process subsystem properties: forking must be *transparent* to
//! the parent's computation, and everything about fork/COW must be
//! deterministic.
//!
//! The literal "machine state identical to the never-forked run" reading
//! is impossible — fork, waitpid and the child's slice all retire
//! instructions and cost cycles — so the tests pin the strongest
//! properties that *are* true:
//!
//! * the parent's observable result (its exit status) is identical
//!   between the forked run (with a child that COW-breaks a shared page
//!   and exits) and the never-forked run, for arbitrary workloads;
//! * repeated forked runs are byte-identical (`MachineStats` debug
//!   output, kernel counters, event count) — fork adds no
//!   nondeterminism;
//! * chaos preemption moves the context-switch points but never the
//!   outcome, and COW-break counts stay deterministic under it.
//!
//! The thread-count half of the determinism story (sweeps identical
//! across `RAYON_NUM_THREADS`) lives in `parallel_sweeps.rs`.

use proptest::prelude::*;
use sm_core::invariants;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{KernelConfig, RunExit};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::chaos::FaultPlan;

/// The parent workload shared by both variants: `n` additions of `step`,
/// exit status masked to 6 bits.
fn work_asm(n: u32, step: u32) -> String {
    format!(
        "work:
                mov ecx, {n}
                mov eax, 0
            w_loop:
                add eax, {step}
                dec ecx
                jnz w_loop
                and eax, 63
                mov ebx, eax
                call exit"
    )
}

/// What the workload's exit status must be, computed host-side.
fn expected_exit(n: u32, step: u32) -> i32 {
    (n.wrapping_mul(step) & 63) as i32
}

/// Fork first: the child COW-breaks a shared data page and exits, the
/// parent reaps it and only then runs the workload.
fn forked_program(n: u32, step: u32) -> BuiltProgram {
    ProgramBuilder::new("/bin/forked")
        .code(&format!(
            "_start:
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je child
                mov eax, SYS_WAITPID
                mov ebx, -1
                mov ecx, 0
                int 0x80
                jmp work
            child:
                mov dword [v], 7   ; COW break on a shared data page
                mov ebx, 0
                call exit
            {work}",
            work = work_asm(n, step)
        ))
        .data("v: .word 1")
        .build()
        .unwrap()
}

/// The same workload with no fork at all.
fn plain_program(n: u32, step: u32) -> BuiltProgram {
    ProgramBuilder::new("/bin/plain")
        .code(&format!(
            "_start:
                jmp work
            {work}",
            work = work_asm(n, step)
        ))
        .data("v: .word 1")
        .build()
        .unwrap()
}

/// Observable outcome of one run: initiating process's exit status, the
/// machine counters rendered for byte-comparison, the kernel's COW-break
/// count, and the event-log length.
struct RunOutcome {
    exit_code: Option<i32>,
    machine_stats: String,
    cow_breaks: u64,
    events: usize,
}

/// Run under split memory with invariant checking between slices,
/// asserting convergence, clean invariants, and frame balance.
fn run_checked(prog: &BuiltProgram, plan: FaultPlan) -> RunOutcome {
    let mut k = Protection::SplitMem(ResponseMode::Break).kernel(KernelConfig {
        aslr_stack: false,
        chaos: plan,
        ..KernelConfig::default()
    });
    let free0 = k.sys.machine.phys.allocator.free_count();
    let pid = k.spawn(&prog.image).expect("program spawns");
    let (exit, violations) = invariants::run_with_checks(&mut k, 100_000_000, 100_000);
    assert_eq!(exit, RunExit::AllExited);
    assert!(violations.is_empty(), "invariants violated: {violations:?}");
    let out = RunOutcome {
        exit_code: k.sys.proc(pid).exit_code,
        machine_stats: format!("{:?}", k.sys.machine.stats),
        cow_breaks: k.sys.stats.cow_breaks,
        events: k.sys.events.len(),
    };
    let pids: Vec<u32> = k.sys.procs.keys().copied().collect();
    for p in pids {
        k.sys.procs.remove(&p);
    }
    assert_eq!(
        k.sys.machine.phys.allocator.free_count(),
        free0,
        "frames leaked across fork/exit"
    );
    out
}

#[test]
fn fork_then_child_exit_is_invisible_to_the_parent() {
    let forked = run_checked(&forked_program(5, 100), FaultPlan::default());
    let plain = run_checked(&plain_program(5, 100), FaultPlan::default());
    assert_eq!(forked.exit_code, Some(expected_exit(5, 100)));
    assert_eq!(forked.exit_code, plain.exit_code);
    assert!(forked.cow_breaks >= 1, "child's store must COW-break");
    assert_eq!(plain.cow_breaks, 0);
}

#[test]
fn forked_runs_are_byte_identical_across_repeats() {
    let a = run_checked(&forked_program(3, 7), FaultPlan::default());
    let b = run_checked(&forked_program(3, 7), FaultPlan::default());
    assert_eq!(a.exit_code, b.exit_code);
    assert_eq!(a.machine_stats, b.machine_stats);
    assert_eq!(a.cow_breaks, b.cow_breaks);
    assert_eq!(a.events, b.events);
}

#[test]
fn cow_breaks_under_chaos_preemption_are_deterministic() {
    // Forced preemption between arbitrary instruction pairs moves the
    // context-switch points into the middle of the fork/COW dance; the
    // outcome — and every counter — must not move with them.
    let plan = FaultPlan {
        preempt_every: Some(37),
        seed: 1,
        ..FaultPlan::default()
    };
    let a = run_checked(&forked_program(4, 9), plan);
    let b = run_checked(&forked_program(4, 9), plan);
    assert_eq!(a.exit_code, Some(expected_exit(4, 9)));
    assert_eq!(a.exit_code, b.exit_code);
    assert_eq!(a.machine_stats, b.machine_stats);
    assert_eq!(a.cow_breaks, b.cow_breaks);
    assert!(a.cow_breaks >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the parent computes, forking a trivial child first (and
    /// letting it dirty a COW-shared page) never changes the answer.
    #[test]
    fn forked_parent_exits_like_the_never_forked_run(
        n in 1u32..=6,
        step in 1u32..=4096,
    ) {
        let forked = run_checked(&forked_program(n, step), FaultPlan::default());
        let plain = run_checked(&plain_program(n, step), FaultPlan::default());
        prop_assert_eq!(forked.exit_code, Some(expected_exit(n, step)));
        prop_assert_eq!(forked.exit_code, plain.exit_code);
        prop_assert!(forked.cow_breaks >= 1);
    }

    /// The preemption period chooses *where* the scheduler interleaves
    /// the two processes, never *what* they compute.
    #[test]
    fn preemption_period_never_changes_the_outcome(
        n in 1u32..=4,
        step in 1u32..=1000,
        period in 5u64..=200,
    ) {
        let plan = FaultPlan {
            preempt_every: Some(period),
            ..FaultPlan::default()
        };
        let run = run_checked(&forked_program(n, step), plan);
        prop_assert_eq!(run.exit_code, Some(expected_exit(n, step)));
    }
}
