//! The parallel chaos sweep must be a *pure speedup*: fanning combos out
//! across threads may change wall-clock, never output. Every report line —
//! scenario, plan, seed, verdict, baseline, stability, exit, violations —
//! must be byte-identical to the single-threaded reference sweep, and
//! repeated parallel sweeps must be byte-identical to each other (no
//! scheduling-order leakage into results).

use sm_attacks::wilander::{Case, InjectLocation, Technique};
use sm_bench::chaos::{self, Scenario};
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario::Benign,
        Scenario::Wilander(Case {
            technique: Technique::ReturnAddress,
            location: InjectLocation::Stack,
        }),
        Scenario::Wilander(Case {
            technique: Technique::FuncPtrVariable,
            location: InjectLocation::Heap,
        }),
    ]
}

/// Render a combo result to the exact line the chaos binary reports, so
/// "byte-identical output" is checked against what users actually see.
fn lines(results: &[chaos::ComboResult]) -> Vec<String> {
    results.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let seeds = [1u64, 2];
    let split = Protection::SplitMem(ResponseMode::Break);
    let tlb = TlbPreset::default();
    let serial = lines(&chaos::sweep_serial_on(&seeds, &scenarios(), &split, tlb));
    let parallel = lines(&chaos::sweep_on(&seeds, &scenarios(), &split, tlb));
    assert_eq!(serial, parallel);
    // The sweep must also be exhaustive: every scenario × seed × plan combo
    // appears exactly once, in scenario-major order.
    let expected = scenarios().len() * seeds.len() * chaos::perturbation_plans(1).len();
    assert_eq!(parallel.len(), expected);
}

#[test]
fn parallel_sweep_is_deterministic_across_runs() {
    let seeds = [3u64];
    let split = Protection::SplitMem(ResponseMode::Break);
    let tlb = TlbPreset::pentium3();
    let first = lines(&chaos::sweep_on(&seeds, &scenarios(), &split, tlb));
    let second = lines(&chaos::sweep_on(&seeds, &scenarios(), &split, tlb));
    assert_eq!(first, second);
}

#[test]
fn interference_sweep_is_byte_identical_to_serial_and_across_runs() {
    // The two-guest fork/COW sweep gets the same pure-speedup guarantee:
    // whatever RAYON_NUM_THREADS is pinned to, results must match the
    // single-threaded reference byte for byte, run after run.
    use sm_bench::interference;
    let seeds = [2u64];
    let split = Protection::SplitMem(ResponseMode::Break);
    let tlb = TlbPreset::default();
    let render = |combos: &[interference::InterferenceCombo]| -> Vec<String> {
        combos.iter().map(|c| format!("{c:?}")).collect()
    };
    let serial = render(&interference::sweep_interference_serial_on(
        &seeds, &split, tlb, false,
    ));
    let parallel = render(&interference::sweep_interference_on(
        &seeds, &split, tlb, false,
    ));
    assert_eq!(serial, parallel);
    let again = render(&interference::sweep_interference_on(
        &seeds, &split, tlb, false,
    ));
    assert_eq!(parallel, again);
    assert_eq!(
        parallel.len(),
        seeds.len() * chaos::perturbation_plans(2).len()
    );
}

#[test]
fn parallel_oom_sweep_is_deterministic_across_runs() {
    let seeds = [1u64, 2];
    let combined = Protection::Combined(ResponseMode::Break);
    let tlb = TlbPreset::default();
    let first = lines(&chaos::sweep_oom_on(&seeds, &scenarios(), &combined, tlb));
    let second = lines(&chaos::sweep_oom_on(&seeds, &scenarios(), &combined, tlb));
    assert_eq!(first, second);
    for r in chaos::sweep_oom_on(&seeds, &scenarios(), &combined, tlb) {
        assert!(
            !r.run.attack_succeeded,
            "attack succeeded under OOM: {} {} seed={}",
            r.scenario, r.plan, r.seed
        );
    }
}
