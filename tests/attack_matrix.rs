//! Engine × attack matrix pinned end-to-end: every protection tier against
//! every attack in the corpus (five Table 2 injection scenarios plus the
//! code-reuse gallery).
//!
//! This is the PR's acceptance matrix as one test: ROP and ret2libc
//! *succeed* under split memory and NX alone — the paper's §7 negative
//! result held as a regression — while the shadow-stack/CFI engine detects
//! them standalone and stacked, and every injection attack stays foiled
//! under the paper's engines.

use sm_bench::matrix::{self, Attack};
use sm_kernel::events::ResponseMode;

#[test]
fn matrix_matches_pinned_expectations() {
    let m = matrix::run();
    let violations = m.violations();
    assert!(
        violations.is_empty(),
        "engine x attack matrix diverged:\n{}",
        violations.join("\n")
    );
    // Shape: every (attack, engine) pair has exactly one cell.
    assert_eq!(m.cells.len(), Attack::all().len() * m.engines.len());
    // The render carries one row per attack plus the header rule lines.
    let table = matrix::render(&m);
    for a in Attack::all() {
        assert!(table.contains(&a.name()), "row {} missing", a.name());
    }
}

#[test]
fn matrix_engine_columns_are_distinct_tiers() {
    use sm_attacks::harness::Protection;
    let engines = matrix::engines();
    assert_eq!(engines.len(), 6);
    let labels: Vec<String> = engines.iter().map(Protection::label).collect();
    let mut dedup = labels.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(
        dedup.len(),
        labels.len(),
        "duplicate engine column: {labels:?}"
    );
    let shadow = Protection::ShadowStack(ResponseMode::Break).label();
    let stacked = Protection::ShadowCombined(ResponseMode::Break).label();
    assert!(labels.contains(&shadow), "missing column {shadow}");
    assert!(labels.contains(&stacked), "missing column {stacked}");
}
