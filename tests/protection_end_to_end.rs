//! End-to-end protection tests across crates: real guest programs, real
//! exploits, every protection engine.

use sm_attacks::harness::{kernel_with, Protection};
use sm_attacks::real_world::{run_scenario, run_scenario_on, Scenario};
use sm_attacks::wilander::{self, Technique};
use sm_attacks::AttackOutcome;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::KernelConfig;
use sm_machine::TlbPreset;

#[test]
fn wilander_grid_matches_table_1() {
    let table = sm_bench::table1::run();
    assert_eq!(table.not_applicable(), 4, "paper reports four N/A cells");
    assert_eq!(table.foiled(), 20);
    assert!(table.matches_paper());
}

#[test]
fn every_scenario_matches_table_2_under_split_memory() {
    for scenario in Scenario::ALL {
        let base = run_scenario(scenario, &Protection::Unprotected);
        assert_eq!(
            base.outcome,
            AttackOutcome::ShellSpawned,
            "{}: no shell on the unpatched kernel",
            scenario.name()
        );
        let prot = run_scenario(scenario, &Protection::SplitMem(ResponseMode::Break));
        assert_eq!(
            prot.outcome,
            AttackOutcome::Foiled { detected: true },
            "{}: not foiled under split memory",
            scenario.name()
        );
    }
}

/// Table 1 verdicts are TLB-geometry-independent: every applicable cell
/// that succeeds unprotected is still foiled by split memory when the
/// TLBs are the paper testbed's set-associative Pentium III geometry —
/// set conflicts change miss timing, never whether the fetch check runs.
#[test]
fn wilander_verdicts_hold_on_the_pentium3_geometry() {
    let p3 = TlbPreset::pentium3();
    for case in wilander::all_cases() {
        let Some(base) = wilander::run_case_on(case, &Protection::Unprotected, p3) else {
            continue;
        };
        assert!(
            base.succeeded(),
            "{case:?}: unprotected attack no longer lands on pentium3 TLBs"
        );
        let prot = wilander::run_case_on(case, &Protection::SplitMem(ResponseMode::Break), p3)
            .expect("applicable");
        assert_eq!(
            prot,
            AttackOutcome::Foiled { detected: true },
            "{case:?}: not foiled under split memory on pentium3 TLBs"
        );
    }
}

/// Table 2 / Fig. 5 verdicts likewise: every real-world scenario shells
/// the unprotected kernel and is foiled under split memory on the
/// Pentium III geometry.
#[test]
fn real_world_verdicts_hold_on_the_pentium3_geometry() {
    let p3 = TlbPreset::pentium3();
    for scenario in Scenario::ALL {
        let base = run_scenario_on(scenario, &Protection::Unprotected, p3);
        assert_eq!(
            base.outcome,
            AttackOutcome::ShellSpawned,
            "{}: no shell on the unpatched kernel (pentium3 TLBs)",
            scenario.name()
        );
        let prot = run_scenario_on(scenario, &Protection::SplitMem(ResponseMode::Break), p3);
        assert_eq!(
            prot.outcome,
            AttackOutcome::Foiled { detected: true },
            "{}: not foiled under split memory (pentium3 TLBs)",
            scenario.name()
        );
    }
}

#[test]
fn combined_mode_also_foils_the_scenarios() {
    // NX covers the clean pages, split memory the mixed ones; every attack
    // injects into NX-covered data pages here, so the combined engine
    // still stops all five.
    for scenario in [Scenario::ApacheSsl, Scenario::WuFtpdGlob] {
        let prot = run_scenario(scenario, &Protection::Combined(ResponseMode::Break));
        assert!(
            !prot.outcome.succeeded(),
            "{}: succeeded under combined mode",
            scenario.name()
        );
    }
}

#[test]
fn nx_alone_foils_plain_injection_scenarios() {
    let prot = run_scenario(Scenario::BindTsig, &Protection::Nx);
    assert!(!prot.outcome.succeeded());
    assert!(prot.detections > 0, "NX logs the blocked fetch");
}

#[test]
fn brute_forced_samba_needs_multiple_attempts() {
    // The ASLR fight: the paper notes the exploit can take "a fairly long
    // time" guessing; ours is helped (like theirs) but still retries.
    let base = run_scenario(Scenario::SambaTrans2, &Protection::Unprotected);
    assert_eq!(base.outcome, AttackOutcome::ShellSpawned);
    assert!(
        base.attempts >= 2,
        "stack ASLR should defeat the first guess (got {} attempts)",
        base.attempts
    );
}

#[test]
fn interactive_shell_transcripts_look_like_the_papers() {
    let report = run_scenario(Scenario::ApacheSsl, &Protection::Unprotected);
    let t = report.transcript.expect("shell transcript");
    assert!(t.contains("uid=0(root)"), "{t}");
    assert!(t.contains("root"), "{t}");
}

#[test]
fn observe_mode_preserves_every_wilander_attack_outcome() {
    // Observe mode detects, then the attack result matches the
    // unprotected run — spot-check a couple of cells.
    for case in wilander::all_cases()
        .into_iter()
        .filter(|c| c.applicable() && c.technique == Technique::ReturnAddress)
    {
        let observed = wilander::run_case(case, &Protection::SplitMem(ResponseMode::Observe))
            .expect("applicable");
        assert!(
            observed.succeeded(),
            "{case:?}: observe mode should let the attack proceed"
        );
    }
}

#[test]
fn aslr_alone_defeats_fixed_address_attacks() {
    // Complementary defence (paper §7): a payload that jumps to a
    // *hardcoded* stack address — correct for the deterministic layout —
    // misses once the kernel randomises stack placement.
    use sm_attacks::shellcode;
    use sm_kernel::userlib::ProgramBuilder;

    let build = |target: u32| {
        let payload = shellcode::exit_code(42);
        ProgramBuilder::new("/bin/fixed")
            .code(&format!(
                "_start:
                    sub esp, 64
                    mov edi, esp
                    mov esi, payload
                    mov ecx, {len}
                    call memcpy
                    mov eax, {target}
                    jmp eax",
                len = payload.len(),
            ))
            .data(&format!(
                "payload: {}",
                shellcode::as_byte_directive(&payload)
            ))
            .build()
            .unwrap()
    };
    // Learn the buffer address on the deterministic system.
    let deterministic = KernelConfig {
        aslr_stack: false,
        ..KernelConfig::default()
    };
    let probe = kernel_with(&Protection::Unprotected, deterministic);
    let top = probe.sys.config.stack_top;
    let buffer = top - 16 - 64; // esp0 - sub
    let prog = build(buffer);

    // Sanity: without ASLR the hardcoded address works.
    let mut k = kernel_with(&Protection::Unprotected, deterministic);
    let pid = k.spawn(&prog.image).unwrap();
    k.run(20_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(42));

    // With ASLR on, the same binary misses.
    let mut k = kernel_with(
        &Protection::Unprotected,
        KernelConfig {
            aslr_stack: true,
            seed: 99,
            ..KernelConfig::default()
        },
    );
    let pid = k.spawn(&prog.image).unwrap();
    k.run(20_000_000);
    assert_ne!(
        k.sys.proc(pid).exit_code,
        Some(42),
        "hardcoded-address exploit should miss a randomised stack"
    );
}
