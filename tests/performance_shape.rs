//! Performance-shape tests: the paper's qualitative claims must hold on
//! every run (absolute numbers are testbed-specific; shapes are not).

use sm_bench::fig6::{self, Fig6Params};
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;
use sm_workloads::nbench::{run_nbench, NbenchKernel};
use sm_workloads::unixbench::{run_unixbench, UnixbenchTest};
use sm_workloads::{httpd, normalized};

#[test]
fn fig6_ordering_holds() {
    // nbench (compute) ≥ apache-32k ≈ gzip ≥ unixbench index, and
    // everything lands in the paper's "reasonable" band.
    let bars = fig6::run(Fig6Params::quick());
    let get = |name: &str| {
        bars.iter()
            .find(|b| b.name.contains(name))
            .unwrap_or_else(|| panic!("missing bar {name}"))
            .normalized
    };
    let nbench = get("nbench");
    let apache = get("apache");
    let unixbench = get("unixbench");
    assert!(nbench > 0.9, "compute suite too slow: {nbench}");
    assert!(
        nbench >= apache && apache >= unixbench,
        "ordering violated: nbench {nbench:.3} apache {apache:.3} unixbench {unixbench:.3}"
    );
    for b in &bars {
        assert!(
            b.normalized > 0.4 && b.normalized <= 1.02,
            "{} out of band: {:.3}",
            b.name,
            b.normalized
        );
    }
}

#[test]
fn fig7_stress_tests_are_at_or_below_the_mid_fifties() {
    // Paper: "both are at or below 50 percent". Allow a little slack on
    // the quick configuration.
    for bar in sm_bench::fig7::run(30) {
        assert!(
            bar.normalized < 0.56,
            "{} not stressed enough: {:.3}",
            bar.name,
            bar.normalized
        );
    }
}

#[test]
fn fig8_curve_rises_monotonically_modulo_noise() {
    let points = sm_bench::fig8::run(15);
    assert_eq!(points.len(), sm_bench::fig8::PAGE_SIZES.len());
    // Endpoints: heavy hit at 1KB, mild at 64KB.
    assert!(points.first().unwrap().normalized < 0.6);
    assert!(points.last().unwrap().normalized > 0.85);
    // Monotone within a small tolerance.
    for w in points.windows(2) {
        assert!(
            w[1].normalized >= w[0].normalized - 0.05,
            "curve dipped: {}KB {:.3} -> {}KB {:.3}",
            w[0].page_size / 1024,
            w[0].normalized,
            w[1].page_size / 1024,
            w[1].normalized
        );
    }
}

#[test]
fn fig9_endpoints_match_the_papers_claim() {
    let points = sm_bench::fig9::run(30, 4);
    let at = |f: f64| {
        points
            .iter()
            .find(|p| (p.fraction - f).abs() < 1e-9)
            .unwrap()
            .normalized
    };
    // Splitting nothing costs nothing.
    assert!(at(0.0) > 0.97, "0%: {:.3}", at(0.0));
    // A small fraction recovers most of the performance...
    assert!(at(0.10) > 0.8, "10%: {:.3}", at(0.10));
    // ...while all-split matches the stand-alone worst case.
    assert!(at(1.0) < 0.6, "100%: {:.3}", at(1.0));
    // And the curve never goes the wrong way by much.
    for w in points.windows(2) {
        assert!(
            w[1].normalized <= w[0].normalized + 0.05,
            "fraction sweep rose: {:?}",
            points
        );
    }
}

/// The paper ran on set-associative Pentium III TLBs; the figures'
/// qualitative shapes must survive the move from the fully-associative
/// compat preset to that geometry.
#[test]
fn fig6_ordering_holds_on_the_pentium3_geometry() {
    let bars = fig6::run(Fig6Params::quick().on(TlbPreset::pentium3()));
    let get = |name: &str| {
        bars.iter()
            .find(|b| b.name.contains(name))
            .unwrap_or_else(|| panic!("missing bar {name}"))
            .normalized
    };
    let nbench = get("nbench");
    let apache = get("apache");
    let unixbench = get("unixbench");
    assert!(nbench > 0.9, "compute suite too slow: {nbench}");
    assert!(
        nbench >= apache && apache >= unixbench,
        "ordering violated: nbench {nbench:.3} apache {apache:.3} unixbench {unixbench:.3}"
    );
    for b in &bars {
        assert!(
            b.normalized > 0.4 && b.normalized <= 1.02,
            "{} out of band: {:.3}",
            b.name,
            b.normalized
        );
    }
}

#[test]
fn fig7_stress_bound_holds_on_the_pentium3_geometry() {
    for bar in sm_bench::fig7::run_on(TlbPreset::pentium3(), 30) {
        assert!(
            bar.normalized < 0.56,
            "{} not stressed enough: {:.3}",
            bar.name,
            bar.normalized
        );
    }
}

/// 3C accounting under the Fig-7 stress diagnostics: the set-associative
/// Pentium III D-TLB shows genuine conflict misses (the strided probe
/// thrashes one set), while the single-set compat preset — where set
/// pressure is structurally impossible — reports exactly zero.
#[test]
fn fig7_diagnostics_show_conflict_misses_only_when_sets_exist() {
    let p3 = sm_bench::fig7::tlb_diagnostics(TlbPreset::pentium3(), 30);
    assert!(
        p3.iter().any(|d| d.dtlb.conflict_misses > 0),
        "no D-TLB conflict misses anywhere on pentium3: {p3:?}"
    );
    let flat = sm_bench::fig7::tlb_diagnostics(TlbPreset::default(), 30);
    for d in &flat {
        assert_eq!(
            d.itlb.conflict_misses + d.dtlb.conflict_misses,
            0,
            "{}: conflict misses on a fully-associative TLB",
            d.name
        );
    }
}

#[test]
fn fig8_curve_shape_holds_on_the_pentium3_geometry() {
    let points = sm_bench::fig8::run_on(TlbPreset::pentium3(), 15);
    assert!(points.first().unwrap().normalized < 0.6);
    assert!(points.last().unwrap().normalized > 0.85);
    for w in points.windows(2) {
        assert!(
            w[1].normalized >= w[0].normalized - 0.05,
            "curve dipped: {}KB {:.3} -> {}KB {:.3}",
            w[0].page_size / 1024,
            w[0].normalized,
            w[1].page_size / 1024,
            w[1].normalized
        );
    }
}

#[test]
fn fig9_endpoints_hold_on_the_pentium3_geometry() {
    let points = sm_bench::fig9::run_on(TlbPreset::pentium3(), 30, 4);
    let at = |f: f64| {
        points
            .iter()
            .find(|p| (p.fraction - f).abs() < 1e-9)
            .unwrap()
            .normalized
    };
    assert!(at(0.0) > 0.97, "0%: {:.3}", at(0.0));
    assert!(at(0.10) > 0.8, "10%: {:.3}", at(0.10));
    assert!(at(1.0) < 0.6, "100%: {:.3}", at(1.0));
}

#[test]
fn context_switch_overhead_is_the_dominant_mechanism() {
    // §4.6: "The problem of context switches is, in fact, the greatest
    // cause of overhead." Compare a switch-free compute run against the
    // switch-heavy stress test at equal protection.
    let base_c = run_nbench(&Protection::Unprotected, NbenchKernel::NumericSort, 20);
    let prot_c = run_nbench(
        &Protection::SplitMem(ResponseMode::Break),
        NbenchKernel::NumericSort,
        20,
    );
    let compute = normalized(&prot_c, &base_c);
    let base_s = run_unixbench(
        &Protection::Unprotected,
        UnixbenchTest::PipeContextSwitch,
        25,
    );
    let prot_s = run_unixbench(
        &Protection::SplitMem(ResponseMode::Break),
        UnixbenchTest::PipeContextSwitch,
        25,
    );
    let stressed = normalized(&prot_s, &base_s);
    assert!(
        compute - stressed > 0.3,
        "switch-free {compute:.3} vs switch-heavy {stressed:.3}"
    );
}

#[test]
fn split_memory_roughly_doubles_resident_memory() {
    // §5.1: "the memory usage of an application is effectively doubled."
    let base = httpd::run_httpd(&Protection::Unprotected, 4096, 5);
    let split = httpd::run_httpd(&Protection::SplitMem(ResponseMode::Break), 4096, 5);
    let ratio = split.peak_frames as f64 / base.peak_frames as f64;
    assert!(
        (1.5..=2.5).contains(&ratio),
        "peak frames {} vs {} (ratio {ratio:.2})",
        split.peak_frames,
        base.peak_frames
    );
}

#[test]
fn ablation_planted_ret_is_slower_than_single_step() {
    // §4.2.4: the rejected loader "actually decreased the system's
    // efficiency".
    let ab = sm_bench::ablation::itlb_loader(25);
    assert!(
        ab.planted_ret < ab.single_step,
        "planted-ret {:.3} should be slower than single-step {:.3}",
        ab.planted_ret,
        ab.single_step
    );
}

#[test]
fn trap_cost_sensitivity_is_monotone() {
    let sens = sm_bench::ablation::trap_cost_sensitivity(25);
    for w in sens.windows(2) {
        assert!(
            w[1].normalized < w[0].normalized,
            "costlier traps must hurt more: {sens:?}"
        );
    }
}

#[test]
fn lazy_code_frames_cut_memory_without_perf_impact() {
    // §5.1: "We would anticipate this optimization to not have any
    // noticeable impact on performance."
    let rows = sm_bench::memory::run(4096, 10);
    let eager = &rows[1];
    let lazy = &rows[2];
    assert!(
        lazy.memory_ratio < eager.memory_ratio - 0.3,
        "lazy {:.2}x should be well below eager {:.2}x",
        lazy.memory_ratio,
        eager.memory_ratio
    );
    assert!(
        (lazy.normalized_perf - eager.normalized_perf).abs() < 0.03,
        "perf must be unaffected: lazy {:.3} vs eager {:.3}",
        lazy.normalized_perf,
        eager.normalized_perf
    );
}

#[test]
fn lazy_mode_still_foils_injection() {
    use sm_core::engine::{SplitMemConfig, SplitMemEngine};
    use sm_kernel::userlib::ProgramBuilder;
    use sm_kernel::Kernel;

    let prog = ProgramBuilder::new("/bin/victim")
        .code(
            "_start:
                sub esp, 64
                mov edi, esp
                mov esi, payload
                mov ecx, 12
                call memcpy
                mov eax, esp
                jmp eax",
        )
        .data("payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80")
        .build()
        .unwrap();
    let cfg = SplitMemConfig {
        lazy_code_frames: true,
        ..SplitMemConfig::default()
    };
    let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(cfg)));
    let pid = k.spawn(&prog.image).unwrap();
    k.run(20_000_000);
    assert_ne!(k.sys.proc(pid).exit_code, Some(42));
    assert!(k.sys.events.first_detection().is_some());
    // The detection required materialising the stack page's code half.
    let engine = k.engine.as_any().downcast_ref::<SplitMemEngine>().unwrap();
    assert!(engine.stats.lazy_materializations > 0);
}
