//! Trace-subsystem integration tests.
//!
//! * **Golden trace** — the canonical Wilander cell under split/break
//!   produces *exactly* the Algorithm 1/2 event sequence the paper
//!   describes, byte-identical across repeated runs (teardown order,
//!   frame numbers and stamps are all deterministic), and the trace-order
//!   checker finds nothing to complain about.
//! * **Observational transparency** — enabling the tracer changes
//!   nothing about the simulation: cycles, machine counters, kernel
//!   counters, verdicts and event-log stamps are identical trace-on vs
//!   trace-off, for arbitrary fault plans (proptest).
//! * **Unified clock** — kernel `Event` stamps and `TraceEvent` stamps
//!   both ride `machine.cycles`: each stream is monotonic, and their
//!   merge is consistent.
//! * **Saturating stats deltas** — `since` on machine/kernel/TLB stats
//!   never underflows, even with a baseline from a later (or different)
//!   snapshot, and chaos-slice diffs across fork/exit stay sane.

use proptest::prelude::*;
use sm_attacks::harness::{classify_marker, kernel_with_on};
use sm_attacks::wilander::{self, InjectLocation, Technique, MARKER};
use sm_bench::chaos::{self, Scenario};
use sm_core::invariants;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::stats::KernelStats;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::chaos::FaultPlan;
use sm_machine::stats::MachineStats;
use sm_machine::tlb::TlbStats;
use sm_machine::trace::{check_order, mask};
use sm_machine::TlbPreset;

fn split_break() -> Protection {
    Protection::SplitMem(ResponseMode::Break)
}

fn canonical_case() -> wilander::Case {
    wilander::Case {
        technique: Technique::ReturnAddress,
        location: InjectLocation::Stack,
    }
}

/// Run one Wilander cell to completion with the given trace mask and
/// fault plan, returning everything an equivalence check needs.
fn run_case(plan: FaultPlan, trace: u32) -> (Kernel, String) {
    let built = wilander::build_case(canonical_case()).expect("case applies");
    let mut k = kernel_with_on(
        &split_break(),
        TlbPreset::default(),
        KernelConfig {
            aslr_stack: false,
            chaos: plan,
            trace,
            ..KernelConfig::default()
        },
    );
    let pid = k.spawn(&built.image).expect("spawn");
    let exit = k.run(80_000_000);
    assert_eq!(exit, RunExit::AllExited, "case must converge: {exit:?}");
    let verdict = format!("{:?}", classify_marker(&k, pid, MARKER));
    (k, verdict)
}

/// The exact event sequence of Algorithm 1 (I-TLB load via single-step,
/// D-TLB load via pagetable walk), Algorithm 2 (debug trap re-restricts)
/// and Algorithm 3 (#UD on filler → detection → teardown) for the
/// ReturnAddress/Stack cell under break mode. Loader page-splits first,
/// then the scheduler switches in; the injected fetch on the stack page
/// ends in `step_disarm(detection)` + `detection` + ordered teardown.
const GOLDEN_KINDS: &[&str] = &[
    "tlb_flush",      // invlpg: code page split by the loader
    "page_split",     //
    "tlb_flush",      // invlpg: data page split
    "page_split",     //
    "tlb_flush",      // invlpg: stack page split
    "page_split",     //
    "sched_switch",   // first dispatch
    "tlb_flush",      // CR3 load
    "page_fault",     // entry-point fetch, verdict=instruction
    "pte_unrestrict", // Algorithm 1: reload=code
    "step_arm",       //
    "tlb_fill",       // i-TLB gets the code frame
    "page_fault",     // the armed instruction's own store, verdict=data
    "pte_unrestrict", // nested D-TLB walk reload
    "tlb_fill",       // d-TLB gets the data frame
    "pte_restrict",   //
    "step_fire",      // Algorithm 2: window closes
    "pte_restrict",   //
    "page_fault",     // overflow writes reach the data page
    "pte_unrestrict", //
    "tlb_fill",       //
    "pte_restrict",   //
    "page_fault",     // injected fetch on the stack page: verdict=instruction
    "pte_unrestrict", //
    "step_arm",       //
    "tlb_fill",       // i-TLB gets the *filler* code frame
    "step_disarm",    // Algorithm 3: #UD pre-empts the armed window
    "pte_restrict",   //
    "detection",      // break mode logs and terminates
    "page_unsplit",   // teardown releases split pages in vpn order
    "page_unsplit",   //
    "page_unsplit",   //
    "process_exit",   //
];

#[test]
fn golden_trace_matches_algorithm_sequence() {
    let (k, verdict) = run_case(FaultPlan::default(), mask::ALL);
    assert!(
        verdict.contains("Foiled"),
        "attack must be foiled: {verdict}"
    );
    let records = k.sys.machine.tracer.snapshot();
    let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
    assert_eq!(kinds, GOLDEN_KINDS, "event sequence diverged from golden");
    assert!(
        !k.sys.machine.tracer.truncated(),
        "canonical run must fit the ring"
    );
    let violations = check_order(&records, false, true);
    assert!(
        violations.is_empty(),
        "trace order violations: {violations:?}"
    );
}

/// Golden trace for a *code-reuse* detection: the ROP chain under the
/// shadow-stack engine produces a DETECT record (with the victim pid)
/// followed by process exits — and none of the split-memory machinery
/// (no page splits, no PTE restricts: nothing was injected, so the
/// paper's engines have nothing to trace). Byte-identical across runs.
#[test]
fn golden_rop_detection_trace() {
    use sm_attacks::code_reuse;
    let shadow = Protection::ShadowStack(ResponseMode::Break);
    let run = || code_reuse::run_rop_traced(&shadow, mask::DETECT | mask::PTE | mask::PROC);
    let (report, jsonl) = run();
    assert!(
        matches!(report.outcome, sm_attacks::AttackOutcome::Foiled { .. }),
        "shadow stack must foil the chain: {:?}",
        report.outcome
    );
    assert!(report.detections > 0, "detection must be logged");
    let kinds: Vec<&str> = jsonl
        .lines()
        .filter_map(|l| l.split("\"kind\":\"").nth(1))
        .filter_map(|s| s.split('"').next())
        .collect();
    assert!(
        kinds.contains(&"detection"),
        "trace must carry the DETECT record: {kinds:?}"
    );
    assert!(
        !kinds
            .iter()
            .any(|k| k.starts_with("page_") || k.starts_with("pte_")),
        "pure code reuse must not touch split-memory machinery: {kinds:?}"
    );
    let (_, jsonl2) = run();
    assert_eq!(jsonl, jsonl2, "detected-ROP trace must be byte-identical");
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    let (k1, _) = run_case(FaultPlan::default(), mask::ALL);
    let (k2, _) = run_case(FaultPlan::default(), mask::ALL);
    assert_eq!(
        k1.sys.machine.tracer.to_jsonl(),
        k2.sys.machine.tracer.to_jsonl(),
        "repeated traced runs must serialize byte-identically"
    );
}

#[test]
fn traced_chaos_rerun_matches_untraced_verdict() {
    let plan = chaos::plan_by_name("kitchen-sink", 3).expect("plan exists");
    let scenario = Scenario::Wilander(canonical_case());
    let untraced = chaos::run_scenario_on(scenario, &split_break(), TlbPreset::default(), plan);
    let (traced, jsonl) = chaos::run_scenario_traced_on(
        scenario,
        &split_break(),
        TlbPreset::default(),
        plan,
        mask::ALL,
    );
    assert_eq!(traced.verdict, untraced.verdict);
    assert!(
        jsonl.lines().count() > 0,
        "traced re-run must capture events"
    );
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL line malformed: {line}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tracing is purely observational: for arbitrary perturbation plans
    /// the traced run retires the same instructions, burns the same
    /// cycles, and logs the same kernel events as the untraced run.
    #[test]
    fn trace_on_is_trace_off(seed in 1u64..32, plan_idx in 0usize..7) {
        let plans = chaos::perturbation_plans(seed);
        let plan = plans[plan_idx % plans.len()].plan;
        let (k_off, v_off) = run_case(plan, 0);
        let (k_on, v_on) = run_case(plan, mask::ALL);
        prop_assert_eq!(v_off, v_on);
        prop_assert_eq!(k_off.sys.machine.cycles, k_on.sys.machine.cycles);
        prop_assert_eq!(
            format!("{:?}", k_off.sys.machine.stats),
            format!("{:?}", k_on.sys.machine.stats)
        );
        prop_assert_eq!(
            format!("{:?}", k_off.sys.stats),
            format!("{:?}", k_on.sys.stats)
        );
        prop_assert_eq!(
            format!("{:?}", k_off.sys.events.entries()),
            format!("{:?}", k_on.sys.events.entries())
        );
        prop_assert_eq!(k_off.sys.machine.tracer.emitted(), 0);
        prop_assert!(k_on.sys.machine.tracer.emitted() > 0);
    }
}

/// Fork-then-work guest used by the clock and stats-delta tests: the
/// child COW-breaks a shared page and exits; the parent reaps it and
/// spins a little before exiting.
fn forking_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/forker")
        .code(
            "_start:
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je child
                mov eax, SYS_WAITPID
                mov ebx, -1
                mov ecx, 0
                int 0x80
                mov ecx, 50
            spin:
                mov [v], ecx
                dec ecx
                jnz spin
                mov ebx, 0
                call exit
            child:
                mov dword [v], 7
                mov ebx, 0
                call exit",
        )
        .data("v: .word 1")
        .build()
        .unwrap()
}

/// Run the forking guest under a chaos-heavy plan with full tracing,
/// checking invariants (including trace order) between slices.
fn run_forker_traced() -> Kernel {
    let mut k = split_break().kernel(KernelConfig {
        aslr_stack: false,
        chaos: FaultPlan {
            seed: 5,
            flush_every: Some(101),
            evict_every: Some(17),
            preempt_every: Some(29),
            ..FaultPlan::default()
        },
        trace: mask::ALL,
        ..KernelConfig::default()
    });
    k.spawn(&forking_program().image).expect("spawn");
    let (exit, violations) = invariants::run_with_checks(&mut k, 80_000_000, 50_000);
    assert_eq!(exit, RunExit::AllExited, "forker must converge");
    assert!(violations.is_empty(), "violations: {violations:?}");
    k
}

#[test]
fn event_log_and_trace_share_one_monotonic_clock() {
    let k = run_forker_traced();
    // Kernel event log: stamps never regress (every emit site funnels
    // through `System::log`, stamped with the live cycle counter).
    let entries = k.sys.events.entries();
    assert!(entries.len() >= 2, "expected both process exits logged");
    for w in entries.windows(2) {
        assert!(
            w[0].0 <= w[1].0,
            "event log regressed: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    // Trace stream: stamps never regress and seq numbers are gap-free.
    let records = k.sys.machine.tracer.snapshot();
    assert!(records.len() > 10, "expected a busy trace");
    for w in records.windows(2) {
        assert!(w[0].cycles <= w[1].cycles, "trace regressed: {w:?}");
        assert_eq!(w[0].seq + 1, w[1].seq, "trace seq gap: {w:?}");
    }
    // The two streams agree on the clock: both fork (CowShare) and exit
    // (ProcessExit) appear in *both* streams at consistent stamps.
    let trace_exit_stamps: Vec<u64> = records
        .iter()
        .filter(|r| r.event.kind() == "process_exit")
        .map(|r| r.cycles)
        .collect();
    let log_exit_stamps: Vec<u64> = entries
        .iter()
        .filter(|(_, e)| matches!(e, sm_kernel::events::Event::ProcessExit { .. }))
        .map(|(c, _)| *c)
        .collect();
    assert_eq!(
        trace_exit_stamps, log_exit_stamps,
        "exit events must carry identical stamps in both streams"
    );
}

#[test]
fn stats_deltas_saturate_and_stay_sane_across_fork_exit() {
    // Direct saturation pin: a reversed diff yields zeros, not a panic
    // (debug) or ~2^64 garbage (release).
    let late = MachineStats {
        instructions: 100,
        walks: 5,
        ..MachineStats::default()
    };
    let early = MachineStats::default();
    assert_eq!(early.since(&late), MachineStats::default());
    let klate = KernelStats {
        syscalls: 9,
        cow_breaks: 2,
        ..KernelStats::default()
    };
    assert_eq!(KernelStats::default().since(&klate), KernelStats::default());
    let tlate = TlbStats {
        hits: 40,
        misses: 3,
        ..TlbStats::default()
    };
    assert_eq!(TlbStats::default().since(&tlate), TlbStats::default());

    // Chaos-slice check: diff stats across slices spanning fork, COW
    // break, child exit and parent exit; every delta must be bounded by
    // the totals (a wrap-around would dwarf them).
    let mut k = split_break().kernel(KernelConfig {
        aslr_stack: false,
        chaos: FaultPlan {
            seed: 7,
            preempt_every: Some(23),
            ..FaultPlan::default()
        },
        ..KernelConfig::default()
    });
    k.spawn(&forking_program().image).expect("spawn");
    let mut prev_m = k.sys.machine.stats;
    let mut prev_k = k.sys.stats;
    loop {
        let exit = k.run(20_000);
        let cur_m = k.sys.machine.stats;
        let cur_k = k.sys.stats;
        let dm = cur_m.since(&prev_m);
        let dk = cur_k.since(&prev_k);
        assert!(
            dm.instructions <= cur_m.instructions && dm.page_faults <= cur_m.page_faults,
            "machine delta exceeds totals: {dm:?} vs {cur_m:?}"
        );
        assert!(
            dk.syscalls <= cur_k.syscalls && dk.cow_breaks <= cur_k.cow_breaks,
            "kernel delta exceeds totals: {dk:?} vs {cur_k:?}"
        );
        prev_m = cur_m;
        prev_k = cur_k;
        if exit != RunExit::CyclesExhausted {
            assert_eq!(exit, RunExit::AllExited);
            break;
        }
    }
    assert!(k.sys.stats.cow_breaks >= 1, "child must COW-break");
    assert!(k.sys.stats.processes_spawned >= 1, "fork must spawn");
}
