//! System-level decode-cache coherence: the per-frame write-generation
//! protocol must interact correctly with split-memory semantics.
//!
//! Under split memory, a "self-modifying" store is redirected to the
//! *data* frame while fetches (and thus cached decodes) read the *code*
//! frame — so a data-frame attack run must complete with **zero**
//! decode-cache invalidations. On an unprotected kernel the same store
//! lands on the single backing frame, and the very next fetch of the
//! patched site must observe a fresh decode (≥ 1 invalidation).

use sm_attacks::harness::{classify_marker, kernel_with, AttackOutcome};
use sm_attacks::wilander::{self, Case, InjectLocation, Technique, MARKER};
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::userlib::ProgramBuilder;

fn kernel(protection: &Protection) -> Kernel {
    kernel_with(
        protection,
        KernelConfig {
            aslr_stack: false,
            ..KernelConfig::default()
        },
    )
}

/// A mixed-segment program that patches the immediate of its own
/// `mov ebx, 9` to 7: the exit code tells us which bytes were *fetched*,
/// the decode-cache counters tell us whether the patch reached the frame
/// that decodes are cached against.
fn self_patcher() -> sm_kernel::image::ExecImage {
    ProgramBuilder::new("/bin/patch")
        .mixed_segment()
        .code(
            "_start:
                nop
                mov byte [patchsite+1], 7
            patchsite:
                mov ebx, 9
                call exit",
        )
        .build()
        .expect("self-patcher assembles")
        .image
}

#[test]
fn unprotected_self_patch_invalidates_and_executes_fresh_bytes() {
    let mut k = kernel(&Protection::Unprotected);
    let pid = k.spawn(&self_patcher()).unwrap();
    assert_eq!(k.run(80_000_000), RunExit::AllExited);
    // The store hit the one backing frame: the patched immediate must be
    // what executes...
    assert_eq!(k.sys.procs.get(&pid.0).and_then(|p| p.exit_code), Some(7));
    // ...which is only possible if the stale cached decode was discarded.
    let stats = k.sys.machine.decode_cache.stats;
    assert!(
        stats.invalidations >= 1,
        "patched frame must invalidate its decodes: {stats:?}"
    );
}

#[test]
fn split_memory_self_patch_keeps_code_frame_decodes_valid() {
    let mut k = kernel(&Protection::SplitMem(ResponseMode::Break));
    let pid = k.spawn(&self_patcher()).unwrap();
    assert_eq!(k.run(80_000_000), RunExit::AllExited);
    // Split memory silently diverts the store to the data frame (paper
    // §7): the original immediate keeps executing...
    assert_eq!(k.sys.procs.get(&pid.0).and_then(|p| p.exit_code), Some(9));
    // ...and no frame holding cached decodes is ever written, so the run
    // completes without a single invalidation while still hitting.
    let stats = k.sys.machine.decode_cache.stats;
    assert_eq!(
        stats.invalidations, 0,
        "data-frame store must not touch code-frame decodes: {stats:?}"
    );
    assert!(stats.hits > 0, "hot fetch path should hit: {stats:?}");
}

#[test]
fn split_memory_code_injection_attack_never_invalidates_code_frames() {
    // A classic stack-smash that injects code via data writes: under split
    // memory every attacker store lands on data frames, so the decode
    // cache must ride through the whole attack without one invalidation.
    let case = Case {
        technique: Technique::ReturnAddress,
        location: InjectLocation::Stack,
    };
    let image = wilander::build_case(case).expect("applicable").image;
    let mut k = kernel(&Protection::SplitMem(ResponseMode::Break));
    let pid = k.spawn(&image).unwrap();
    k.run(80_000_000);
    let outcome = classify_marker(&k, pid, MARKER);
    assert!(
        matches!(outcome, AttackOutcome::Foiled { .. }),
        "split memory must foil the attack: {outcome:?}"
    );
    let stats = k.sys.machine.decode_cache.stats;
    assert_eq!(
        stats.invalidations, 0,
        "attack writes are data-frame writes: {stats:?}"
    );
    assert!(stats.hits > 0, "{stats:?}");
}
