//! System-level invariants: determinism, frame accounting, TLB-coherence
//! corner cases, and property-based checks over randomized guest inputs.

use proptest::prelude::*;
use sm_attacks::shellcode;
use sm_core::engine::{SplitMemConfig, SplitMemEngine};
use sm_core::setup::Protection;
use sm_kernel::engine::NullEngine;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::MachineConfig;

fn echo_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/echo")
        .code(
            "_start:
                mov ebx, 0
                mov edi, buf
                mov edx, 128
                call read_line
                mov esi, buf
                call print
                mov ebx, 0
                call exit",
        )
        .data("buf: .space 128")
        .build()
        .unwrap()
}

#[test]
fn identical_runs_are_cycle_exact() {
    // The whole simulator is deterministic: same program, same seed, same
    // engine → identical cycle counts and event logs.
    let run = || {
        let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())));
        let pid = k.spawn(&echo_program().image).unwrap();
        k.sys.proc_mut(pid).input = b"determinism\n".to_vec();
        assert_eq!(k.run(50_000_000), RunExit::AllExited);
        (
            k.sys.machine.cycles,
            k.sys.events.len(),
            k.sys.proc(pid).output_string(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn no_frames_leak_across_any_engine() {
    for protection in [
        Protection::Unprotected,
        Protection::SplitMem(ResponseMode::Break),
        Protection::SplitMem(ResponseMode::Observe),
        Protection::Nx,
        Protection::Combined(ResponseMode::Break),
    ] {
        let mut k = protection.kernel(KernelConfig::default());
        let free0 = k.sys.machine.phys.allocator.free_count();
        let pid = k.spawn(&echo_program().image).unwrap();
        k.sys.proc_mut(pid).input = b"x\n".to_vec();
        k.run(50_000_000);
        k.sys.procs.remove(&pid.0); // reap
        assert_eq!(
            k.sys.machine.phys.allocator.free_count(),
            free0,
            "frames leaked under {}",
            protection.label()
        );
    }
}

#[test]
fn fork_bomb_of_split_processes_balances_frames() {
    let prog = ProgramBuilder::new("/bin/forker")
        .code(
            "_start:
                mov ecx, 5
            f_loop:
                push ecx
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je child
                mov eax, SYS_WAITPID
                mov ebx, -1
                mov ecx, 0
                int 0x80
                pop ecx
                dec ecx
                jnz f_loop
                mov ebx, 0
                call exit
            child:
                mov dword [v], 7   ; force a COW break on a split page
                mov ebx, 0
                call exit",
        )
        .data("v: .word 1")
        .build()
        .unwrap();
    let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())));
    let free0 = k.sys.machine.phys.allocator.free_count();
    let pid = k.spawn(&prog.image).unwrap();
    assert_eq!(k.run(200_000_000), RunExit::AllExited);
    assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    k.sys.procs.remove(&pid.0);
    assert_eq!(k.sys.machine.phys.allocator.free_count(), free0);
}

#[test]
fn tlb_snapshot_survives_pte_restriction() {
    // The microarchitectural heart of the paper, asserted directly: after
    // a split-memory data reload, the D-TLB serves user accesses even
    // though the PTE is supervisor-restricted again.
    let prog = ProgramBuilder::new("/bin/touch")
        .code(
            "_start:
                mov eax, [v]      ; first touch: fault + D-TLB reload
                mov ecx, [v]      ; second touch: served by the stale TLB entry
                add eax, ecx
                mov ebx, eax
                call exit",
        )
        .data("v: .word 21")
        .build()
        .unwrap();
    let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())));
    let pid = k.spawn(&prog.image).unwrap();
    let data_page = prog.sym("v") & !0xFFF;
    k.run(20_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(42));
    // The engine recorded exactly one data reload for that page even
    // though it was read twice.
    let engine = k.engine.as_any().downcast_ref::<SplitMemEngine>().unwrap();
    assert!(engine.stats.data_reloads >= 1);
    let _ = data_page;
}

#[test]
fn nx_and_split_disagree_only_on_mixed_pages() {
    // Same attack program, two engines, one difference: the page kind.
    let clean = |name: &str| {
        ProgramBuilder::new(name)
            .code(
                "_start:
                    mov edi, buf
                    mov esi, payload
                    mov ecx, 12
                    call memcpy
                    mov eax, buf
                    jmp eax",
            )
            .data(
                "payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80
                 buf: .space 16",
            )
            .build()
            .unwrap()
    };
    // NX stops the clean-page injection.
    let mut k = Kernel::new(
        MachineConfig {
            nx_enabled: true,
            ..MachineConfig::default()
        },
        KernelConfig::default(),
        Box::new(sm_core::nx::NxEngine::new()),
    );
    let pid = k.spawn(&clean("/bin/a").image).unwrap();
    k.run(20_000_000);
    assert_ne!(k.sys.proc(pid).exit_code, Some(42));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any line of input fed to the echo guest comes back verbatim under
    /// split memory — kernel copies and split-page reloads never corrupt
    /// user data.
    #[test]
    fn echo_is_faithful_under_split_memory(
        line in proptest::collection::vec(32u8..=126, 0..100)
    ) {
        let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())));
        let pid = k.spawn(&echo_program().image).unwrap();
        let mut input = line.clone();
        input.push(b'\n');
        k.sys.proc_mut(pid).input = input;
        prop_assert_eq!(k.run(50_000_000), RunExit::AllExited);
        prop_assert_eq!(k.sys.proc(pid).output.clone(), line);
    }

    /// Whatever bytes an attacker injects, split memory in break mode
    /// never lets them run: the victim either exits via SIGILL/SIGSEGV or
    /// (if the payload happens to be harmless) never reaches exit(42).
    #[test]
    fn arbitrary_payloads_never_execute(payload in proptest::collection::vec(any::<u8>(), 1..48)) {
        let mut full = payload.clone();
        // Terminate the payload with the marker so that *if* it ran to
        // completion it would exit 42.
        full.extend_from_slice(&shellcode::exit_code(42));
        let directive = shellcode::as_byte_directive(&full);
        let prog = ProgramBuilder::new("/bin/fuzz")
            .code(
                "_start:
                    sub esp, 128
                    mov edi, esp
                    mov esi, payload
                    mov ecx, plen
                    call memcpy
                    mov eax, esp
                    jmp eax",
            )
            .data(&format!(".equ plen, {}\npayload: {directive}", full.len()))
            .build()
            .unwrap();
        let mut k = Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())));
        let pid = k.spawn(&prog.image).unwrap();
        k.run(50_000_000);
        prop_assert_ne!(k.sys.proc(pid).exit_code, Some(42));
    }

    /// The same attack under the NullEngine *does* run to the marker —
    /// proving the proptest above is exercising real executions.
    #[test]
    fn marker_payload_alone_executes_unprotected(pad in 0usize..16) {
        let mut full = shellcode::nop_sled(pad);
        full.extend_from_slice(&shellcode::exit_code(42));
        let directive = shellcode::as_byte_directive(&full);
        let prog = ProgramBuilder::new("/bin/fuzz2")
            .code(
                "_start:
                    sub esp, 128
                    mov edi, esp
                    mov esi, payload
                    mov ecx, plen
                    call memcpy
                    mov eax, esp
                    jmp eax",
            )
            .data(&format!(".equ plen, {}\npayload: {directive}", full.len()))
            .build()
            .unwrap();
        let mut k = Kernel::with_engine(Box::new(NullEngine));
        let pid = k.spawn(&prog.image).unwrap();
        k.run(50_000_000);
        prop_assert_eq!(k.sys.proc(pid).exit_code, Some(42));
    }
}
