//! CLI contract tests for the `chaos` binary's replay surface: every
//! malformed invocation or unreadable/corrupt dump must produce a typed
//! diagnostic on stderr and a nonzero exit — never a panic. (The replay
//! path consumes untrusted files; `expect`/`unwrap` on the arg or read
//! path would turn a bad path into a crash with exit 101.)

use std::path::PathBuf;
use std::process::{Command, Output};

fn chaos_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
}

fn run(args: &[&str]) -> Output {
    chaos_bin().args(args).output().expect("chaos bin runs")
}

/// The invocation failed in a controlled way: nonzero (but not the
/// 101/abort of a Rust panic), nothing panicked, and the diagnostic
/// mentions what went wrong.
fn assert_typed_failure(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "expected failure, got success; stdout: {stdout}"
    );
    assert_ne!(out.status.code(), Some(101), "process panicked: {stderr}");
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "panic leaked to stderr: {stderr}"
    );
    assert!(
        stderr.contains(needle),
        "stderr missing {needle:?}: {stderr}"
    );
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sm_cli_replay_tests");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

#[test]
fn replay_missing_dump_is_a_typed_error() {
    let out = run(&["--replay", "/nonexistent/dir/no_such.smcdump"]);
    assert_typed_failure(&out, "cannot read");
}

#[test]
fn replay_truncated_header_is_a_typed_error() {
    let path = scratch("ten_bytes.smcdump");
    std::fs::write(&path, b"SMCDUMP\x01\x02\x03").expect("write stub dump");
    let out = run(&["--replay", path.to_str().unwrap()]);
    assert_typed_failure(&out, "replay rejected");
}

#[test]
fn replay_garbage_payload_is_a_typed_error() {
    // Long enough to pass any length precheck, but pure noise: the sha
    // trailer (or magic) check must reject it, not a slice panic.
    let path = scratch("garbage.smcdump");
    let noise: Vec<u8> = (0u32..4096)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    std::fs::write(&path, &noise).expect("write garbage dump");
    let out = run(&["--replay", path.to_str().unwrap()]);
    assert_typed_failure(&out, "replay rejected");
}

#[test]
fn replay_without_a_path_is_a_usage_error() {
    let out = run(&["--replay"]);
    assert_typed_failure(&out, "--replay needs a value");
    assert_eq!(out.status.code(), Some(2));
    // A following flag must not be swallowed as the path either.
    let out = run(&["--replay", "--stop-seq", "5"]);
    assert_typed_failure(&out, "--replay needs a value");
}

#[test]
fn dump_demo_without_a_path_is_a_usage_error() {
    let out = run(&["--dump-demo"]);
    assert_typed_failure(&out, "--dump-demo needs a value");
    assert_eq!(out.status.code(), Some(2));
}

/// Artifact writes go through one typed path: an unwritable destination is
/// a `chaos: cannot write ...` diagnostic with exit 1, not an io panic.
#[test]
fn dump_demo_unwritable_path_is_a_typed_error() {
    let out = run(&["--dump-demo", "/nonexistent/dir/demo.smcdump"]);
    assert_typed_failure(&out, "cannot write /nonexistent/dir/demo.smcdump");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn bad_shard_count_is_a_usage_error() {
    let out = run(&["--shards", "many"]);
    assert_typed_failure(&out, "--shards is not a number");
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--shards", "0"]);
    assert_typed_failure(&out, "--shards must be >= 1");
    let out = run(&["--shards"]);
    assert_typed_failure(&out, "--shards needs a value");
}

#[test]
fn bad_stop_seq_is_a_usage_error() {
    let path = scratch("unused.smcdump");
    std::fs::write(&path, b"irrelevant").expect("write stub");
    let out = run(&[
        "--replay",
        path.to_str().unwrap(),
        "--stop-seq",
        "not-a-number",
    ]);
    assert_typed_failure(&out, "--stop-seq is not a number");
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--replay", path.to_str().unwrap(), "--stop-seq"]);
    assert_typed_failure(&out, "--stop-seq needs a value");
}

#[test]
fn stop_seq_without_replay_is_a_usage_error() {
    let out = run(&["--stop-seq", "5"]);
    assert_typed_failure(&out, "--stop-seq only makes sense with --replay");
    assert_eq!(out.status.code(), Some(2));
}

/// End-to-end time travel on a real dump: `--dump-demo` writes one, then
/// `--replay --stop-seq` runs it to a mid-run seq (checkpoint seq + 5)
/// and reports REACHED, while a stop seq *before* the checkpoint is a
/// typed rejection (time travel cannot rewind).
#[test]
fn stop_seq_time_travel_works_on_a_real_dump() {
    let dump = scratch("demo.smcdump");
    let out = run(&["--dump-demo", dump.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "dump-demo failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The demo prints the checkpoint slice; parse seq0 from a replay run
    // instead: a huge stop seq runs to completion ("run ended first").
    let out = run(&[
        "--replay",
        dump.to_str().unwrap(),
        "--stop-seq",
        "999999999",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("run ended first"),
        "expected the run to end before an absurd seq: {stdout}"
    );
    let seq0: u64 = stdout
        .split("checkpoint seq ")
        .nth(1)
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("checkpoint seq in output");

    let stop = (seq0 + 5).to_string();
    let out = run(&["--replay", dump.to_str().unwrap(), "--stop-seq", &stop]);
    assert!(
        out.status.success(),
        "time travel failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REACHED"), "did not reach seq: {stdout}");

    if seq0 > 0 {
        let before = (seq0 - 1).to_string();
        let out = run(&["--replay", dump.to_str().unwrap(), "--stop-seq", &before]);
        assert_typed_failure(&out, "cannot rewind");
    }
}
