//! System tests for the fleet-scale multi-tenant simulator
//! (`sm_bench::fleet`).
//!
//! * **Determinism** — the parallel runner's full report (fleet summary +
//!   every per-tenant line + the merged event-timeline digest) is
//!   byte-identical to the serial reference, to a re-run of itself, and
//!   invariant under shard-count changes, across seeds, profiles and
//!   mixes (proptest). CI pins the same property under a
//!   `RAYON_NUM_THREADS` matrix.
//! * **Detection** — every attacker tenant is detected and no payload
//!   executes under split memory, in both TLB models (flush-on-switch
//!   and ASID-tagged) and on both TLB geometries.
//! * **Exit-storm frame reclamation** — repeated spawn/run/reap churn of
//!   the fork-bomb worker in a frame-starved kernel returns the frame
//!   allocator and frame table to their post-boot baseline every round,
//!   with the refcount-lockstep and live-count invariants clean
//!   throughout.

use proptest::prelude::*;
use sm_bench::fleet::{self, arrivals::Profile, guests, FleetConfig, Mix};
use sm_core::invariants;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{KernelConfig, RunExit};
use sm_machine::TlbPreset;

fn small_cfg(seed: u64, shards: u32, profile: Profile, mix: Mix) -> FleetConfig {
    FleetConfig {
        tenants: 30,
        shards,
        tenants_per_cell: 5,
        seed,
        profile,
        requests_per_tenant: 3,
        mix,
        ..FleetConfig::default()
    }
}

/// Everything a fleet run reports, as one comparable string.
fn full_report(r: &fleet::FleetResult) -> String {
    format!(
        "{}{}digest={:016x}",
        r.render(),
        r.render_tenants(),
        r.timeline_digest
    )
}

#[test]
fn flagship_population_completes_with_full_detection() {
    // The acceptance-scale run: >= 500 tenants over >= 4 shards, every
    // tenant completing with a per-tenant report, 100% attacker
    // detection, zero executed payloads.
    let cfg = FleetConfig {
        tenants: 500,
        shards: 4,
        ..FleetConfig::default()
    };
    let r = fleet::run(&cfg);
    assert_eq!(r.tenants.len(), 500, "one report per tenant");
    assert_eq!(r.dropped(), 0, "no request dropped");
    assert_eq!(
        r.completed(),
        500 * cfg.requests_per_tenant as u64,
        "every request completed"
    );
    let (det, att) = r.detection();
    assert_eq!(att, 50 * cfg.requests_per_tenant as u64);
    assert_eq!(det, att, "every injection detected");
    assert_eq!(
        r.tenants.iter().map(|t| t.injected).sum::<u32>(),
        0,
        "no payload executed under split"
    );
}

#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    let cfg = small_cfg(7, 3, Profile::Burst, Mix::Standard);
    let par = fleet::run(&cfg);
    let ser = fleet::run_serial(&cfg);
    assert_eq!(full_report(&par), full_report(&ser));
}

#[test]
fn shard_count_cannot_change_tenant_outcomes() {
    // The cell topology is a pure function of the config; shards are an
    // execution grouping. Reports (minus the config echo line, which
    // legitimately names the shard count) must match across shard counts.
    let tenant_lines = |shards: u32| {
        let cfg = small_cfg(11, shards, Profile::Poisson, Mix::ForkStorm);
        let r = fleet::run(&cfg);
        format!("{}digest={:016x}", r.render_tenants(), r.timeline_digest)
    };
    let one = tenant_lines(1);
    assert_eq!(one, tenant_lines(2));
    assert_eq!(one, tenant_lines(5));
}

#[test]
fn attacker_detection_holds_in_both_tlb_models_and_geometries() {
    for asid in [false, true] {
        for tlb in [TlbPreset::default(), TlbPreset::pentium3()] {
            let cfg = FleetConfig {
                tenants: 20,
                shards: 2,
                requests_per_tenant: 3,
                asid_tlbs: asid,
                tlb,
                ..FleetConfig::default()
            };
            let r = fleet::run(&cfg);
            let (det, att) = r.detection();
            assert!(att > 0, "population must include attackers");
            assert_eq!(det, att, "asid={asid}: detection {det}/{att}");
            assert_eq!(
                r.tenants.iter().map(|t| t.injected).sum::<u32>(),
                0,
                "asid={asid}: payload executed"
            );
        }
    }
}

#[test]
fn unprotected_fleet_lets_every_payload_through() {
    // Control arm: the same attacker images actually inject when nothing
    // protects, so the detection numbers above are measuring something.
    let cfg = FleetConfig {
        tenants: 20,
        shards: 2,
        requests_per_tenant: 3,
        protection: Protection::Unprotected,
        ..FleetConfig::default()
    };
    let r = fleet::run(&cfg);
    let attackers: Vec<_> = r
        .tenants
        .iter()
        .filter(|t| t.kind == guests::TenantKind::Attacker)
        .collect();
    assert!(!attackers.is_empty());
    for t in attackers {
        assert_eq!(t.injected, t.completed, "tenant {}", t.tid);
        assert_eq!(t.detected, 0, "tenant {}", t.tid);
    }
}

#[test]
fn oom_ramp_degrades_without_invariant_violations() {
    let cfg = FleetConfig {
        tenants: 30,
        shards: 2,
        requests_per_tenant: 3,
        mix: Mix::OomRamp,
        phys_frames: 96,
        check_invariants: true,
        ..FleetConfig::default()
    };
    let r = fleet::run(&cfg);
    assert!(r.degradations() > 0, "96-frame cells must feel the memhogs");
    assert!(
        r.violations.is_empty(),
        "invariants must survive OOM pressure: {:?}",
        &r.violations[..r.violations.len().min(5)]
    );
    let (det, att) = r.detection();
    assert_eq!(det, att, "detection survives memory pressure");
}

#[test]
fn traced_fleet_keeps_stream_order() {
    let cfg = FleetConfig {
        tenants: 15,
        shards: 2,
        requests_per_tenant: 3,
        trace: true,
        ..FleetConfig::default()
    };
    let r = fleet::run(&cfg);
    assert!(
        r.trace_violations.is_empty(),
        "{:?}",
        &r.trace_violations[..r.trace_violations.len().min(5)]
    );
}

#[test]
fn shard_kill_probe_is_transparent() {
    let cfg = FleetConfig {
        tenants: 5,
        shards: 1,
        requests_per_tenant: 8,
        trace: true,
        check_invariants: true,
        ..FleetConfig::default()
    };
    let probe = fleet::shard_kill_probe(&cfg, 2);
    assert!(probe.ok(), "{probe:?}\n{}", probe.detail);
}

#[test]
fn exit_storm_reclaims_every_frame() {
    // Satellite of PR 9's frame-accounting audit: churn the fork-bomb
    // worker through a frame-starved split kernel and require the frame
    // allocator and the kernel's frame table to return to their post-boot
    // baseline after every spawn/run/reap round — any leak (pagetable
    // frame, COW copy, split code frame) shows up as drift, and the
    // refcount-lockstep (#7) and live-count (#11) invariants must stay
    // clean while the storm is in flight.
    let image = guests::build_image(guests::TenantKind::ForkBomb, 1);
    let mut k = Protection::SplitMem(ResponseMode::Break).kernel(KernelConfig {
        aslr_stack: false,
        ..KernelConfig::default()
    });
    let baseline_alloc = k.sys.machine.phys.allocator.allocated_count();
    let baseline_tracked = k.sys.frames.tracked();
    let baseline_live = k.sys.live_process_count();
    for round in 0..30 {
        let root = k.spawn(&image).expect("spawns");
        assert_eq!(k.run(60_000_000), RunExit::AllExited, "round {round}");
        let mid = invariants::check(&k);
        assert!(mid.is_empty(), "round {round}: {mid:?}");
        assert_eq!(k.reap(root), Some(0), "round {round}: root exit");
        assert_eq!(
            k.sys.machine.phys.allocator.allocated_count(),
            baseline_alloc,
            "round {round}: allocator drifted from post-boot baseline"
        );
        assert_eq!(
            k.sys.frames.tracked(),
            baseline_tracked,
            "round {round}: frame table drifted"
        );
        assert_eq!(k.sys.live_process_count(), baseline_live, "round {round}");
        assert_eq!(k.sys.live_process_count(), k.sys.recount_live());
    }
}

#[test]
fn reap_is_a_zombie_only_operation() {
    // reap() must refuse to remove live processes and return the exit
    // code exactly once for zombies.
    let image = guests::build_image(guests::TenantKind::Gzip, 0);
    let mut k = Protection::Unprotected.kernel(KernelConfig {
        aslr_stack: false,
        ..KernelConfig::default()
    });
    let pid = k.spawn(&image).expect("spawns");
    assert_eq!(k.reap(pid), None, "live process must not be reapable");
    assert_eq!(k.run(40_000_000), RunExit::AllExited);
    assert_eq!(k.reap(pid), Some(0));
    assert_eq!(k.reap(pid), None, "double reap");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Byte-identity across runner modes, re-runs and shard counts, over
    /// random seeds, profiles and mixes.
    #[test]
    fn fleet_reports_are_deterministic(
        seed in 0u64..10_000,
        profile_ix in 0usize..3,
        mix_ix in 0usize..3,
        shards in 1u32..6,
    ) {
        let profile = [Profile::Poisson, Profile::Burst, Profile::Ramp][profile_ix];
        let mix = [Mix::Standard, Mix::ForkStorm, Mix::OomRamp][mix_ix];
        let cfg = small_cfg(seed, shards, profile, mix);
        let par = fleet::run(&cfg);
        let rerun = fleet::run(&cfg);
        let ser = fleet::run_serial(&cfg);
        prop_assert_eq!(full_report(&par), full_report(&rerun));
        prop_assert_eq!(full_report(&par), full_report(&ser));
        // Shard-count invariance on everything below the config echo.
        let other = fleet::run(&FleetConfig { shards: shards % 5 + 1, ..cfg });
        prop_assert_eq!(par.render_tenants(), other.render_tenants());
        prop_assert_eq!(par.timeline_digest, other.timeline_digest);
    }

    /// 100% detection, zero injections, under split in both TLB models,
    /// over random seeds and profiles.
    #[test]
    fn split_detection_is_total_under_churn(
        seed in 0u64..10_000,
        profile_ix in 0usize..3,
        asid_ix in 0u32..2,
    ) {
        let asid = asid_ix == 1;
        let profile = [Profile::Poisson, Profile::Burst, Profile::Ramp][profile_ix];
        let cfg = FleetConfig {
            asid_tlbs: asid,
            ..small_cfg(seed, 2, profile, Mix::Standard)
        };
        let r = fleet::run(&cfg);
        let (det, att) = r.detection();
        prop_assert!(att > 0);
        prop_assert_eq!(det, att);
        prop_assert_eq!(r.tenants.iter().map(|t| t.injected).sum::<u32>(), 0);
    }
}
