//! Superblock-pipeline equivalence system tests.
//!
//! The pipeline ([`sm_machine::Machine::run_block`]) is an execution
//! *strategy*, not machine state: every observable — cycle ledger,
//! machine counters, both TLBs' hit/miss/3C/eviction stats, the trace
//! JSONL stream, the kernel event log and every detection verdict — must
//! be indistinguishable from per-step dispatch.
//!
//! * **Equivalence** — pipeline-on ≡ pipeline-off across seeds × chaos
//!   plans × TLB geometries × trace ring capacities (proptest), and for
//!   a store/load/branch-heavy compute guest under both protections.
//! * **Coherence** — a self-modifying guest executes its freshly written
//!   bytes (exit code proves which bytes ran) with at least one
//!   superblock bailout and one decode invalidation along the way.
//! * **Snapshot compat** — snapshot bytes do not depend on the pipeline
//!   setting, a restored kernel starts with a cold (derived-only)
//!   superblock tier, and the restored run converges identically.

use proptest::prelude::*;
use sm_attacks::harness::{classify_marker, kernel_with_on, AttackOutcome};
use sm_attacks::wilander::{self, InjectLocation, Technique, MARKER};
use sm_bench::chaos;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::snapshot as ksnap;
use sm_kernel::userlib::ProgramBuilder;
use sm_machine::chaos::FaultPlan;
use sm_machine::trace::mask;
use sm_machine::{SuperblockStats, TlbPreset};

fn split_break() -> Protection {
    Protection::SplitMem(ResponseMode::Break)
}

fn canonical_case() -> wilander::Case {
    wilander::Case {
        technique: Technique::ReturnAddress,
        location: InjectLocation::Stack,
    }
}

/// Run one Wilander cell to completion with the given knobs, returning
/// the kernel and its verdict.
fn run_case(
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    trace_capacity: usize,
    pipeline: bool,
) -> (Kernel, String) {
    let built = wilander::build_case(canonical_case()).expect("case applies");
    let mut k = kernel_with_on(
        protection,
        tlb,
        KernelConfig {
            aslr_stack: false,
            chaos: plan,
            trace: mask::ALL,
            trace_capacity,
            pipeline,
            ..KernelConfig::default()
        },
    );
    let pid = k.spawn(&built.image).expect("spawn");
    let exit = k.run(80_000_000);
    assert_eq!(exit, RunExit::AllExited, "case must converge: {exit:?}");
    let verdict = format!("{:?}", classify_marker(&k, pid, MARKER));
    (k, verdict)
}

/// Every observable the pipeline is required to preserve, in one place.
fn assert_observably_equal(k_on: &Kernel, k_off: &Kernel) {
    assert_eq!(k_on.sys.machine.cycles, k_off.sys.machine.cycles);
    assert_eq!(
        format!("{:?}", k_on.sys.machine.stats),
        format!("{:?}", k_off.sys.machine.stats)
    );
    assert_eq!(
        format!("{:?}", k_on.sys.machine.itlb.stats),
        format!("{:?}", k_off.sys.machine.itlb.stats)
    );
    assert_eq!(
        format!("{:?}", k_on.sys.machine.dtlb.stats),
        format!("{:?}", k_off.sys.machine.dtlb.stats)
    );
    assert_eq!(
        format!("{:?}", k_on.sys.machine.decode_cache.stats),
        format!("{:?}", k_off.sys.machine.decode_cache.stats)
    );
    assert_eq!(
        format!("{:?}", k_on.sys.stats),
        format!("{:?}", k_off.sys.stats)
    );
    assert_eq!(
        format!("{:?}", k_on.sys.events.entries()),
        format!("{:?}", k_off.sys.events.entries())
    );
    assert_eq!(
        k_on.sys.machine.tracer.emitted(),
        k_off.sys.machine.tracer.emitted()
    );
    assert_eq!(
        k_on.sys.machine.tracer.to_jsonl(),
        k_off.sys.machine.tracer.to_jsonl()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pipeline-on is pipeline-off, observably: same verdict, cycles,
    /// machine/TLB/kernel counters, event log and trace JSONL stream —
    /// across seeds, chaos plans (index 0 is the inert plan, where the
    /// superblock tier actually engages), TLB geometries, trace ring
    /// capacities and protection engines (the shadow-stack/CFI engine's
    /// retire-path events must not perturb the block tier either).
    #[test]
    fn pipeline_on_is_pipeline_off(
        seed in 1u64..24,
        plan_idx in 0usize..8,
        geom_idx in 0usize..3,
        cap_idx in 0usize..2,
        prot_idx in 0usize..3,
    ) {
        let plan = if plan_idx == 0 {
            FaultPlan::default()
        } else {
            let plans = chaos::perturbation_plans(seed);
            plans[(plan_idx - 1) % plans.len()].plan
        };
        let tlb = [
            TlbPreset::default(),
            TlbPreset::pentium3(),
            TlbPreset::fully_associative(8),
        ][geom_idx];
        let cap = [0usize, 64][cap_idx];
        let protection = [
            split_break(),
            Protection::ShadowStack(ResponseMode::Break),
            Protection::ShadowCombined(ResponseMode::Break),
        ][prot_idx].clone();
        let (k_off, v_off) = run_case(&protection, tlb, plan, cap, false);
        let (k_on, v_on) = run_case(&protection, tlb, plan, cap, true);
        prop_assert_eq!(v_off, v_on);
        assert_observably_equal(&k_on, &k_off);
        // The pipeline-off run must never touch the superblock tier; the
        // pipeline-on run engages it whenever the chaos gate allows.
        prop_assert_eq!(
            k_off.sys.machine.superblocks.stats,
            SuperblockStats::default()
        );
        if plan_idx == 0 {
            let s = k_on.sys.machine.superblocks.stats;
            prop_assert!(
                s.builds + s.hits + s.slow_steps > 0,
                "inert plan must exercise run_block: {s:?}"
            );
        }
    }
}

/// A store/load/branch-heavy compute loop: the exact op mix the
/// superblock lane accelerates (memory traffic, conditional branches, a
/// backward self-loop), long enough to retire thousands of lane ops.
fn busy_program() -> sm_kernel::image::ExecImage {
    ProgramBuilder::new("/bin/busy")
        .code(
            "_start:
                mov ecx, 400
                mov eax, 0
            outer:
                mov [v], ecx
                mov ebx, [v]
                add eax, ebx
                cmp ebx, 100
                jbe low
                add eax, 3
            low:
                dec ecx
                jnz outer
                mov ebx, 0
                call exit",
        )
        .data("v: .word 0")
        .build()
        .expect("busy guest assembles")
        .image
}

/// The compute guest retires identically on and off, under both an
/// unprotected and a split-memory kernel.
#[test]
fn compute_guest_is_equivalent_under_both_protections() {
    for protection in [Protection::Unprotected, split_break()] {
        let run = |pipeline: bool| {
            let mut k = kernel_with_on(
                &protection,
                TlbPreset::default(),
                KernelConfig {
                    aslr_stack: false,
                    trace: mask::ALL,
                    pipeline,
                    ..KernelConfig::default()
                },
            );
            let pid = k.spawn(&busy_program()).expect("spawn");
            assert_eq!(k.run(80_000_000), RunExit::AllExited);
            let code = k.sys.procs.get(&pid.0).and_then(|p| p.exit_code);
            (k, code)
        };
        let (k_off, code_off) = run(false);
        let (k_on, code_on) = run(true);
        assert_eq!(code_on, Some(0), "guest exits cleanly");
        assert_eq!(code_on, code_off);
        assert_observably_equal(&k_on, &k_off);
        let s = k_on.sys.machine.superblocks.stats;
        assert!(s.hits > 0, "hot loop must re-enter cached blocks: {s:?}");
    }
}

/// Mixed-segment self-patcher (the decode-cache system test's guest):
/// patches the immediate of its own `mov ebx, 9` to 7 before reaching it.
fn self_patcher() -> sm_kernel::image::ExecImage {
    ProgramBuilder::new("/bin/patch")
        .mixed_segment()
        .code(
            "_start:
                nop
                mov byte [patchsite+1], 7
            patchsite:
                mov ebx, 9
                call exit",
        )
        .build()
        .expect("self-patcher assembles")
        .image
}

/// Self-modifying code under the pipeline: the write-generation bump
/// forces a mid-block bailout, the stale decodes are invalidated, and the
/// freshly written immediate is what executes — with byte-identical
/// accounting to the per-step run.
#[test]
fn self_modifying_guest_bails_and_executes_fresh_bytes() {
    let run = |pipeline: bool| {
        let mut k = kernel_with_on(
            &Protection::Unprotected,
            TlbPreset::default(),
            KernelConfig {
                aslr_stack: false,
                pipeline,
                ..KernelConfig::default()
            },
        );
        let pid = k.spawn(&self_patcher()).expect("spawn");
        assert_eq!(k.run(80_000_000), RunExit::AllExited);
        let code = k.sys.procs.get(&pid.0).and_then(|p| p.exit_code);
        (k, code)
    };
    let (k_on, code_on) = run(true);
    // The patched byte executed: the superblock tier did not serve stale
    // pre-decoded ops past the store.
    assert_eq!(code_on, Some(7), "patched immediate must execute");
    let sb = k_on.sys.machine.superblocks.stats;
    assert!(
        sb.bailouts >= 1,
        "store into the executing frame must bail the block: {sb:?}"
    );
    let dc = k_on.sys.machine.decode_cache.stats;
    assert!(
        dc.invalidations >= 1,
        "patched frame must invalidate decodes: {dc:?}"
    );
    let (k_off, code_off) = run(false);
    assert_eq!(code_on, code_off);
    assert_observably_equal(&k_on, &k_off);
}

/// Snapshot compatibility: the on-disk format carries no pipeline state.
/// Snapshots taken mid-run are byte-identical whichever way the kernel
/// executes, and a restored kernel starts with a cold superblock tier
/// yet converges to the identical final state.
#[test]
fn snapshot_bytes_ignore_pipeline_and_restore_starts_cold() {
    let split = split_break();
    let built = wilander::build_case(canonical_case()).expect("case applies");
    let partial = |pipeline: bool| {
        let mut k = kernel_with_on(
            &split,
            TlbPreset::default(),
            KernelConfig {
                aslr_stack: false,
                trace: mask::ALL,
                pipeline,
                ..KernelConfig::default()
            },
        );
        let pid = k.spawn(&built.image).expect("spawn");
        // Stop mid-flight: enough to warm the pipeline, short of the
        // detection.
        let exit = k.run(2_000);
        assert_eq!(exit, RunExit::CyclesExhausted, "must stop mid-run");
        (k, pid)
    };
    let (k_on, pid) = partial(true);
    let (k_off, _) = partial(false);
    assert!(
        k_on.sys.machine.superblocks.stats.builds > 0,
        "pipeline must be warm at snapshot time: {:?}",
        k_on.sys.machine.superblocks.stats
    );
    let snap_on = ksnap::save(&k_on);
    let snap_off = ksnap::save(&k_off);
    assert_eq!(
        snap_on, snap_off,
        "snapshot bytes must not depend on the execution strategy"
    );

    // Restore (default config: pipeline on) — the superblock tier is
    // derived-only, so the restored machine must come up cold.
    let mut restored = ksnap::restore(&snap_on, split.engine()).expect("snapshot restores");
    assert_eq!(
        restored.sys.machine.superblocks.stats,
        SuperblockStats::default(),
        "restored kernel must start with a cold pipeline"
    );

    // Both the original and the restored kernel run to completion with
    // the pipeline on and agree on everything observable.
    let mut k_on = k_on;
    assert_eq!(k_on.run(80_000_000), RunExit::AllExited);
    assert_eq!(restored.run(80_000_000), RunExit::AllExited);
    let v_orig = format!("{:?}", classify_marker(&k_on, pid, MARKER));
    let v_rest = format!("{:?}", classify_marker(&restored, pid, MARKER));
    assert!(
        matches!(
            classify_marker(&k_on, pid, MARKER),
            AttackOutcome::Foiled { .. }
        ),
        "split memory must foil the attack: {v_orig}"
    );
    assert_eq!(v_orig, v_rest);
    assert_eq!(k_on.sys.machine.cycles, restored.sys.machine.cycles);
    assert_eq!(
        format!("{:?}", k_on.sys.machine.stats),
        format!("{:?}", restored.sys.machine.stats)
    );
    assert_eq!(
        format!("{:?}", k_on.sys.stats),
        format!("{:?}", restored.sys.stats)
    );
    assert!(
        restored.sys.machine.superblocks.stats.builds > 0,
        "restored kernel must rebuild blocks as it runs"
    );
}
