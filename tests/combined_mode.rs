//! Combined NX + split-memory mode (paper §4.2.1, §6.2): NX covers clean
//! pages, splitting covers what NX cannot.

use sm_core::combined::CombinedEngine;
use sm_core::engine::SplitMemEngine;
use sm_core::nx::NxEngine;
use sm_core::setup::Protection;
use sm_kernel::engine::ProtectionEngine;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::userlib::ProgramBuilder;
use sm_machine::MachineConfig;

fn combined_kernel() -> Kernel {
    Kernel::new(
        MachineConfig {
            nx_enabled: true,
            ..MachineConfig::default()
        },
        KernelConfig::default(),
        Box::new(CombinedEngine::new(ResponseMode::Break)),
    )
}

#[test]
fn clean_binaries_get_nx_only() {
    let prog = ProgramBuilder::new("/bin/clean")
        .code("_start: mov ebx, 0\n call exit")
        .data("v: .word 7")
        .build()
        .unwrap();
    let mut k = combined_kernel();
    let pid = k.spawn(&prog.image).unwrap();
    let engine = k.engine.as_any().downcast_ref::<CombinedEngine>().unwrap();
    assert!(engine.split.table(pid).is_none_or(|t| t.is_empty()));
    assert!(engine.nx.stats.pages_marked > 0);
    k.run(10_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(0));
}

#[test]
fn mixed_binaries_get_their_mixed_pages_split() {
    let prog = ProgramBuilder::new("/bin/mixed")
        .mixed_segment()
        .code("_start: mov ebx, 0\n call exit")
        .build()
        .unwrap();
    let mut k = combined_kernel();
    let pid = k.spawn(&prog.image).unwrap();
    let engine = k.engine.as_any().downcast_ref::<CombinedEngine>().unwrap();
    let split_pages = engine.split.table(pid).map_or(0, |t| t.len());
    assert!(split_pages > 0, "mixed pages must be split");
    k.run(10_000_000);
    assert_eq!(k.sys.proc(pid).exit_code, Some(0));
}

#[test]
fn combined_mode_stops_injection_on_both_page_kinds() {
    // Injection into a clean data page (NX territory) and into a mixed
    // page (split territory) — both must be foiled.
    let clean_inject = ProgramBuilder::new("/bin/i1")
        .code(
            "_start:
                mov edi, buf
                mov esi, payload
                mov ecx, 12
                call memcpy
                mov eax, buf
                jmp eax",
        )
        .data(
            "payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80
             buf: .space 16",
        )
        .build()
        .unwrap();
    let mixed_inject = ProgramBuilder::new("/bin/i2")
        .mixed_segment()
        .code(
            "_start:
                mov edi, buf
                mov esi, payload
                mov ecx, 12
                call memcpy
                mov eax, buf
                jmp eax
            payload: .byte 0xbb, 0x2a, 0, 0, 0, 0xb8, 1, 0, 0, 0, 0xcd, 0x80
            buf: .space 16",
        )
        .build()
        .unwrap();
    for prog in [clean_inject, mixed_inject] {
        let mut k = combined_kernel();
        let pid = k.spawn(&prog.image).unwrap();
        k.run(20_000_000);
        assert_ne!(
            k.sys.proc(pid).exit_code,
            Some(42),
            "{} succeeded under combined mode",
            prog.image.name
        );
        assert!(
            k.sys.events.first_detection().is_some(),
            "{}: no detection",
            prog.image.name
        );
    }
}

#[test]
fn engines_report_their_names() {
    assert_eq!(
        CombinedEngine::new(ResponseMode::Break).name(),
        "split-memory+execute-disable"
    );
    assert_eq!(NxEngine::new().name(), "execute-disable");
    assert_eq!(
        SplitMemEngine::stand_alone(ResponseMode::Break).name(),
        "split-memory"
    );
}

#[test]
fn fraction_policy_splits_roughly_the_requested_share() {
    // Statistical sanity over several seeds: Fraction(0.5) splits about
    // half the pages (mixed pages are always split, but this binary has
    // none).
    let prog = ProgramBuilder::new("/bin/wide")
        .code("_start: mov ebx, 0\n call exit")
        .data(&".space 4096\n".repeat(16))
        .build()
        .unwrap();
    let mut total_pages = 0usize;
    let mut split_pages = 0usize;
    for seed in 0..6 {
        let mut k = Kernel::new(
            MachineConfig {
                nx_enabled: true,
                ..MachineConfig::default()
            },
            KernelConfig {
                seed,
                ..KernelConfig::default()
            },
            Protection::CombinedFraction(0.5).engine(),
        );
        let pid = k.spawn(&prog.image).unwrap();
        let engine = k.engine.as_any().downcast_ref::<CombinedEngine>().unwrap();
        split_pages += engine.split.table(pid).map_or(0, |t| t.len());
        // ~17 data pages + 1 code page + 1 stack page eagerly mapped.
        total_pages += 19;
    }
    let share = split_pages as f64 / total_pages as f64;
    assert!(
        (0.3..=0.7).contains(&share),
        "Fraction(0.5) split {share:.2} of pages"
    );
}
