//! Quickstart: protect a vulnerable program with split memory.
//!
//! Builds a small guest server with a classic `strcpy` stack overflow,
//! attacks it twice — once on an unprotected kernel, once under the
//! split-memory engine — and shows the detection event and the forensic
//! view of the injected payload.
//!
//! Run with: `cargo run -p sm-bench --example quickstart`

use sm_attacks::shellcode;
use sm_core::engine::{SplitMemConfig, SplitMemEngine};
use sm_kernel::engine::NullEngine;
use sm_kernel::events::Event;
use sm_kernel::kernel::Kernel;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};

/// A guest that copies attacker-controlled input (its stdin) into a
/// 64-byte stack buffer with `strcpy` — no bounds check — then returns.
fn vulnerable_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/vuln")
        .code(
            "_start:
                call handle_input
                mov esi, safemsg
                call print
                mov ebx, 0
                call exit
            handle_input:
                push ebp
                mov ebp, esp
                sub esp, 64
                ; read the 'network input' into a scratch area...
                mov ebx, 0
                mov edi, scratch
                mov edx, 256
                call read_line
                ; ...and strcpy it into a 64-byte stack buffer. THE BUG.
                lea edi, [ebp-64]
                mov esi, scratch
                call strcpy
                leave
                ret",
        )
        .data(
            "safemsg: .asciz \"input handled safely\\n\"
             scratch: .space 256",
        )
        .build()
        .expect("vulnerable program assembles")
}

/// The attack string: exit(42) shellcode, padding across the buffer and
/// the saved frame pointer, then a return address pointing back into the
/// buffer. (Addresses are deterministic without ASLR, like the paper's
/// benchmark setup.)
fn attack_string(buffer_addr: u32) -> Vec<u8> {
    // strcpy stops at the first zero byte, so the payload must be NUL-free
    // (the classic shellcode constraint; the return address 0xbfffffa8 has
    // no zero bytes either).
    let mut s = shellcode::exit_code_nul_free(42);
    s.resize(64 + 4, 0x90); // pad buffer + saved ebp
    s.extend_from_slice(&buffer_addr.to_le_bytes());
    s.push(b'\n');
    s
}

fn run_attack(mut kernel: Kernel, label: &str) -> Kernel {
    let prog = vulnerable_program();
    let pid = kernel.spawn(&prog.image).expect("spawn");
    // Frame layout: _start's call pushes the return address (esp0-4),
    // the prologue pushes ebp (esp0-8) and sets ebp = esp0-8; the buffer
    // is at ebp-64 = esp0-72.
    let esp0 = kernel.sys.proc(pid).ctx.get(sm_machine::cpu::Reg::Esp);
    let buffer = esp0 - 72;
    kernel.sys.proc_mut(pid).input = attack_string(buffer);
    kernel.run(50_000_000);
    let p = kernel.sys.proc(pid);
    println!("== {label}");
    println!("   victim exit status: {:?}", p.exit_code);
    println!("   victim output:      {:?}", p.output_string());
    for event in kernel.sys.events.iter() {
        if let Event::AttackDetected { eip, shellcode, .. } = event {
            println!("   DETECTED injected code about to run at {eip:#010x}");
            if !shellcode.is_empty() {
                println!("   captured payload:");
                for line in sm_asm::disassemble(shellcode, *eip) {
                    println!("     {line}");
                }
            }
        }
    }
    println!();
    kernel
}

fn main() {
    println!("split-memory quickstart: one overflow, two kernels\n");

    // 1. Unprotected: the injected exit(42) payload runs.
    let k = run_attack(
        Kernel::with_engine(Box::new(NullEngine)),
        "unprotected kernel — attack succeeds (exit status 42 = payload ran)",
    );
    assert!(k.sys.events.first_detection().is_none());

    // 2. Split memory in forensics mode: the fetch is routed to the code
    //    frame; the payload is captured from the data frame.
    let cfg = SplitMemConfig {
        response: sm_kernel::events::ResponseMode::Forensics,
        ..SplitMemConfig::default()
    };
    let k = run_attack(
        Kernel::with_engine(Box::new(SplitMemEngine::new(cfg))),
        "split memory (forensics) — attack foiled, payload captured",
    );
    assert!(k.sys.events.first_detection().is_some());

    println!("the same binary, the same attack string: with split memory the");
    println!("injected bytes live only on the data frame and are never fetched.");
}
