//! Attack gallery: every attack in the corpus — the five real-world
//! injection scenarios (paper Table 2) plus the code-reuse gallery
//! (ret2libc, a multi-gadget ROP chain, and the DCR-style response-mode
//! fingerprint) — under every protection engine tier.
//!
//! Run with: `cargo run --release -p sm-bench --example attack_gallery`

use sm_attacks::code_reuse::{self, ReuseAttack};
use sm_attacks::harness::Protection;
use sm_kernel::events::ResponseMode;

fn main() {
    println!("engine x attack matrix (paper Tables 1/2 + the §7 code-reuse extension)\n");
    let m = sm_bench::matrix::run();
    println!("{}", sm_bench::matrix::render(&m));
    let violations = m.violations();
    if violations.is_empty() {
        println!("matches expectations: true");
    } else {
        println!("matches expectations: FALSE");
        for v in &violations {
            println!("  {v}");
        }
    }
    println!();
    println!("notes:");
    println!(" - 'shell' under split/nx on the ret2libc and rop-chain rows is the");
    println!("   paper's own §7 concession, pinned as a negative result: nothing was");
    println!("   injected, so injection-oriented engines have nothing to see");
    println!(" - the shadow-stack/CFI engine catches exactly those rows (the return");
    println!("   address the chain overwrote is not on the shadow stack), alone and");
    println!("   stacked on split+nx");
    println!();

    // The fingerprint probe vs. the observe/honeypot response mode: under
    // NX the honeypot *relocates* the payload (its PC moves — the probe
    // reports HPOT and aborts); under split memory the heal is in-place
    // (the probe sees a clean world while the engine logs it).
    println!("DCR fingerprint vs. observe-mode honeypots:");
    for protection in [
        Protection::Unprotected,
        Protection::NxResponse(ResponseMode::Observe),
        Protection::SplitMem(ResponseMode::Observe),
    ] {
        let r = code_reuse::run_reuse(ReuseAttack::DcrFingerprint, &protection);
        println!(
            "  {:<24} probe says {:<6} outcome {:?}, {} detections",
            protection.label(),
            r.marker.as_deref().unwrap_or("(none)"),
            r.outcome,
            r.detections
        );
    }
}
