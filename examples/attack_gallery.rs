//! Attack gallery: the five real-world scenarios under every protection
//! configuration (paper Table 2, extended).
//!
//! Run with: `cargo run --release -p sm-bench --example attack_gallery`

use sm_attacks::harness::Protection;
use sm_attacks::real_world::{run_scenario, Scenario};
use sm_attacks::AttackOutcome;
use sm_kernel::events::ResponseMode;

fn outcome_text(o: &AttackOutcome) -> &'static str {
    match o {
        AttackOutcome::ShellSpawned => "ROOT SHELL",
        AttackOutcome::PayloadExecuted => "code ran",
        AttackOutcome::Foiled { detected: true } => "foiled+logged",
        AttackOutcome::Foiled { detected: false } => "foiled",
    }
}

fn main() {
    let configs = [
        Protection::Unprotected,
        Protection::Nx,
        Protection::SplitMem(ResponseMode::Break),
        Protection::SplitMem(ResponseMode::Observe),
        Protection::Combined(ResponseMode::Break),
    ];
    println!("five real-world attacks x five kernels\n");
    print!("{:<28}", "scenario");
    for c in &configs {
        print!("{:<22}", c.label());
    }
    println!();
    println!("{}", "-".repeat(28 + 22 * configs.len()));
    for scenario in Scenario::ALL {
        print!("{:<28}", scenario.paper_target());
        for config in &configs {
            let report = run_scenario(scenario, config);
            print!("{:<22}", outcome_text(&report.outcome));
        }
        println!();
    }
    println!();
    println!("notes:");
    println!(" - observe mode *intentionally* lets attacks proceed after logging them");
    println!("   (honeypot operation, paper §4.5.2)");
    println!(" - every split-memory 'foiled+logged' detection fired at the unique");
    println!("   moment the first injected instruction was about to execute");
}
