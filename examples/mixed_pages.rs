//! Mixed pages: where the execute-disable bit fails and split memory
//! doesn't (paper §2, Fig. 1b).
//!
//! Three demonstrations on a page holding both code and data:
//!  1. a *legitimate* mixed-page program runs correctly under split memory
//!     (the loader copies real code onto the code frame);
//!  2. runtime injection into the mixed page SUCCEEDS under the NX bit —
//!     the page must stay executable, so DEP has nothing to deny;
//!  3. the same injection is FOILED by split memory — the injected bytes
//!     exist only on the data frame.
//!
//! Run with: `cargo run -p sm-bench --example mixed_pages`

use sm_core::engine::SplitMemEngine;
use sm_core::nx::NxEngine;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::MachineConfig;

/// A JavaVM-like program: one writable+executable segment holding both its
/// code and its data (paper: "Sun's JavaVM loads some system library pages
/// as both writable and executable").
fn legit_mixed_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/jvm-like")
        .mixed_segment()
        .code(
            "_start:
                mov eax, [counter]
                add eax, 41
                inc eax
                mov [counter], eax
                mov ebx, eax          ; exit 42 if arithmetic worked
                call exit
            counter: .word 0",
        )
        .build()
        .expect("assembles")
}

/// The same shape, but it copies bytes into a buffer *on the mixed page*
/// at runtime and jumps to them — the injection NX cannot stop.
fn injecting_mixed_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/jvm-pwned")
        .mixed_segment()
        .code(
            "_start:
                mov edi, buf
                mov esi, payload
                mov ecx, 12
                call memcpy
                mov eax, buf
                jmp eax
            ; exit(99) payload, arriving at buf as DATA WRITES
            payload: .byte 0xbb, 0x63, 0x00, 0x00, 0x00, 0xb8, 0x01, 0x00, 0x00, 0x00, 0xcd, 0x80
            buf: .space 16",
        )
        .build()
        .expect("assembles")
}

fn nx_kernel() -> Kernel {
    Kernel::new(
        MachineConfig {
            nx_enabled: true,
            ..MachineConfig::default()
        },
        KernelConfig::default(),
        Box::new(NxEngine::new()),
    )
}

fn split_kernel() -> Kernel {
    Kernel::with_engine(Box::new(SplitMemEngine::stand_alone(ResponseMode::Break)))
}

fn run(mut k: Kernel, prog: &BuiltProgram) -> (Option<i32>, bool) {
    let pid = k.spawn(&prog.image).expect("spawn");
    k.run(20_000_000);
    (
        k.sys.proc(pid).exit_code,
        k.sys.events.first_detection().is_some(),
    )
}

fn main() {
    println!("mixed code+data pages: NX vs split memory\n");

    println!("1. legitimate mixed-page program under split memory:");
    let (code, detected) = run(split_kernel(), &legit_mixed_program());
    println!("   exit status {code:?}, detections: {detected}");
    assert_eq!(code, Some(42), "legit mixed-page code must still run");
    assert!(!detected);
    println!("   -> runs correctly: the loader put the real code on the code frame\n");

    println!("2. runtime injection into the mixed page, NX bit only:");
    let (code, _) = run(nx_kernel(), &injecting_mixed_program());
    println!("   exit status {code:?}");
    assert_eq!(
        code,
        Some(99),
        "NX cannot protect a page that must stay executable"
    );
    println!("   -> ATTACK SUCCEEDS: the page is executable, DEP has nothing to deny\n");

    println!("3. the same injection under split memory:");
    let (code, detected) = run(split_kernel(), &injecting_mixed_program());
    println!("   exit status {code:?}, detections: {detected}");
    assert_ne!(code, Some(99));
    assert!(detected);
    println!("   -> FOILED: the written bytes live on the data frame; the fetch");
    println!("      found the loader's copy of the page (which has no code there)");
}
