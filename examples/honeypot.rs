//! Honeypot: observe mode + Sebek-style logging (paper §4.5.2, Fig. 5b/5d).
//!
//! Runs the WU-FTPD scenario under observe mode with honeypot logging: the
//! exploit is detected at the unique moment its first injected instruction
//! is about to run, logged, and then *allowed to continue* — the attacker
//! gets their root shell while every keystroke lands in the kernel log.
//!
//! Run with: `cargo run -p sm-bench --example honeypot`

use sm_attacks::harness::{drive_shell, Protection};
use sm_attacks::real_world::run_wuftpd_with;
use sm_attacks::AttackOutcome;
use sm_core::engine::SplitMemConfig;
use sm_kernel::events::{Event, ResponseMode};

fn main() {
    println!("honeypot demo: WU-FTPD exploit under observe mode\n");
    let cfg = SplitMemConfig {
        response: ResponseMode::Observe,
        honeypot_on_detect: true,
        ..SplitMemConfig::default()
    };
    let (report, mut kernel, conn) = run_wuftpd_with(&Protection::SplitMemCustom(cfg));

    assert_eq!(
        report.outcome,
        AttackOutcome::ShellSpawned,
        "observe mode should let the attack proceed"
    );
    println!("exploit outcome: root shell obtained (as intended for a honeypot)");
    println!(
        "detections logged before the shell: {}\n",
        report.detections
    );

    // Let the "attacker" poke around.
    let transcript = match conn {
        Some(c) => drive_shell(&mut kernel, &c, &["id", "whoami", "uname", "exit"]),
        None => String::new(),
    };
    println!("attacker's session as the attacker saw it:");
    for line in transcript.lines() {
        println!("  {line}");
    }

    println!("\nkernel event log (what the honeypot operator sees):");
    for (cycles, event) in kernel.sys.events.entries() {
        match event {
            Event::AttackDetected { eip, mode, .. } => {
                println!("  [{cycles:>10}] ATTACK DETECTED at eip {eip:#010x} (mode: {mode})");
            }
            Event::Exec { pid, path } => {
                println!("  [{cycles:>10}] {pid} exec'd {path}");
            }
            Event::SebekRead { data, .. } => {
                let text: String = data
                    .iter()
                    .filter(|b| b.is_ascii_graphic() || **b == b' ')
                    .map(|b| *b as char)
                    .collect();
                if !text.is_empty() {
                    println!("  [{cycles:>10}] sebek captured: {text:?}");
                }
            }
            _ => {}
        }
    }
    println!("\nthe page the shellcode lives on was locked to its data frame after");
    println!("the first detection, so the attack ran 'unhindered' from then on —");
    println!("exactly the paper's observe-mode semantics.");
}
