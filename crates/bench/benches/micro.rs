//! Criterion micro-benchmarks: host-side cost of the simulator's hot
//! paths and of the split-memory machinery.
//!
//! These complement the cycle-accounted experiment binaries: the tables
//! and figures report *simulated* cycles (deterministic), while these
//! report how fast the simulator itself runs, plus relative costs of the
//! paper's mechanisms (split vs. unsplit page access, the Algorithm 1
//! reload paths, page splitting, the verifier's SHA-256).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sm_core::engine::{SplitMemConfig, SplitMemEngine};
use sm_core::setup::Protection;
use sm_core::sha256::sha256;
use sm_kernel::engine::NullEngine;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::userlib::ProgramBuilder;
use sm_machine::cpu::{Access, Privilege};
use sm_machine::pte::{self, PAGE_SIZE};
use sm_machine::{Machine, MachineConfig};

/// A machine with one flat user mapping and a spin loop at 0x1000.
fn machine_with_loop() -> Machine {
    machine_with_loop_config(MachineConfig {
        phys_frames: 256,
        ..MachineConfig::default()
    })
}

fn machine_with_loop_config(config: MachineConfig) -> Machine {
    let mut m = Machine::new(config);
    let dir = m.alloc_zeroed_frame().unwrap();
    let tab = m.alloc_zeroed_frame().unwrap();
    m.phys.write_u32(
        dir.base(),
        pte::make(tab, pte::PRESENT | pte::WRITABLE | pte::USER),
    );
    for i in 1..16u32 {
        let f = m.alloc_zeroed_frame().unwrap();
        m.phys.write_u32(
            tab.base() + i * 4,
            pte::make(f, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
    }
    // inc eax; jmp -3 (infinite loop, two instructions)
    let code = pte::Frame(m.phys.read_u32(tab.base() + 4) >> 12);
    m.phys.write(code.base(), &[0x40, 0xEB, 0xFD]);
    m.set_cr3(dir);
    m.cpu.regs.eip = PAGE_SIZE;
    m.cpu.regs.set(sm_machine::cpu::Reg::Esp, PAGE_SIZE * 8);
    m
}

/// Like [`machine_with_loop`], but the loop body is 15 `inc eax`s before
/// the back-jump: one superblock spans the whole body.
fn machine_with_long_loop() -> Machine {
    let mut m = machine_with_loop();
    let tab_frame = {
        let dir = pte::Frame(m.cpu.regs.cr3);
        pte::Frame(m.phys.read_u32(dir.base()) >> 12)
    };
    let code = pte::Frame(m.phys.read_u32(tab_frame.base() + 4) >> 12);
    let mut body = [0x40u8; 17]; // inc eax x15
    body[15] = 0xEB; // jmp rel8
    body[16] = 0xEF; // -17
    m.phys.write(code.base(), &body);
    m.cpu.regs.eip = PAGE_SIZE;
    m
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    g.throughput(Throughput::Elements(1));
    g.bench_function("step_hot_loop", |b| {
        let mut m = machine_with_loop();
        b.iter(|| m.step());
    });
    // The decoded-instruction cache ablation: identical machine, identical
    // loop, cache off — the gap is the per-step decode + fetch cost the
    // cache removes.
    g.bench_function("step_hot_loop_no_decode_cache", |b| {
        let mut m = machine_with_loop_config(MachineConfig {
            phys_frames: 256,
            decode_cache: false,
            ..MachineConfig::default()
        });
        b.iter(|| m.step());
    });
    g.bench_function("translate_tlb_hit", |b| {
        let mut m = machine_with_loop();
        let _ = m.translate(0x2000, Access::Read, Privilege::User);
        b.iter(|| m.translate(0x2000, Access::Read, Privilege::User));
    });
    g.bench_function("translate_walk", |b| {
        let mut m = machine_with_loop();
        b.iter(|| {
            m.dtlb.flush_page(2);
            m.translate(0x2000, Access::Read, Privilege::User)
        });
    });
    g.finish();

    // The superblock pipeline ablation: the same hot loop retired through
    // `run_block` in 1024-instruction budget chunks vs. one `step()` per
    // retire. Per-element numbers are directly comparable to
    // `cpu/step_hot_loop` (both report time per retired instruction).
    let mut g = c.benchmark_group("cpu_block");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("run_block_hot_loop_1k", |b| {
        let mut m = machine_with_loop();
        let per_call = 1024 * m.config.costs.insn;
        b.iter(|| m.run_block(m.cycles + per_call));
    });
    g.bench_function("step_hot_loop_1k", |b| {
        let mut m = machine_with_loop();
        let per_call = 1024 * m.config.costs.insn;
        b.iter(|| {
            let limit = m.cycles + per_call;
            while m.cycles < limit {
                m.step();
            }
        });
    });
    // Same comparison on a 16-op straight-line body (15 incs + jmp): the
    // chain re-entry cost amortizes across the block, isolating the
    // per-op floor.
    g.bench_function("run_block_long_body_1k", |b| {
        let mut m = machine_with_long_loop();
        let per_call = 1024 * m.config.costs.insn;
        b.iter(|| m.run_block(m.cycles + per_call));
    });
    g.bench_function("step_long_body_1k", |b| {
        let mut m = machine_with_long_loop();
        let per_call = 1024 * m.config.costs.insn;
        b.iter(|| {
            let limit = m.cycles + per_call;
            while m.cycles < limit {
                m.step();
            }
        });
    });
    g.finish();
}

fn bench_asm(c: &mut Criterion) {
    let src = format!(
        "{}{}{}",
        sm_kernel::userlib::SYSCALL_DEFS,
        sm_kernel::userlib::LIBC_CODE,
        sm_kernel::userlib::LIBC_DATA
    );
    let mut g = c.benchmark_group("asm");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("assemble_guest_libc", |b| {
        b.iter(|| sm_asm::assemble(&src, 0x0804_8000).unwrap());
    });
    g.finish();
}

fn bench_split(c: &mut Criterion) {
    // One full fault-and-reload round trip: run a small program that
    // alternates code and data touches on split pages.
    let prog = ProgramBuilder::new("/bin/touch")
        .code(
            "_start:
                mov ecx, 50
            t_loop:
                mov eax, [buf]
                add eax, 1
                mov [buf], eax
                dec ecx
                jnz t_loop
                mov ebx, 0
                call exit",
        )
        .data("buf: .word 0")
        .build()
        .unwrap();
    let mut g = c.benchmark_group("protection");
    g.bench_function("run_program_unprotected", |b| {
        b.iter_batched(
            || {
                let mut k = Kernel::with_engine(Box::new(NullEngine));
                k.spawn(&prog.image).unwrap();
                k
            },
            |mut k| k.run(10_000_000),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("run_program_split_memory", |b| {
        b.iter_batched(
            || {
                let mut k =
                    Kernel::with_engine(Box::new(SplitMemEngine::new(SplitMemConfig::default())));
                k.spawn(&prog.image).unwrap();
                k
            },
            |mut k| k.run(10_000_000),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_attack(c: &mut Criterion) {
    let mut g = c.benchmark_group("attack");
    g.sample_size(20);
    g.bench_function("wilander_retaddr_stack_split", |b| {
        let case = sm_attacks::wilander::Case {
            technique: sm_attacks::wilander::Technique::ReturnAddress,
            location: sm_attacks::wilander::InjectLocation::Stack,
        };
        b.iter(|| sm_attacks::wilander::run_case(case, &Protection::SplitMem(ResponseMode::Break)));
    });
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    let data = vec![0xABu8; 64 * 1024];
    let mut g = c.benchmark_group("verify");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_64k", |b| {
        b.iter(|| sha256(&data));
    });
    g.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(20);
    g.bench_function("spawn_teardown_split", |b| {
        let prog = ProgramBuilder::new("/bin/true")
            .code("_start: mov ebx, 0\n call exit")
            .build()
            .unwrap();
        b.iter_batched(
            || {
                let mut k = Kernel::new(
                    MachineConfig::default(),
                    KernelConfig::default(),
                    Box::new(SplitMemEngine::new(SplitMemConfig::default())),
                );
                k.spawn(&prog.image).unwrap();
                k
            },
            |mut k| k.run(10_000_000),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cpu,
    bench_asm,
    bench_split,
    bench_attack,
    bench_verify,
    bench_kernel
);
criterion_main!(benches);
