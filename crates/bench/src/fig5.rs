//! Fig. 5: "Demonstration of response modes against the WU-FTPD exploit"
//! (paper §6.1.3).
//!
//! * (a) break mode — the exploit fails, the daemon crashes;
//! * (b) observe mode — the exploit proceeds and gets its root shell, but
//!   the injection was logged first;
//! * (c) forensics mode — the log captures the first 20 bytes of injected
//!   shellcode (the NOP sled is recognisable, as in the paper's
//!   screenshot), rendered with the disassembler;
//! * (d) Sebek-style log during observe mode — the attacker's shell
//!   commands are captured after the detection event;
//! * plus the §6.1.3 demo: substituting the paper's `exit(0)` forensic
//!   shellcode makes the compromised daemon terminate gracefully.

use sm_attacks::harness::{drive_shell, Protection};
use sm_attacks::real_world::run_wuftpd_with;
use sm_attacks::shellcode::PAPER_EXIT0;
use sm_attacks::AttackOutcome;
use sm_core::engine::SplitMemConfig;
use sm_kernel::events::{Event, ResponseMode};

/// Results of the four demonstrations.
#[derive(Debug)]
pub struct Fig5 {
    /// (a) outcome under break mode.
    pub break_outcome: AttackOutcome,
    /// (b) outcome under observe mode.
    pub observe_outcome: AttackOutcome,
    /// (b) the attacker's interactive transcript under observe mode.
    pub observe_transcript: String,
    /// (b) detections logged before the attack proceeded.
    pub observe_detections: usize,
    /// (c) captured shellcode bytes (forensics mode).
    pub forensics_dump: Vec<u8>,
    /// (c) the dump, disassembled.
    pub forensics_disasm: Vec<String>,
    /// (c) the §4.5.3 fingerprint of the dump.
    pub forensics_fingerprint: sm_core::forensics::Fingerprint,
    /// (d) Sebek-captured attacker input lines during observe mode.
    pub sebek_log: Vec<String>,
    /// §6.1.3: daemon exit status after the `exit(0)` forensic shellcode
    /// was substituted (0 = "terminates without a segmentation fault").
    pub forensic_substitution_exit: Option<i32>,
}

/// Run all four demonstrations.
pub fn run() -> Fig5 {
    // (a) break mode.
    let (break_report, _, _) = run_wuftpd_with(&Protection::SplitMem(ResponseMode::Break));

    // (b) + (d) observe mode with honeypot logging.
    let observe_cfg = SplitMemConfig {
        response: ResponseMode::Observe,
        honeypot_on_detect: true,
        ..SplitMemConfig::default()
    };
    let (observe_report, mut k, conn) = run_wuftpd_with(&Protection::SplitMemCustom(observe_cfg));
    let observe_transcript = match (&observe_report.outcome, conn) {
        (AttackOutcome::ShellSpawned, Some(c)) => {
            // The report already drove `id`/`whoami`; type some more for the
            // Sebek capture, like the paper's screenshot session.
            drive_shell(&mut k, &c, &["id", "uname", "exit"])
        }
        _ => String::new(),
    };
    // Sebek captures every read — including byte-at-a-time line reads and
    // the binary stage-two payload. Coalesce into printable lines, the way
    // the paper's screenshot presents the attacker's keystrokes.
    let mut sebek_bytes = Vec::new();
    for e in k.sys.events.iter() {
        if let Event::SebekRead { data, .. } = e {
            sebek_bytes.extend_from_slice(data);
        }
    }
    let sebek_log: Vec<String> = String::from_utf8_lossy(&sebek_bytes)
        .lines()
        .map(|l| {
            l.chars()
                .filter(|c| c.is_ascii_graphic() || *c == ' ')
                .collect::<String>()
        })
        .filter(|l: &String| l.len() >= 2)
        .collect();
    let observe_transcript = if observe_transcript.is_empty() {
        observe_report.transcript.clone().unwrap_or_default()
    } else {
        observe_transcript
    };

    // (c) forensics mode: dump only (no substitution).
    let forensics_cfg = SplitMemConfig {
        response: ResponseMode::Forensics,
        ..SplitMemConfig::default()
    };
    let (_, kf, _) = run_wuftpd_with(&Protection::SplitMemCustom(forensics_cfg));
    let forensics_dump = kf
        .sys
        .events
        .iter()
        .find_map(|e| match e {
            Event::AttackDetected { shellcode, .. } if !shellcode.is_empty() => {
                Some(shellcode.clone())
            }
            _ => None,
        })
        .unwrap_or_default();
    let forensics_disasm = sm_asm::disassemble(&forensics_dump, 0)
        .into_iter()
        .map(|l| l.text)
        .collect();
    let forensics_fingerprint = sm_core::forensics::fingerprint(&forensics_dump);

    // §6.1.3: substitute the paper's exit(0) forensic shellcode.
    let subst_cfg = SplitMemConfig {
        response: ResponseMode::Forensics,
        forensic_shellcode: Some(PAPER_EXIT0.to_vec()),
        ..SplitMemConfig::default()
    };
    let (_, ks, _) = run_wuftpd_with(&Protection::SplitMemCustom(subst_cfg));
    let forensic_substitution_exit = ks.sys.events.iter().find_map(|e| match e {
        Event::ProcessExit { code, .. } => Some(*code),
        _ => None,
    });

    Fig5 {
        break_outcome: break_report.outcome,
        observe_outcome: observe_report.outcome,
        observe_transcript,
        observe_detections: observe_report.detections,
        forensics_dump,
        forensics_disasm,
        forensics_fingerprint,
        sebek_log,
        forensic_substitution_exit,
    }
}

/// Flight-record the break-mode exploit (`--trace` in the Fig. 5 bin):
/// re-run demonstration (a) with every trace layer armed and render the
/// tail of the ring — the Algorithm 1→3 sequence around the detection —
/// after validating the whole stream against the ordering protocol.
pub fn trace_demo() -> String {
    use sm_machine::trace::{check_order, mask};
    let (report, k, _) = sm_attacks::real_world::run_wuftpd_traced_on(
        &Protection::SplitMem(ResponseMode::Break),
        sm_machine::TlbPreset::default(),
        mask::ALL,
    );
    let tracer = &k.sys.machine.tracer;
    let records = tracer.snapshot();
    // The daemon is still serving when the demo stops driving it, so the
    // stream is validated as an incomplete run (armed windows may outlive
    // the captured prefix; a *violation* here would still surface).
    let problems = check_order(&records, tracer.truncated(), false);
    let mut out = String::new();
    out.push_str(&format!(
        "(a) break mode, flight-recorded: outcome {:?}, {} trace events ({} dropped), ordering {}\n",
        report.outcome,
        tracer.emitted(),
        tracer.dropped(),
        if problems.is_empty() {
            "clean".to_string()
        } else {
            format!("VIOLATED: {}", problems.join("; "))
        },
    ));
    out.push_str("    last events of the ring:\n");
    for r in tracer.tail(16) {
        out.push_str(&format!("      {}\n", r.to_json()));
    }
    out
}

/// Render the demo like the paper's four screenshots.
pub fn render(f: &Fig5) -> String {
    let mut out = String::new();
    out.push_str("(a) break mode\n");
    out.push_str(&format!("    exploit outcome: {:?}\n\n", f.break_outcome));
    out.push_str("(b) observe mode\n");
    out.push_str(&format!(
        "    exploit outcome: {:?} ({} detection(s) logged first)\n",
        f.observe_outcome, f.observe_detections
    ));
    for line in f.observe_transcript.lines() {
        out.push_str(&format!("    attacker session: {line}\n"));
    }
    out.push_str("\n(c) forensics mode — first bytes of injected shellcode\n    ");
    for b in &f.forensics_dump {
        out.push_str(&format!("{b:02x} "));
    }
    out.push('\n');
    for line in &f.forensics_disasm {
        out.push_str(&format!("      {line}\n"));
    }
    out.push_str(&format!(
        "    fingerprint: {} (sled {} bytes, {})\n",
        &f.forensics_fingerprint.digest_hex()[..16],
        f.forensics_fingerprint.nop_sled,
        f.forensics_fingerprint.class.describe()
    ));
    out.push_str("\n(d) Sebek log during observe mode\n");
    for line in &f.sebek_log {
        out.push_str(&format!("    [sebek] {line}\n"));
    }
    out.push_str(&format!(
        "\n§6.1.3 forensic shellcode substitution (exit(0)): daemon exit status {:?}\n",
        f.forensic_substitution_exit
    ));
    out
}
