//! Fleet-scale multi-tenant simulation.
//!
//! Runs hundreds-to-thousands of tenants across many small kernel
//! instances ("cells"), each cell hosting a handful of co-tenants whose
//! requests contend for one scheduler, one frame pool and one TLB pair —
//! the multi-tenancy is real, not simulated. A seeded open-loop arrival
//! stream ([`arrivals`]) drives per-tenant spawn/reap churn over mixed
//! httpd/gzip/nbench/attacker populations ([`guests`]), and the report
//! aggregates per-tenant detection rates, latency percentiles
//! ([`crate::hist`]), throughput and degradation events.
//!
//! # Topology and determinism
//!
//! Tenant → cell assignment is `tid / tenants_per_cell` — a pure function
//! of the config, independent of shard count. A *shard* is an execution
//! group: cell `i` belongs to shard `i % shards`, each shard steps its
//! cells round-robin in bounded cycle windows, and shards run
//! rayon-parallel with results merged in input order. Because cells share
//! no state, per-cell execution is bit-identical whether its shard runs
//! first, last, or concurrently — so the fleet report is byte-identical
//! across `RAYON_NUM_THREADS` *and* across shard counts for a fixed seed
//! (both pinned by `tests/fleet.rs`). Co-tenant interference lives
//! *inside* a cell, where it is deterministic by the kernel's own
//! round-robin scheduler.

pub mod arrivals;
pub mod guests;

use crate::hist::Hist;
use arrivals::Profile;
use guests::{TenantKind, VARIANTS};
use rayon::prelude::*;
use sm_core::setup::Protection;
use sm_kernel::events::Event;
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_kernel::process::Pid;
use sm_machine::{MachineConfig, TlbPreset};
use sm_rng::StdRng;
use std::collections::{BTreeMap, BTreeSet};

/// Tenant-population mix preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// 50% httpd, 20% gzip, 20% nbench, 10% attacker.
    Standard,
    /// Adds a 20% fork-bomb population (spawn/reap churn stressor).
    ForkStorm,
    /// Adds a 30% memory-hog population (OOM-degradation stressor).
    OomRamp,
}

impl Mix {
    /// Parse a CLI mix name.
    pub fn parse(s: &str) -> Option<Mix> {
        match s {
            "standard" => Some(Mix::Standard),
            "forkstorm" => Some(Mix::ForkStorm),
            "oomramp" => Some(Mix::OomRamp),
            _ => None,
        }
    }

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Mix::Standard => "standard",
            Mix::ForkStorm => "forkstorm",
            Mix::OomRamp => "oomramp",
        }
    }

    /// Deterministic kind assignment: stratified by tenant id modulo 10,
    /// so every cell-sized window of ids sees the full mix.
    pub fn kind_of(&self, tid: u32) -> TenantKind {
        match (self, tid % 10) {
            (Mix::Standard, 0..=4) => TenantKind::Httpd,
            (Mix::Standard, 5..=6) => TenantKind::Gzip,
            (Mix::Standard, 7..=8) => TenantKind::Nbench,
            (Mix::Standard, _) => TenantKind::Attacker,
            (Mix::ForkStorm, 0..=3) => TenantKind::Httpd,
            (Mix::ForkStorm, 4..=5) => TenantKind::Gzip,
            (Mix::ForkStorm, 6) => TenantKind::Nbench,
            (Mix::ForkStorm, 7..=8) => TenantKind::ForkBomb,
            (Mix::ForkStorm, _) => TenantKind::Attacker,
            (Mix::OomRamp, 0..=3) => TenantKind::Httpd,
            (Mix::OomRamp, 4) => TenantKind::Gzip,
            (Mix::OomRamp, 5) => TenantKind::Nbench,
            (Mix::OomRamp, 6..=8) => TenantKind::MemHog,
            (Mix::OomRamp, _) => TenantKind::Attacker,
        }
    }
}

/// Fleet run parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total tenant count.
    pub tenants: u32,
    /// Execution groups cells are distributed over (rayon-parallel).
    pub shards: u32,
    /// Tenants hosted per kernel instance.
    pub tenants_per_cell: u32,
    /// Master seed; every cell kernel and tenant stream forks from it.
    pub seed: u64,
    /// Arrival-stream shape.
    pub profile: Profile,
    /// Requests per tenant.
    pub requests_per_tenant: u32,
    /// Mean inter-arrival time per tenant, in simulated cycles.
    pub mean_interarrival: u64,
    /// Population mix.
    pub mix: Mix,
    /// Protection configuration every cell boots with.
    pub protection: Protection,
    /// TLB geometry.
    pub tlb: TlbPreset,
    /// ASID-tagged TLBs instead of flush-on-switch.
    pub asid_tlbs: bool,
    /// Physical frames per cell (small on purpose: memory pressure is a
    /// scenario, and it bounds fleet RSS at hundreds of cells).
    pub phys_frames: u32,
    /// Request latency above this counts as an SLO violation.
    pub slo_cycles: u64,
    /// Per-cell simulated-cycle budget; unserved arrivals past it count
    /// as dropped.
    pub horizon_cycles: u64,
    /// Round-robin window: how many cycles a shard advances one cell
    /// before stepping the next.
    pub window_cycles: u64,
    /// Enable per-cell tracing (PROC|DETECT) and stream-order checking.
    pub trace: bool,
    /// Run the structural invariant checker after every driver window
    /// (slow; tests and chaos scenarios).
    pub check_invariants: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            tenants: 500,
            shards: 4,
            tenants_per_cell: 5,
            seed: 42,
            profile: Profile::Poisson,
            requests_per_tenant: 6,
            mean_interarrival: 120_000,
            mix: Mix::Standard,
            protection: Protection::SplitMem(sm_kernel::events::ResponseMode::Break),
            tlb: TlbPreset::default(),
            asid_tlbs: false,
            phys_frames: 512,
            slo_cycles: 400_000,
            horizon_cycles: 2_000_000_000,
            window_cycles: 250_000,
            trace: false,
            check_invariants: false,
        }
    }
}

impl FleetConfig {
    /// Number of cells this config spreads its tenants over.
    pub fn cells(&self) -> u32 {
        self.tenants.div_ceil(self.tenants_per_cell.max(1))
    }

    /// One-line config echo pinned at the top of the report (part of the
    /// byte-identity surface).
    pub fn header(&self) -> String {
        format!(
            "fleet: tenants={} cells={} shards={} per-cell={} seed={} profile={} reqs={} mean={} mix={} protection={} tlb={:?} asid={} frames={} slo={}",
            self.tenants,
            self.cells(),
            self.shards,
            self.tenants_per_cell,
            self.seed,
            self.profile.label(),
            self.requests_per_tenant,
            self.mean_interarrival,
            self.mix.label(),
            self.protection.label(),
            self.tlb,
            self.asid_tlbs,
            self.phys_frames,
            self.slo_cycles,
        )
    }
}

/// Per-tenant outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Global tenant id.
    pub tid: u32,
    /// Workload kind.
    pub kind: TenantKind,
    /// Requests that ran to process exit.
    pub completed: u32,
    /// Requests never served (horizon hit, or still in flight at it).
    pub dropped: u32,
    /// Spawns rejected outright (out of memory at image load).
    pub spawn_failures: u32,
    /// Injection attempts (== completed, attacker tenants only).
    pub attempts: u32,
    /// Requests during which the engine logged `AttackDetected`.
    pub detected: u32,
    /// Requests whose injected payload actually executed (exit status ==
    /// the payload marker) — must be 0 under split protection.
    pub injected: u32,
    /// OOM kills + split-degradation events attributed to this tenant.
    pub degradations: u32,
    /// Completed requests whose latency exceeded the SLO.
    pub slo_violations: u32,
    /// Arrival-to-exit latency distribution, in cycles.
    pub latency: Hist,
}

/// Whole-fleet outcome.
#[derive(Debug)]
pub struct FleetResult {
    /// Config echo.
    pub header: String,
    /// Per-tenant reports, ordered by tenant id.
    pub tenants: Vec<TenantReport>,
    /// Largest per-cell final cycle count (the fleet's simulated
    /// duration: cells run concurrently in simulated time).
    pub duration_cycles: u64,
    /// Structural invariant violations (only populated with
    /// [`FleetConfig::check_invariants`]); must stay empty.
    pub violations: Vec<String>,
    /// Trace stream-order violations (only with [`FleetConfig::trace`]).
    pub trace_violations: Vec<String>,
    /// FNV-1a digest of the cross-cell merged event timeline, ordered by
    /// `(cycles, cell, intra-cell index)` — the cross-shard event-order
    /// check: any reordering, dropped event or cycle drift moves it.
    pub timeline_digest: u64,
}

impl FleetResult {
    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed as u64).sum()
    }

    /// Total dropped requests.
    pub fn dropped(&self) -> u64 {
        self.tenants.iter().map(|t| t.dropped as u64).sum()
    }

    /// Merged latency histogram across all tenants.
    pub fn merged_latency(&self) -> Hist {
        let mut h = Hist::new();
        for t in &self.tenants {
            h.merge(&t.latency);
        }
        h
    }

    /// Completed requests per million simulated cycles.
    pub fn req_per_mcycle(&self) -> u64 {
        if self.duration_cycles == 0 {
            return 0;
        }
        self.completed() * 1_000_000 / self.duration_cycles
    }

    /// `(detected, attempts)` over the attacker population.
    pub fn detection(&self) -> (u64, u64) {
        let det = self.tenants.iter().map(|t| t.detected as u64).sum();
        let att = self.tenants.iter().map(|t| t.attempts as u64).sum();
        (det, att)
    }

    /// Total degradation events (OOM kills, split degradations, spawn
    /// rejections).
    pub fn degradations(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.degradations as u64 + t.spawn_failures as u64)
            .sum()
    }

    /// Aggregate report: config header, per-kind table, fleet totals.
    /// Integer-only arithmetic end to end, so the string is byte-identical
    /// across platforms, thread counts and shard counts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header);
        out.push('\n');
        out.push_str(&format!(
            "{:<9} {:>7} {:>6} {:>5} {:>5} {:>9} {:>9} {:>9} {:>8} {:>9} {:>6}\n",
            "kind",
            "tenants",
            "reqs",
            "drop",
            "fail",
            "p50",
            "p95",
            "p99",
            "slo-miss",
            "det/att",
            "degr"
        ));
        for kind in TenantKind::ALL {
            let ts: Vec<&TenantReport> = self.tenants.iter().filter(|t| t.kind == kind).collect();
            if ts.is_empty() {
                continue;
            }
            let mut h = Hist::new();
            for t in &ts {
                h.merge(&t.latency);
            }
            let reqs: u64 = ts.iter().map(|t| t.completed as u64).sum();
            let drop: u64 = ts.iter().map(|t| t.dropped as u64).sum();
            let fail: u64 = ts.iter().map(|t| t.spawn_failures as u64).sum();
            let slo: u64 = ts.iter().map(|t| t.slo_violations as u64).sum();
            let det: u64 = ts.iter().map(|t| t.detected as u64).sum();
            let att: u64 = ts.iter().map(|t| t.attempts as u64).sum();
            let degr: u64 = ts.iter().map(|t| t.degradations as u64).sum();
            out.push_str(&format!(
                "{:<9} {:>7} {:>6} {:>5} {:>5} {:>9} {:>9} {:>9} {:>8} {:>9} {:>6}\n",
                kind.label(),
                ts.len(),
                reqs,
                drop,
                fail,
                h.percentile(50),
                h.percentile(95),
                h.percentile(99),
                slo,
                format!("{det}/{att}"),
                degr,
            ));
        }
        let all = self.merged_latency();
        let (det, att) = self.detection();
        out.push_str(&format!(
            "total: {} completed, {} dropped, p50={} p95={} p99={} cycles, {} req/Mcycle over {} cycles, detection {det}/{att}, {} degradations, timeline digest {:016x}\n",
            self.completed(),
            self.dropped(),
            all.percentile(50),
            all.percentile(95),
            all.percentile(99),
            self.req_per_mcycle(),
            self.duration_cycles,
            self.degradations(),
            self.timeline_digest,
        ));
        if !self.violations.is_empty() {
            out.push_str(&format!(
                "INVARIANT VIOLATIONS: {}\n",
                self.violations.len()
            ));
        }
        if !self.trace_violations.is_empty() {
            out.push_str(&format!(
                "TRACE-ORDER VIOLATIONS: {}\n",
                self.trace_violations.len()
            ));
        }
        out
    }

    /// One line per tenant (the full per-tenant report; also part of the
    /// byte-identity surface pinned by the determinism tests).
    pub fn render_tenants(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            out.push_str(&t.render_line());
        }
        out
    }
}

impl TenantReport {
    /// This tenant's report line.
    pub fn render_line(&self) -> String {
        format!(
            "tenant {:>5} {:<9} reqs={:<4} drop={:<3} fail={:<3} p50={:<8} p95={:<8} p99={:<8} slo_miss={:<3} det={}/{} inj={} degr={}\n",
            self.tid,
            self.kind.label(),
            self.completed,
            self.dropped,
            self.spawn_failures,
            self.latency.percentile(50),
            self.latency.percentile(95),
            self.latency.percentile(99),
            self.slo_violations,
            self.detected,
            self.attempts,
            self.injected,
            self.degradations,
        )
    }
}

// ---- per-cell driver --------------------------------------------------------

struct TenantState {
    report: TenantReport,
    /// Absolute arrival cycles, precomputed.
    arrivals: Vec<u64>,
    /// Next unserved arrival index.
    next: usize,
    /// Root pid and scheduled-arrival cycle of the in-flight request.
    in_flight: Option<(u32, u64)>,
    /// Image index into the shared image table.
    image: usize,
}

/// Small FNV-1a step over a byte slice.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Cell {
    id: u32,
    k: Kernel,
    tenants: Vec<TenantState>,
    /// Root pid → local tenant index (fork-bomb children are deliberately
    /// absent: their lifecycle is internal to a request).
    owner: BTreeMap<u32, usize>,
    /// Pids with an `AttackDetected` logged for the current request.
    detected_pids: BTreeSet<u32>,
    ev_cursor: usize,
    horizon: u64,
    window_end: u64,
    done: bool,
    check_invariants: bool,
    violations: Vec<String>,
    trace_violations: Vec<String>,
    /// FNV-1a over this cell's `(cycles, event-kind, pid, code)` stream.
    timeline: Vec<(u64, u64)>,
}

impl Cell {
    fn new(cfg: &FleetConfig, id: u32) -> Cell {
        let kconfig = KernelConfig {
            aslr_stack: false,
            seed: cfg
                .seed
                .wrapping_add((id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            asid_tlbs: cfg.asid_tlbs,
            trace: if cfg.trace {
                sm_trace::mask::PROC | sm_trace::mask::DETECT
            } else {
                0
            },
            trace_capacity: if cfg.trace { 4096 } else { 0 },
            ..KernelConfig::default()
        };
        let mconfig = MachineConfig {
            phys_frames: cfg.phys_frames,
            nx_enabled: cfg.protection.needs_nx(),
            tlb: cfg.tlb,
            ..MachineConfig::default()
        };
        let k = Kernel::new(mconfig, kconfig, cfg.protection.engine());
        let lo = id * cfg.tenants_per_cell;
        let hi = (lo + cfg.tenants_per_cell).min(cfg.tenants);
        let tenants = (lo..hi)
            .map(|tid| {
                let kind = cfg.mix.kind_of(tid);
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ (tid as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
                );
                let arrivals = arrivals::schedule(
                    &mut rng,
                    cfg.profile,
                    cfg.requests_per_tenant,
                    cfg.mean_interarrival,
                );
                let kind_idx = TenantKind::ALL.iter().position(|k| *k == kind).unwrap();
                TenantState {
                    report: TenantReport {
                        tid,
                        kind,
                        completed: 0,
                        dropped: 0,
                        spawn_failures: 0,
                        attempts: 0,
                        detected: 0,
                        injected: 0,
                        degradations: 0,
                        slo_violations: 0,
                        latency: Hist::new(),
                    },
                    arrivals,
                    next: 0,
                    in_flight: None,
                    image: kind_idx * VARIANTS as usize + (tid % VARIANTS) as usize,
                }
            })
            .collect();
        Cell {
            id,
            k,
            tenants,
            owner: BTreeMap::new(),
            detected_pids: BTreeSet::new(),
            ev_cursor: 0,
            horizon: cfg.horizon_cycles,
            window_end: 0,
            done: false,
            check_invariants: cfg.check_invariants,
            violations: Vec::new(),
            trace_violations: Vec::new(),
            timeline: Vec::new(),
        }
    }

    /// Spawn every due arrival whose tenant is idle. Returns the earliest
    /// future arrival cycle over idle tenants, if any.
    fn spawn_due(&mut self, images: &[ExecImage]) -> Option<u64> {
        let now = self.k.sys.machine.cycles;
        let mut next_idle_arrival: Option<u64> = None;
        for ti in 0..self.tenants.len() {
            loop {
                let t = &self.tenants[ti];
                if t.in_flight.is_some() || t.next >= t.arrivals.len() {
                    break;
                }
                let due = t.arrivals[t.next];
                if due > now {
                    next_idle_arrival = Some(next_idle_arrival.map_or(due, |m: u64| m.min(due)));
                    break;
                }
                let image = &images[t.image];
                match self.k.spawn(image) {
                    Ok(pid) => {
                        let t = &mut self.tenants[ti];
                        t.in_flight = Some((pid.0, due));
                        t.next += 1;
                        self.owner.insert(pid.0, ti);
                        break;
                    }
                    Err(_) => {
                        // Out of frames (or a malformed-image bug): the
                        // request is consumed and counted as a
                        // degradation, the tenant moves on.
                        let t = &mut self.tenants[ti];
                        t.report.spawn_failures += 1;
                        t.next += 1;
                    }
                }
            }
        }
        next_idle_arrival
    }

    /// Drain the kernel event log from the cursor: attribute exits,
    /// detections and degradations to tenants and fold the stream into
    /// the cell timeline.
    fn drain_events(&mut self, slo: u64) {
        // Copy out the compact facts first: attributing exits calls
        // `Kernel::reap`, which needs `&mut` on the kernel that owns the
        // log.
        let facts: Vec<(u64, u8, u32, i32)> = self.k.sys.events.entries()[self.ev_cursor..]
            .iter()
            .filter_map(|(cyc, e)| match e {
                Event::ProcessExit { pid, code } => Some((*cyc, 0u8, pid.0, *code)),
                Event::AttackDetected { pid, .. } => Some((*cyc, 1u8, pid.0, 0)),
                Event::SplitDegraded { pid, .. } => Some((*cyc, 2u8, pid.0, 0)),
                _ => None,
            })
            .collect();
        self.ev_cursor = self.k.sys.events.entries().len();
        for (cyc, kind, pid, code) in facts {
            let mut h = 0xcbf29ce484222325u64;
            h = fnv1a(h, &cyc.to_le_bytes());
            h = fnv1a(h, &[kind]);
            h = fnv1a(h, &pid.to_le_bytes());
            h = fnv1a(h, &code.to_le_bytes());
            self.timeline.push((cyc, h));
            match kind {
                1 => {
                    self.detected_pids.insert(pid);
                }
                2 => {
                    if let Some(&ti) = self.owner.get(&pid) {
                        self.tenants[ti].report.degradations += 1;
                    }
                }
                _ => {
                    let Some(ti) = self.owner.remove(&pid) else {
                        // A fork-bomb child: internal to its request.
                        self.detected_pids.remove(&pid);
                        continue;
                    };
                    let t = &mut self.tenants[ti];
                    let (_, arrival) = t.in_flight.take().expect("exit without in-flight");
                    let latency = cyc.saturating_sub(arrival);
                    t.report.latency.record(latency);
                    t.report.completed += 1;
                    if latency > slo {
                        t.report.slo_violations += 1;
                    }
                    if t.report.kind == TenantKind::Attacker {
                        t.report.attempts += 1;
                        if self.detected_pids.contains(&pid) {
                            t.report.detected += 1;
                        }
                        if code == crate::interference::PAYLOAD_MARKER as i32 {
                            t.report.injected += 1;
                        }
                    }
                    if code == 128 + 9 {
                        // SIGKILL: the kernel's OOM policy.
                        t.report.degradations += 1;
                    }
                    self.detected_pids.remove(&pid);
                    self.k.reap(Pid(pid));
                }
            }
        }
    }

    /// Advance this cell until `window_end`, the horizon, or completion.
    fn pump(&mut self, images: &[ExecImage], slo: u64) {
        while !self.done && self.k.sys.machine.cycles < self.window_end {
            let next_idle_arrival = self.spawn_due(images);
            let now = self.k.sys.machine.cycles;
            if now >= self.horizon {
                self.finish_at_horizon();
                break;
            }
            if self.k.sys.live_process_count() == 0 {
                match next_idle_arrival {
                    None => {
                        // Nothing running, nothing pending anywhere.
                        self.done = true;
                        break;
                    }
                    Some(due) => {
                        // Idle: fast-forward the simulated clock to the
                        // next arrival (bounded by window and horizon).
                        let target = due.min(self.window_end).min(self.horizon);
                        if target > now {
                            self.k.sys.charge(target - now);
                        }
                        if target == due {
                            continue;
                        }
                        break;
                    }
                }
            }
            // Run until the next idle tenant's arrival would be due, the
            // window closes, or the horizon hits — whichever is first.
            let until = self
                .window_end
                .min(self.horizon)
                .min(next_idle_arrival.unwrap_or(u64::MAX));
            let budget = until.saturating_sub(now).max(1);
            let _ = self.k.run(budget);
            self.drain_events(slo);
            if self.check_invariants {
                for v in sm_core::invariants::check(&self.k) {
                    self.violations.push(format!("cell {}: {v}", self.id));
                }
            }
        }
        if !self.done && self.k.sys.machine.cycles >= self.horizon {
            self.finish_at_horizon();
        }
    }

    /// Horizon hit: everything unserved is dropped.
    fn finish_at_horizon(&mut self) {
        for t in &mut self.tenants {
            let remaining = (t.arrivals.len() - t.next) as u32;
            t.report.dropped += remaining + u32::from(t.in_flight.is_some());
            t.next = t.arrivals.len();
            t.in_flight = None;
        }
        self.done = true;
    }

    /// Post-run trace stream-order check (PR 5 validator, per cell).
    fn check_trace(&mut self) {
        let recs = self.k.sys.machine.tracer.snapshot();
        if recs.is_empty() {
            return;
        }
        let truncated = self.k.sys.machine.tracer.truncated();
        for v in sm_trace::check_order(&recs, truncated, true) {
            self.trace_violations.push(format!("cell {}: {v}", self.id));
        }
    }
}

// ---- fleet runner -----------------------------------------------------------

fn build_images() -> Vec<ExecImage> {
    let mut out = Vec::new();
    for kind in TenantKind::ALL {
        for v in 0..VARIANTS {
            out.push(guests::build_image(kind, v));
        }
    }
    out
}

/// Drive one shard's cells round-robin in bounded cycle windows until all
/// are done.
fn drive_shard(cells: &mut [Cell], images: &[ExecImage], cfg: &FleetConfig) {
    loop {
        let mut all_done = true;
        for cell in cells.iter_mut() {
            if cell.done {
                continue;
            }
            cell.window_end = cell.k.sys.machine.cycles + cfg.window_cycles;
            cell.pump(images, cfg.slo_cycles);
            if !cell.done {
                all_done = false;
            }
        }
        if all_done {
            return;
        }
    }
}

fn run_inner(cfg: &FleetConfig, parallel: bool) -> FleetResult {
    let images = build_images();
    let cells: Vec<Cell> = (0..cfg.cells()).map(|c| Cell::new(cfg, c)).collect();
    // Shard s owns cells {s, s+shards, s+2*shards, ...}: an execution
    // grouping only — cells share no state, so the grouping (and the
    // thread that happens to run it) cannot change any cell's outcome.
    let shards = cfg.shards.max(1) as usize;
    let mut groups: Vec<Vec<Cell>> = (0..shards).map(|_| Vec::new()).collect();
    for (i, cell) in cells.into_iter().enumerate() {
        groups[i % shards].push(cell);
    }
    let driven: Vec<Vec<Cell>> = if parallel {
        groups
            .into_par_iter()
            .map(|mut g| {
                drive_shard(&mut g, &images, cfg);
                g
            })
            .collect()
    } else {
        groups
            .into_iter()
            .map(|mut g| {
                drive_shard(&mut g, &images, cfg);
                g
            })
            .collect()
    };
    let mut cells: Vec<Cell> = driven.into_iter().flatten().collect();
    cells.sort_by_key(|c| c.id);
    if cfg.trace {
        for cell in &mut cells {
            cell.check_trace();
        }
    }
    // Merge in cell order (deterministic regardless of which thread ran
    // what). The cross-cell timeline is ordered by (cycles, cell, index):
    // a stable merge of per-cell streams that any event reordering,
    // loss or cycle drift perturbs.
    let mut merged: Vec<(u64, u32, usize, u64)> = Vec::new();
    for cell in &cells {
        for (i, &(cyc, h)) in cell.timeline.iter().enumerate() {
            merged.push((cyc, cell.id, i, h));
        }
    }
    merged.sort();
    let mut digest = 0xcbf29ce484222325u64;
    for (cyc, cell, _, h) in &merged {
        digest = fnv1a(digest, &cyc.to_le_bytes());
        digest = fnv1a(digest, &cell.to_le_bytes());
        digest = fnv1a(digest, &h.to_le_bytes());
    }
    let duration_cycles = cells
        .iter()
        .map(|c| c.k.sys.machine.cycles)
        .max()
        .unwrap_or(0);
    let mut tenants = Vec::with_capacity(cfg.tenants as usize);
    let mut violations = Vec::new();
    let mut trace_violations = Vec::new();
    for cell in cells {
        violations.extend(cell.violations);
        trace_violations.extend(cell.trace_violations);
        for t in cell.tenants {
            tenants.push(t.report);
        }
    }
    tenants.sort_by_key(|t| t.tid);
    FleetResult {
        header: cfg.header(),
        tenants,
        duration_cycles,
        violations,
        trace_violations,
        timeline_digest: digest,
    }
}

/// Run the fleet, rayon-parallel across shards. Byte-identical to
/// [`run_serial`] (and to itself under any `RAYON_NUM_THREADS` or shard
/// count) for a fixed config.
pub fn run(cfg: &FleetConfig) -> FleetResult {
    run_inner(cfg, true)
}

/// Single-threaded reference runner the parallel one is tested against.
pub fn run_serial(cfg: &FleetConfig) -> FleetResult {
    run_inner(cfg, false)
}

// ---- mid-run shard-kill probe -----------------------------------------------

/// Outcome of [`shard_kill_probe`]: a cell killed mid-run (snapshot, drop,
/// restore from bytes) must be indistinguishable from one that ran
/// uninterrupted.
#[derive(Debug)]
pub struct ShardKillProbe {
    /// The kill actually happened mid-run (the run was long enough).
    pub killed: bool,
    /// Per-tenant reports byte-identical to the uninterrupted run.
    pub reports_identical: bool,
    /// Event timelines identical to the uninterrupted run.
    pub timeline_identical: bool,
    /// Pre-kill + post-restore trace streams splice cleanly (no seq gap or
    /// overlap) and equal the uninterrupted run's trace.
    pub splice_ok: bool,
    /// Invariant violations seen in either run (must be empty).
    pub violations: Vec<String>,
    /// Human-readable mismatch details (empty on success).
    pub detail: String,
}

impl ShardKillProbe {
    /// All checks green.
    pub fn ok(&self) -> bool {
        self.killed
            && self.reports_identical
            && self.timeline_identical
            && self.splice_ok
            && self.violations.is_empty()
    }
}

fn drive_cell_to_completion(cell: &mut Cell, images: &[ExecImage], cfg: &FleetConfig) {
    while !cell.done {
        cell.window_end = cell.k.sys.machine.cycles + cfg.window_cycles;
        cell.pump(images, cfg.slo_cycles);
    }
}

/// Kill one kernel cell mid-run — serialize it, drop it, restore from the
/// bytes — and continue; compare everything observable against an
/// uninterrupted twin. Exercises the chaos claim that a fleet survives
/// losing a shard: the snapshot round-trip is exact, the driver's external
/// bookkeeping (arrival cursors, event cursor) stays valid because the
/// event log is part of the snapshot, and the trace seq counter resumes
/// where it stopped so the pre/post streams splice.
///
/// The config must describe a single cell (`cells() == 1`) with `trace`
/// enabled; `kill_at_window` picks which driver window the kill lands
/// after (1-based).
pub fn shard_kill_probe(cfg: &FleetConfig, kill_at_window: u32) -> ShardKillProbe {
    assert_eq!(cfg.cells(), 1, "shard-kill probe drives exactly one cell");
    assert!(
        cfg.trace,
        "shard-kill probe needs tracing for the splice check"
    );
    let images = build_images();

    // Uninterrupted twin.
    let mut a = Cell::new(cfg, 0);
    drive_cell_to_completion(&mut a, &images, cfg);
    let ref_trace = a.k.sys.machine.tracer.snapshot();

    // Interrupted run: same cell, killed after `kill_at_window` windows.
    let mut b = Cell::new(cfg, 0);
    let mut pre: Vec<sm_trace::TraceRecord> = Vec::new();
    let mut killed = false;
    let mut window = 0u32;
    while !b.done {
        b.window_end = b.k.sys.machine.cycles + cfg.window_cycles;
        b.pump(&images, cfg.slo_cycles);
        window += 1;
        if window == kill_at_window && !b.done {
            pre = b.k.sys.machine.tracer.snapshot();
            let bytes = sm_kernel::snapshot::save(&b.k);
            let restored = sm_kernel::snapshot::restore(&bytes, cfg.protection.engine())
                .expect("own snapshot restores");
            b.k = restored; // the old kernel is dropped here
            killed = true;
        }
    }
    let post = b.k.sys.machine.tracer.snapshot();

    let mut detail = String::new();
    let a_reports: String = a.tenants.iter().map(|t| t.report.render_line()).collect();
    let b_reports: String = b.tenants.iter().map(|t| t.report.render_line()).collect();
    let reports_identical = a_reports == b_reports;
    if !reports_identical {
        detail.push_str(&format!(
            "tenant reports diverged:\n--- uninterrupted\n{a_reports}--- killed+restored\n{b_reports}"
        ));
    }
    let timeline_identical = a.timeline == b.timeline;
    if !timeline_identical {
        detail.push_str(&format!(
            "event timelines diverged: {} vs {} entries\n",
            a.timeline.len(),
            b.timeline.len()
        ));
    }
    let splice_ok = if killed {
        match sm_trace::splice(&[pre, post]) {
            Ok(spliced) => {
                let eq = spliced == ref_trace;
                if !eq {
                    detail.push_str(&format!(
                        "spliced trace != uninterrupted trace ({} vs {} records)\n",
                        spliced.len(),
                        ref_trace.len()
                    ));
                }
                eq
            }
            Err(e) => {
                detail.push_str(&format!("splice failed: {e:?}\n"));
                false
            }
        }
    } else {
        detail.push_str("run completed before the kill window; raise the load\n");
        false
    };
    let mut violations = Vec::new();
    violations.extend(a.violations);
    violations.extend(b.violations);
    violations.extend(a.trace_violations);
    violations.extend(b.trace_violations);
    ShardKillProbe {
        killed,
        reports_identical,
        timeline_identical,
        splice_ok,
        violations,
        detail,
    }
}
