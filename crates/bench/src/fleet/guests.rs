//! Per-request guest workers for the fleet simulator.
//!
//! Every tenant request spawns one short-lived guest process from a
//! prebuilt image; the process does its kind's work and exits, and the
//! fleet driver measures arrival-to-exit latency. Workers are written in
//! `sm-asm` assembly against the guest libc, in two work-size variants
//! per kind so co-tenants are heterogeneous.

use crate::interference::PAYLOAD_MARKER;
use sm_attacks::shellcode::{self, as_byte_directive};
use sm_kernel::image::ExecImage;
use sm_kernel::userlib::ProgramBuilder;

/// What a tenant's workload models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TenantKind {
    /// Request-handling web worker: touches a spread of data pages (log,
    /// vhost tables) then burns a short compute loop. TLB/paging heavy.
    Httpd,
    /// Compression worker: tight byte-granular checksum loop over a
    /// buffer. Data-cache/ALU heavy, few pages.
    Gzip,
    /// Numeric benchmark worker: multiply/accumulate loop. Pure ALU.
    Nbench,
    /// Code-injection attacker: copies shellcode into a writable buffer
    /// and jumps to it. Exits with [`PAYLOAD_MARKER`] iff the injected
    /// bytes actually execute.
    Attacker,
    /// Fork-bomb: fans out a wave of children and reaps them — the
    /// spawn/reap churn stressor for process-table and frame accounting.
    ForkBomb,
    /// Memory hog: grows the heap page by page, touching each page, until
    /// its quota or physical memory runs out — the OOM-degradation
    /// stressor.
    MemHog,
}

impl TenantKind {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TenantKind::Httpd => "httpd",
            TenantKind::Gzip => "gzip",
            TenantKind::Nbench => "nbench",
            TenantKind::Attacker => "attacker",
            TenantKind::ForkBomb => "forkbomb",
            TenantKind::MemHog => "memhog",
        }
    }

    /// All kinds, in report order.
    pub const ALL: [TenantKind; 6] = [
        TenantKind::Httpd,
        TenantKind::Gzip,
        TenantKind::Nbench,
        TenantKind::Attacker,
        TenantKind::ForkBomb,
        TenantKind::MemHog,
    ];
}

/// Work-size variants per kind (tenant id modulo this picks one).
pub const VARIANTS: u32 = 2;

/// Build the image for one `(kind, variant)` worker.
pub fn build_image(kind: TenantKind, variant: u32) -> ExecImage {
    let v = variant % VARIANTS;
    let program = match kind {
        TenantKind::Httpd => {
            let pages = 6 + 4 * v;
            let iters = 96 + 64 * v;
            ProgramBuilder::new("/bin/fleet_httpd")
                .code(&format!(
                    "_start:
                        mov ecx, 0
                    touch_loop:
                        mov eax, ecx
                        shl eax, 12
                        inc dword [logarea+eax]
                        inc ecx
                        cmp ecx, {pages}
                        jne touch_loop
                        mov ecx, {iters}
                        xor eax, eax
                    spin_loop:
                        add eax, ecx
                        dec ecx
                        jnz spin_loop
                        mov ebx, 0
                        call exit"
                ))
                .data(&format!(
                    ".align 4096\nlogarea: .space {}",
                    (pages + 1) * 4096
                ))
        }
        TenantKind::Gzip => {
            let len = 1024 + 1024 * v;
            ProgramBuilder::new("/bin/fleet_gzip")
                .code(&format!(
                    "_start:
                        mov esi, inbuf
                        mov ecx, {len}
                        xor edx, edx
                    z_loop:
                        movzx eax, byte [esi]
                        xor edx, eax
                        add edx, ecx
                        inc esi
                        dec ecx
                        jnz z_loop
                        mov [crc], edx
                        mov ebx, 0
                        call exit"
                ))
                .data(&format!("crc: .word 0\ninbuf: .space {len}, 0x61"))
        }
        TenantKind::Nbench => {
            let iters = 384 + 256 * v;
            ProgramBuilder::new("/bin/fleet_nbench")
                .code(&format!(
                    "_start:
                        mov ecx, {iters}
                        mov esi, 7
                    n_loop:
                        mov eax, esi
                        mov ebx, 2654435761
                        mul ebx
                        xor esi, eax
                        add esi, ecx
                        dec ecx
                        jnz n_loop
                        mov [acc], esi
                        mov ebx, 0
                        call exit"
                ))
                .data("acc: .word 0")
        }
        TenantKind::Attacker => {
            let payload = shellcode::exit_code(PAYLOAD_MARKER);
            let len = payload.len();
            // Identical shape to the interference attacker, minus the
            // fork: inject into a writable data buffer, jump to it. Under
            // split memory the fetch lands on the filler code frame and
            // the engine logs AttackDetected; unprotected, the payload
            // runs and the exit status is the marker.
            ProgramBuilder::new("/bin/fleet_attacker")
                .code(&format!(
                    "_start:
                        mov edi, buf
                        mov esi, payload
                        mov ecx, {len}
                        call memcpy
                        call buf
                        ; reached only if the jump survived without the
                        ; payload executing
                        mov ebx, 3
                        call exit"
                ))
                .data(&format!(
                    "buf: .space 64\npayload: {}",
                    as_byte_directive(&payload)
                ))
        }
        TenantKind::ForkBomb => {
            let kids = 4 + 2 * v;
            ProgramBuilder::new("/bin/fleet_forkbomb")
                .code(&format!(
                    "_start:
                        mov eax, {kids}
                        mov [kids], eax
                    fb_fork:
                        mov eax, SYS_FORK
                        int 0x80
                        cmp eax, 0
                        je fb_child
                        jl fb_done
                        dec dword [kids]
                        jnz fb_fork
                        mov eax, {kids}
                        mov [kids], eax
                    fb_reap:
                        mov eax, SYS_WAITPID
                        xor ebx, ebx
                        dec ebx
                        xor ecx, ecx
                        int 0x80
                        dec dword [kids]
                        jnz fb_reap
                    fb_done:
                        mov ebx, 0
                        call exit
                    fb_child:
                        mov ecx, 48
                    fb_spin:
                        mov [scratch], ecx
                        dec ecx
                        jnz fb_spin
                        mov ebx, 0
                        call exit"
                ))
                .data("kids: .word 0\nscratch: .word 0")
        }
        TenantKind::MemHog => {
            let pages = 24 + 16 * v;
            ProgramBuilder::new("/bin/fleet_memhog")
                .code(&format!(
                    "_start:
                        mov eax, SYS_BRK
                        xor ebx, ebx
                        int 0x80
                        mov [cur], eax
                        mov ecx, {pages}
                    mh_grow:
                        mov eax, [cur]
                        add eax, 4096
                        mov [cur], eax
                        mov ebx, eax
                        mov eax, SYS_BRK
                        int 0x80
                        cmp eax, 0
                        jl mh_done
                        ; touch the newly granted page (demand-page it in;
                        ; an OOM here kills the process with 128+SIGKILL)
                        mov eax, [cur]
                        sub eax, 4096
                        mov [eax], ecx
                        dec ecx
                        jnz mh_grow
                    mh_done:
                        mov ebx, 0
                        call exit"
                ))
                .data("cur: .word 0")
        }
    };
    program
        .build()
        .unwrap_or_else(|e| panic!("{kind:?} v{v} assembles: {e}"))
        .image
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_core::setup::Protection;
    use sm_kernel::kernel::{KernelConfig, RunExit};

    #[test]
    fn every_worker_runs_to_exit_unprotected() {
        for kind in TenantKind::ALL {
            for v in 0..VARIANTS {
                let image = build_image(kind, v);
                let mut k = Protection::Unprotected.kernel(KernelConfig {
                    aslr_stack: false,
                    ..KernelConfig::default()
                });
                let root = k.spawn(&image).expect("spawns");
                assert_eq!(k.run(40_000_000), RunExit::AllExited, "{kind:?} v{v}");
                let code = k.sys.procs.get(&root.0).and_then(|p| p.exit_code);
                let expected = if kind == TenantKind::Attacker {
                    PAYLOAD_MARKER as i32
                } else {
                    0
                };
                assert_eq!(code, Some(expected), "{kind:?} v{v}");
            }
        }
    }
}
