//! Seeded, deterministic open-loop request-arrival streams.
//!
//! Every tenant gets its own absolute-cycle arrival schedule, precomputed
//! from a per-tenant RNG fork before any kernel runs. The schedule is a
//! pure function of `(fleet seed, tenant id, profile, request count)` —
//! it cannot depend on shard layout, thread count, or anything the
//! simulation does — which is half of the fleet determinism argument.
//!
//! Integer-only sampling: the Poisson profile draws exponential
//! inter-arrivals through a precomputed 64-entry quantile table in 10.10
//! fixed point instead of calling `ln` (transcendental libm results are
//! not bit-identical across platforms; table lookups are).

use sm_rng::StdRng;

/// Arrival-stream shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Memoryless open-loop traffic: exponential inter-arrivals around
    /// the configured mean (an M/G/1 queue per tenant).
    Poisson,
    /// Closely-spaced clusters of [`BURST_SIZE`] requests separated by
    /// long idle gaps — the worst case for per-tenant queueing.
    Burst,
    /// Inter-arrival time shrinks linearly over the run from 1.5x the
    /// mean down to 0.25x — a load ramp that ends in overload.
    Ramp,
}

impl Profile {
    /// Parse a CLI profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "poisson" => Some(Profile::Poisson),
            "burst" => Some(Profile::Burst),
            "ramp" => Some(Profile::Ramp),
            _ => None,
        }
    }

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Profile::Poisson => "poisson",
            Profile::Burst => "burst",
            Profile::Ramp => "ramp",
        }
    }
}

/// Requests per burst cluster under [`Profile::Burst`].
pub const BURST_SIZE: u64 = 4;

/// Quantiles of Exp(1) at the 64 midpoints (i + 0.5)/64, in 10.10 fixed
/// point (value 1024 == mean 1.0). Sampling an index uniformly and
/// scaling by the mean inter-arrival yields exponential-ish gaps with the
/// right mean (the table's own mean is 0.9946) and a capped tail at
/// ~4.85x — integer-only and platform-exact.
const EXP_Q: [u32; 64] = [
    8, 24, 41, 58, 75, 92, 110, 128, 146, 165, 184, 203, 223, 243, 263, 284, 305, 327, 349, 372,
    395, 419, 444, 469, 494, 520, 547, 575, 603, 633, 663, 694, 726, 759, 793, 828, 865, 903, 942,
    983, 1026, 1070, 1117, 1166, 1217, 1271, 1328, 1388, 1452, 1520, 1594, 1672, 1758, 1851, 1953,
    2067, 2195, 2342, 2513, 2719, 2976, 3320, 3844, 4968,
];

/// One exponential inter-arrival draw around `mean` cycles.
fn exp_gap(rng: &mut StdRng, mean: u64) -> u64 {
    let q = EXP_Q[(rng.next_u64() >> 58) as usize] as u64;
    (mean * q) >> 10
}

/// Build a tenant's full arrival schedule: `requests` absolute cycle
/// timestamps, strictly increasing from cycle 0.
pub fn schedule(rng: &mut StdRng, profile: Profile, requests: u32, mean: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(requests as usize);
    let mut t = 0u64;
    for j in 0..requests as u64 {
        let gap = match profile {
            Profile::Poisson => exp_gap(rng, mean),
            Profile::Burst => {
                if j % BURST_SIZE == 0 {
                    // Long idle gap before the cluster, then the cluster
                    // arrives nearly back-to-back.
                    mean * BURST_SIZE + exp_gap(rng, mean)
                } else {
                    mean / 16 + (rng.next_u64() % (mean / 16).max(1))
                }
            }
            Profile::Ramp => {
                // 1.5x mean at j=0 shrinking linearly to 0.25x at the
                // final request, with +-1/8 mean of uniform jitter.
                let total = requests.max(2) as u64 - 1;
                let base = mean + mean / 2 - (j * (mean + mean / 4)) / total;
                let jitter = rng.next_u64() % (mean / 4).max(1);
                base.saturating_sub(mean / 8) + jitter
            }
        };
        t += gap.max(1);
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn schedules_are_deterministic() {
        for profile in [Profile::Poisson, Profile::Burst, Profile::Ramp] {
            let a = schedule(&mut rng(7), profile, 32, 100_000);
            let b = schedule(&mut rng(7), profile, 32, 100_000);
            assert_eq!(a, b, "{profile:?}");
        }
    }

    #[test]
    fn schedules_are_strictly_increasing() {
        for profile in [Profile::Poisson, Profile::Burst, Profile::Ramp] {
            let s = schedule(&mut rng(3), profile, 64, 50_000);
            assert_eq!(s.len(), 64);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{profile:?}");
        }
    }

    #[test]
    fn poisson_mean_is_close() {
        // Average gap over many draws should land within 15% of the mean.
        let mean = 10_000u64;
        let s = schedule(&mut rng(11), Profile::Poisson, 4000, mean);
        let avg = s.last().unwrap() / 4000;
        assert!(
            (mean * 85 / 100..=mean * 115 / 100).contains(&avg),
            "avg gap {avg} vs mean {mean}"
        );
    }

    #[test]
    fn burst_clusters_are_tight() {
        let mean = 64_000u64;
        let s = schedule(&mut rng(5), Profile::Burst, 16, mean);
        // Within a cluster the gap is < mean/8; between clusters > mean.
        for (j, w) in s.windows(2).enumerate() {
            let gap = w[1] - w[0];
            if (j as u64 + 1).is_multiple_of(BURST_SIZE) {
                assert!(gap > mean, "cluster boundary gap {gap}");
            } else {
                assert!(gap <= mean / 8, "in-cluster gap {gap}");
            }
        }
    }

    #[test]
    fn ramp_tightens() {
        let mean = 80_000u64;
        let s = schedule(&mut rng(9), Profile::Ramp, 40, mean);
        let first = s[1] - s[0];
        let last = s[39] - s[38];
        assert!(
            last < first,
            "ramp should tighten: first gap {first}, last {last}"
        );
    }
}
