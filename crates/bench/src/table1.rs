//! Table 1: "Benchmark Attacks Foiled when Code Is Injected onto the Data,
//! Bss, Heap, and Stack Segments" (paper §6.1.1).
//!
//! Each applicable Wilander-style benchmark cell is run twice: on the
//! unprotected kernel (the attack must succeed, or the cell would be
//! meaningless) and under stand-alone split memory (the paper's check
//! mark = the attack was foiled).

use rayon::prelude::*;
use sm_attacks::harness::Protection;
use sm_attacks::wilander::{self, Case, InjectLocation, Technique};
use sm_kernel::events::ResponseMode;

/// Result of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellResult {
    /// Not applicable (the paper's "N/A" entries).
    NotApplicable,
    /// Attack succeeded unprotected AND was foiled (with detection) under
    /// split memory — the paper's check mark.
    Foiled,
    /// Something unexpected (shown verbatim so regressions are loud).
    Anomaly(&'static str),
}

impl CellResult {
    /// Table cell text.
    pub fn symbol(&self) -> &'static str {
        match self {
            CellResult::NotApplicable => "N/A",
            CellResult::Foiled => "yes",
            CellResult::Anomaly(s) => s,
        }
    }
}

/// The full grid, row = technique, column = injection segment.
#[derive(Debug)]
pub struct Table1 {
    /// `(case, result)` for all 24 cells.
    pub cells: Vec<(Case, CellResult)>,
}

impl Table1 {
    /// Number of cells where the attack was foiled.
    pub fn foiled(&self) -> usize {
        self.cells
            .iter()
            .filter(|(_, r)| *r == CellResult::Foiled)
            .count()
    }

    /// Number of N/A cells.
    pub fn not_applicable(&self) -> usize {
        self.cells
            .iter()
            .filter(|(_, r)| *r == CellResult::NotApplicable)
            .count()
    }

    /// True when the table matches the paper: every applicable attack
    /// works unprotected and is foiled by split memory.
    pub fn matches_paper(&self) -> bool {
        self.cells
            .iter()
            .all(|(_, r)| matches!(r, CellResult::Foiled | CellResult::NotApplicable))
    }
}

/// Run the whole benchmark grid under stand-alone split memory (the
/// paper's Table 1 configuration). Cells are independent (each run owns
/// its kernel), so they fan out across threads; results keep the grid's
/// deterministic row-major order.
pub fn run() -> Table1 {
    run_under(&Protection::SplitMem(ResponseMode::Break))
}

/// Run the grid under an arbitrary protecting configuration — the same
/// "succeeds unprotected, foiled with detection under the engine"
/// contract, so other engines (combined, shadow-stack) can be held to the
/// paper's standard.
pub fn run_under(protection: &Protection) -> Table1 {
    let cases = wilander::all_cases();
    let results: Vec<CellResult> = cases
        .par_iter()
        .map(|&case| run_cell(case, protection))
        .collect();
    Table1 {
        cells: cases.into_iter().zip(results).collect(),
    }
}

fn run_cell(case: Case, protection: &Protection) -> CellResult {
    let Some(base) = wilander::run_case(case, &Protection::Unprotected) else {
        return CellResult::NotApplicable;
    };
    if !base.succeeded() {
        return CellResult::Anomaly("attack failed even unprotected");
    }
    let Some(prot) = wilander::run_case(case, protection) else {
        return CellResult::NotApplicable;
    };
    match prot {
        sm_attacks::AttackOutcome::Foiled { detected: true } => CellResult::Foiled,
        sm_attacks::AttackOutcome::Foiled { detected: false } => {
            CellResult::Anomaly("foiled but undetected")
        }
        _ => CellResult::Anomaly("ATTACK SUCCEEDED UNDER PROTECTION"),
    }
}

/// Render as the paper lays it out: techniques as rows, segments as
/// columns.
pub fn render(t: &Table1) -> String {
    let mut header = vec!["attack target"];
    for loc in InjectLocation::ALL {
        header.push(loc.name());
    }
    let mut rows = Vec::new();
    for tech in Technique::ALL {
        let mut row = vec![tech.name().to_string()];
        for loc in InjectLocation::ALL {
            let cell = t
                .cells
                .iter()
                .find(|(c, _)| c.technique == tech && c.location == loc)
                .map(|(_, r)| r.symbol())
                .unwrap_or("?");
            row.push(cell.to_string());
        }
        rows.push(row);
    }
    crate::report::render_table(&header, &rows)
}
