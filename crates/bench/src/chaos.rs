//! Deterministic fault-injection ("chaos") sweep.
//!
//! The split-memory protection must not *depend* on TLB residency, timing,
//! or allocation luck: spurious flushes, seeded evictions, forced
//! preemptions and frame exhaustion are exactly the events real hardware
//! produces at arbitrary points (context switches, shootdowns, capacity
//! pressure, memory pressure). This module sweeps seeds × fault plans ×
//! scenarios and demands:
//!
//! * **verdict stability** — under every *perturbation* plan (flushes,
//!   evictions, preemptions, window faults) the outcome is byte-identical
//!   to the fault-free run: attacks stay foiled, benign programs exit with
//!   the same status;
//! * **graceful OOM** — under frame-exhaustion plans the kernel never
//!   panics: processes die cleanly (SIGKILL semantics) or pages degrade to
//!   execute-disable-only protection, and attacks still never succeed
//!   (OOM plans run under combined mode, where NX backstops degraded
//!   pages);
//! * **invariants hold** — [`sm_core::invariants::check`] passes between
//!   every execution slice of every run.

use rayon::prelude::*;
use sm_attacks::harness::{classify_marker, kernel_with_on, AttackOutcome};
use sm_attacks::wilander::{self, Case, MARKER};
use sm_core::invariants::{self, Violation};
use sm_core::setup::Protection;
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::{KernelConfig, RunExit};
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::chaos::FaultPlan;
use sm_machine::TlbPreset;

/// A fault plan with a human-readable name for reports.
#[derive(Debug, Clone, Copy)]
pub struct NamedPlan {
    /// Label used in reports and mismatch messages.
    pub name: &'static str,
    /// The plan itself.
    pub plan: FaultPlan,
}

/// The perturbation plans (no OOM): every one of these must leave
/// protection verdicts byte-identical to the fault-free run.
pub fn perturbation_plans(seed: u64) -> Vec<NamedPlan> {
    let base = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    vec![
        NamedPlan {
            name: "inert",
            plan: base,
        },
        NamedPlan {
            name: "flush-97",
            plan: FaultPlan {
                flush_every: Some(97),
                ..base
            },
        },
        NamedPlan {
            name: "evict-13",
            plan: FaultPlan {
                evict_every: Some(13),
                ..base
            },
        },
        NamedPlan {
            name: "preempt-53",
            plan: FaultPlan {
                preempt_every: Some(53),
                ..base
            },
        },
        NamedPlan {
            name: "window-flush",
            plan: FaultPlan {
                flush_in_window: true,
                ..base
            },
        },
        NamedPlan {
            name: "window-signal",
            plan: FaultPlan {
                signal_in_window: true,
                ..base
            },
        },
        NamedPlan {
            name: "kitchen-sink",
            plan: FaultPlan {
                flush_every: Some(101),
                evict_every: Some(17),
                preempt_every: Some(29),
                flush_in_window: true,
                ..base
            },
        },
    ]
}

/// Frame-exhaustion plans: the k-th allocation (and optionally every n-th
/// after it) fails. Verdicts may legitimately change (processes die
/// cleanly, pages degrade) but attacks must never succeed and the kernel
/// must never panic.
pub fn oom_plans(seed: u64) -> Vec<NamedPlan> {
    let base = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    vec![
        NamedPlan {
            name: "oom-at-5",
            plan: FaultPlan {
                oom_at: Some(5),
                ..base
            },
        },
        NamedPlan {
            name: "oom-at-40",
            plan: FaultPlan {
                oom_at: Some(40),
                ..base
            },
        },
        NamedPlan {
            name: "oom-at-90",
            plan: FaultPlan {
                oom_at: Some(90),
                ..base
            },
        },
        NamedPlan {
            name: "oom-at-40-every-7",
            plan: FaultPlan {
                oom_at: Some(40),
                oom_every_after: Some(7),
                ..base
            },
        },
    ]
}

/// What to run under a fault plan.
#[derive(Debug, Clone, Copy)]
pub enum Scenario {
    /// One cell of the Wilander-style injection matrix; the verdict is the
    /// [`AttackOutcome`].
    Wilander(Case),
    /// A benign compute loop (writes data on split pages every iteration);
    /// the verdict is its exit status.
    Benign,
    /// A benign *mixed-segment* self-patching program: every store to its
    /// own page crosses the Algorithm-1 single-step machinery; under split
    /// memory the patch must silently NOT take effect (paper §7), under
    /// any fault plan whatsoever.
    MixedPatch,
}

impl Scenario {
    /// Report label.
    pub fn name(&self) -> String {
        match self {
            Scenario::Wilander(c) => format!("wilander-{:?}-{:?}", c.technique, c.location),
            Scenario::Benign => "benign".into(),
            Scenario::MixedPatch => "mixed-patch".into(),
        }
    }
}

fn benign_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/benign")
        .code(
            "_start:
                mov ecx, 40
            top:
                mov [counter], ecx
                mov eax, [counter]
                cmp eax, 0
                je done
                dec ecx
                jmp top
            done:
                mov ebx, 0
                call exit",
        )
        .data("counter: .word 0")
        .build()
        .expect("benign program assembles")
}

fn mixed_patch_program() -> BuiltProgram {
    // The limitations.rs single-step-window shape: a mixed page whose
    // store targets its own page. Under split memory the store lands on
    // the data frame, the fetch keeps seeing `mov ebx, 9`.
    ProgramBuilder::new("/bin/mixedpatch")
        .mixed_segment()
        .code(
            "_start:
                nop
                mov byte [patchsite+1], 7
            patchsite:
                mov ebx, 9
                call exit",
        )
        .build()
        .expect("mixed-patch program assembles")
}

/// Outcome of one `(scenario, plan)` run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Compact verdict label (compared across plans for stability).
    pub verdict: String,
    /// True if the attacker got code execution (always false for benign
    /// scenarios).
    pub attack_succeeded: bool,
    /// How the kernel run ended.
    pub exit: RunExit,
    /// Invariant violations observed between slices (must be empty).
    pub violations: Vec<Violation>,
}

/// Run one scenario under one plan, checking invariants between slices.
pub fn run_scenario(scenario: Scenario, protection: &Protection, plan: FaultPlan) -> ChaosRun {
    run_scenario_on(scenario, protection, TlbPreset::default(), plan)
}

/// [`run_scenario`] on an explicit TLB geometry — chaos evictions become
/// set-aware, so determinism and verdict stability must hold per
/// `(plan, seed, geometry)`.
pub fn run_scenario_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
) -> ChaosRun {
    let (image, marker) = scenario_image(scenario);
    run_image_on(&image, marker, protection, tlb, plan)
}

/// Build a scenario's guest image. Assembly is a pure function of the
/// scenario (and independent of plan/seed/protection), so sweeps build each
/// image once and share it across all of the scenario's combos.
fn scenario_image(scenario: Scenario) -> (ExecImage, Option<u8>) {
    match scenario {
        Scenario::Wilander(case) => (
            wilander::build_case(case).expect("applicable case").image,
            Some(MARKER),
        ),
        Scenario::Benign => (benign_program().image, None),
        Scenario::MixedPatch => (mixed_patch_program().image, None),
    }
}

/// Run one prebuilt image under one plan, checking invariants between
/// slices.
fn run_image_on(
    image: &ExecImage,
    marker: Option<u8>,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
) -> ChaosRun {
    run_image_traced_on(image, marker, protection, tlb, plan, 0).0
}

/// [`run_scenario_on`] with the trace subsystem enabled: re-runs one
/// `(scenario, plan)` combo with `trace_mask` layers recorded and returns
/// the run plus the ring buffer's contents as JSONL (the last
/// [`sm_trace::Tracer::DEFAULT_CAPACITY`] events). Used by the chaos bin's
/// `--trace` mode to dump the event tail of a failing combo, and by CI to
/// produce a schema-checkable sample.
pub fn run_scenario_traced_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    trace_mask: u32,
) -> (ChaosRun, String) {
    let (image, marker) = scenario_image(scenario);
    run_image_traced_on(&image, marker, protection, tlb, plan, trace_mask)
}

fn run_image_traced_on(
    image: &ExecImage,
    marker: Option<u8>,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    trace_mask: u32,
) -> (ChaosRun, String) {
    let kconfig = KernelConfig {
        aslr_stack: false,
        chaos: plan,
        trace: trace_mask,
        ..KernelConfig::default()
    };
    let mut k = kernel_with_on(protection, tlb, kconfig);
    let pid = match k.spawn(image) {
        Ok(pid) => pid,
        Err(sm_kernel::kernel::SpawnError::OutOfMemory) => {
            // A clean refusal at load time is a legitimate OOM-plan
            // outcome: nothing ran, nothing leaked.
            return (
                ChaosRun {
                    verdict: "spawn-oom".into(),
                    attack_succeeded: false,
                    exit: RunExit::AllExited,
                    violations: invariants::check(&k),
                },
                k.sys.machine.tracer.to_jsonl(),
            );
        }
        Err(e) => panic!("spawn failed: {e:?}"),
    };
    let (exit, violations) = invariants::run_with_checks(&mut k, 80_000_000, 100_000);
    let (verdict, attack_succeeded) = match marker {
        Some(m) => {
            let outcome = classify_marker(&k, pid, m);
            let label = match &outcome {
                AttackOutcome::ShellSpawned => "shell".to_string(),
                AttackOutcome::PayloadExecuted => "payload".to_string(),
                AttackOutcome::Foiled { detected } => format!("foiled(detected={detected})"),
            };
            (label, outcome.succeeded())
        }
        None => (
            format!(
                "exit={:?}",
                k.sys.procs.get(&pid.0).and_then(|p| p.exit_code)
            ),
            false,
        ),
    };
    (
        ChaosRun {
            verdict,
            attack_succeeded,
            exit,
            violations,
        },
        k.sys.machine.tracer.to_jsonl(),
    )
}

/// Find a named fault plan by label across the perturbation and OOM
/// families (for re-running a reported combo, e.g. under `--trace`).
pub fn plan_by_name(name: &str, seed: u64) -> Option<FaultPlan> {
    perturbation_plans(seed)
        .into_iter()
        .chain(oom_plans(seed))
        .find(|np| np.name == name)
        .map(|np| np.plan)
}

/// One line of a sweep report.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// Scenario label.
    pub scenario: String,
    /// Plan label.
    pub plan: &'static str,
    /// Plan seed.
    pub seed: u64,
    /// The run itself.
    pub run: ChaosRun,
    /// The fault-free verdict this combo was compared against.
    pub baseline: String,
    /// `verdict == baseline` (only enforced for perturbation plans).
    pub verdict_stable: bool,
}

/// Sweep `seeds × perturbation_plans × scenarios` under `protection`,
/// comparing every verdict to the fault-free baseline, then run the OOM
/// plans under combined mode (NX backstops degraded pages) demanding
/// attacks never succeed. Returns every combo result; the caller asserts.
pub fn sweep(seeds: &[u64], scenarios: &[Scenario], protection: &Protection) -> Vec<ComboResult> {
    sweep_on(seeds, scenarios, protection, TlbPreset::default())
}

/// [`sweep`] on an explicit TLB geometry. Combos fan out across threads
/// (each combo owns its seeded fault stream and its own kernel, so runs
/// are independent); results are merged in deterministic scenario-major
/// order, byte-identical to [`sweep_serial_on`].
pub fn sweep_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
) -> Vec<ComboResult> {
    sweep_plans_on(seeds, scenarios, protection, tlb, perturbation_plans, true)
}

/// Single-threaded [`sweep_on`], kept as the reference the parallel sweep
/// is tested byte-identical against.
pub fn sweep_serial_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
) -> Vec<ComboResult> {
    let mut out = Vec::new();
    for &scenario in scenarios {
        let (image, marker) = scenario_image(scenario);
        let baseline = run_image_on(&image, marker, protection, tlb, FaultPlan::default());
        for &seed in seeds {
            for np in perturbation_plans(seed) {
                let run = run_image_on(&image, marker, protection, tlb, np.plan);
                let stable = run.verdict == baseline.verdict;
                out.push(ComboResult {
                    scenario: scenario.name(),
                    plan: np.name,
                    seed,
                    verdict_stable: stable,
                    baseline: baseline.verdict.clone(),
                    run,
                });
            }
        }
    }
    out
}

/// Shared sweep machinery: prebuild every scenario image, run the
/// fault-free baselines in parallel, then fan every `(scenario, seed,
/// plan)` combo out and zip results back in input (scenario-major) order.
fn sweep_plans_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
    plans: fn(u64) -> Vec<NamedPlan>,
    enforce_stability: bool,
) -> Vec<ComboResult> {
    let prepped: Vec<(Scenario, ExecImage, Option<u8>)> = scenarios
        .iter()
        .map(|&s| {
            let (image, marker) = scenario_image(s);
            (s, image, marker)
        })
        .collect();
    let baselines: Vec<ChaosRun> = prepped
        .par_iter()
        .map(|(_, image, marker)| {
            run_image_on(image, *marker, protection, tlb, FaultPlan::default())
        })
        .collect();
    let combos: Vec<(usize, u64, NamedPlan)> = (0..prepped.len())
        .flat_map(|si| {
            seeds
                .iter()
                .flat_map(move |&seed| plans(seed).into_iter().map(move |np| (si, seed, np)))
        })
        .collect();
    let runs: Vec<ChaosRun> = combos
        .par_iter()
        .map(|&(si, _, np)| {
            let (_, image, marker) = &prepped[si];
            run_image_on(image, *marker, protection, tlb, np.plan)
        })
        .collect();
    combos
        .into_iter()
        .zip(runs)
        .map(|((si, seed, np), run)| {
            let baseline = &baselines[si];
            ComboResult {
                scenario: prepped[si].0.name(),
                plan: np.name,
                seed,
                verdict_stable: !enforce_stability || run.verdict == baseline.verdict,
                baseline: baseline.verdict.clone(),
                run,
            }
        })
        .collect()
}

/// Sweep the OOM plans. Verdicts may change; attack success and invariant
/// violations may not. Runs under the given protection (use combined mode
/// so the execute-disable bit backstops degraded pages).
pub fn sweep_oom(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
) -> Vec<ComboResult> {
    sweep_oom_on(seeds, scenarios, protection, TlbPreset::default())
}

/// [`sweep_oom`] on an explicit TLB geometry (parallel, deterministic
/// order; `verdict_stable` is not enforced for OOM plans).
pub fn sweep_oom_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
) -> Vec<ComboResult> {
    sweep_plans_on(seeds, scenarios, protection, tlb, oom_plans, false)
}
