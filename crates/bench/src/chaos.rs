//! Deterministic fault-injection ("chaos") sweep.
//!
//! The split-memory protection must not *depend* on TLB residency, timing,
//! or allocation luck: spurious flushes, seeded evictions, forced
//! preemptions and frame exhaustion are exactly the events real hardware
//! produces at arbitrary points (context switches, shootdowns, capacity
//! pressure, memory pressure). This module sweeps seeds × fault plans ×
//! scenarios and demands:
//!
//! * **verdict stability** — under every *perturbation* plan (flushes,
//!   evictions, preemptions, window faults) the outcome is byte-identical
//!   to the fault-free run: attacks stay foiled, benign programs exit with
//!   the same status;
//! * **graceful OOM** — under frame-exhaustion plans the kernel never
//!   panics: processes die cleanly (SIGKILL semantics) or pages degrade to
//!   execute-disable-only protection, and attacks still never succeed
//!   (OOM plans run under combined mode, where NX backstops degraded
//!   pages);
//! * **invariants hold** — [`sm_core::invariants::check`] passes between
//!   every execution slice of every run.

use rayon::prelude::*;
use sm_attacks::harness::{classify_marker, kernel_with_on, AttackOutcome};
use sm_attacks::wilander::{self, Case, MARKER};
use sm_core::invariants::{self, Violation};
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::process::Pid;
use sm_kernel::snapshot as ksnap;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::chaos::FaultPlan;
use sm_machine::sha256::sha256;
use sm_machine::snapshot::{read_plan, write_plan, Reader, SnapshotError, Writer};
use sm_machine::trace::TraceRecord;
use sm_machine::TlbPreset;

/// Cycle budget every chaos run gets before it is declared hung.
pub const RUN_MAX_CYCLES: u64 = 80_000_000;
/// Cycles per execution slice: invariants are checked (and checkpoints
/// taken) on slice boundaries.
pub const RUN_STRIDE: u64 = 100_000;

/// A fault plan with a human-readable name for reports.
#[derive(Debug, Clone, Copy)]
pub struct NamedPlan {
    /// Label used in reports and mismatch messages.
    pub name: &'static str,
    /// The plan itself.
    pub plan: FaultPlan,
}

/// The perturbation plans (no OOM): every one of these must leave
/// protection verdicts byte-identical to the fault-free run.
pub fn perturbation_plans(seed: u64) -> Vec<NamedPlan> {
    let base = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    vec![
        NamedPlan {
            name: "inert",
            plan: base,
        },
        NamedPlan {
            name: "flush-97",
            plan: FaultPlan {
                flush_every: Some(97),
                ..base
            },
        },
        NamedPlan {
            name: "evict-13",
            plan: FaultPlan {
                evict_every: Some(13),
                ..base
            },
        },
        NamedPlan {
            name: "preempt-53",
            plan: FaultPlan {
                preempt_every: Some(53),
                ..base
            },
        },
        NamedPlan {
            name: "window-flush",
            plan: FaultPlan {
                flush_in_window: true,
                ..base
            },
        },
        NamedPlan {
            name: "window-signal",
            plan: FaultPlan {
                signal_in_window: true,
                ..base
            },
        },
        NamedPlan {
            name: "kitchen-sink",
            plan: FaultPlan {
                flush_every: Some(101),
                evict_every: Some(17),
                preempt_every: Some(29),
                flush_in_window: true,
                ..base
            },
        },
    ]
}

/// Frame-exhaustion plans: the k-th allocation (and optionally every n-th
/// after it) fails. Verdicts may legitimately change (processes die
/// cleanly, pages degrade) but attacks must never succeed and the kernel
/// must never panic.
pub fn oom_plans(seed: u64) -> Vec<NamedPlan> {
    let base = FaultPlan {
        seed,
        ..FaultPlan::default()
    };
    vec![
        NamedPlan {
            name: "oom-at-5",
            plan: FaultPlan {
                oom_at: Some(5),
                ..base
            },
        },
        NamedPlan {
            name: "oom-at-40",
            plan: FaultPlan {
                oom_at: Some(40),
                ..base
            },
        },
        NamedPlan {
            name: "oom-at-90",
            plan: FaultPlan {
                oom_at: Some(90),
                ..base
            },
        },
        NamedPlan {
            name: "oom-at-40-every-7",
            plan: FaultPlan {
                oom_at: Some(40),
                oom_every_after: Some(7),
                ..base
            },
        },
    ]
}

/// What to run under a fault plan.
#[derive(Debug, Clone, Copy)]
pub enum Scenario {
    /// One cell of the Wilander-style injection matrix; the verdict is the
    /// [`AttackOutcome`].
    Wilander(Case),
    /// A benign compute loop (writes data on split pages every iteration);
    /// the verdict is its exit status.
    Benign,
    /// A benign *mixed-segment* self-patching program: every store to its
    /// own page crosses the Algorithm-1 single-step machinery; under split
    /// memory the patch must silently NOT take effect (paper §7), under
    /// any fault plan whatsoever.
    MixedPatch,
}

impl Scenario {
    /// Report label.
    pub fn name(&self) -> String {
        match self {
            Scenario::Wilander(c) => format!("wilander-{:?}-{:?}", c.technique, c.location),
            Scenario::Benign => "benign".into(),
            Scenario::MixedPatch => "mixed-patch".into(),
        }
    }
}

fn benign_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/benign")
        .code(
            "_start:
                mov ecx, 40
            top:
                mov [counter], ecx
                mov eax, [counter]
                cmp eax, 0
                je done
                dec ecx
                jmp top
            done:
                mov ebx, 0
                call exit",
        )
        .data("counter: .word 0")
        .build()
        .expect("benign program assembles")
}

/// The limitations.rs single-step-window shape: a mixed page whose
/// store targets its own page. Under split memory the store lands on
/// the data frame, the fetch keeps seeing `mov ebx, 9`. Public so the
/// snapshot tests can catch the run *inside* an armed window.
pub fn mixed_patch_program() -> BuiltProgram {
    ProgramBuilder::new("/bin/mixedpatch")
        .mixed_segment()
        .code(
            "_start:
                nop
                mov byte [patchsite+1], 7
            patchsite:
                mov ebx, 9
                call exit",
        )
        .build()
        .expect("mixed-patch program assembles")
}

/// Outcome of one `(scenario, plan)` run.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Compact verdict label (compared across plans for stability).
    pub verdict: String,
    /// True if the attacker got code execution (always false for benign
    /// scenarios).
    pub attack_succeeded: bool,
    /// How the kernel run ended.
    pub exit: RunExit,
    /// Invariant violations observed between slices (must be empty).
    pub violations: Vec<Violation>,
}

/// Run one scenario under one plan, checking invariants between slices.
pub fn run_scenario(scenario: Scenario, protection: &Protection, plan: FaultPlan) -> ChaosRun {
    run_scenario_on(scenario, protection, TlbPreset::default(), plan)
}

/// [`run_scenario`] on an explicit TLB geometry — chaos evictions become
/// set-aware, so determinism and verdict stability must hold per
/// `(plan, seed, geometry)`.
pub fn run_scenario_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
) -> ChaosRun {
    let (image, marker) = scenario_image(scenario);
    run_image_on(&image, marker, protection, tlb, plan)
}

/// Build a scenario's guest image. Assembly is a pure function of the
/// scenario (and independent of plan/seed/protection), so sweeps build each
/// image once and share it across all of the scenario's combos.
pub(crate) fn scenario_image(scenario: Scenario) -> (ExecImage, Option<u8>) {
    match scenario {
        Scenario::Wilander(case) => (
            wilander::build_case(case).expect("applicable case").image,
            Some(MARKER),
        ),
        Scenario::Benign => (benign_program().image, None),
        Scenario::MixedPatch => (mixed_patch_program().image, None),
    }
}

/// Run one prebuilt image under one plan, checking invariants between
/// slices.
fn run_image_on(
    image: &ExecImage,
    marker: Option<u8>,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
) -> ChaosRun {
    run_image_traced_on(image, marker, protection, tlb, plan, 0).0
}

/// [`run_scenario_on`] with the trace subsystem enabled: re-runs one
/// `(scenario, plan)` combo with `trace_mask` layers recorded and returns
/// the run plus the ring buffer's contents as JSONL (the last
/// [`sm_trace::Tracer::DEFAULT_CAPACITY`] events). Used by the chaos bin's
/// `--trace` mode to dump the event tail of a failing combo, and by CI to
/// produce a schema-checkable sample.
pub fn run_scenario_traced_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    trace_mask: u32,
) -> (ChaosRun, String) {
    let (image, marker) = scenario_image(scenario);
    run_image_traced_on(&image, marker, protection, tlb, plan, trace_mask)
}

fn run_image_traced_on(
    image: &ExecImage,
    marker: Option<u8>,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    trace_mask: u32,
) -> (ChaosRun, String) {
    let kconfig = KernelConfig {
        aslr_stack: false,
        chaos: plan,
        trace: trace_mask,
        ..KernelConfig::default()
    };
    let mut k = kernel_with_on(protection, tlb, kconfig);
    let pid = match k.spawn(image) {
        Ok(pid) => pid,
        Err(sm_kernel::kernel::SpawnError::OutOfMemory) => {
            // A clean refusal at load time is a legitimate OOM-plan
            // outcome: nothing ran, nothing leaked.
            return (
                ChaosRun {
                    verdict: "spawn-oom".into(),
                    attack_succeeded: false,
                    exit: RunExit::AllExited,
                    violations: invariants::check(&k),
                },
                k.sys.machine.tracer.to_jsonl(),
            );
        }
        Err(e) => panic!("spawn failed: {e:?}"),
    };
    let (exit, violations) = invariants::run_with_checks(&mut k, RUN_MAX_CYCLES, RUN_STRIDE);
    let (verdict, attack_succeeded) = classify_run(&k, pid, marker);
    (
        ChaosRun {
            verdict,
            attack_succeeded,
            exit,
            violations,
        },
        k.sys.machine.tracer.to_jsonl(),
    )
}

/// Map a finished kernel to a compact verdict label and an
/// attacker-got-execution flag. Shared by the plain, traced and
/// checkpointed runners and by dump replay, so all four agree on what a
/// verdict string looks like.
pub(crate) fn classify_run(k: &Kernel, pid: Pid, marker: Option<u8>) -> (String, bool) {
    match marker {
        Some(m) => {
            let outcome = classify_marker(k, pid, m);
            let label = match &outcome {
                AttackOutcome::ShellSpawned => "shell".to_string(),
                AttackOutcome::PayloadExecuted => "payload".to_string(),
                AttackOutcome::Foiled { detected } => format!("foiled(detected={detected})"),
            };
            (label, outcome.succeeded())
        }
        None => (
            format!(
                "exit={:?}",
                k.sys.procs.get(&pid.0).and_then(|p| p.exit_code)
            ),
            false,
        ),
    }
}

/// Find a named fault plan by label across the perturbation and OOM
/// families (for re-running a reported combo, e.g. under `--trace`).
pub fn plan_by_name(name: &str, seed: u64) -> Option<FaultPlan> {
    perturbation_plans(seed)
        .into_iter()
        .chain(oom_plans(seed))
        .find(|np| np.name == name)
        .map(|np| np.plan)
}

/// One line of a sweep report.
#[derive(Debug, Clone)]
pub struct ComboResult {
    /// Scenario label.
    pub scenario: String,
    /// Plan label.
    pub plan: &'static str,
    /// Plan seed.
    pub seed: u64,
    /// The run itself.
    pub run: ChaosRun,
    /// The fault-free verdict this combo was compared against.
    pub baseline: String,
    /// `verdict == baseline` (only enforced for perturbation plans).
    pub verdict_stable: bool,
}

/// Sweep `seeds × perturbation_plans × scenarios` under `protection`,
/// comparing every verdict to the fault-free baseline, then run the OOM
/// plans under combined mode (NX backstops degraded pages) demanding
/// attacks never succeed. Returns every combo result; the caller asserts.
pub fn sweep(seeds: &[u64], scenarios: &[Scenario], protection: &Protection) -> Vec<ComboResult> {
    sweep_on(seeds, scenarios, protection, TlbPreset::default())
}

/// [`sweep`] on an explicit TLB geometry. Combos fan out across threads
/// (each combo owns its seeded fault stream and its own kernel, so runs
/// are independent); results are merged in deterministic scenario-major
/// order, byte-identical to [`sweep_serial_on`].
pub fn sweep_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
) -> Vec<ComboResult> {
    sweep_plans_on(seeds, scenarios, protection, tlb, perturbation_plans, true)
}

/// Single-threaded [`sweep_on`], kept as the reference the parallel sweep
/// is tested byte-identical against.
pub fn sweep_serial_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
) -> Vec<ComboResult> {
    let mut out = Vec::new();
    for &scenario in scenarios {
        let (image, marker) = scenario_image(scenario);
        let baseline = run_image_on(&image, marker, protection, tlb, FaultPlan::default());
        for &seed in seeds {
            for np in perturbation_plans(seed) {
                let run = run_image_on(&image, marker, protection, tlb, np.plan);
                let stable = run.verdict == baseline.verdict;
                out.push(ComboResult {
                    scenario: scenario.name(),
                    plan: np.name,
                    seed,
                    verdict_stable: stable,
                    baseline: baseline.verdict.clone(),
                    run,
                });
            }
        }
    }
    out
}

/// Shared sweep machinery: prebuild every scenario image, run the
/// fault-free baselines in parallel, then fan every `(scenario, seed,
/// plan)` combo out and zip results back in input (scenario-major) order.
fn sweep_plans_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
    plans: fn(u64) -> Vec<NamedPlan>,
    enforce_stability: bool,
) -> Vec<ComboResult> {
    let prepped: Vec<(Scenario, ExecImage, Option<u8>)> = scenarios
        .iter()
        .map(|&s| {
            let (image, marker) = scenario_image(s);
            (s, image, marker)
        })
        .collect();
    let baselines: Vec<ChaosRun> = prepped
        .par_iter()
        .map(|(_, image, marker)| {
            run_image_on(image, *marker, protection, tlb, FaultPlan::default())
        })
        .collect();
    let combos: Vec<(usize, u64, NamedPlan)> = (0..prepped.len())
        .flat_map(|si| {
            seeds
                .iter()
                .flat_map(move |&seed| plans(seed).into_iter().map(move |np| (si, seed, np)))
        })
        .collect();
    let runs: Vec<ChaosRun> = combos
        .par_iter()
        .map(|&(si, _, np)| {
            let (_, image, marker) = &prepped[si];
            run_image_on(image, *marker, protection, tlb, np.plan)
        })
        .collect();
    combos
        .into_iter()
        .zip(runs)
        .map(|((si, seed, np), run)| {
            let baseline = &baselines[si];
            ComboResult {
                scenario: prepped[si].0.name(),
                plan: np.name,
                seed,
                verdict_stable: !enforce_stability || run.verdict == baseline.verdict,
                baseline: baseline.verdict.clone(),
                run,
            }
        })
        .collect()
}

/// Sweep the OOM plans. Verdicts may change; attack success and invariant
/// violations may not. Runs under the given protection (use combined mode
/// so the execute-disable bit backstops degraded pages).
pub fn sweep_oom(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
) -> Vec<ComboResult> {
    sweep_oom_on(seeds, scenarios, protection, TlbPreset::default())
}

/// [`sweep_oom`] on an explicit TLB geometry (parallel, deterministic
/// order; `verdict_stable` is not enforced for OOM plans).
pub fn sweep_oom_on(
    seeds: &[u64],
    scenarios: &[Scenario],
    protection: &Protection,
    tlb: TlbPreset,
) -> Vec<ComboResult> {
    sweep_plans_on(seeds, scenarios, protection, tlb, oom_plans, false)
}

// ---- checkpointed runs + failure dumps ------------------------------------
//
// A checkpointed run snapshots the whole kernel every `every` slices. When
// the run fails (or is worth preserving), the *latest good* snapshot plus
// everything needed to finish the run — the fault plan, combo metadata and
// the expected verdict — is serialized into a self-contained `.smcdump`
// file. `replay_dump` restores it and re-executes only the tail, and
// because the simulation is deterministic the replay reproduces the same
// verdict and splices into the byte-identical trace stream.
//
// Checkpointing itself runs under fault injection: if the plan arms
// `snap_fault_every`, every n-th snapshot is corrupted (truncation,
// bit-flip, section reorder, version skew) before validation. A corrupted
// snapshot must be *detected and discarded* — the runner keeps the previous
// good checkpoint and carries on, which is exactly the graceful degradation
// a production checkpoint subsystem owes its caller.

/// Result of one checkpointed chaos run.
#[derive(Debug, Clone)]
pub struct Checkpointed {
    /// The run verdict, exactly as the uncheckpointed runner reports it.
    pub run: ChaosRun,
    /// Final trace-ring contents as JSONL.
    pub jsonl: String,
    /// Attack marker of the scenario (needed to re-classify on replay).
    pub marker: Option<u8>,
    /// Guest pid the verdict was classified against.
    pub pid: u32,
    /// Absolute cycle deadline the run was given.
    pub deadline: u64,
    /// Good checkpoints kept.
    pub checkpoints_taken: u64,
    /// Snapshot faults the plan injected into checkpoint bytes.
    pub snap_faults_injected: u64,
    /// Injected faults that validation FAILED to catch (must stay zero).
    pub snap_faults_undetected: u64,
    /// Latest good snapshot, if any checkpoint survived.
    pub snapshot: Option<Vec<u8>>,
    /// Slice index the latest good snapshot was taken at.
    pub snapshot_slice: u64,
    /// Trace sequence number at that snapshot (`Tracer::emitted`).
    pub snapshot_seq: u64,
    /// JSONL of final-ring records with `seq >= snapshot_seq` — the part
    /// of the stream a replay from the snapshot re-emits.
    pub tail_jsonl: String,
    /// sha-256 of `tail_jsonl`; dumps embed it so replay can prove the
    /// splice byte-identical.
    pub tail_sha: [u8; 32],
}

/// How often a checkpointed run snapshots: every `every` healthy slices
/// of `stride` cycles each (both clamped to a minimum of 1). Short guests
/// need a short stride to see any checkpoint at all; sweeps over long
/// guests use [`RUN_STRIDE`].
#[derive(Debug, Clone, Copy)]
pub struct Cadence {
    /// Checkpoint every this many slices.
    pub every: u64,
    /// Cycles per slice.
    pub stride: u64,
}

/// Run one scenario under one plan, checkpointing on `cadence` and
/// injecting snapshot faults per the plan's `snap_fault_every`.
pub fn run_scenario_checkpointed_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    trace_mask: u32,
    cadence: Cadence,
) -> Checkpointed {
    let (image, marker) = scenario_image(scenario);
    let every = cadence.every.max(1);
    let stride = cadence.stride.max(1);
    let kconfig = KernelConfig {
        aslr_stack: false,
        chaos: plan,
        trace: trace_mask,
        ..KernelConfig::default()
    };
    let mut k = kernel_with_on(protection, tlb, kconfig);
    let pid = match k.spawn(&image) {
        Ok(pid) => pid,
        Err(sm_kernel::kernel::SpawnError::OutOfMemory) => {
            return Checkpointed {
                run: ChaosRun {
                    verdict: "spawn-oom".into(),
                    attack_succeeded: false,
                    exit: RunExit::AllExited,
                    violations: invariants::check(&k),
                },
                jsonl: k.sys.machine.tracer.to_jsonl(),
                marker,
                pid: 0,
                deadline: k.sys.machine.cycles,
                checkpoints_taken: 0,
                snap_faults_injected: 0,
                snap_faults_undetected: 0,
                snapshot: None,
                snapshot_slice: 0,
                snapshot_seq: 0,
                tail_jsonl: String::new(),
                tail_sha: sha256(b""),
            };
        }
        Err(e) => panic!("spawn failed: {e:?}"),
    };
    let deadline = k.sys.machine.cycles.saturating_add(RUN_MAX_CYCLES);
    let mut latest: Option<(Vec<u8>, u64, u64)> = None;
    let mut taken = 0u64;
    let mut injected = 0u64;
    let mut undetected = 0u64;
    let (exit, violations) =
        invariants::run_with_checks_hook(&mut k, RUN_MAX_CYCLES, stride, |k, slice| {
            if slice % every != 0 {
                return;
            }
            let mut bytes = ksnap::save(k);
            // The snapshot-op clock is independent of the step/fs streams,
            // so taking (or faulting) checkpoints never perturbs the run
            // being checkpointed — the property the splice test pins.
            match k.sys.chaos.as_mut().and_then(|c| c.on_snapshot_op()) {
                Some(fault) => {
                    injected += 1;
                    let fseed = plan.seed ^ k.sys.chaos.as_ref().map_or(0, |c| c.stats.snap_ops);
                    ksnap::corrupt_snapshot(&mut bytes, fault, fseed);
                    if ksnap::validate(&bytes).is_ok() {
                        undetected += 1;
                    }
                    // Detected → discard; the previous good checkpoint
                    // stays live.
                }
                None => {
                    let seq = k.sys.machine.tracer.emitted();
                    latest = Some((bytes, slice, seq));
                    taken += 1;
                }
            }
        });
    let (verdict, attack_succeeded) = classify_run(&k, pid, marker);
    let (snapshot, snapshot_slice, snapshot_seq) = match latest {
        Some((bytes, slice, seq)) => (Some(bytes), slice, seq),
        None => (None, 0, 0),
    };
    let tail = tail_jsonl(&k.sys.machine.tracer.snapshot(), snapshot_seq);
    Checkpointed {
        run: ChaosRun {
            verdict,
            attack_succeeded,
            exit,
            violations,
        },
        jsonl: k.sys.machine.tracer.to_jsonl(),
        marker,
        pid: pid.0,
        deadline,
        checkpoints_taken: taken,
        snap_faults_injected: injected,
        snap_faults_undetected: undetected,
        snapshot,
        snapshot_slice,
        snapshot_seq,
        tail_sha: sha256(tail.as_bytes()),
        tail_jsonl: tail,
    }
}

/// Serialize the trace records with `seq >= seq0` as JSONL, oldest first.
/// Both sides of a replay compute this over their final ring; equality of
/// the two strings is the splice-correctness criterion.
pub fn tail_jsonl(records: &[TraceRecord], seq0: u64) -> String {
    let mut out = String::new();
    for r in records.iter().filter(|r| r.seq >= seq0) {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Everything a replay needs, gathered from a [`Checkpointed`] run plus
/// the combo metadata the sweep knew.
#[derive(Debug, Clone)]
pub struct FailureDump {
    /// Scenario label (provenance; the snapshot carries the actual guest).
    pub scenario: String,
    /// Plan label.
    pub plan_name: &'static str,
    /// Protection the combo ran under (rebuilt on replay to restore the
    /// engine).
    pub protection: Protection,
    /// TLB geometry of the combo (provenance; the snapshot carries the
    /// live TLBs).
    pub tlb: TlbPreset,
    /// The full fault plan, embedded so a dump is self-describing.
    pub plan: FaultPlan,
    /// Attack marker for verdict classification.
    pub marker: Option<u8>,
    /// Guest pid the verdict is classified against.
    pub pid: u32,
    /// Trace mask the run used.
    pub trace_mask: u32,
    /// Slice the snapshot was taken at.
    pub slice: u64,
    /// Trace sequence number at the snapshot.
    pub seq0: u64,
    /// Absolute cycle deadline of the original run.
    pub deadline: u64,
    /// Cycles per slice the original run used (replay re-checks
    /// invariants on the same boundaries).
    pub stride: u64,
    /// The verdict the original run produced (replay must reproduce it).
    pub expected_verdict: String,
    /// sha-256 of the original run's post-checkpoint trace tail.
    pub tail_sha: [u8; 32],
    /// The kernel snapshot itself.
    pub snapshot: Vec<u8>,
}

const DUMP_MAGIC: [u8; 8] = *b"SMCDUMP\0";
const DUMP_VERSION: u32 = 1;
/// Upper bound on TLB sets/ways read back from a dump header.
const MAX_DUMP_GEOMETRY: u64 = 1 << 16;

fn response_tag(m: &ResponseMode) -> u8 {
    match m {
        ResponseMode::Break => 0,
        ResponseMode::Observe => 1,
        ResponseMode::Forensics => 2,
    }
}

fn protection_tags(p: &Protection) -> Result<(u8, u8), String> {
    match p {
        Protection::Unprotected => Ok((0, 0)),
        Protection::SplitMem(m) => Ok((1, response_tag(m))),
        Protection::Nx => Ok((2, 0)),
        Protection::Combined(m) => Ok((3, response_tag(m))),
        other => Err(format!("protection {other:?} has no dump encoding")),
    }
}

fn protection_from_tags(kind: u8, mode: u8) -> Result<Protection, String> {
    let m = match mode {
        0 => ResponseMode::Break,
        1 => ResponseMode::Observe,
        2 => ResponseMode::Forensics,
        _ => return Err(format!("unknown response-mode tag {mode}")),
    };
    match kind {
        0 => Ok(Protection::Unprotected),
        1 => Ok(Protection::SplitMem(m)),
        2 => Ok(Protection::Nx),
        3 => Ok(Protection::Combined(m)),
        _ => Err(format!("unknown protection tag {kind}")),
    }
}

/// Serialize a failure dump: `SMCDUMP` header, combo metadata, the full
/// fault plan, the expected verdict, the trace-tail digest, the kernel
/// snapshot, and a whole-file sha-256 trailer.
///
/// # Errors
///
/// If the protection has no stable dump encoding (custom split configs).
pub fn write_dump(d: &FailureDump) -> Result<Vec<u8>, String> {
    let (kind, mode) = protection_tags(&d.protection)?;
    let mut w = Writer::new();
    w.raw(&DUMP_MAGIC);
    w.u32(DUMP_VERSION);
    w.str(&d.scenario);
    w.str(d.plan_name);
    w.u8(kind);
    w.u8(mode);
    w.u64(d.tlb.itlb.sets as u64);
    w.u64(d.tlb.itlb.ways as u64);
    w.u64(d.tlb.dtlb.sets as u64);
    w.u64(d.tlb.dtlb.ways as u64);
    write_plan(&mut w, &d.plan);
    w.opt_u32(d.marker.map(u32::from));
    w.u32(d.pid);
    w.u32(d.trace_mask);
    w.u64(d.slice);
    w.u64(d.seq0);
    w.u64(d.deadline);
    w.u64(d.stride);
    w.str(&d.expected_verdict);
    w.raw(&d.tail_sha);
    w.bytes(&d.snapshot);
    let mut out = w.into_bytes();
    let sha = sha256(&out);
    out.extend_from_slice(&sha);
    Ok(out)
}

/// Run a combo checkpointed and package its latest good snapshot as a
/// dump. The dump's expected verdict is the verdict the checkpointed run
/// itself produced.
///
/// # Errors
///
/// If the run finished before its first checkpoint (nothing to dump), a
/// snapshot fault was missed, or the protection cannot be encoded.
pub fn checkpointed_dump(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan_name: &'static str,
    plan: FaultPlan,
    trace_mask: u32,
    cadence: Cadence,
) -> Result<(Checkpointed, Vec<u8>), String> {
    let cp = run_scenario_checkpointed_on(scenario, protection, tlb, plan, trace_mask, cadence);
    if cp.snap_faults_undetected > 0 {
        return Err(format!(
            "{} corrupted snapshot(s) passed validation",
            cp.snap_faults_undetected
        ));
    }
    let snapshot = cp
        .snapshot
        .clone()
        .ok_or("run finished before the first checkpoint; nothing to dump")?;
    let dump = write_dump(&FailureDump {
        scenario: scenario.name(),
        plan_name,
        protection: protection.clone(),
        tlb,
        plan,
        marker: cp.marker,
        pid: cp.pid,
        trace_mask,
        slice: cp.snapshot_slice,
        seq0: cp.snapshot_seq,
        deadline: cp.deadline,
        stride: cadence.stride.max(1),
        expected_verdict: cp.run.verdict.clone(),
        tail_sha: cp.tail_sha,
        snapshot,
    })?;
    Ok((cp, dump))
}

/// What a replay established.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Scenario label from the dump header.
    pub scenario: String,
    /// Plan label from the dump header.
    pub plan_name: String,
    /// The embedded fault plan.
    pub plan: FaultPlan,
    /// Slice the restored snapshot was taken at.
    pub slice: u64,
    /// Verdict the original run produced.
    pub expected_verdict: String,
    /// Verdict the replay produced.
    pub verdict: String,
    /// `verdict == expected_verdict`.
    pub verdict_matches: bool,
    /// The replayed trace tail hashed byte-identical to the original's.
    pub splice_matches: bool,
    /// Attacker got execution during the replayed tail.
    pub attack_succeeded: bool,
    /// How the replayed tail ended.
    pub exit: RunExit,
    /// Invariant violations during the replayed tail (must be empty).
    pub violations: Vec<Violation>,
    /// Trace events the replay re-emitted past the checkpoint.
    pub events_replayed: usize,
}

/// A decoded dump: every header field plus the embedded snapshot, ready
/// to restore. Shared by deadline replay and time-travel replay so both
/// reject malformed input identically.
struct ParsedDump {
    scenario: String,
    plan_name: String,
    protection: Protection,
    plan: FaultPlan,
    marker: Option<u8>,
    pid: u32,
    slice: u64,
    seq0: u64,
    deadline: u64,
    stride: u64,
    expected_verdict: String,
    tail_sha: [u8; 32],
    snapshot: Vec<u8>,
}

/// Decode and integrity-check a dump without restoring it.
///
/// # Errors
///
/// A human-readable message for every malformed, corrupted or
/// version-skewed dump — parsing never panics on bad input.
fn parse_dump(bytes: &[u8]) -> Result<ParsedDump, String> {
    let s = |e: SnapshotError| format!("malformed dump: {e}");
    if bytes.len() < DUMP_MAGIC.len() + 32 {
        return Err("dump too short".into());
    }
    let (body, sha_stored) = bytes.split_at(bytes.len() - 32);
    if sha256(body) != sha_stored {
        return Err("dump checksum mismatch (file corrupted?)".into());
    }
    let mut r = Reader::new(body);
    if r.take_raw(DUMP_MAGIC.len()).map_err(s)? != DUMP_MAGIC {
        return Err("not a chaos dump (bad magic)".into());
    }
    let version = r.u32().map_err(s)?;
    if version != DUMP_VERSION {
        return Err(format!("unsupported dump version {version}"));
    }
    let scenario = r.str().map_err(s)?;
    let plan_name = r.str().map_err(s)?;
    let kind = r.u8().map_err(s)?;
    let mode = r.u8().map_err(s)?;
    let protection = protection_from_tags(kind, mode)?;
    // Geometry is provenance (the snapshot carries the live TLBs), but a
    // nonsense header still means a corrupted or foreign file.
    for _ in 0..2 {
        let sets = r.u64().map_err(s)?;
        let ways = r.u64().map_err(s)?;
        if sets == 0 || !sets.is_power_of_two() || sets > MAX_DUMP_GEOMETRY {
            return Err(format!("implausible TLB set count {sets}"));
        }
        if ways == 0 || ways > MAX_DUMP_GEOMETRY {
            return Err(format!("implausible TLB way count {ways}"));
        }
    }
    let plan = read_plan(&mut r).map_err(s)?;
    let marker = r.opt_u32().map_err(s)?.map(|v| v as u8);
    let pid = r.u32().map_err(s)?;
    let _trace_mask = r.u32().map_err(s)?;
    let slice = r.u64().map_err(s)?;
    let seq0 = r.u64().map_err(s)?;
    let deadline = r.u64().map_err(s)?;
    let stride = r.u64().map_err(s)?.max(1);
    let expected_verdict = r.str().map_err(s)?;
    let tail_sha: [u8; 32] = r
        .take_raw(32)
        .map_err(s)?
        .try_into()
        .expect("32-byte slice");
    let snapshot = r.bytes().map_err(s)?;
    if !r.is_done() {
        return Err("trailing bytes after dump payload".into());
    }
    Ok(ParsedDump {
        scenario,
        plan_name,
        protection,
        plan,
        marker,
        pid,
        slice,
        seq0,
        deadline,
        stride,
        expected_verdict,
        tail_sha,
        snapshot,
    })
}

/// Restore a dump and re-run it from the checkpoint to its original
/// deadline, verifying the verdict reproduces and the trace tail splices
/// byte-identically.
///
/// # Errors
///
/// A human-readable message for every malformed, corrupted or
/// version-skewed dump — replay never panics on bad input.
pub fn replay_dump(bytes: &[u8]) -> Result<ReplayReport, String> {
    let d = parse_dump(bytes)?;
    let mut k = ksnap::restore(&d.snapshot, d.protection.engine())
        .map_err(|e| format!("embedded snapshot rejected: {e}"))?;
    let remaining = d.deadline.saturating_sub(k.sys.machine.cycles);
    let (exit, violations) = invariants::run_with_checks(&mut k, remaining, d.stride);
    let (verdict, attack_succeeded) = classify_run(&k, Pid(d.pid), d.marker);
    let tail = tail_jsonl(&k.sys.machine.tracer.snapshot(), d.seq0);
    Ok(ReplayReport {
        scenario: d.scenario,
        plan_name: d.plan_name,
        plan: d.plan,
        slice: d.slice,
        verdict_matches: verdict == d.expected_verdict,
        expected_verdict: d.expected_verdict,
        verdict,
        splice_matches: sha256(tail.as_bytes()) == d.tail_sha,
        attack_succeeded,
        exit,
        violations,
        events_replayed: tail.lines().count(),
    })
}

/// What a time-travel replay established.
#[derive(Debug, Clone)]
pub struct TimeTravelReport {
    /// Scenario label from the dump header.
    pub scenario: String,
    /// Plan label from the dump header.
    pub plan_name: String,
    /// Trace seq at the restored checkpoint.
    pub seq0: u64,
    /// The seq the caller asked to stop at.
    pub stop_seq: u64,
    /// Seq actually reached — the first instruction boundary at or past
    /// `stop_seq` (one instruction can emit several events, so this may
    /// overshoot by the tail of that instruction's burst).
    pub seq_reached: u64,
    /// The run emitted `stop_seq` events before ending; `false` means the
    /// guest finished (or a checked slice failed) first.
    pub reached: bool,
    /// Machine cycle counter at the stop point.
    pub cycles: u64,
    /// How the partial run ended ([`RunExit::CyclesExhausted`] for a
    /// seq-stop).
    pub exit: RunExit,
    /// Invariant violations at the stop point (armed single-step windows
    /// are legal mid-run and not reported).
    pub violations: Vec<Violation>,
    /// Trace events re-emitted past the checkpoint.
    pub events_replayed: usize,
    /// JSONL of the re-emitted records (`seq >= seq0`, ring-bounded) up
    /// to the stop point, for inspecting the neighborhood of `stop_seq`.
    pub tail_jsonl: String,
}

/// Restore a dump and run it **to an arbitrary mid-run trace seq** rather
/// than the original deadline: time travel to the moment just after the
/// `stop_seq`-th trace event.
///
/// Slice geometry (per-slice cycle budgets clipped against the original
/// deadline, invariant checks on the same boundaries) is identical to
/// [`replay_dump`], and [`Kernel::run_to_seq`] preserves the scheduler's
/// quantum clipping inside each slice — so every instruction executed up
/// to the stop is the one the full replay executes, and the machine state
/// returned is exactly the original run's state at that point.
///
/// # Errors
///
/// Malformed dumps (as [`replay_dump`]), and `stop_seq` earlier than the
/// checkpoint's own seq — events before the checkpoint were only retained
/// in the final ring, so rewinding before `seq0` needs an earlier dump.
pub fn replay_dump_to_seq(bytes: &[u8], stop_seq: u64) -> Result<TimeTravelReport, String> {
    let d = parse_dump(bytes)?;
    if stop_seq < d.seq0 {
        return Err(format!(
            "stop seq {stop_seq} precedes the checkpoint (seq {}); \
             time travel cannot rewind before the restored snapshot — \
             use a dump with an earlier checkpoint",
            d.seq0
        ));
    }
    let mut k = ksnap::restore(&d.snapshot, d.protection.engine())
        .map_err(|e| format!("embedded snapshot rejected: {e}"))?;
    let deadline = d.deadline;
    let stride = d.stride;
    let mut exit;
    let mut violations = Vec::new();
    let reached = loop {
        let remaining = deadline.saturating_sub(k.sys.machine.cycles);
        exit = k.run_to_seq(stride.min(remaining), stop_seq);
        if k.sys.machine.tracer.emitted() >= stop_seq {
            break true;
        }
        let done = exit != RunExit::CyclesExhausted || remaining <= stride;
        violations = invariants::check(&k);
        violations.extend(invariants::check_trace(&k, exit == RunExit::AllExited));
        if !violations.is_empty() || done {
            break false;
        }
    };
    let tail = tail_jsonl(&k.sys.machine.tracer.snapshot(), d.seq0);
    Ok(TimeTravelReport {
        scenario: d.scenario,
        plan_name: d.plan_name,
        seq0: d.seq0,
        stop_seq,
        seq_reached: k.sys.machine.tracer.emitted(),
        reached,
        cycles: k.sys.machine.cycles,
        exit,
        violations,
        events_replayed: tail.lines().count(),
        tail_jsonl: tail,
    })
}
