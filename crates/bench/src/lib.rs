//! Benchmark harness: one module per table/figure of the paper's
//! evaluation (§6), returning structured results the binaries print and
//! the integration tests assert on.
//!
//! | paper artifact | module | binary |
//! |---|---|---|
//! | Table 1 (Wilander benchmark) | [`table1`] | `cargo run -p sm-bench --bin table1` |
//! | Table 2 (five real-world attacks) | [`table2`] | `... --bin table2` |
//! | Engine × attack matrix (§7 scope boundary) | [`matrix`] | part of `all_experiments` |
//! | Fig. 5 (response modes on WU-FTPD) | [`fig5`] | `... --bin fig5_response_modes` |
//! | Fig. 6 (normalized performance) | [`fig6`] | `... --bin fig6_normalized` |
//! | Fig. 7 (context-switch stress) | [`fig7`] | `... --bin fig7_stress` |
//! | Fig. 8 (Apache page-size sweep) | [`fig8`] | `... --bin fig8_apache_sweep` |
//! | Fig. 9 (split-fraction sweep) | [`fig9`] | `... --bin fig9_split_fraction` |
//! | §4.2.4 / §4.6 / §4.7 design ablations | [`ablation`] | `... --bin ablation` |
//! | §5.1 memory overhead (eager vs demand-allocated) | [`memory`] | `... --bin memory_overhead` |
//!
//! Run everything with `cargo run --release -p sm-bench --bin all_experiments`.

pub mod ablation;
pub mod chaos;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod hist;
pub mod interference;
pub mod matrix;
pub mod memory;
pub mod report;
pub mod shards;
pub mod summary;
pub mod table1;
pub mod table2;
