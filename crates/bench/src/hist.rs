//! Deterministic streaming-percentile histogram, shared by fleet
//! reporting and `BENCH_summary.json`.
//!
//! Fixed-bucket, integer-only: the hot path is a handful of shifts and
//! one array increment — no floats, no allocation after construction, no
//! data-dependent branches beyond the small/large split — so recording a
//! latency sample is cheap enough to run per-request at fleet scale and
//! the resulting report is bit-identical across platforms and thread
//! counts (merging shards is element-wise addition, which commutes).
//!
//! Bucket layout (HDR-style, base-2): values below [`LINEAR_MAX`] get an
//! exact bucket each; every power-of-two octave above that is split into
//! [`SUBBUCKETS`] equal sub-buckets, bounding the relative quantization
//! error of any reported percentile by `1/SUBBUCKETS` (~3%).

/// Values below this are counted exactly (one bucket per value).
const LINEAR_MAX: u64 = 32;
/// Sub-buckets per power-of-two octave above the linear range.
const SUBBUCKETS: u64 = 32;
/// log2(LINEAR_MAX) — octaves below this are inside the linear range.
const LINEAR_BITS: u32 = 5;
/// Octaves: values up to 2^63; bucket count = linear + per-octave.
const OCTAVES: u32 = 64 - LINEAR_BITS;
/// Total bucket count.
const BUCKETS: usize = (LINEAR_MAX + OCTAVES as u64 * SUBBUCKETS) as usize;

/// A fixed-memory streaming histogram over `u64` samples.
#[derive(Clone)]
pub struct Hist {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist::new()
    }
}

/// Map a sample to its bucket index.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    // msb >= LINEAR_BITS here. The octave's low edge is 2^msb; its width
    // 2^msb is split into SUBBUCKETS slices of 2^(msb-5) each.
    let msb = 63 - v.leading_zeros();
    let octave = (msb - LINEAR_BITS) as u64;
    let sub = (v >> (msb - LINEAR_BITS)) & (SUBBUCKETS - 1);
    (LINEAR_MAX + octave * SUBBUCKETS + sub) as usize
}

/// The (inclusive) upper edge of a bucket — what percentiles report.
#[inline]
fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR_MAX {
        return idx;
    }
    let octave = (idx - LINEAR_MAX) / SUBBUCKETS;
    let sub = (idx - LINEAR_MAX) % SUBBUCKETS;
    let msb = octave as u32 + LINEAR_BITS;
    let low = (1u64 << msb) + (sub << (msb - LINEAR_BITS));
    low + (1u64 << (msb - LINEAR_BITS)) - 1
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Hist {
        Hist {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at percentile `p` (0–100): the upper edge of the bucket
    /// holding the sample of rank `ceil(p/100 * count)`, clamped to the
    /// observed max so `percentile(100) == max()` exactly. 0 when empty.
    /// Integer rank walk — no floats.
    pub fn percentile(&self, p: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.min(100) as u64;
        // rank = ceil(p * count / 100), at least 1.
        let rank = ((p * self.count).div_ceil(100)).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (element-wise; commutative
    /// and associative, so shard merge order can't change the report).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.percentile(50))
            .field("p95", &self.percentile(95))
            .field("p99", &self.percentile(99))
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(99), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Hist::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), LINEAR_MAX - 1);
        // 32 samples 0..=31: the median rank (16th sample) is value 15.
        assert_eq!(h.percentile(50), 15);
        assert_eq!(h.percentile(100), 31);
    }

    #[test]
    fn single_sample_every_percentile() {
        let mut h = Hist::new();
        h.record(123_456);
        for p in [0, 1, 50, 95, 99, 100] {
            let got = h.percentile(p);
            assert!(
                (123_456..=123_456 + 123_456 / 16).contains(&got),
                "p{p} = {got}"
            );
        }
    }

    #[test]
    fn bucket_mapping_is_monotonic_and_bounded() {
        let mut vals: Vec<u64> = Vec::new();
        for shift in 0..63 {
            for jitter in [0u64, 1, 3] {
                vals.push((1u64 << shift) + jitter);
            }
        }
        vals.sort_unstable();
        let mut prev = 0usize;
        for v in vals {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            assert!(b >= prev, "bucket map not monotonic at {v}");
            prev = b;
            // The bucket's upper edge never understates the value.
            let high = bucket_high(b);
            assert!(high >= v, "bucket_high({b}) = {high} < {v}");
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_within_one_subbucket() {
        let mut h = Hist::new();
        for i in 0..10_000u64 {
            h.record(i * 97 + 13);
        }
        // Exact p99 of this arithmetic progression: rank 9900 → value
        // 9899*97+13 = 960316. The histogram may overshoot by at most one
        // sub-bucket (1/32 ≈ 3.2%).
        let exact = 9899u64 * 97 + 13;
        let got = h.percentile(99);
        assert!(got >= exact, "p99 {got} understates exact {exact}");
        assert!(
            got - exact <= exact / 16,
            "p99 {got} overshoots exact {exact} by more than a sub-bucket"
        );
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut whole = Hist::new();
        for i in 0..5_000u64 {
            let v = (i * 2654435761) % 1_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [1, 25, 50, 75, 90, 95, 99, 100] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p} differs");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for i in 0..1_000u64 {
            a.record(i * 31);
            b.record(i * 17 + 5);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for p in [50, 95, 99] {
            assert_eq!(ab.percentile(p), ba.percentile(p));
        }
        assert_eq!(ab.sum(), ba.sum());
    }

    #[test]
    fn max_pins_p100() {
        let mut h = Hist::new();
        h.record(1_000_003);
        h.record(7);
        h.record(999);
        assert_eq!(h.percentile(100), 1_000_003);
        assert_eq!(h.min(), 7);
    }
}
