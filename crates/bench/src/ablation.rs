//! Design-choice ablations the paper discusses but does not plot.
//!
//! * §4.2.4: the single-step instruction-TLB loader vs. the rejected
//!   planted-`ret` loader ("surprisingly this actually decreased the
//!   system's efficiency" — the cache-coherency penalty of writing an
//!   executed page outweighs saving the second trap).
//! * §4.6 cost anatomy: how the worst-case overhead responds to the trap
//!   cost and the context-switch cost, isolating the mechanisms the paper
//!   names as "the greatest cause of overhead".

use sm_core::engine::{ItlbLoadMethod, SplitMemConfig, SplitMemEngine};
use sm_core::setup::Protection;
use sm_kernel::kernel::{Kernel, KernelConfig};
use sm_machine::costs::CycleCosts;
use sm_machine::MachineConfig;
use sm_workloads::normalized;
use sm_workloads::unixbench::{run_unixbench_kernel, UnixbenchTest};
use sm_workloads::WorkloadResult;

/// Result of the I-TLB loader ablation.
#[derive(Debug, Clone)]
pub struct ItlbAblation {
    /// Normalized performance with the shipped single-step loader.
    pub single_step: f64,
    /// Normalized performance with the planted-`ret` loader.
    pub planted_ret: f64,
}

fn run_with_costs(
    costs: CycleCosts,
    itlb: ItlbLoadMethod,
    iterations: u32,
    split: bool,
) -> WorkloadResult {
    let mconfig = MachineConfig {
        costs,
        ..MachineConfig::default()
    };
    let engine: Box<dyn sm_kernel::engine::ProtectionEngine> = if split {
        Box::new(SplitMemEngine::new(SplitMemConfig {
            itlb_load: itlb,
            ..SplitMemConfig::default()
        }))
    } else {
        Box::new(sm_kernel::engine::NullEngine)
    };
    let kernel = Kernel::new(mconfig, KernelConfig::default(), engine);
    let label = if split {
        Protection::SplitMem(sm_kernel::events::ResponseMode::Break)
    } else {
        Protection::Unprotected
    };
    run_unixbench_kernel(kernel, &label, UnixbenchTest::PipeContextSwitch, iterations)
}

/// §4.2.4: compare the two instruction-TLB loaders on the context-switch
/// stress test (where I-TLB reloads are most frequent).
pub fn itlb_loader(iterations: u32) -> ItlbAblation {
    let costs = CycleCosts::default();
    let base = run_with_costs(costs, ItlbLoadMethod::SingleStep, iterations, false);
    let ss = run_with_costs(costs, ItlbLoadMethod::SingleStep, iterations, true);
    let ret = run_with_costs(costs, ItlbLoadMethod::PlantedRet, iterations, true);
    ItlbAblation {
        single_step: normalized(&ss, &base),
        planted_ret: normalized(&ret, &base),
    }
}

/// Result of the §4.7 software-TLB port comparison.
#[derive(Debug, Clone)]
pub struct SoftTlbAblation {
    /// Normalized ctxsw performance on the x86-style machine
    /// (hardware-walked TLBs, single-step I-TLB reloads).
    pub x86: f64,
    /// Normalized ctxsw performance on the SPARC-style machine
    /// (software-loaded TLBs, direct kernel fills, lightweight miss trap).
    pub soft_tlb: f64,
}

/// §4.7: "on an architecture with software-loaded TLBs ... the performance
/// overhead imposed on such a system would be noticeably lower." Both
/// machines run the same guest; the soft-TLB machine uses a lightweight
/// dedicated miss-trap vector (a fraction of the x86 exception cost, as on
/// real soft-TLB RISC parts).
pub fn softtlb_port(iterations: u32) -> SoftTlbAblation {
    // x86-style pair.
    let costs = CycleCosts::default();
    let x86_base = run_with_costs(costs, ItlbLoadMethod::SingleStep, iterations, false);
    let x86_split = run_with_costs(costs, ItlbLoadMethod::SingleStep, iterations, true);
    // SPARC-style pair: software-loaded TLBs and a cheap miss trap.
    let soft_costs = CycleCosts {
        exception: 50,
        pf_handler: 60,
        ..CycleCosts::default()
    };
    let soft = |split: bool| {
        let mconfig = MachineConfig {
            software_tlb: true,
            costs: soft_costs,
            ..MachineConfig::default()
        };
        let engine: Box<dyn sm_kernel::engine::ProtectionEngine> = if split {
            Box::new(SplitMemEngine::new(SplitMemConfig::default()))
        } else {
            Box::new(sm_kernel::engine::NullEngine)
        };
        let kernel = Kernel::new(mconfig, KernelConfig::default(), engine);
        let label = if split {
            Protection::SplitMem(sm_kernel::events::ResponseMode::Break)
        } else {
            Protection::Unprotected
        };
        run_unixbench_kernel(kernel, &label, UnixbenchTest::PipeContextSwitch, iterations)
    };
    let soft_base = soft(false);
    let soft_split = soft(true);
    SoftTlbAblation {
        x86: normalized(&x86_split, &x86_base),
        soft_tlb: normalized(&soft_split, &soft_base),
    }
}

/// One cost-sensitivity point.
#[derive(Debug, Clone)]
pub struct SensitivityPoint {
    /// Scaling factor applied to the knob.
    pub factor: f64,
    /// Resulting normalized ctxsw performance.
    pub normalized: f64,
}

/// §4.6: scale the trap-delivery cost and watch the worst case respond
/// ("two interrupts are required" per I-TLB reload).
pub fn trap_cost_sensitivity(iterations: u32) -> Vec<SensitivityPoint> {
    [0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&factor| {
            let mut costs = CycleCosts::default();
            costs.exception = (costs.exception as f64 * factor) as u64;
            costs.pf_handler = (costs.pf_handler as f64 * factor) as u64;
            let base = run_with_costs(costs, ItlbLoadMethod::SingleStep, iterations, false);
            let prot = run_with_costs(costs, ItlbLoadMethod::SingleStep, iterations, true);
            SensitivityPoint {
                factor,
                normalized: normalized(&prot, &base),
            }
        })
        .collect()
}

/// Render all ablations.
pub fn render_all(
    itlb: &ItlbAblation,
    sens: &[SensitivityPoint],
    soft: &SoftTlbAblation,
) -> String {
    let mut out = render(itlb, sens);
    out.push_str("\nsoftware-loaded-TLB port (paper §4.7, pipe-ctxsw normalized):\n");
    out.push_str(&format!(
        "  x86 (hardware walk + single-step):  {:.3}\n",
        soft.x86
    ));
    out.push_str(&format!(
        "  SPARC-style (direct kernel fills):  {:.3}\n",
        soft.soft_tlb
    ));
    out.push_str("  paper: \"the performance overhead imposed on such a system would be\n  noticeably lower\"\n");
    out
}

/// Render both ablations.
pub fn render(itlb: &ItlbAblation, sens: &[SensitivityPoint]) -> String {
    let mut out = String::new();
    out.push_str("I-TLB loader ablation (pipe-ctxsw, normalized):\n");
    out.push_str(&format!(
        "  single-step loader (shipped):   {:.3}\n",
        itlb.single_step
    ));
    out.push_str(&format!(
        "  planted-ret loader (rejected):  {:.3}\n",
        itlb.planted_ret
    ));
    out.push_str(
        "  paper §4.2.4: the ret-based loader \"actually decreased the system's efficiency\"\n\n",
    );
    out.push_str("trap-cost sensitivity (pipe-ctxsw, normalized):\n");
    for p in sens {
        out.push_str(&format!(
            "  exception/handler cost x{:<4} -> {:.3}\n",
            p.factor, p.normalized
        ));
    }
    out.push_str("  paper §4.6: the dual-interrupt reload and context-switch flushes dominate\n");
    out
}
