//! Fig. 6: "Normalized performance for applications and benchmarks"
//! (paper §6.2).
//!
//! Four bars, each the protected system's throughput relative to the
//! unprotected system in stand-alone split-memory mode:
//! Apache serving a 32 KB page (paper ≈ 0.89), gzip (≈ 0.87), the slowest
//! nbench test (≈ 0.97) and the Unixbench index (≈ 0.82).

use rayon::prelude::*;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;
use sm_workloads::nbench::{run_nbench_on, NbenchKernel};
use sm_workloads::unixbench::{run_unixbench_on, UnixbenchTest};
use sm_workloads::{geometric_mean, gzip, httpd, normalized};

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Workload label.
    pub name: String,
    /// Measured normalized performance.
    pub normalized: f64,
    /// The value the paper reports for its testbed.
    pub paper: f64,
}

/// Scale knobs so tests can run a quick version.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Params {
    /// Apache requests.
    pub requests: u32,
    /// gzip input size in KiB.
    pub gzip_kb: u32,
    /// nbench iterations (numeric-sort outer loops; the others are scaled
    /// relative to it).
    pub nbench_iters: u32,
    /// Unixbench iterations for cheap tests (expensive tests are scaled
    /// down internally).
    pub ub_iters: u32,
    /// TLB geometry every run uses (both protected and baseline).
    pub tlb: TlbPreset,
}

impl Default for Fig6Params {
    fn default() -> Fig6Params {
        Fig6Params {
            requests: 40,
            gzip_kb: 64,
            nbench_iters: 300,
            ub_iters: 2500,
            tlb: TlbPreset::default(),
        }
    }
}

impl Fig6Params {
    /// Reduced workload for smoke tests.
    pub fn quick() -> Fig6Params {
        Fig6Params {
            requests: 10,
            gzip_kb: 16,
            nbench_iters: 40,
            ub_iters: 400,
            ..Fig6Params::default()
        }
    }

    /// Same scale, on a different TLB geometry.
    pub fn on(self, tlb: TlbPreset) -> Fig6Params {
        Fig6Params { tlb, ..self }
    }
}

/// Per-test iteration scaling for the Unixbench index (expensive tests
/// are scaled down so the index stays in budget). Public so profiling
/// tools can reproduce the exact per-test workloads.
pub fn ub_iterations_for(test: UnixbenchTest, base: u32) -> u32 {
    match test {
        UnixbenchTest::Syscall => base,
        UnixbenchTest::Dhrystone => base / 2,
        UnixbenchTest::Whetstone => base * 2,
        UnixbenchTest::PipeThroughput => base / 4,
        UnixbenchTest::PipeContextSwitch | UnixbenchTest::Spawn | UnixbenchTest::Execl => {
            (base / 40).max(10)
        }
        UnixbenchTest::FsThroughput => (base / 20).max(10),
    }
}

/// Unixbench index (geometric mean of per-test normalized scores), as real
/// Unixbench aggregates.
pub fn unixbench_index(base: &Protection, prot: &Protection, iters: u32) -> f64 {
    unixbench_index_on(base, prot, TlbPreset::default(), iters)
}

/// [`unixbench_index`] on an explicit TLB geometry. Per-test ratios fan
/// out across threads; the geometric mean is order-insensitive, but the
/// ratio vector keeps `UnixbenchTest::ALL` order anyway.
pub fn unixbench_index_on(base: &Protection, prot: &Protection, tlb: TlbPreset, iters: u32) -> f64 {
    let ratios: Vec<f64> = UnixbenchTest::ALL
        .par_iter()
        .map(|t| {
            let n = ub_iterations_for(*t, iters);
            let b = run_unixbench_on(base, tlb, *t, n);
            let p = run_unixbench_on(prot, tlb, *t, n);
            normalized(&p, &b)
        })
        .collect();
    geometric_mean(&ratios)
}

/// Run the figure. The four bars are independent workload families, so
/// they fan out across threads (each sub-run owns its kernel); the bar
/// order is the paper's fixed order regardless of completion order.
pub fn run(params: Fig6Params) -> Vec<Bar> {
    let base = Protection::Unprotected;
    let prot = Protection::SplitMem(ResponseMode::Break);
    let tlb = params.tlb;

    type BarJob = Box<dyn Fn() -> Bar + Send + Sync>;
    let (b1, p1) = (base.clone(), prot.clone());
    let (b2, p2) = (base.clone(), prot.clone());
    let (b3, p3) = (base.clone(), prot.clone());
    let jobs: Vec<BarJob> = vec![
        Box::new(move || {
            let ab = httpd::run_httpd_on(&b1, tlb, 32 * 1024, params.requests);
            let ap = httpd::run_httpd_on(&p1, tlb, 32 * 1024, params.requests);
            Bar {
                name: "apache (32KB page)".into(),
                normalized: normalized(&ap, &ab),
                paper: 0.89,
            }
        }),
        Box::new(move || {
            let gb = gzip::run_gzip_on(&b2, tlb, params.gzip_kb);
            let gp = gzip::run_gzip_on(&p2, tlb, params.gzip_kb);
            Bar {
                name: "gzip".into(),
                normalized: normalized(&gp, &gb),
                paper: 0.87,
            }
        }),
        Box::new(move || {
            // The paper quotes the *slowest* nbench test.
            let slowest = NbenchKernel::ALL
                .par_iter()
                .map(|nk| {
                    let iters = match nk {
                        NbenchKernel::IntArithmetic => params.nbench_iters * 50,
                        _ => params.nbench_iters,
                    };
                    let b = run_nbench_on(&b3, tlb, *nk, iters);
                    let p = run_nbench_on(&p3, tlb, *nk, iters);
                    normalized(&p, &b)
                })
                .collect::<Vec<f64>>()
                .into_iter()
                .fold(f64::INFINITY, f64::min);
            Bar {
                name: "nbench (slowest test)".into(),
                normalized: slowest,
                paper: 0.97,
            }
        }),
        Box::new(move || Bar {
            name: "unixbench index".into(),
            normalized: unixbench_index_on(&base, &prot, tlb, params.ub_iters),
            paper: 0.82,
        }),
    ];
    jobs.par_iter().map(|job| job()).collect()
}

/// Render the figure.
pub fn render(bars: &[Bar]) -> String {
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:.3}", b.normalized),
                format!("{:.2}", b.paper),
            ]
        })
        .collect();
    let table = crate::report::render_table(&["workload", "measured", "paper"], &rows);
    let series: Vec<(String, f64)> = bars
        .iter()
        .map(|b| (b.name.clone(), b.normalized))
        .collect();
    format!(
        "{table}\n{}",
        crate::report::render_series(
            "normalized performance (1.0 = unprotected)",
            "workload",
            &series
        )
    )
}
