//! Plain-text table rendering for the experiment binaries.

/// Render an ASCII table: a header row plus data rows, columns padded to
/// fit.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    line(&mut out);
    out.push('|');
    for (h, w) in header.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    line(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    line(&mut out);
    out
}

/// Render a simple two-column series (e.g. a figure's x/y data) with a bar
/// visualising the y value in `[0, 1]`.
pub fn render_series(title: &str, xlabel: &str, points: &[(String, f64)]) -> String {
    let mut out = format!("{title}\n");
    let wx = points
        .iter()
        .map(|(x, _)| x.len())
        .max()
        .unwrap_or(0)
        .max(xlabel.len());
    for (x, y) in points {
        let bar_len = (y.clamp(0.0, 1.0) * 40.0).round() as usize;
        out.push_str(&format!("  {x:<wx$}  {y:>6.3}  {}\n", "#".repeat(bar_len)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        // All body lines are the same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{t}");
        assert!(t.contains("longer-name"));
    }

    #[test]
    fn series_bars_scale() {
        let s = render_series("fig", "x", &[("1k".into(), 0.5), ("32k".into(), 1.0)]);
        let half = s.lines().nth(1).unwrap().matches('#').count();
        let full = s.lines().nth(2).unwrap().matches('#').count();
        assert_eq!(half, 20);
        assert_eq!(full, 40);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["x".into()]]);
    }
}
