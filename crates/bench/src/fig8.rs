//! Fig. 8: "Closer look into Apache performance" (paper §6.2).
//!
//! Apache throughput, protected vs. unprotected, as the served page grows
//! from 1 KB to 64 KB: "for low page sizes, the system context switches
//! heavily and performance suffers, whereas for larger page sizes ...
//! the results become significantly better."

use rayon::prelude::*;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;
use sm_workloads::{httpd, normalized};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Served page size in bytes.
    pub page_size: u32,
    /// Normalized performance at this size.
    pub normalized: f64,
    /// Context switches per request (unprotected) — the mechanism behind
    /// the curve.
    pub switches_per_request: f64,
}

/// Page sizes the sweep visits (the paper's 1K–64K range).
pub const PAGE_SIZES: [u32; 7] = [
    1024,
    2 * 1024,
    4 * 1024,
    8 * 1024,
    16 * 1024,
    32 * 1024,
    64 * 1024,
];

/// Run the sweep.
pub fn run(requests: u32) -> Vec<Point> {
    run_on(TlbPreset::default(), requests)
}

/// [`run`] on an explicit TLB geometry. Sweep points are independent and
/// fan out across threads; the returned curve keeps `PAGE_SIZES` order.
pub fn run_on(tlb: TlbPreset, requests: u32) -> Vec<Point> {
    let base = Protection::Unprotected;
    let prot = Protection::SplitMem(ResponseMode::Break);
    PAGE_SIZES
        .par_iter()
        .map(|&page_size| {
            let b = httpd::run_httpd_on(&base, tlb, page_size, requests);
            let p = httpd::run_httpd_on(&prot, tlb, page_size, requests);
            Point {
                page_size,
                normalized: normalized(&p, &b),
                switches_per_request: b.kernel.context_switches as f64 / b.units as f64,
            }
        })
        .collect()
}

/// Render the figure.
pub fn render(points: &[Point]) -> String {
    let series: Vec<(String, f64)> = points
        .iter()
        .map(|p| (format!("{:>3}KB", p.page_size / 1024), p.normalized))
        .collect();
    let mut out = crate::report::render_series(
        "apache normalized throughput vs served page size",
        "page",
        &series,
    );
    out.push_str("\npaper: rising curve — small pages context-switch heavily, large pages\nsaturate the link and amortise the TLB flushes\n");
    out
}
