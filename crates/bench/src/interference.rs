//! Two-guest cross-process interference sweep.
//!
//! One image forks into an attacker and a victim sharing every data frame
//! copy-on-write. The attacker injects a payload into a COW-shared buffer
//! and jumps to it; the victim keeps executing from the *shared* code
//! frames and re-reads the buffer, verifying its view stays pristine. The
//! deterministic round-robin scheduler interleaves the two guests, and the
//! chaos harness's forced preemptions move the interleaving points between
//! arbitrary instruction pairs of either guest.
//!
//! Demanded outcomes:
//!
//! * **unprotected** — the injection works (the attacker exits with the
//!   payload's marker status), proving the attack is real;
//! * **split memory** — every injection attempt is detected (the fetch
//!   lands on the filler code frame) and the attacker never reaches the
//!   payload, under *every* fault plan and seed;
//! * **always** — the victim's view of the buffer stays pristine (COW
//!   isolation), invariants hold between every slice, and verdicts are
//!   byte-identical across fault plans, thread counts and runs.

use crate::chaos::{perturbation_plans, NamedPlan};
use crate::summary::{InterferenceCounters, ProcessProbe};
use rayon::prelude::*;
use sm_attacks::shellcode::{self, as_byte_directive};
use sm_core::invariants::{self, Violation};
use sm_core::setup::Protection;
use sm_kernel::events::Event;
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::{KernelConfig, RunExit};
use sm_kernel::process::Pid;
use sm_kernel::userlib::{BuiltProgram, ProgramBuilder};
use sm_machine::chaos::FaultPlan;
use sm_machine::TlbPreset;

/// Exit status the injected payload reports — seeing it as the attacker's
/// exit code proves the injected bytes executed.
pub const PAYLOAD_MARKER: u8 = 42;

/// Victim exit status when its view of the shared buffer stayed pristine.
pub const VICTIM_CLEAN: i32 = 0;
/// Victim exit status when it observed the attacker's bytes (COW
/// isolation failure).
pub const VICTIM_CORRUPTED: i32 = 7;

/// Build the forking attacker/victim guest. The parent injects
/// [`shellcode::exit_code`]`(PAYLOAD_MARKER)` into `buf` (COW-shared with
/// the child at that point) and jumps to it; the child spins re-checking
/// the first buffer word against its pristine `0x55555555` fill while
/// touching another shared data page every iteration.
pub fn interference_program() -> BuiltProgram {
    let payload = shellcode::exit_code(PAYLOAD_MARKER);
    let len = payload.len();
    ProgramBuilder::new("/bin/interfere")
        .code(&format!(
            "_start:
                mov eax, SYS_FORK
                int 0x80
                cmp eax, 0
                je victim
                jl fork_failed
            attacker:
                ; inject into the COW-shared buffer, then run it
                mov edi, buf
                mov esi, payload
                mov ecx, {len}
                call memcpy
                call buf
                ; injected code never returns; reaching here means the
                ; jump was survived without executing the payload
                mov ebx, 3
                call exit
            fork_failed:
                mov ebx, 9
                call exit
            victim:
                mov ecx, 400
            v_loop:
                mov eax, [buf]
                cmp eax, 0x55555555
                jne corrupted
                mov [scratch], ecx
                dec ecx
                jnz v_loop
                mov ebx, {clean}
                call exit
            corrupted:
                mov ebx, {corrupt}
                call exit",
            clean = VICTIM_CLEAN,
            corrupt = VICTIM_CORRUPTED,
        ))
        .data(&format!(
            "buf: .byte 0x55, 0x55, 0x55, 0x55\n .space 60\npayload: {}\nscratch: .word 0",
            as_byte_directive(&payload)
        ))
        .build()
        .expect("interference program assembles")
}

/// Outcome of one two-guest run.
#[derive(Debug, Clone)]
pub struct InterferenceRun {
    /// Compact verdict label (compared across plans for stability).
    pub verdict: String,
    /// Attacker (fork parent) exit status.
    pub attacker_exit: Option<i32>,
    /// Victim (fork child) exit status.
    pub victim_exit: Option<i32>,
    /// `AttackDetected` events attributed to the attacker.
    pub detections: usize,
    /// True if the injected payload ran (attacker exited with the marker).
    pub attack_succeeded: bool,
    /// True if the victim ever saw the attacker's bytes.
    pub victim_corrupted: bool,
    /// How the kernel run ended.
    pub exit: RunExit,
    /// Invariant violations observed between slices (must be empty).
    pub violations: Vec<Violation>,
}

/// Run the two-guest image under one plan, checking cross-process
/// invariants between slices. `asid_tlbs` selects ASID-tagged TLBs instead
/// of the default flush-on-switch model.
pub fn run_interference_on(
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    asid_tlbs: bool,
) -> InterferenceRun {
    let image = interference_program().image;
    run_image_on(&image, protection, tlb, plan, asid_tlbs)
}

fn run_image_on(
    image: &ExecImage,
    protection: &Protection,
    tlb: TlbPreset,
    plan: FaultPlan,
    asid_tlbs: bool,
) -> InterferenceRun {
    let kconfig = KernelConfig {
        aslr_stack: false,
        chaos: plan,
        asid_tlbs,
        ..KernelConfig::default()
    };
    let mut k = protection.kernel_on(tlb, kconfig);
    let parent = k.spawn(image).expect("interference image spawns");
    let (exit, violations) = invariants::run_with_checks(&mut k, 80_000_000, 100_000);
    let child = k
        .sys
        .procs
        .keys()
        .find(|&&p| p != parent.0)
        .copied()
        .map(Pid);
    let exit_of = |p: Option<Pid>| {
        p.and_then(|p| k.sys.procs.get(&p.0))
            .and_then(|p| p.exit_code)
    };
    let attacker_exit = exit_of(Some(parent));
    let victim_exit = exit_of(child);
    let detections = k
        .sys
        .events
        .iter()
        .filter(|e| matches!(e, Event::AttackDetected { pid, .. } if *pid == parent))
        .count();
    let attack_succeeded = attacker_exit == Some(PAYLOAD_MARKER as i32);
    let victim_corrupted = victim_exit == Some(VICTIM_CORRUPTED);
    InterferenceRun {
        verdict: format!(
            "attacker={attacker_exit:?} victim={victim_exit:?} detections={detections}"
        ),
        attacker_exit,
        victim_exit,
        detections,
        attack_succeeded,
        victim_corrupted,
        exit,
        violations,
    }
}

/// Run the two-guest image fault-free and collect the kernel- and
/// per-process counters for the machine-readable benchmark summary.
pub fn probe(protection: &Protection, asid_tlbs: bool) -> InterferenceCounters {
    let image = interference_program().image;
    let kconfig = KernelConfig {
        aslr_stack: false,
        asid_tlbs,
        ..KernelConfig::default()
    };
    let mut k = protection.kernel_on(TlbPreset::default(), kconfig);
    let parent = k.spawn(&image).expect("interference image spawns");
    let _ = invariants::run_with_checks(&mut k, 80_000_000, 100_000);
    let mut processes: Vec<ProcessProbe> = k
        .sys
        .procs
        .iter()
        .map(|(raw, p)| ProcessProbe {
            pid: *raw,
            role: if *raw == parent.0 {
                "attacker"
            } else {
                "victim"
            }
            .into(),
            user_cycles: p.user_cycles,
            exit_code: p.exit_code,
        })
        .collect();
    processes.sort_by_key(|p| p.pid);
    let detections = k
        .sys
        .events
        .iter()
        .filter(|e| matches!(e, Event::AttackDetected { .. }))
        .count() as u64;
    InterferenceCounters {
        context_switches: k.sys.stats.context_switches,
        cow_breaks: k.sys.stats.cow_breaks,
        detections,
        processes,
    }
}

/// One line of an interference sweep report.
#[derive(Debug, Clone)]
pub struct InterferenceCombo {
    /// Plan label.
    pub plan: &'static str,
    /// Plan seed.
    pub seed: u64,
    /// The run itself.
    pub run: InterferenceRun,
    /// The fault-free verdict this combo was compared against.
    pub baseline: String,
    /// `verdict == baseline`.
    pub verdict_stable: bool,
}

/// Sweep `seeds × perturbation plans` for the two-guest image under
/// `protection`. Combos fan out across threads (each owns its seeded
/// fault stream and kernel); results are merged in deterministic input
/// order, byte-identical to [`sweep_interference_serial_on`].
pub fn sweep_interference_on(
    seeds: &[u64],
    protection: &Protection,
    tlb: TlbPreset,
    asid_tlbs: bool,
) -> Vec<InterferenceCombo> {
    let image = interference_program().image;
    let baseline = run_image_on(&image, protection, tlb, FaultPlan::default(), asid_tlbs);
    let combos: Vec<(u64, NamedPlan)> = seeds
        .iter()
        .flat_map(|&seed| {
            perturbation_plans(seed)
                .into_iter()
                .map(move |np| (seed, np))
        })
        .collect();
    let runs: Vec<InterferenceRun> = combos
        .par_iter()
        .map(|&(_, np)| run_image_on(&image, protection, tlb, np.plan, asid_tlbs))
        .collect();
    combos
        .into_iter()
        .zip(runs)
        .map(|((seed, np), run)| InterferenceCombo {
            plan: np.name,
            seed,
            verdict_stable: run.verdict == baseline.verdict,
            baseline: baseline.verdict.clone(),
            run,
        })
        .collect()
}

/// Single-threaded [`sweep_interference_on`], kept as the reference the
/// parallel sweep is tested byte-identical against.
pub fn sweep_interference_serial_on(
    seeds: &[u64],
    protection: &Protection,
    tlb: TlbPreset,
    asid_tlbs: bool,
) -> Vec<InterferenceCombo> {
    let image = interference_program().image;
    let baseline = run_image_on(&image, protection, tlb, FaultPlan::default(), asid_tlbs);
    let mut out = Vec::new();
    for &seed in seeds {
        for np in perturbation_plans(seed) {
            let run = run_image_on(&image, protection, tlb, np.plan, asid_tlbs);
            out.push(InterferenceCombo {
                plan: np.name,
                seed,
                verdict_stable: run.verdict == baseline.verdict,
                baseline: baseline.verdict.clone(),
                run,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_kernel::events::ResponseMode;

    #[test]
    fn unprotected_injection_crosses_the_fork_and_runs() {
        let r = run_interference_on(
            &Protection::Unprotected,
            TlbPreset::default(),
            FaultPlan::default(),
            false,
        );
        assert!(r.attack_succeeded, "verdict: {}", r.verdict);
        assert_eq!(
            r.victim_exit,
            Some(VICTIM_CLEAN),
            "COW must isolate the victim"
        );
        assert!(!r.victim_corrupted);
        assert_eq!(r.exit, RunExit::AllExited);
    }

    #[test]
    fn split_memory_detects_the_cross_process_injection() {
        for asid in [false, true] {
            let r = run_interference_on(
                &Protection::SplitMem(ResponseMode::Break),
                TlbPreset::default(),
                FaultPlan::default(),
                asid,
            );
            assert!(!r.attack_succeeded, "asid={asid}: verdict: {}", r.verdict);
            assert!(r.detections >= 1, "asid={asid}: verdict: {}", r.verdict);
            assert_eq!(r.victim_exit, Some(VICTIM_CLEAN), "asid={asid}");
            assert!(r.violations.is_empty(), "asid={asid}: {:?}", r.violations);
        }
    }

    #[test]
    fn parallel_interference_sweep_matches_serial() {
        let seeds = [1u64];
        let split = Protection::SplitMem(ResponseMode::Break);
        let par = sweep_interference_on(&seeds, &split, TlbPreset::default(), false);
        let ser = sweep_interference_serial_on(&seeds, &split, TlbPreset::default(), false);
        assert_eq!(format!("{par:?}"), format!("{ser:?}"));
    }
}
