//! Table 2: "Five Real-World Vulnerabilities" (paper §6.1.2).
//!
//! Each scenario runs on the unpatched kernel (column "Attack Result":
//! a root shell), under stand-alone split memory ("Result with Split
//! Memory": attack foiled, injected code never fetched), and — beyond the
//! paper's table — under the execute-disable baseline for comparison.

use rayon::prelude::*;
use sm_attacks::harness::Protection;
use sm_attacks::real_world::{run_scenario, Scenario};
use sm_attacks::AttackOutcome;
use sm_kernel::events::ResponseMode;

/// One scenario's row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Which attack.
    pub scenario: Scenario,
    /// Outcome on the unpatched kernel.
    pub unprotected: AttackOutcome,
    /// Outcome under stand-alone split memory (break mode).
    pub split: AttackOutcome,
    /// Detections logged by split memory.
    pub split_detections: usize,
    /// Outcome under the NX baseline (extra column).
    pub nx: AttackOutcome,
    /// Outcome under the full defense-in-depth stack —
    /// shadow-stack/CFI over combined split+NX (extra column).
    pub shadow: AttackOutcome,
    /// Brute-force attempts the exploit needed unprotected (Samba's ASLR
    /// fight).
    pub attempts_unprotected: u32,
}

/// The table.
#[derive(Debug)]
pub struct Table2 {
    /// One row per scenario.
    pub rows: Vec<Row>,
}

impl Table2 {
    /// True when the table matches the paper: every attack yields a shell
    /// unprotected and is foiled (with detection) by split memory.
    pub fn matches_paper(&self) -> bool {
        self.rows.iter().all(|r| {
            r.unprotected == AttackOutcome::ShellSpawned
                && !r.split.succeeded()
                && r.split_detections > 0
        })
    }
}

/// Run all five scenarios under the three configurations. Scenarios fan
/// out across threads (each run owns its kernel); row order stays the
/// deterministic `Scenario::ALL` order.
pub fn run() -> Table2 {
    let rows = Scenario::ALL
        .par_iter()
        .map(|s| {
            let base = run_scenario(*s, &Protection::Unprotected);
            let split = run_scenario(*s, &Protection::SplitMem(ResponseMode::Break));
            let nx = run_scenario(*s, &Protection::Nx);
            let shadow = run_scenario(*s, &Protection::ShadowCombined(ResponseMode::Break));
            Row {
                scenario: *s,
                unprotected: base.outcome,
                split: split.outcome,
                split_detections: split.detections,
                nx: nx.outcome,
                shadow: shadow.outcome,
                attempts_unprotected: base.attempts,
            }
        })
        .collect();
    Table2 { rows }
}

fn outcome_text(o: &AttackOutcome) -> String {
    match o {
        AttackOutcome::ShellSpawned => "root shell".into(),
        AttackOutcome::PayloadExecuted => "code executed".into(),
        AttackOutcome::Foiled { detected: true } => "attack foiled (detected)".into(),
        AttackOutcome::Foiled { detected: false } => "attack foiled".into(),
    }
}

/// Render the table.
pub fn render(t: &Table2) -> String {
    let header = [
        "software (paper)",
        "attack result",
        "result with split memory",
        "result with NX bit",
        "result with shadow stack",
        "attempts",
    ];
    let rows: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.paper_target().to_string(),
                outcome_text(&r.unprotected),
                outcome_text(&r.split),
                outcome_text(&r.nx),
                outcome_text(&r.shadow),
                r.attempts_unprotected.to_string(),
            ]
        })
        .collect();
    crate::report::render_table(&header, &rows)
}
