//! Engine × attack matrix: every protection configuration against every
//! attack in the corpus — the five Table 2 injection scenarios plus the
//! code-reuse gallery (ret2libc, ROP, the DCR fingerprint probe).
//!
//! The matrix makes the paper's scope boundary (§7) a single table: split
//! memory and execute-disable stop every *injection* attack and none of
//! the *code-reuse* attacks; the shadow-stack/CFI engine is exactly the
//! other way around for hijacks it can see, and the stacked configuration
//! stops everything. [`Matrix::violations`] pins those expectations so a
//! regression in any engine shows up as a named cell, not a silent flip.

use rayon::prelude::*;
use sm_attacks::code_reuse::{self, ReuseAttack};
use sm_attacks::harness::Protection;
use sm_attacks::real_world::{run_scenario, Scenario};
use sm_attacks::AttackOutcome;
use sm_kernel::events::ResponseMode;

/// One attack row of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// A Table 2 injection scenario.
    Injection(Scenario),
    /// A code-reuse gallery attack.
    Reuse(ReuseAttack),
}

impl Attack {
    /// All rows, injection first, gallery order within each group.
    pub fn all() -> Vec<Attack> {
        Scenario::ALL
            .into_iter()
            .map(Attack::Injection)
            .chain(ReuseAttack::ALL.into_iter().map(Attack::Reuse))
            .collect()
    }

    /// Row label.
    pub fn name(&self) -> String {
        match self {
            Attack::Injection(s) => s.name().to_string(),
            Attack::Reuse(a) => a.name().to_string(),
        }
    }

    /// True for the rows that inject code (the paper's Table 1/2 class).
    pub fn injects_code(&self) -> bool {
        // The fingerprint probe is delivered by injection too — only the
        // pure code-reuse chains never place bytes of their own.
        !matches!(
            self,
            Attack::Reuse(ReuseAttack::Ret2Libc) | Attack::Reuse(ReuseAttack::RopChain)
        )
    }
}

/// One cell: an attack under an engine.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Row.
    pub attack: Attack,
    /// Column label (the engine's [`Protection::label`]).
    pub engine: String,
    /// Classified outcome.
    pub outcome: AttackOutcome,
    /// Detections the engine logged.
    pub detections: usize,
}

/// The full matrix.
#[derive(Debug)]
pub struct Matrix {
    /// Column configurations, display order.
    pub engines: Vec<Protection>,
    /// Cells in row-major (attack-major) order.
    pub cells: Vec<Cell>,
}

/// The matrix columns: every break-mode engine tier, weakest first.
pub fn engines() -> Vec<Protection> {
    vec![
        Protection::Unprotected,
        Protection::SplitMem(ResponseMode::Break),
        Protection::Nx,
        Protection::Combined(ResponseMode::Break),
        Protection::ShadowStack(ResponseMode::Break),
        Protection::ShadowCombined(ResponseMode::Break),
    ]
}

/// Run the whole matrix. Cells are independent (each run owns its
/// kernel), so they fan out across threads; results keep row-major order.
pub fn run() -> Matrix {
    let engines = engines();
    let pairs: Vec<(Attack, Protection)> = Attack::all()
        .into_iter()
        .flat_map(|a| engines.iter().cloned().map(move |e| (a, e)))
        .collect();
    let cells = pairs
        .par_iter()
        .map(|(attack, engine)| {
            let (outcome, detections) = match attack {
                Attack::Injection(s) => {
                    let r = run_scenario(*s, engine);
                    (r.outcome, r.detections)
                }
                Attack::Reuse(a) => {
                    let r = code_reuse::run_reuse(*a, engine);
                    (r.outcome, r.detections)
                }
            };
            Cell {
                attack: *attack,
                engine: engine.label(),
                outcome,
                detections,
            }
        })
        .collect();
    Matrix { engines, cells }
}

impl Matrix {
    fn cell(&self, attack: Attack, engine: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.attack == attack && c.engine == engine)
    }

    /// Check the pinned expectations; returns one message per violated
    /// cell (empty = the matrix matches the paper plus the PR's
    /// code-reuse extension).
    ///
    /// - Unprotected: every attack ends in a shell (the corpus is real).
    /// - Split memory & combined: every *injection* attack foiled with a
    ///   detection; both *code-reuse* chains succeed **undetected** (the
    ///   paper's §7 negative result, held as a regression test).
    /// - NX: both code-reuse chains succeed undetected too.
    /// - Shadow stack (alone and stacked): every attack foiled with a
    ///   detection — every hijack in the corpus bends a return or an
    ///   indirect transfer, which is exactly what it watches.
    pub fn violations(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let mut check = |attack: Attack, engine: &str, want_shell: bool, want_detect: bool| {
            let Some(c) = self.cell(attack, engine) else {
                bad.push(format!("missing cell {} x {engine}", attack.name()));
                return;
            };
            if c.outcome.succeeded() != want_shell {
                bad.push(format!(
                    "{} x {engine}: {:?} (want {})",
                    attack.name(),
                    c.outcome,
                    if want_shell { "success" } else { "foiled" },
                ));
            }
            if want_detect && c.detections == 0 {
                bad.push(format!("{} x {engine}: no detection logged", attack.name()));
            }
            if !want_detect && c.detections > 0 {
                bad.push(format!(
                    "{} x {engine}: {} detections (want none — the engine cannot see this attack)",
                    attack.name(),
                    c.detections
                ));
            }
        };
        let split = Protection::SplitMem(ResponseMode::Break).label();
        let nx = Protection::Nx.label();
        let combined = Protection::Combined(ResponseMode::Break).label();
        let shadow = Protection::ShadowStack(ResponseMode::Break).label();
        let stacked = Protection::ShadowCombined(ResponseMode::Break).label();
        for attack in Attack::all() {
            check(attack, "unprotected", true, false);
            check(attack, &shadow, false, true);
            check(attack, &stacked, false, true);
            if attack.injects_code() {
                check(attack, &split, false, true);
                check(attack, &combined, false, true);
            } else {
                check(attack, &split, true, false);
                check(attack, &nx, true, false);
                check(attack, &combined, true, false);
            }
        }
        bad
    }

    /// Cell symbol: what the attacker got, and whether the defense saw it.
    fn symbol(c: &Cell) -> String {
        let base = match c.outcome {
            AttackOutcome::ShellSpawned => "shell",
            AttackOutcome::PayloadExecuted => "code ran",
            AttackOutcome::Foiled { .. } => "foiled",
        };
        if c.detections > 0 {
            format!("{base}+log")
        } else {
            base.to_string()
        }
    }
}

/// Render with attacks as rows, engines as columns.
pub fn render(m: &Matrix) -> String {
    let mut header = vec!["attack".to_string()];
    header.extend(m.engines.iter().map(Protection::label));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = Attack::all()
        .into_iter()
        .map(|a| {
            let mut row = vec![a.name()];
            for e in &m.engines {
                row.push(
                    m.cell(a, &e.label())
                        .map(Matrix::symbol)
                        .unwrap_or_else(|| "?".into()),
                );
            }
            row
        })
        .collect();
    crate::report::render_table(&header_refs, &rows)
}
