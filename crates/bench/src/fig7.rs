//! Fig. 7: "Stress testing the performance penalties due to context
//! switching" (paper §6.2).
//!
//! Two contrived worst cases: the Unixbench pipe-based context-switching
//! test and Apache serving a 1 KB page. "In both of these tests, context
//! switching is taken to an extreme ... both are at or below 50 percent."

use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_workloads::unixbench::{run_unixbench, UnixbenchTest};
use sm_workloads::{httpd, normalized};

/// One stress bar.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Workload label.
    pub name: String,
    /// Measured normalized performance.
    pub normalized: f64,
    /// Context switches per work unit (the mechanism).
    pub switches_per_unit: f64,
}

/// Run the two stress tests.
pub fn run(iterations: u32) -> Vec<Bar> {
    let base = Protection::Unprotected;
    let prot = Protection::SplitMem(ResponseMode::Break);
    let mut bars = Vec::new();

    let cb = run_unixbench(&base, UnixbenchTest::PipeContextSwitch, iterations);
    let cp = run_unixbench(&prot, UnixbenchTest::PipeContextSwitch, iterations);
    bars.push(Bar {
        name: "unixbench pipe-ctxsw".into(),
        normalized: normalized(&cp, &cb),
        switches_per_unit: cb.kernel.context_switches as f64 / cb.units as f64,
    });

    let ab = httpd::run_httpd(&base, 1024, iterations);
    let ap = httpd::run_httpd(&prot, 1024, iterations);
    bars.push(Bar {
        name: "apache (1KB page)".into(),
        normalized: normalized(&ap, &ab),
        switches_per_unit: ab.kernel.context_switches as f64 / ab.units as f64,
    });
    bars
}

/// Render the figure.
pub fn render(bars: &[Bar]) -> String {
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:.3}", b.normalized),
                format!("{:.1}", b.switches_per_unit),
            ]
        })
        .collect();
    let table =
        crate::report::render_table(&["stress test", "measured", "ctx switches / unit"], &rows);
    format!("{table}\npaper: both stress tests at or below 0.50 of unprotected speed\n")
}
