//! Fig. 7: "Stress testing the performance penalties due to context
//! switching" (paper §6.2).
//!
//! Two contrived worst cases: the Unixbench pipe-based context-switching
//! test and Apache serving a 1 KB page. "In both of these tests, context
//! switching is taken to an extreme ... both are at or below 50 percent."
//!
//! On set-associative geometries the figure also carries TLB counter
//! diagnostics: per-class miss counts (cold / capacity / conflict) for the
//! stress workloads plus a strided single-set probe that makes the
//! conflict pressure explicit (the paper's workloads have footprints too
//! small and contiguous to overflow a 4-way set on their own).

use rayon::prelude::*;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::tlb::TlbStats;
use sm_machine::TlbPreset;
use sm_workloads::unixbench::{run_unixbench_on, UnixbenchTest};
use sm_workloads::{httpd, normalized, tlbprobe, WorkloadResult};

/// One stress bar.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Workload label.
    pub name: String,
    /// Measured normalized performance.
    pub normalized: f64,
    /// Context switches per work unit (the mechanism).
    pub switches_per_unit: f64,
}

/// TLB counter diagnostics for one protected stress run.
#[derive(Debug, Clone)]
pub struct TlbDiag {
    /// Workload label.
    pub name: String,
    /// I-TLB counter deltas.
    pub itlb: TlbStats,
    /// D-TLB counter deltas.
    pub dtlb: TlbStats,
}

impl TlbDiag {
    fn of(r: &WorkloadResult) -> TlbDiag {
        TlbDiag {
            name: r.name.clone(),
            itlb: r.itlb,
            dtlb: r.dtlb,
        }
    }
}

/// Run the two stress tests.
pub fn run(iterations: u32) -> Vec<Bar> {
    run_on(TlbPreset::default(), iterations)
}

/// [`run`] on an explicit TLB geometry. The two stress tests are
/// independent and fan out across threads; bar order is fixed.
pub fn run_on(tlb: TlbPreset, iterations: u32) -> Vec<Bar> {
    let base = Protection::Unprotected;
    let prot = Protection::SplitMem(ResponseMode::Break);

    type BarJob = Box<dyn Fn() -> Bar + Send + Sync>;
    let (b1, p1) = (base.clone(), prot.clone());
    let jobs: Vec<BarJob> = vec![
        Box::new(move || {
            let cb = run_unixbench_on(&b1, tlb, UnixbenchTest::PipeContextSwitch, iterations);
            let cp = run_unixbench_on(&p1, tlb, UnixbenchTest::PipeContextSwitch, iterations);
            Bar {
                name: "unixbench pipe-ctxsw".into(),
                normalized: normalized(&cp, &cb),
                switches_per_unit: cb.kernel.context_switches as f64 / cb.units as f64,
            }
        }),
        Box::new(move || {
            let ab = httpd::run_httpd_on(&base, tlb, 1024, iterations);
            let ap = httpd::run_httpd_on(&prot, tlb, 1024, iterations);
            Bar {
                name: "apache (1KB page)".into(),
                normalized: normalized(&ap, &ab),
                switches_per_unit: ab.kernel.context_switches as f64 / ab.units as f64,
            }
        }),
    ];
    jobs.par_iter().map(|job| job()).collect()
}

/// TLB miss anatomy under the stress protection: the two Fig. 7 workloads
/// plus the strided conflict probe, all on the same geometry.
pub fn tlb_diagnostics(tlb: TlbPreset, iterations: u32) -> Vec<TlbDiag> {
    let prot = Protection::SplitMem(ResponseMode::Break);
    vec![
        TlbDiag::of(&run_unixbench_on(
            &prot,
            tlb,
            UnixbenchTest::PipeContextSwitch,
            iterations,
        )),
        TlbDiag::of(&httpd::run_httpd_on(&prot, tlb, 1024, iterations)),
        TlbDiag::of(&tlbprobe::run_conflict_probe(&prot, tlb, iterations)),
    ]
}

/// Render the figure.
pub fn render(bars: &[Bar]) -> String {
    let rows: Vec<Vec<String>> = bars
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                format!("{:.3}", b.normalized),
                format!("{:.1}", b.switches_per_unit),
            ]
        })
        .collect();
    let table =
        crate::report::render_table(&["stress test", "measured", "ctx switches / unit"], &rows);
    format!("{table}\npaper: both stress tests at or below 0.50 of unprotected speed\n")
}

/// Render the TLB diagnostics table.
pub fn render_diagnostics(diags: &[TlbDiag]) -> String {
    let fmt = |s: &TlbStats| {
        format!(
            "{}/{}/{}",
            s.cold_misses, s.capacity_misses, s.conflict_misses
        )
    };
    let rows: Vec<Vec<String>> = diags
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                fmt(&d.itlb),
                fmt(&d.dtlb),
                format!("{}", d.itlb.evictions + d.dtlb.evictions),
            ]
        })
        .collect();
    let table = crate::report::render_table(
        &[
            "workload (split-protected)",
            "itlb cold/cap/conf",
            "dtlb cold/cap/conf",
            "evictions",
        ],
        &rows,
    );
    format!("{table}\nconflict misses need a set-associative geometry; the strided probe\npins its working set to one set to surface them\n")
}
