//! §5.1 memory overhead: "the memory usage of an application is
//! effectively doubled; however, this limitation is not one of the
//! technique itself, but instead of the prototype. A system can be
//! envisioned based on demand paging ... a lower memory overhead ...
//! We would anticipate this optimization to not have any noticeable
//! impact on performance."
//!
//! This module measures all three systems the paragraph talks about —
//! unprotected, the prototype's eager splitting, and the envisioned
//! demand-allocated (lazy) splitting — on the same workload, reporting
//! peak physical frames and throughput.

use sm_core::engine::SplitMemConfig;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_workloads::{httpd, normalized, WorkloadResult};

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Configuration label.
    pub label: String,
    /// Peak physical frames in use.
    pub peak_frames: u32,
    /// Peak frames relative to unprotected.
    pub memory_ratio: f64,
    /// Throughput relative to unprotected.
    pub normalized_perf: f64,
}

/// Run the comparison on the httpd workload.
pub fn run(page_size: u32, requests: u32) -> Vec<MemoryRow> {
    let base = httpd::run_httpd(&Protection::Unprotected, page_size, requests);
    let eager = httpd::run_httpd(
        &Protection::SplitMem(ResponseMode::Break),
        page_size,
        requests,
    );
    let lazy_cfg = SplitMemConfig {
        lazy_code_frames: true,
        ..SplitMemConfig::default()
    };
    let lazy = httpd::run_httpd(&Protection::SplitMemCustom(lazy_cfg), page_size, requests);
    let row = |label: &str, r: &WorkloadResult| MemoryRow {
        label: label.to_string(),
        peak_frames: r.peak_frames,
        memory_ratio: r.peak_frames as f64 / base.peak_frames as f64,
        normalized_perf: normalized(r, &base),
    };
    vec![
        row("unprotected", &base),
        row("split (eager, the paper's prototype)", &eager),
        row("split (demand-allocated code frames, §5.1)", &lazy),
    ]
}

/// Render the table.
pub fn render(rows: &[MemoryRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                r.peak_frames.to_string(),
                format!("{:.2}x", r.memory_ratio),
                format!("{:.3}", r.normalized_perf),
            ]
        })
        .collect();
    let table = crate::report::render_table(
        &[
            "configuration",
            "peak frames",
            "memory vs base",
            "perf vs base",
        ],
        &body,
    );
    format!(
        "{table}\npaper §5.1: the prototype doubles memory; the envisioned demand-paging\nvariant lowers that \"without any noticeable impact on performance\"\n"
    )
}
