#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates the paper's Fig. 5 (response modes against WU-FTPD).
//! `--trace` appends a flight-recorded break-mode run: the tail of the
//! cycle-stamped `sm-trace` ring around the detection, validated against
//! the event-ordering protocol.
fn main() {
    println!("Fig. 5 — response modes against the WU-FTPD exploit\n");
    let f = sm_bench::fig5::run();
    println!("{}", sm_bench::fig5::render(&f));
    if std::env::args().any(|a| a == "--trace") {
        println!("{}", sm_bench::fig5::trace_demo());
    }
}
