//! Regenerates the paper's Fig. 5 (response modes against WU-FTPD).
fn main() {
    println!("Fig. 5 — response modes against the WU-FTPD exploit\n");
    let f = sm_bench::fig5::run();
    println!("{}", sm_bench::fig5::render(&f));
}
