#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Design-choice ablations (paper §4.2.4 and §4.6).
fn main() {
    println!("Ablations — §4.2.4 I-TLB loader and §4.6 cost anatomy\n");
    let itlb = sm_bench::ablation::itlb_loader(60);
    let sens = sm_bench::ablation::trap_cost_sensitivity(60);
    let soft = sm_bench::ablation::softtlb_port(60);
    println!("{}", sm_bench::ablation::render_all(&itlb, &sens, &soft));
}
