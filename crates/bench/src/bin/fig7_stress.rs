//! Regenerates the paper's Fig. 7 (context-switch stress tests).
fn main() {
    println!("Fig. 7 — context-switch stress tests\n");
    let bars = sm_bench::fig7::run(60);
    println!("{}", sm_bench::fig7::render(&bars));
}
