#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates the paper's Fig. 7 (context-switch stress tests), on both
//! the fully-associative compat geometry and the paper's Pentium III
//! testbed geometry, with TLB miss-class diagnostics for the latter.
use sm_machine::TlbPreset;

fn main() {
    println!("Fig. 7 — context-switch stress tests\n");
    println!("-- fully-associative 64-entry TLBs (compat preset) --\n");
    let bars = sm_bench::fig7::run(60);
    println!("{}", sm_bench::fig7::render(&bars));

    println!("-- pentium3 preset (32-entry 4-way I-TLB, 64-entry 4-way D-TLB) --\n");
    let p3 = TlbPreset::pentium3();
    let bars = sm_bench::fig7::run_on(p3, 60);
    println!("{}", sm_bench::fig7::render(&bars));

    println!("-- TLB miss anatomy (pentium3, split-protected) --\n");
    let diags = sm_bench::fig7::tlb_diagnostics(p3, 60);
    println!("{}", sm_bench::fig7::render_diagnostics(&diags));
}
