#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Per-sub-run profile of the Fig. 6 pipeline (serial, wall-clock +
//! simulated-instruction counts), used to attribute the section's time
//! before/after host-side optimisations. Simulation outputs are printed
//! so optimisations can be checked byte-identical.

use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;
use sm_workloads::nbench::{run_nbench_on, NbenchKernel};
use sm_workloads::unixbench::{run_unixbench_on, UnixbenchTest};
use sm_workloads::{gzip, httpd};
use std::time::Instant;

fn main() {
    if std::env::args().any(|a| a == "--no-pipeline") {
        // A/B switch: attribute the superblock pipeline's win per sub-run
        // (the simulation outputs must not change either way).
        sm_kernel::kernel::set_default_pipeline(false);
    }
    let base = Protection::Unprotected;
    let prot = Protection::SplitMem(ResponseMode::Break);
    let tlb = if std::env::args().any(|a| a == "--pentium3") {
        TlbPreset::pentium3()
    } else {
        TlbPreset::default()
    };
    let p = sm_bench::fig6::Fig6Params::default();

    let mut total = 0f64;
    let mut row = |name: String, f: &mut dyn FnMut() -> (u64, u64)| {
        let t0 = Instant::now();
        let (cycles, insns) = f();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        total += ms;
        println!("{name:<28} {ms:>9.1} ms  {insns:>12} insns  {cycles:>13} cycles");
    };

    for (label, protection) in [("base", &base), ("prot", &prot)] {
        row(format!("httpd-32k {label}"), &mut || {
            let r = httpd::run_httpd_on(protection, tlb, 32 * 1024, p.requests);
            (r.cycles, r.machine.instructions)
        });
        row(format!("gzip {label}"), &mut || {
            let r = gzip::run_gzip_on(protection, tlb, p.gzip_kb);
            (r.cycles, r.machine.instructions)
        });
        for nk in NbenchKernel::ALL {
            let iters = match nk {
                NbenchKernel::IntArithmetic => p.nbench_iters * 50,
                _ => p.nbench_iters,
            };
            row(format!("nbench-{} {label}", nk.name()), &mut || {
                let r = run_nbench_on(protection, tlb, nk, iters);
                (r.cycles, r.machine.instructions)
            });
        }
        for t in UnixbenchTest::ALL {
            let iters = sm_bench::fig6::ub_iterations_for(t, p.ub_iters);
            row(format!("ub-{} {label}", t.name()), &mut || {
                let r = run_unixbench_on(protection, tlb, t, iters);
                (r.cycles, r.machine.instructions)
            });
        }
    }
    println!("{:-<78}", "");
    println!("{:<28} {total:>9.1} ms serial total", "fig6 (one geometry)");
}
