#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates the paper's Table 1 (Wilander benchmark grid).
fn main() {
    println!("Table 1 — benchmark attacks foiled by split memory, by injection segment\n");
    let t = sm_bench::table1::run();
    println!("{}", sm_bench::table1::render(&t));
    println!(
        "{} attacks foiled, {} N/A (paper: all applicable attacks foiled, 4 N/A)",
        t.foiled(),
        t.not_applicable()
    );
    assert!(t.matches_paper(), "TABLE 1 DOES NOT MATCH THE PAPER");
}
