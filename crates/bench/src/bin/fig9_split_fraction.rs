#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates the paper's Fig. 9 (split-fraction sweep under NX+split).
fn main() {
    println!("Fig. 9 — pipe-ctxsw vs fraction of pages split\n");
    let points = sm_bench::fig9::run(50, 8);
    println!("{}", sm_bench::fig9::render(&points));
}
