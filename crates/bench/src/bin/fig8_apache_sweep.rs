#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates the paper's Fig. 8 (Apache page-size sweep).
fn main() {
    println!("Fig. 8 — Apache throughput vs served page size\n");
    let points = sm_bench::fig8::run(30);
    println!("{}", sm_bench::fig8::render(&points));
}
