#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Fleet-scale multi-tenant simulation driver.
//!
//! Runs hundreds of tenants across sharded kernel cells under a seeded
//! open-loop arrival stream and prints the per-kind/per-fleet report
//! (latency percentiles, throughput, SLO misses, detection rates,
//! degradation events). Deterministic: the report is byte-identical for a
//! fixed seed regardless of `RAYON_NUM_THREADS` or `--shards`.
//!
//! ```text
//! cargo run --release -p sm-bench --bin fleet -- --tenants 500 --profile burst
//! ```
//!
//! Flags:
//! - `--tenants N` total tenant count (default 500)
//! - `--shards N` parallel execution groups (default 4)
//! - `--cell-tenants N` tenants per kernel cell (default 5)
//! - `--seed N` master seed (default 42)
//! - `--profile poisson|burst|ramp` arrival shape (default poisson)
//! - `--requests N` requests per tenant (default 6)
//! - `--mean N` mean inter-arrival cycles (default 120000)
//! - `--mix standard|forkstorm|oomramp` population mix (default standard)
//! - `--protection unprotected|split|observe|nx|combined` (default split)
//! - `--frames N` physical frames per cell (default 512)
//! - `--slo N` latency SLO in cycles (default 400000)
//! - `--pentium3` use the paper testbed's TLB geometry
//! - `--asid` ASID-tagged TLBs instead of flush-on-switch
//! - `--trace` per-cell tracing + stream-order checking
//! - `--check-invariants` run the invariant checker every driver window
//! - `--per-tenant` also print the per-tenant lines
//! - `--serial` use the single-threaded reference runner
//! - `--report PATH` write the full report (fleet + per-tenant) to a file
//! - `--quick` small smoke population (60 tenants, CI-sized)
//!
//! Exits non-zero on invariant violations, trace-order violations, or any
//! attacker payload executing under a protecting configuration.

use sm_bench::fleet::arrivals::Profile;
use sm_bench::fleet::{self, FleetConfig, Mix};
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_or_die<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("fleet: bad value for {flag}: {v}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let has = |f: &str| args.iter().any(|a| a == f);

    let mut cfg = FleetConfig {
        tenants: parse_or_die(&args, "--tenants", 500),
        shards: parse_or_die(&args, "--shards", 4),
        tenants_per_cell: parse_or_die(&args, "--cell-tenants", 5),
        seed: parse_or_die(&args, "--seed", 42),
        requests_per_tenant: parse_or_die(&args, "--requests", 6),
        mean_interarrival: parse_or_die(&args, "--mean", 120_000),
        phys_frames: parse_or_die(&args, "--frames", 512),
        slo_cycles: parse_or_die(&args, "--slo", 400_000),
        trace: has("--trace"),
        check_invariants: has("--check-invariants"),
        asid_tlbs: has("--asid"),
        ..FleetConfig::default()
    };
    if has("--quick") {
        cfg.tenants = 60;
        cfg.shards = 3;
        cfg.requests_per_tenant = 4;
    }
    if let Some(p) = flag_value(&args, "--profile") {
        cfg.profile = Profile::parse(p).unwrap_or_else(|| {
            eprintln!("fleet: unknown profile {p} (poisson|burst|ramp)");
            std::process::exit(2);
        });
    }
    if let Some(m) = flag_value(&args, "--mix") {
        cfg.mix = Mix::parse(m).unwrap_or_else(|| {
            eprintln!("fleet: unknown mix {m} (standard|forkstorm|oomramp)");
            std::process::exit(2);
        });
    }
    if let Some(p) = flag_value(&args, "--protection") {
        cfg.protection = match p {
            "unprotected" => Protection::Unprotected,
            "split" => Protection::SplitMem(ResponseMode::Break),
            "observe" => Protection::SplitMem(ResponseMode::Observe),
            "nx" => Protection::Nx,
            "combined" => Protection::Combined(ResponseMode::Break),
            _ => {
                eprintln!("fleet: unknown protection {p}");
                std::process::exit(2);
            }
        };
    }
    if has("--pentium3") {
        cfg.tlb = TlbPreset::pentium3();
    }

    let result = if has("--serial") {
        fleet::run_serial(&cfg)
    } else {
        fleet::run(&cfg)
    };

    print!("{}", result.render());
    if has("--per-tenant") {
        print!("{}", result.render_tenants());
    }
    if let Some(path) = flag_value(&args, "--report") {
        let full = format!("{}{}", result.render(), result.render_tenants());
        if let Err(e) = std::fs::write(path, full) {
            eprintln!("fleet: failed to write {path}: {e}");
            std::process::exit(2);
        }
    }

    let mut failed = false;
    for v in &result.violations {
        eprintln!("INVARIANT: {v}");
        failed = true;
    }
    for v in &result.trace_violations {
        eprintln!("TRACE-ORDER: {v}");
        failed = true;
    }
    let protecting = !matches!(cfg.protection, Protection::Unprotected);
    let injected: u32 = result.tenants.iter().map(|t| t.injected).sum();
    if protecting && injected > 0 {
        eprintln!(
            "ATTACK SUCCEEDED: {injected} payload(s) executed under {}",
            cfg.protection.label()
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
