#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates the paper's Fig. 6 (normalized performance).
//!
//! `--shards N` instead runs the fig6 Apache workload once
//! serial-verified and once segment-parallel (the PR 7 sharded
//! scheduler), printing the timing comparison and exiting non-zero if
//! the two runs were not byte-identical.
//!
//! `--no-pipeline` disables the superblock execution pipeline (per-step
//! dispatch instead); the rendered bars must be byte-identical either
//! way — only the wall time may differ.

use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--no-pipeline") {
        // A/B switch: run the workloads per-`step()` instead of through
        // the superblock pipeline (the bars must not change either way).
        sm_kernel::kernel::set_default_pipeline(false);
    }
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let n = match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!("fig6_normalized: --shards needs a segment count >= 1");
                std::process::exit(2);
            }
        };
        std::process::exit(sharded_probe(n));
    }
    println!("Fig. 6 — normalized performance, stand-alone split memory\n");
    let bars = sm_bench::fig6::run(sm_bench::fig6::Fig6Params::default());
    println!("{}", sm_bench::fig6::render(&bars));
}

fn sharded_probe(shards: usize) -> i32 {
    let split = Protection::SplitMem(ResponseMode::Break);
    let p = sm_bench::shards::fig6_sharded_probe(
        &split,
        TlbPreset::default(),
        sm_bench::shards::FIG6_PROBE_REQUESTS,
        sm_bench::shards::FIG6_PROBE_STRIDE,
        shards,
    );
    println!(
        "Fig. 6 sharded-verification probe ({shards} shards, {} rayon threads)\n",
        p.threads
    );
    println!("  serial-verified:  {:>9.1} ms", p.serial_ms);
    println!(
        "  sharded-verified: {:>9.1} ms ({} segments)",
        p.sharded_ms, p.segments
    );
    println!("  speedup:          {:>9.2}x", p.speedup);
    println!(
        "  outputs:          {}",
        if p.identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    if p.identical {
        0
    } else {
        1
    }
}
