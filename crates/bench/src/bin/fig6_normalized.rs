//! Regenerates the paper's Fig. 6 (normalized performance).
fn main() {
    println!("Fig. 6 — normalized performance, stand-alone split memory\n");
    let bars = sm_bench::fig6::run(sm_bench::fig6::Fig6Params::default());
    println!("{}", sm_bench::fig6::render(&bars));
}
