//! Chaos sweep runner: seeds × fault plans × scenarios, asserting that
//! protection verdicts survive every deterministic fault stream.
//!
//! By default every applicable cell of the Wilander technique × location
//! matrix is swept (20 cells + the benign loop); `--quick` restores the
//! reduced pre-matrix scenario set for time-budgeted CI runs. Combos run
//! in parallel (pin `RAYON_NUM_THREADS` for a fixed thread count); output
//! order is deterministic either way.
//!
//! Exits non-zero on any verdict mismatch, invariant violation, or
//! attack success under injected faults.

use sm_attacks::wilander::{self, InjectLocation, Technique};
use sm_bench::chaos::{self, Scenario};
use sm_bench::interference;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::RunExit;
use sm_machine::TlbPreset;

/// The reduced pre-matrix scenario set: one wilander column per technique
/// (on the stack) plus the FuncPtrVariable row across locations.
fn quick_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![Scenario::Benign];
    for technique in Technique::ALL {
        let case = wilander::Case {
            technique,
            location: InjectLocation::Stack,
        };
        if case.applicable() {
            scenarios.push(Scenario::Wilander(case));
        }
    }
    for location in InjectLocation::ALL {
        let case = wilander::Case {
            technique: Technique::FuncPtrVariable,
            location,
        };
        if case.applicable() && location != InjectLocation::Stack {
            scenarios.push(Scenario::Wilander(case));
        }
    }
    scenarios
}

/// Every applicable cell of the Wilander matrix (ROADMAP's full 20-cell
/// sweep) plus the benign loop.
fn full_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![Scenario::Benign];
    scenarios.extend(
        wilander::all_cases()
            .into_iter()
            .filter(wilander::Case::applicable)
            .map(Scenario::Wilander),
    );
    scenarios
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scenarios = if quick {
        quick_scenarios()
    } else {
        full_scenarios()
    };

    let seeds = [1u64, 2, 3];
    let split = Protection::SplitMem(ResponseMode::Break);
    let combined = Protection::Combined(ResponseMode::Break);

    println!(
        "chaos sweep ({}): {} scenarios x {} seeds",
        if quick {
            "quick subset"
        } else {
            "full wilander matrix"
        },
        scenarios.len(),
        seeds.len()
    );

    let mut combos = 0usize;
    let mut failures = 0usize;

    let perturbed = chaos::sweep(&seeds, &scenarios, &split);
    for r in &perturbed {
        combos += 1;
        let mut bad = Vec::new();
        if !r.verdict_stable {
            bad.push(format!(
                "verdict {:?} != baseline {:?}",
                r.run.verdict, r.baseline
            ));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if matches!(r.run.exit, RunExit::Livelock { .. }) {
            bad.push("livelock".into());
        }
        report(r, &mut failures, bad);
    }

    // The mixed-segment self-patcher is swept separately: its *observable
    // patch outcome* is legitimately plan-dependent (a periodic flush
    // landing between the I-TLB fill and the store's fetch widens the
    // paper-§7 single-step window onto the store itself), so we demand
    // convergence, clean invariants and no livelock — not verdict
    // equality.
    let mixed = chaos::sweep(&seeds, &[Scenario::MixedPatch], &split);
    for r in &mixed {
        combos += 1;
        let mut bad = Vec::new();
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if !matches!(r.run.exit, RunExit::AllExited) {
            bad.push(format!("did not converge: {:?}", r.run.exit));
        }
        report(r, &mut failures, bad);
    }

    let oom = chaos::sweep_oom(&seeds, &scenarios, &combined);
    for r in &oom {
        combos += 1;
        let mut bad = Vec::new();
        if r.run.attack_succeeded {
            bad.push(format!("attack succeeded under OOM: {}", r.run.verdict));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        report(r, &mut failures, bad);
    }

    // Set-associative pass: the same guarantees must hold when chaos
    // evictions pick a victim set then a way (paper-testbed geometry). A
    // reduced seed set keeps the sweep inside its runtime budget — the
    // geometry changes which entries evictions hit, not the fault stream.
    println!("\npentium3 geometry (32-entry 4-way I-TLB, 64-entry 4-way D-TLB):");
    let p3 = TlbPreset::pentium3();
    let p3_seeds = [1u64];
    let perturbed = chaos::sweep_on(&p3_seeds, &scenarios, &split, p3);
    for r in &perturbed {
        combos += 1;
        let mut bad = Vec::new();
        if !r.verdict_stable {
            bad.push(format!(
                "verdict {:?} != baseline {:?}",
                r.run.verdict, r.baseline
            ));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if matches!(r.run.exit, RunExit::Livelock { .. }) {
            bad.push("livelock".into());
        }
        report(r, &mut failures, bad);
    }
    let oom = chaos::sweep_oom_on(&p3_seeds, &scenarios, &combined, p3);
    for r in &oom {
        combos += 1;
        let mut bad = Vec::new();
        if r.run.attack_succeeded {
            bad.push(format!("attack succeeded under OOM: {}", r.run.verdict));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        report(r, &mut failures, bad);
    }

    // Cross-process pass: one image forks into attacker and victim
    // sharing data frames COW; chaos preemption moves the context-switch
    // points between arbitrary steps of either guest. The injection must
    // *work* unprotected (the attack is real) and be detected 100% of the
    // time under split memory — in both the flush-on-switch and the
    // ASID-tagged TLB models — while the victim's COW view stays pristine.
    println!("\ncross-process interference (fork + COW-shared pages):");
    let unprotected = Protection::Unprotected;
    for (mode, asid) in [("flush", false), ("asid", true)] {
        for (pname, protection, expect_success) in
            [("unprot", &unprotected, true), ("split", &split, false)]
        {
            let swept =
                interference::sweep_interference_on(&seeds, protection, TlbPreset::default(), asid);
            for r in &swept {
                combos += 1;
                let mut bad = Vec::new();
                if r.run.attack_succeeded != expect_success {
                    bad.push(format!(
                        "attack_succeeded={} (want {expect_success}): {}",
                        r.run.attack_succeeded, r.run.verdict
                    ));
                }
                if !expect_success && r.run.detections == 0 {
                    bad.push("injection not detected".into());
                }
                if r.run.victim_corrupted {
                    bad.push("victim saw attacker bytes through COW".into());
                }
                if !r.verdict_stable {
                    bad.push(format!(
                        "verdict {:?} != baseline {:?}",
                        r.run.verdict, r.baseline
                    ));
                }
                if !r.run.violations.is_empty() {
                    bad.push(format!("{} invariant violations", r.run.violations.len()));
                }
                if matches!(r.run.exit, RunExit::Livelock { .. }) {
                    bad.push("livelock".into());
                }
                let label = format!("interfere-{pname}-{mode}");
                if bad.is_empty() {
                    println!(
                        "  ok   {:<44} {:<18} seed={} -> {}",
                        label, r.plan, r.seed, r.run.verdict
                    );
                } else {
                    failures += 1;
                    println!(
                        "  FAIL {:<44} {:<18} seed={} -> {} [{}]",
                        label,
                        r.plan,
                        r.seed,
                        r.run.verdict,
                        bad.join("; ")
                    );
                    for v in &r.run.violations {
                        println!("       violation: {v}");
                    }
                }
            }
        }
    }

    println!("\n{combos} combos swept, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}

fn report(r: &chaos::ComboResult, failures: &mut usize, bad: Vec<String>) {
    if bad.is_empty() {
        println!(
            "  ok   {:<44} {:<18} seed={} -> {}",
            r.scenario, r.plan, r.seed, r.run.verdict
        );
    } else {
        *failures += 1;
        println!(
            "  FAIL {:<44} {:<18} seed={} -> {} [{}]",
            r.scenario,
            r.plan,
            r.seed,
            r.run.verdict,
            bad.join("; ")
        );
        for v in &r.run.violations {
            println!("       violation: {v}");
        }
    }
}
