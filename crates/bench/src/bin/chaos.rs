#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Chaos sweep runner: seeds × fault plans × scenarios, asserting that
//! protection verdicts survive every deterministic fault stream.
//!
//! By default every applicable cell of the Wilander technique × location
//! matrix is swept (20 cells + the benign loop); `--quick` restores the
//! reduced pre-matrix scenario set for time-budgeted CI runs. Combos run
//! in parallel (pin `RAYON_NUM_THREADS` for a fixed thread count); output
//! order is deterministic either way.
//!
//! Exits non-zero on any verdict mismatch, invariant violation, or
//! attack success under injected faults.
//!
//! `--trace` arms the trace subsystem: a canonical traced run is always
//! written to `chaos_trace_sample.jsonl` (CI schema-validates it), and any
//! failing combo is re-run serially with all trace layers enabled, its
//! event tail dumped to `chaos_trace.jsonl` plus a replayable checkpoint
//! dump per combo (`chaos_dump_<n>.smcdump`).
//!
//! `--dump-demo <path>` runs one canonical seeded detection combo under a
//! checkpointing, snapshot-faulting plan and writes its dump — the
//! artifact `--replay` consumes. `--replay <path>` restores a dump,
//! re-runs it from the checkpoint, and exits non-zero unless the original
//! verdict reproduces and the trace tail splices byte-identically.
//! Adding `--stop-seq <seq>` time-travels instead: the run stops as soon
//! as the tracer reaches that sequence number and prints the tail.
//!
//! `--shards N` runs the sharded splice-equality sweep: every quick
//! scenario executed serial-checked and segment-parallel (N segments),
//! asserting byte-identical output; divergences dump per-segment trace
//! tails (`shard_seg_<i>.trace.jsonl`) and exit non-zero.

use sm_attacks::wilander::{self, InjectLocation, Technique};
use sm_bench::chaos::{self, Scenario};
use sm_bench::interference;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::RunExit;
use sm_machine::trace::mask;
use sm_machine::TlbPreset;
use std::collections::HashMap;

/// A failing combo queued for a traced re-run.
struct FailedCombo {
    scenario: String,
    plan: &'static str,
    seed: u64,
    protection: Protection,
    tlb: TlbPreset,
}

/// The reduced pre-matrix scenario set: one wilander column per technique
/// (on the stack) plus the FuncPtrVariable row across locations.
fn quick_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![Scenario::Benign];
    for technique in Technique::ALL {
        let case = wilander::Case {
            technique,
            location: InjectLocation::Stack,
        };
        if case.applicable() {
            scenarios.push(Scenario::Wilander(case));
        }
    }
    for location in InjectLocation::ALL {
        let case = wilander::Case {
            technique: Technique::FuncPtrVariable,
            location,
        };
        if case.applicable() && location != InjectLocation::Stack {
            scenarios.push(Scenario::Wilander(case));
        }
    }
    scenarios
}

/// Every applicable cell of the Wilander matrix (ROADMAP's full 20-cell
/// sweep) plus the benign loop.
fn full_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![Scenario::Benign];
    scenarios.extend(
        wilander::all_cases()
            .into_iter()
            .filter(wilander::Case::applicable)
            .map(Scenario::Wilander),
    );
    scenarios
}

/// A malformed command line: every arg-parsing failure funnels here
/// (never a panic — the replay path handles untrusted files and must
/// fail with a diagnostic and a nonzero exit however it is misused).
fn usage_error(msg: &str) -> i32 {
    eprintln!("chaos: {msg}");
    eprintln!("usage: chaos [--quick] [--trace] [--shards N] [--no-pipeline]");
    eprintln!("       chaos --replay <dump.smcdump> [--stop-seq <seq>] [--no-pipeline]");
    eprintln!("       chaos --dump-demo <out.smcdump> [--no-pipeline]");
    2
}

/// A fatal runtime error (an I/O refusal, a missing internal table
/// entry): diagnostic plus nonzero exit, never a panic — this binary's
/// failure modes are part of its CLI contract.
fn fatal(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    std::process::exit(1);
}

/// Write an artifact file; the destination comes from the command line or
/// the working directory, so refusal is a user-environment error, not a
/// bug.
fn write_artifact(path: &str, bytes: &[u8]) {
    if let Err(e) = std::fs::write(path, bytes) {
        fatal(&format!("cannot write {path}: {e}"));
    }
}

/// Parse the flag's value argument, rejecting a missing value or another
/// flag in value position.
fn flag_value<'a>(args: &'a [String], i: usize, flag: &str) -> Result<&'a str, String> {
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Ok(v),
        _ => Err(format!("{flag} needs a value")),
    }
}

/// `--fleet`: chaos scenarios at fleet scale — fork-storm churn, an OOM
/// ramp under real memory pressure, and a mid-run shard kill healed by
/// snapshot restore. Every scenario must come back with clean invariants,
/// a clean trace ordering, full attacker detection and zero executed
/// payloads; failures dump the full fleet report as an artifact and exit
/// non-zero.
fn fleet_scenarios() -> i32 {
    use sm_bench::fleet::{self, FleetConfig, Mix};
    let mut failures = 0usize;

    let base = FleetConfig {
        tenants: 40,
        shards: 2,
        requests_per_tenant: 4,
        trace: true,
        check_invariants: true,
        ..FleetConfig::default()
    };

    let mut run_scenario = |name: &str, cfg: &FleetConfig, expect_degradations: bool| {
        let result = fleet::run(cfg);
        let mut bad: Vec<String> = Vec::new();
        if !result.violations.is_empty() {
            bad.push(format!("{} invariant violations", result.violations.len()));
        }
        if !result.trace_violations.is_empty() {
            bad.push(format!(
                "{} trace-order violations",
                result.trace_violations.len()
            ));
        }
        let (det, att) = result.detection();
        if det != att {
            bad.push(format!("detection {det}/{att}"));
        }
        let injected: u32 = result.tenants.iter().map(|t| t.injected).sum();
        if injected > 0 {
            bad.push(format!("{injected} payloads executed"));
        }
        if expect_degradations && result.degradations() == 0 {
            bad.push("expected OOM degradations, saw none".into());
        }
        if bad.is_empty() {
            println!(
                "fleet {name}: ok ({} completed, detection {det}/{att}, {} degradations)",
                result.completed(),
                result.degradations()
            );
        } else {
            failures += 1;
            let artifact = format!("fleet_{name}_report.txt");
            let _ = std::fs::write(
                &artifact,
                format!("{}{}", result.render(), result.render_tenants()),
            );
            println!("fleet {name}: FAILED ({}) -> {artifact}", bad.join("; "));
            for v in result
                .violations
                .iter()
                .chain(result.trace_violations.iter())
                .take(10)
            {
                println!("  {v}");
            }
        }
    };

    run_scenario(
        "forkstorm",
        &FleetConfig {
            mix: Mix::ForkStorm,
            ..base.clone()
        },
        false,
    );
    run_scenario(
        "oomramp",
        &FleetConfig {
            mix: Mix::OomRamp,
            phys_frames: 96,
            ..base.clone()
        },
        true,
    );

    // Mid-run shard kill: one cell snapshotted, dropped, restored from the
    // bytes and driven to completion. Everything observable — per-tenant
    // reports, the event timeline, and the pre/post trace streams spliced
    // through the PR-5 validator — must match an uninterrupted twin.
    let kill_cfg = FleetConfig {
        tenants: 5,
        shards: 1,
        requests_per_tenant: 8,
        trace: true,
        check_invariants: true,
        ..FleetConfig::default()
    };
    let probe = fleet::shard_kill_probe(&kill_cfg, 2);
    if probe.ok() {
        println!("fleet shard-kill: ok (reports, timeline and spliced trace all identical)");
    } else {
        failures += 1;
        let artifact = "fleet_shard_kill_report.txt";
        let _ = std::fs::write(
            artifact,
            format!(
                "killed={} reports_identical={} timeline_identical={} splice_ok={} violations={}\n\n{}",
                probe.killed,
                probe.reports_identical,
                probe.timeline_identical,
                probe.splice_ok,
                probe.violations.len(),
                probe.detail
            ),
        );
        println!("fleet shard-kill: FAILED -> {artifact}");
    }

    if failures == 0 {
        println!("fleet chaos: all scenarios clean");
        0
    } else {
        println!("fleet chaos: {failures} scenario(s) failed");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--no-pipeline") {
        // A/B switch: every kernel this process constructs steps
        // per-instruction instead of through the superblock pipeline.
        // All outputs must be byte-identical either way (CI sweeps both).
        sm_kernel::kernel::set_default_pipeline(false);
    }
    if let Some(i) = args.iter().position(|a| a == "--replay") {
        let path = match flag_value(&args, i, "--replay") {
            Ok(p) => p,
            Err(e) => std::process::exit(usage_error(&format!("{e} (a dump path)"))),
        };
        let stop_seq = match args.iter().position(|a| a == "--stop-seq") {
            Some(j) => match flag_value(&args, j, "--stop-seq").map(str::parse::<u64>) {
                Ok(Ok(s)) => Some(s),
                Ok(Err(e)) => {
                    std::process::exit(usage_error(&format!("--stop-seq is not a number: {e}")))
                }
                Err(e) => std::process::exit(usage_error(&format!("{e} (a trace seq)"))),
            },
            None => None,
        };
        std::process::exit(match stop_seq {
            Some(s) => replay_to_seq(path, s),
            None => replay(path),
        });
    }
    if std::env::args().any(|a| a == "--stop-seq") {
        std::process::exit(usage_error("--stop-seq only makes sense with --replay"));
    }
    if let Some(i) = args.iter().position(|a| a == "--dump-demo") {
        let path = match flag_value(&args, i, "--dump-demo") {
            Ok(p) => p,
            Err(e) => std::process::exit(usage_error(&format!("{e} (an output path)"))),
        };
        std::process::exit(dump_demo(path));
    }
    if args.iter().any(|a| a == "--fleet") {
        std::process::exit(fleet_scenarios());
    }
    if let Some(i) = args.iter().position(|a| a == "--shards") {
        let n = match flag_value(&args, i, "--shards").map(str::parse::<usize>) {
            Ok(Ok(n)) if n >= 1 => n,
            Ok(Ok(_)) => std::process::exit(usage_error("--shards must be >= 1")),
            Ok(Err(e)) => {
                std::process::exit(usage_error(&format!("--shards is not a number: {e}")))
            }
            Err(e) => std::process::exit(usage_error(&format!("{e} (a segment count)"))),
        };
        std::process::exit(sharded_sweep(n));
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let scenarios = if quick {
        quick_scenarios()
    } else {
        full_scenarios()
    };

    let seeds = [1u64, 2, 3];
    let split = Protection::SplitMem(ResponseMode::Break);
    let combined = Protection::Combined(ResponseMode::Break);
    let shadow_alone = Protection::ShadowStack(ResponseMode::Break);
    let shadow_stacked = Protection::ShadowCombined(ResponseMode::Break);

    println!(
        "chaos sweep ({}): {} scenarios x {} seeds",
        if quick {
            "quick subset"
        } else {
            "full wilander matrix"
        },
        scenarios.len(),
        seeds.len()
    );

    let mut combos = 0usize;
    let mut failures = 0usize;
    let mut failed_combos: Vec<FailedCombo> = Vec::new();

    let perturbed = chaos::sweep(&seeds, &scenarios, &split);
    for r in &perturbed {
        combos += 1;
        let mut bad = Vec::new();
        if !r.verdict_stable {
            bad.push(format!(
                "verdict {:?} != baseline {:?}",
                r.run.verdict, r.baseline
            ));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if matches!(r.run.exit, RunExit::Livelock { .. }) {
            bad.push("livelock".into());
        }
        if report(r, &mut failures, bad) && trace {
            failed_combos.push(FailedCombo {
                scenario: r.scenario.clone(),
                plan: r.plan,
                seed: r.seed,
                protection: split.clone(),
                tlb: TlbPreset::default(),
            });
        }
    }

    // Third-engine pass: the same perturbation sweep with the
    // shadow-stack/CFI engine, standalone and stacked on combined
    // split+NX. CFI events ride the ordinary retire path, so verdicts
    // must stay plan-stable with the extra engine in the loop — under
    // --quick and the full matrix alike. (Standalone runs a reduced seed
    // set: the engine sees the same control-flow stream per plan, the
    // extra seeds only move fault timing.)
    for (label, protection, sweep_seeds) in [
        (
            "shadow-stack engine alone",
            shadow_alone.clone(),
            &seeds[..1],
        ),
        ("shadow+nx+split stack", shadow_stacked.clone(), &seeds[..]),
    ] {
        println!("\n{label}:");
        let swept = chaos::sweep(sweep_seeds, &scenarios, &protection);
        for r in &swept {
            combos += 1;
            let mut bad = Vec::new();
            if !r.verdict_stable {
                bad.push(format!(
                    "verdict {:?} != baseline {:?}",
                    r.run.verdict, r.baseline
                ));
            }
            if !r.run.violations.is_empty() {
                bad.push(format!("{} invariant violations", r.run.violations.len()));
            }
            if matches!(r.run.exit, RunExit::Livelock { .. }) {
                bad.push("livelock".into());
            }
            if report(r, &mut failures, bad) && trace {
                failed_combos.push(FailedCombo {
                    scenario: r.scenario.clone(),
                    plan: r.plan,
                    seed: r.seed,
                    protection: protection.clone(),
                    tlb: TlbPreset::default(),
                });
            }
        }
    }

    // The mixed-segment self-patcher is swept separately: its *observable
    // patch outcome* is legitimately plan-dependent (a periodic flush
    // landing between the I-TLB fill and the store's fetch widens the
    // paper-§7 single-step window onto the store itself), so we demand
    // convergence, clean invariants and no livelock — not verdict
    // equality.
    let mixed = chaos::sweep(&seeds, &[Scenario::MixedPatch], &split);
    for r in &mixed {
        combos += 1;
        let mut bad = Vec::new();
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if !matches!(r.run.exit, RunExit::AllExited) {
            bad.push(format!("did not converge: {:?}", r.run.exit));
        }
        if report(r, &mut failures, bad) && trace {
            failed_combos.push(FailedCombo {
                scenario: r.scenario.clone(),
                plan: r.plan,
                seed: r.seed,
                protection: split.clone(),
                tlb: TlbPreset::default(),
            });
        }
    }

    let oom = chaos::sweep_oom(&seeds, &scenarios, &combined);
    for r in &oom {
        combos += 1;
        let mut bad = Vec::new();
        if r.run.attack_succeeded {
            bad.push(format!("attack succeeded under OOM: {}", r.run.verdict));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if report(r, &mut failures, bad) && trace {
            failed_combos.push(FailedCombo {
                scenario: r.scenario.clone(),
                plan: r.plan,
                seed: r.seed,
                protection: combined.clone(),
                tlb: TlbPreset::default(),
            });
        }
    }

    // Set-associative pass: the same guarantees must hold when chaos
    // evictions pick a victim set then a way (paper-testbed geometry). A
    // reduced seed set keeps the sweep inside its runtime budget — the
    // geometry changes which entries evictions hit, not the fault stream.
    println!("\npentium3 geometry (32-entry 4-way I-TLB, 64-entry 4-way D-TLB):");
    let p3 = TlbPreset::pentium3();
    let p3_seeds = [1u64];
    let perturbed = chaos::sweep_on(&p3_seeds, &scenarios, &split, p3);
    for r in &perturbed {
        combos += 1;
        let mut bad = Vec::new();
        if !r.verdict_stable {
            bad.push(format!(
                "verdict {:?} != baseline {:?}",
                r.run.verdict, r.baseline
            ));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if matches!(r.run.exit, RunExit::Livelock { .. }) {
            bad.push("livelock".into());
        }
        if report(r, &mut failures, bad) && trace {
            failed_combos.push(FailedCombo {
                scenario: r.scenario.clone(),
                plan: r.plan,
                seed: r.seed,
                protection: split.clone(),
                tlb: p3,
            });
        }
    }
    let oom = chaos::sweep_oom_on(&p3_seeds, &scenarios, &combined, p3);
    for r in &oom {
        combos += 1;
        let mut bad = Vec::new();
        if r.run.attack_succeeded {
            bad.push(format!("attack succeeded under OOM: {}", r.run.verdict));
        }
        if !r.run.violations.is_empty() {
            bad.push(format!("{} invariant violations", r.run.violations.len()));
        }
        if report(r, &mut failures, bad) && trace {
            failed_combos.push(FailedCombo {
                scenario: r.scenario.clone(),
                plan: r.plan,
                seed: r.seed,
                protection: combined.clone(),
                tlb: p3,
            });
        }
    }

    // Cross-process pass: one image forks into attacker and victim
    // sharing data frames COW; chaos preemption moves the context-switch
    // points between arbitrary steps of either guest. The injection must
    // *work* unprotected (the attack is real) and be detected 100% of the
    // time under split memory — in both the flush-on-switch and the
    // ASID-tagged TLB models — while the victim's COW view stays pristine.
    println!("\ncross-process interference (fork + COW-shared pages):");
    let unprotected = Protection::Unprotected;
    for (mode, asid) in [("flush", false), ("asid", true)] {
        for (pname, protection, expect_success) in
            [("unprot", &unprotected, true), ("split", &split, false)]
        {
            let swept =
                interference::sweep_interference_on(&seeds, protection, TlbPreset::default(), asid);
            for r in &swept {
                combos += 1;
                let mut bad = Vec::new();
                if r.run.attack_succeeded != expect_success {
                    bad.push(format!(
                        "attack_succeeded={} (want {expect_success}): {}",
                        r.run.attack_succeeded, r.run.verdict
                    ));
                }
                if !expect_success && r.run.detections == 0 {
                    bad.push("injection not detected".into());
                }
                if r.run.victim_corrupted {
                    bad.push("victim saw attacker bytes through COW".into());
                }
                if !r.verdict_stable {
                    bad.push(format!(
                        "verdict {:?} != baseline {:?}",
                        r.run.verdict, r.baseline
                    ));
                }
                if !r.run.violations.is_empty() {
                    bad.push(format!("{} invariant violations", r.run.violations.len()));
                }
                if matches!(r.run.exit, RunExit::Livelock { .. }) {
                    bad.push("livelock".into());
                }
                let label = format!("interfere-{pname}-{mode}");
                if bad.is_empty() {
                    println!(
                        "  ok   {:<44} {:<18} seed={} -> {}",
                        label, r.plan, r.seed, r.run.verdict
                    );
                } else {
                    failures += 1;
                    println!(
                        "  FAIL {:<44} {:<18} seed={} -> {} [{}]",
                        label,
                        r.plan,
                        r.seed,
                        r.run.verdict,
                        bad.join("; ")
                    );
                    for v in &r.run.violations {
                        println!("       violation: {v}");
                    }
                }
            }
        }
    }

    if trace {
        write_trace_sample(&scenarios, &split);
        if !failed_combos.is_empty() {
            let mut by_name: HashMap<String, Scenario> =
                scenarios.iter().map(|&s| (s.name(), s)).collect();
            by_name.insert(Scenario::MixedPatch.name(), Scenario::MixedPatch);
            dump_failed_traces(&by_name, &failed_combos);
        }
    }

    println!("\n{combos} combos swept, {failures} failures");
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Trace one canonical combo (first Wilander cell, split memory, inert
/// plan) and write its event stream for CI schema validation.
fn write_trace_sample(scenarios: &[Scenario], split: &Protection) {
    let scenario = scenarios
        .iter()
        .copied()
        .find(|s| matches!(s, Scenario::Wilander(_)))
        .unwrap_or(Scenario::Benign);
    let Some(plan) = chaos::plan_by_name("inert", 1) else {
        fatal("internal plan table is missing 'inert'");
    };
    let (_, jsonl) =
        chaos::run_scenario_traced_on(scenario, split, TlbPreset::default(), plan, mask::ALL);
    write_artifact("chaos_trace_sample.jsonl", jsonl.as_bytes());
    println!(
        "\ntrace sample: {} events ({}) -> chaos_trace_sample.jsonl",
        jsonl.lines().count(),
        scenario.name()
    );
}

/// Re-run every failing combo serially with all trace layers on and dump
/// the concatenated event tails, plus a replayable checkpoint dump per
/// combo. (Interference combos are built by a different harness and are
/// not re-traced here.)
fn dump_failed_traces(by_name: &HashMap<String, Scenario>, failed: &[FailedCombo]) {
    let mut out = String::new();
    for (i, fc) in failed.iter().enumerate() {
        let Some(&scenario) = by_name.get(&fc.scenario) else {
            println!("  (no traced re-run for unknown scenario {})", fc.scenario);
            continue;
        };
        let Some(plan) = chaos::plan_by_name(fc.plan, fc.seed) else {
            println!("  (no traced re-run for unknown plan {})", fc.plan);
            continue;
        };
        let (run, jsonl) =
            chaos::run_scenario_traced_on(scenario, &fc.protection, fc.tlb, plan, mask::ALL);
        println!(
            "  traced re-run {} {} seed={} -> {} ({} events)",
            fc.scenario,
            fc.plan,
            fc.seed,
            run.verdict,
            jsonl.lines().count()
        );
        out.push_str(&jsonl);
        // Also preserve a replayable dump: the combo re-run checkpointed,
        // its latest snapshot + plan + expected verdict in one file.
        // A short checkpoint interval (5 × 1000 cycles) so even quick
        // guests leave a restorable snapshot behind.
        match chaos::checkpointed_dump(
            scenario,
            &fc.protection,
            fc.tlb,
            fc.plan,
            plan,
            mask::ALL,
            chaos::Cadence {
                every: 5,
                stride: 1_000,
            },
        ) {
            Ok((cp, dump)) => {
                let path = format!("chaos_dump_{i}.smcdump");
                write_artifact(&path, &dump);
                println!(
                    "  replay dump: checkpoint @ slice {} ({} checkpoints) -> {path}",
                    cp.snapshot_slice, cp.checkpoints_taken
                );
            }
            Err(e) => println!("  (no replay dump: {e})"),
        }
    }
    write_artifact("chaos_trace.jsonl", out.as_bytes());
    println!("failure event tails -> chaos_trace.jsonl");
}

/// Canonical `--dump-demo` combo: the first applicable Wilander cell under
/// stand-alone split memory, a perturbation plan that also faults every
/// other checkpoint. Deterministic, so the dump it writes is stable for a
/// given build — CI restores a checked-in copy and replays it.
fn dump_demo(path: &str) -> i32 {
    let Some(scenario) = full_scenarios()
        .into_iter()
        .find(|s| matches!(s, Scenario::Wilander(_)))
    else {
        fatal("no applicable wilander cell to build the demo dump from");
    };
    let split = Protection::SplitMem(ResponseMode::Break);
    let plan = sm_machine::chaos::FaultPlan {
        flush_every: Some(101),
        evict_every: Some(17),
        snap_fault_every: Some(2),
        seed: 1,
        ..sm_machine::chaos::FaultPlan::default()
    };
    match chaos::checkpointed_dump(
        scenario,
        &split,
        TlbPreset::default(),
        "demo-flush-evict-snapfault",
        plan,
        mask::ALL,
        chaos::Cadence {
            every: 2,
            stride: 500,
        },
    ) {
        Ok((cp, dump)) => {
            write_artifact(path, &dump);
            println!(
                "demo dump: {} -> {} ({} checkpoints, {} snapshot faults injected+detected, \
                 checkpoint @ slice {}, {} bytes) -> {path}",
                scenario.name(),
                cp.run.verdict,
                cp.checkpoints_taken,
                cp.snap_faults_injected,
                cp.snapshot_slice,
                dump.len()
            );
            0
        }
        Err(e) => {
            eprintln!("dump-demo failed: {e}");
            1
        }
    }
}

/// `--replay <path>`: restore a dump, finish its run, verify verdict and
/// trace splice.
fn replay(path: &str) -> i32 {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    match chaos::replay_dump(&bytes) {
        Ok(r) => {
            println!(
                "replay {path}: {} {} (seed={}, checkpoint @ slice {})",
                r.scenario, r.plan_name, r.plan.seed, r.slice
            );
            println!(
                "  verdict: {} (expected {}) -> {}",
                r.verdict,
                r.expected_verdict,
                if r.verdict_matches {
                    "MATCH"
                } else {
                    "MISMATCH"
                }
            );
            println!(
                "  trace splice: {} events re-emitted -> {}",
                r.events_replayed,
                if r.splice_matches {
                    "byte-identical"
                } else {
                    "DIVERGED"
                }
            );
            println!("  exit: {:?}, violations: {}", r.exit, r.violations.len());
            let ok = r.verdict_matches && r.splice_matches && r.violations.is_empty();
            if ok {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("replay rejected: {e}");
            1
        }
    }
}

/// `--replay <path> --stop-seq <seq>`: time travel — restore a dump and
/// run it forward only until the tracer reaches the given seq.
fn replay_to_seq(path: &str, stop_seq: u64) -> i32 {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    match chaos::replay_dump_to_seq(&bytes, stop_seq) {
        Ok(r) => {
            println!(
                "time travel {path}: {} {} (checkpoint seq {}, stop seq {stop_seq})",
                r.scenario, r.plan_name, r.seq0
            );
            println!(
                "  stopped at seq {} after {} cycles ({} events re-emitted) -> {}",
                r.seq_reached,
                r.cycles,
                r.events_replayed,
                if r.reached {
                    "REACHED"
                } else {
                    "run ended first"
                }
            );
            println!("  exit: {:?}, violations: {}", r.exit, r.violations.len());
            print!("{}", r.tail_jsonl);
            if r.violations.is_empty() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("replay rejected: {e}");
            1
        }
    }
}

/// `--shards N`: the splice-equality sweep CI pins under a
/// `RAYON_NUM_THREADS` matrix. Every quick scenario runs serial-checked
/// and sharded-checked; any divergence dumps per-segment trace tails as
/// `shard_seg_<i>.trace.jsonl` and exits non-zero.
fn sharded_sweep(shards_n: usize) -> i32 {
    use sm_bench::shards::{self, ShardSpec};
    let split = Protection::SplitMem(ResponseMode::Break);
    let Some(plan) = chaos::plan_by_name("kitchen-sink", 1) else {
        fatal("internal plan table is missing 'kitchen-sink'");
    };
    let mut scenarios = quick_scenarios();
    scenarios.push(Scenario::MixedPatch);
    println!(
        "sharded splice-equality sweep: {} scenarios x {shards_n} shards ({} rayon threads)",
        scenarios.len(),
        rayon::current_num_threads()
    );
    let mut failures = 0usize;
    for scenario in scenarios {
        let mut spec =
            ShardSpec::chaos(scenario, &split, TlbPreset::default(), plan, mask::ALL, 512);
        // A finer stride than the sweep default so even short guests span
        // several segments — the boundaries are what this sweep tests.
        spec.stride = 2_000;
        let serial = shards::run_serial(&spec);
        let sharded = shards::run_sharded(&spec, shards_n);
        let notes = shards::compare_runs(&serial, &sharded);
        if notes.is_empty() {
            println!(
                "  ok   {:<44} {} segments -> {}",
                scenario.name(),
                sharded.segments,
                sharded.verdict
            );
        } else {
            failures += 1;
            println!(
                "  FAIL {:<44} {} segments [{}]",
                scenario.name(),
                sharded.segments,
                notes.join("; ")
            );
            for (i, jsonl) in sharded.per_segment_jsonl.iter().enumerate() {
                let path = format!("shard_seg_{i}.trace.jsonl");
                write_artifact(&path, jsonl.as_bytes());
                println!("       segment {i} trace tail -> {path}");
            }
        }
    }
    if failures > 0 {
        println!("{failures} scenarios diverged");
        1
    } else {
        println!("all scenarios byte-identical");
        0
    }
}

fn report(r: &chaos::ComboResult, failures: &mut usize, bad: Vec<String>) -> bool {
    if bad.is_empty() {
        println!(
            "  ok   {:<44} {:<18} seed={} -> {}",
            r.scenario, r.plan, r.seed, r.run.verdict
        );
        false
    } else {
        *failures += 1;
        println!(
            "  FAIL {:<44} {:<18} seed={} -> {} [{}]",
            r.scenario,
            r.plan,
            r.seed,
            r.run.verdict,
            bad.join("; ")
        );
        for v in &r.run.violations {
            println!("       violation: {v}");
        }
        true
    }
}
