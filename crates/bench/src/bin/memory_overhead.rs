#![deny(clippy::unwrap_used, clippy::expect_used)]
//! §5.1 memory-overhead comparison: unprotected vs eager split vs the
//! envisioned demand-allocated variant.
fn main() {
    println!("§5.1 — memory overhead of page splitting (httpd, 4KB pages)\n");
    let rows = sm_bench::memory::run(4096, 25);
    println!("{}", sm_bench::memory::render(&rows));
}
