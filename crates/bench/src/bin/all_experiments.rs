//! Runs every table and figure in sequence (the paper's full evaluation),
//! then re-runs the performance figures on the paper's Pentium III TLB
//! geometry (32-entry 4-way I-TLB, 64-entry 4-way D-TLB).
use sm_machine::TlbPreset;

fn main() {
    println!("==== Table 1 ====================================================\n");
    let t1 = sm_bench::table1::run();
    println!("{}", sm_bench::table1::render(&t1));
    println!("matches paper: {}\n", t1.matches_paper());

    println!("==== Table 2 ====================================================\n");
    let t2 = sm_bench::table2::run();
    println!("{}", sm_bench::table2::render(&t2));
    println!("matches paper: {}\n", t2.matches_paper());

    println!("==== Fig. 5 =====================================================\n");
    let f5 = sm_bench::fig5::run();
    println!("{}", sm_bench::fig5::render(&f5));

    println!("==== Fig. 6 =====================================================\n");
    let f6 = sm_bench::fig6::run(sm_bench::fig6::Fig6Params::default());
    println!("{}", sm_bench::fig6::render(&f6));

    println!("==== Fig. 7 =====================================================\n");
    let f7 = sm_bench::fig7::run(60);
    println!("{}", sm_bench::fig7::render(&f7));

    println!("==== Fig. 8 =====================================================\n");
    let f8 = sm_bench::fig8::run(30);
    println!("{}", sm_bench::fig8::render(&f8));

    println!("==== Fig. 9 =====================================================\n");
    let f9 = sm_bench::fig9::run(50, 8);
    println!("{}", sm_bench::fig9::render(&f9));

    println!("==== Memory overhead (§5.1) =====================================\n");
    let mem = sm_bench::memory::run(4096, 25);
    println!("{}", sm_bench::memory::render(&mem));

    println!("==== Ablations ==================================================\n");
    let itlb = sm_bench::ablation::itlb_loader(60);
    let sens = sm_bench::ablation::trap_cost_sensitivity(60);
    let soft = sm_bench::ablation::softtlb_port(60);
    println!("{}", sm_bench::ablation::render_all(&itlb, &sens, &soft));

    let p3 = TlbPreset::pentium3();
    println!("==== Fig. 6 (pentium3 geometry) =================================\n");
    let f6 = sm_bench::fig6::run(sm_bench::fig6::Fig6Params::default().on(p3));
    println!("{}", sm_bench::fig6::render(&f6));

    println!("==== Fig. 7 (pentium3 geometry) =================================\n");
    let f7 = sm_bench::fig7::run_on(p3, 60);
    println!("{}", sm_bench::fig7::render(&f7));
    let diags = sm_bench::fig7::tlb_diagnostics(p3, 60);
    println!("{}", sm_bench::fig7::render_diagnostics(&diags));

    println!("==== Fig. 8 (pentium3 geometry) =================================\n");
    let f8 = sm_bench::fig8::run_on(p3, 30);
    println!("{}", sm_bench::fig8::render(&f8));

    println!("==== Fig. 9 (pentium3 geometry) =================================\n");
    let f9 = sm_bench::fig9::run_on(p3, 50, 8);
    println!("{}", sm_bench::fig9::render(&f9));
}
