#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Runs every table and figure in sequence (the paper's full evaluation),
//! then re-runs the performance figures on the paper's Pentium III TLB
//! geometry (32-entry 4-way I-TLB, 64-entry 4-way D-TLB).
//!
//! Every section is wall-clock timed, raw interpreter throughput is probed
//! with the decoded-instruction cache on and off, and the lot is written
//! to `BENCH_summary.json` (override the path with `BENCH_SUMMARY_PATH`)
//! so CI can archive per-commit performance data.
use sm_bench::summary::BenchSummary;
use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_machine::TlbPreset;
use std::time::Instant;

fn main() {
    if std::env::args().any(|a| a == "--no-pipeline") {
        // A/B switch for the section walls: every kernel the sweep builds
        // falls back to per-step dispatch. Simulation outputs must be
        // byte-identical either way; only the wall times move.
        sm_kernel::kernel::set_default_pipeline(false);
    }
    let mut summary = BenchSummary::default();
    let t_total = Instant::now();

    summary.section("table1", || {
        println!("==== Table 1 ====================================================\n");
        let t1 = sm_bench::table1::run();
        println!("{}", sm_bench::table1::render(&t1));
        println!("matches paper: {}\n", t1.matches_paper());
    });

    summary.section("table2", || {
        println!("==== Table 2 ====================================================\n");
        let t2 = sm_bench::table2::run();
        println!("{}", sm_bench::table2::render(&t2));
        println!("matches paper: {}\n", t2.matches_paper());
    });

    let matrix_rows = summary.section("attack-matrix", || {
        println!("==== Engine x attack matrix (§7 scope boundary) =================\n");
        let m = sm_bench::matrix::run();
        println!("{}", sm_bench::matrix::render(&m));
        let violations = m.violations();
        if violations.is_empty() {
            println!("matches expectations: true\n");
        } else {
            println!("matches expectations: FALSE");
            for v in &violations {
                println!("  {v}");
            }
            println!();
        }
        m.cells
            .iter()
            .map(|c| sm_bench::summary::MatrixRow {
                attack: c.attack.name(),
                engine: c.engine.clone(),
                shell: c.outcome.succeeded(),
                detections: c.detections as u64,
            })
            .collect::<Vec<_>>()
    });
    summary.attack_matrix = matrix_rows;

    summary.section("fig5", || {
        println!("==== Fig. 5 =====================================================\n");
        let f5 = sm_bench::fig5::run();
        println!("{}", sm_bench::fig5::render(&f5));
    });

    summary.section("fig6", || {
        println!("==== Fig. 6 =====================================================\n");
        let f6 = sm_bench::fig6::run(sm_bench::fig6::Fig6Params::default());
        println!("{}", sm_bench::fig6::render(&f6));
    });

    summary.section("fig7", || {
        println!("==== Fig. 7 =====================================================\n");
        let f7 = sm_bench::fig7::run(60);
        println!("{}", sm_bench::fig7::render(&f7));
    });

    summary.section("fig8", || {
        println!("==== Fig. 8 =====================================================\n");
        let f8 = sm_bench::fig8::run(30);
        println!("{}", sm_bench::fig8::render(&f8));
    });

    summary.section("fig9", || {
        println!("==== Fig. 9 =====================================================\n");
        let f9 = sm_bench::fig9::run(50, 8);
        println!("{}", sm_bench::fig9::render(&f9));
    });

    summary.section("memory", || {
        println!("==== Memory overhead (§5.1) =====================================\n");
        let mem = sm_bench::memory::run(4096, 25);
        println!("{}", sm_bench::memory::render(&mem));
    });

    summary.section("ablations", || {
        println!("==== Ablations ==================================================\n");
        let itlb = sm_bench::ablation::itlb_loader(60);
        let sens = sm_bench::ablation::trap_cost_sensitivity(60);
        let soft = sm_bench::ablation::softtlb_port(60);
        println!("{}", sm_bench::ablation::render_all(&itlb, &sens, &soft));
    });

    let counters = summary.section("interference", || {
        println!("==== Cross-process interference (fork + COW) ====================\n");
        let split = Protection::SplitMem(ResponseMode::Break);
        let seeds = [1u64];
        for (mode, asid) in [("flush-on-switch", false), ("asid-tagged", true)] {
            let swept = sm_bench::interference::sweep_interference_on(
                &seeds,
                &split,
                TlbPreset::default(),
                asid,
            );
            let detected = swept.iter().filter(|c| c.run.detections > 0).count();
            let stable = swept.iter().all(|c| c.verdict_stable);
            println!(
                "split({mode}): {detected}/{} combos detected the injection, verdicts stable: {stable}",
                swept.len()
            );
        }
        let c = sm_bench::interference::probe(&split, false);
        println!(
            "fault-free run: {} context switches, {} COW breaks, {} detections",
            c.context_switches, c.cow_breaks, c.detections
        );
        for p in &c.processes {
            println!(
                "  pid {} ({:<8}) user_cycles={} exit={:?}",
                p.pid, p.role, p.user_cycles, p.exit_code
            );
        }
        println!();
        c
    });
    summary.interference = Some(counters);

    let p3 = TlbPreset::pentium3();
    summary.section("fig6-pentium3", || {
        println!("==== Fig. 6 (pentium3 geometry) =================================\n");
        let f6 = sm_bench::fig6::run(sm_bench::fig6::Fig6Params::default().on(p3));
        println!("{}", sm_bench::fig6::render(&f6));
    });

    summary.section("fig7-pentium3", || {
        println!("==== Fig. 7 (pentium3 geometry) =================================\n");
        let f7 = sm_bench::fig7::run_on(p3, 60);
        println!("{}", sm_bench::fig7::render(&f7));
        let diags = sm_bench::fig7::tlb_diagnostics(p3, 60);
        println!("{}", sm_bench::fig7::render_diagnostics(&diags));
    });

    summary.section("fig8-pentium3", || {
        println!("==== Fig. 8 (pentium3 geometry) =================================\n");
        let f8 = sm_bench::fig8::run_on(p3, 30);
        println!("{}", sm_bench::fig8::render(&f8));
    });

    summary.section("fig9-pentium3", || {
        println!("==== Fig. 9 (pentium3 geometry) =================================\n");
        let f9 = sm_bench::fig9::run_on(p3, 50, 8);
        println!("{}", sm_bench::fig9::render(&f9));
    });

    println!("==== Interpreter throughput =====================================\n");
    for (name, cache, trace, pipeline) in [
        ("probe-cache-on", true, false, true),
        ("probe-cache-off", false, false, true),
        ("probe-trace-on", true, true, true),
        ("probe-pipeline-on", true, false, true),
        ("probe-pipeline-off", true, false, false),
    ] {
        let p = summary.section(name, || {
            sm_bench::summary::steps_probe_with(cache, trace, pipeline)
        });
        println!(
            "decode cache {:>3}, trace {:>3}, pipeline {:>3}: {:.2} Minsn/s ({} insns in {:.1} ms; hits={} misses={} invalidations={} trace_events={} sb_hits={} sb_slow={})",
            if cache { "on" } else { "off" },
            if trace { "on" } else { "off" },
            if pipeline { "on" } else { "off" },
            p.steps_per_sec / 1e6,
            p.instructions,
            p.wall_ms,
            p.dcache.hits,
            p.dcache.misses,
            p.dcache.invalidations,
            p.trace_events,
            p.sblocks.hits,
            p.sblocks.slow_steps,
        );
        summary.probes.push(p);
    }
    println!();

    println!("==== Sharded verification (fig6 workload) =======================\n");
    let sharded = summary.section("fig6-sharded", || {
        let split = Protection::SplitMem(ResponseMode::Break);
        sm_bench::shards::fig6_sharded_probe(
            &split,
            TlbPreset::default(),
            sm_bench::shards::FIG6_PROBE_REQUESTS,
            sm_bench::shards::FIG6_PROBE_STRIDE,
            8,
        )
    });
    println!(
        "serial {:.1} ms vs sharded {:.1} ms ({} segments, {} threads): {:.2}x, outputs {}",
        sharded.serial_ms,
        sharded.sharded_ms,
        sharded.segments,
        sharded.threads,
        sharded.speedup,
        if sharded.identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    summary.sharded = Some(sharded);
    println!();

    println!("==== Fleet simulation (multi-tenant) ============================\n");
    let fleet = summary.section("fleet", || {
        let cfg = sm_bench::fleet::FleetConfig {
            tenants: 120,
            shards: 4,
            requests_per_tenant: 4,
            ..sm_bench::fleet::FleetConfig::default()
        };
        let t0 = Instant::now();
        let result = sm_bench::fleet::run(&cfg);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let serial = sm_bench::fleet::run_serial(&cfg);
        let identical = result.render() == serial.render()
            && result.render_tenants() == serial.render_tenants();
        print!("{}", result.render());
        let all = result.merged_latency();
        let (detected, attempts) = result.detection();
        sm_bench::summary::FleetProbe {
            tenants: cfg.tenants,
            cells: cfg.cells(),
            shards: cfg.shards,
            completed: result.completed(),
            dropped: result.dropped(),
            p50: all.percentile(50),
            p95: all.percentile(95),
            p99: all.percentile(99),
            req_per_mcycle: result.req_per_mcycle(),
            detected,
            attempts,
            degradations: result.degradations(),
            duration_cycles: result.duration_cycles,
            wall_ms,
            identical,
        }
    });
    println!(
        "fleet: p99={} cycles, {} req/Mcycle, detection {}/{}, parallel vs serial {}",
        fleet.p99,
        fleet.req_per_mcycle,
        fleet.detected,
        fleet.attempts,
        if fleet.identical {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    summary.fleet = Some(fleet);
    println!();

    println!("==== Snapshot save/restore throughput ===========================\n");
    let snap = summary.section("probe-snapshot", || sm_bench::summary::snapshot_probe(25));
    println!(
        "snapshot: {} bytes; save {:.1} MB/s, restore {:.1} MB/s ({} iterations, {:.1}/{:.1} ms)",
        snap.snapshot_bytes,
        snap.save_mb_per_sec,
        snap.restore_mb_per_sec,
        snap.iterations,
        snap.save_ms,
        snap.restore_ms,
    );
    summary.snapshot = Some(snap);
    println!();

    summary.total_wall_ms = t_total.elapsed().as_secs_f64() * 1e3;
    println!("==== Section timings ============================================\n");
    for s in &summary.sections {
        println!("  {:<18} {:>10.1} ms", s.name, s.wall_ms);
    }
    println!("  {:<18} {:>10.1} ms", "total", summary.total_wall_ms);

    let path = std::env::var("BENCH_SUMMARY_PATH").unwrap_or_else(|_| "BENCH_summary.json".into());
    match std::fs::write(&path, summary.to_json()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
