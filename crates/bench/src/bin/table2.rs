#![deny(clippy::unwrap_used, clippy::expect_used)]
//! Regenerates the paper's Table 2 (five real-world vulnerabilities).
fn main() {
    println!("Table 2 — five real-world vulnerabilities\n");
    let t = sm_bench::table2::run();
    println!("{}", sm_bench::table2::render(&t));
    assert!(t.matches_paper(), "TABLE 2 DOES NOT MATCH THE PAPER");
    println!("all five: root shell unprotected, foiled + detected under split memory");
}
