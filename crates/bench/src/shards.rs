//! Sharded segment-parallel execution of one long deterministic run.
//!
//! A verified run pays two costs per slice: raw execution, and the
//! between-slice invariant sweep ([`sm_core::invariants::check`] walks
//! every PTE, TLB set and decode-cache frame; `check_trace` re-validates
//! the whole ring ordering). The execution half is inherently serial, but
//! PR 6 landed everything needed to parallelize the *verification* half:
//! versioned full-state snapshots and a resumable tracer with gap-free
//! seq numbers. This module is the segment scheduler that exploits it:
//!
//! 1. **Pre-pass** — run the guest *unchecked*
//!    ([`sm_core::invariants::run_slices_hook`] reproduces the checked
//!    loop's slice geometry exactly) twice: once to count slices, once to
//!    serialize snapshots at exactly the `< shards` boundaries that cut
//!    the run into near-equal segments. Unchecked execution is cheap
//!    next to both per-slice checking and snapshot serialization, so two
//!    passes with minimal saves beat one pass saving on a cadence.
//! 2. **Segments** — rayon re-executes each checkpoint interval from its
//!    restored snapshot *with* full per-slice checking, stopping after
//!    its interval's worth of slices via
//!    [`sm_core::invariants::run_with_checks_until`]. Per-slice cycle
//!    budgets are clipped against the run's **global** deadline, so every
//!    segment's slice boundaries land on exactly the serial run's.
//! 3. **Zip** — the per-segment outputs are spliced back into one stream
//!    and cross-checked four ways: each non-final segment's end state
//!    must hash equal to its successor's snapshot (byte boundary proof);
//!    the trace windows must tile the final ring gap- and
//!    duplicate-free ([`sm_trace::splice`]); the event-log deltas
//!    concatenated onto the restored prefix must equal the last segment's
//!    full log; and the stats deltas ([`MachineStats::since`] /
//!    [`KernelStats::since`]) absorbed onto the first segment's baseline
//!    must equal the last segment's absolute counters.
//!
//! Determinism argument: the decode cache is disabled for both modes
//! (warmth is the one state component snapshots do not carry), snapshots
//! are exact for everything else, and the checks are read-only — so a
//! segment restored at boundary *b* is byte-identical to the serial run
//! at boundary *b*, and re-executes byte-identically from there. The
//! property tests pin shards-on ≡ shards-off (verdict, exit, violations,
//! trace JSONL, event log, stats, cycles) across seeds, segment counts
//! and `RAYON_NUM_THREADS`.

use rayon::prelude::*;
use sm_attacks::harness::kernel_with_on;
use sm_core::invariants::{self, Violation};
use sm_core::setup::Protection;
use sm_kernel::events::Event;
use sm_kernel::image::ExecImage;
use sm_kernel::kernel::{Kernel, KernelConfig, RunExit};
use sm_kernel::process::Pid;
use sm_kernel::snapshot as ksnap;
use sm_kernel::stats::KernelStats;
use sm_machine::sha256::sha256;
use sm_machine::stats::MachineStats;
use sm_machine::trace::TraceRecord;
use sm_machine::TlbPreset;
use sm_workloads::httpd::{client_program, server_program};
use sm_workloads::runner::workload_kconfig;
use std::time::Instant;

use crate::chaos::{classify_run, scenario_image, Scenario, RUN_MAX_CYCLES, RUN_STRIDE};

/// Everything that defines one shardable run. Both [`run_serial`] and
/// [`run_sharded`] consume the same spec, so the equality property is a
/// comparison between two calls on one value.
pub struct ShardSpec<'a> {
    /// Guest images, spawned in order before the run starts. The verdict
    /// is classified against the first image's pid.
    pub images: Vec<ExecImage>,
    /// Attack marker for verdict classification (chaos scenarios).
    pub marker: Option<u8>,
    /// Protection configuration (also rebuilds the engine per segment).
    pub protection: &'a Protection,
    /// TLB geometry.
    pub tlb: TlbPreset,
    /// Kernel configuration — chaos plan, trace mask/capacity/filter, …
    pub kconfig: KernelConfig,
    /// Install `/bin/sh` before spawning (the attack-harness boot).
    pub install_shell: bool,
    /// Cycle budget for the whole run.
    pub max_cycles: u64,
    /// Cycles per checked slice.
    pub stride: u64,
}

impl<'a> ShardSpec<'a> {
    /// Spec for a chaos scenario, mirroring the chaos module's runner
    /// (attack-harness boot, fault plan, flight recorder).
    pub fn chaos(
        scenario: Scenario,
        protection: &'a Protection,
        tlb: TlbPreset,
        plan: sm_machine::chaos::FaultPlan,
        trace_mask: u32,
        trace_capacity: usize,
    ) -> ShardSpec<'a> {
        let (image, marker) = scenario_image(scenario);
        ShardSpec {
            images: vec![image],
            marker,
            protection,
            tlb,
            kconfig: KernelConfig {
                aslr_stack: false,
                chaos: plan,
                trace: trace_mask,
                trace_capacity,
                ..KernelConfig::default()
            },
            install_shell: true,
            max_cycles: RUN_MAX_CYCLES,
            stride: RUN_STRIDE,
        }
    }

    /// Spec for the fig6 Apache workload (server + client, 32 KB pages),
    /// the long-run shape the `fig6-sharded` bench row measures.
    pub fn fig6(
        protection: &'a Protection,
        tlb: TlbPreset,
        requests: u32,
        stride: u64,
    ) -> ShardSpec<'a> {
        let page_size = 32 * 1024;
        ShardSpec {
            images: vec![
                server_program(page_size, requests).image,
                client_program(page_size, requests).image,
            ],
            marker: None,
            protection,
            tlb,
            kconfig: KernelConfig {
                trace: sm_machine::trace::mask::ALL,
                trace_capacity: 4096,
                ..workload_kconfig()
            },
            install_shell: false,
            max_cycles: 20_000_000_000,
            stride,
        }
    }
}

/// The complete observable output of a run — everything the sharded mode
/// must reproduce byte-identically.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Verdict label ([`crate::chaos::ChaosRun`]-compatible).
    pub verdict: String,
    /// Attacker got execution.
    pub attack_succeeded: bool,
    /// How the run ended.
    pub exit: RunExit,
    /// Invariant violations at the final boundary.
    pub violations: Vec<Violation>,
    /// Final-ring trace records as JSONL.
    pub trace_jsonl: String,
    /// Total trace events emitted.
    pub emitted: u64,
    /// The full kernel event log.
    pub events: Vec<(u64, Event)>,
    /// End-of-run machine counters.
    pub machine_stats: MachineStats,
    /// End-of-run kernel counters.
    pub kernel_stats: KernelStats,
    /// Machine cycle counter at the end.
    pub cycles: u64,
    /// Segments executed (1 for a serial run).
    pub segments: usize,
    /// Every zip cross-check (boundary hashes, trace splice, event and
    /// stats reconstruction) passed. Always `true` for a serial run.
    pub zip_ok: bool,
    /// Human-readable descriptions of any failed zip cross-checks.
    pub zip_notes: Vec<String>,
    /// Per-segment final-ring JSONL, for divergence artifacts (empty for
    /// a serial run).
    pub per_segment_jsonl: Vec<String>,
}

/// Compare every output field two runs must agree on; one line per
/// mismatch, empty when byte-identical. The equality tests assert on this
/// so a failure names the diverging stream instead of dumping two runs.
pub fn compare_runs(serial: &ShardedRun, sharded: &ShardedRun) -> Vec<String> {
    let mut notes = Vec::new();
    let mut chk = |what: &str, same: bool| {
        if !same {
            notes.push(format!("{what} diverged"));
        }
    };
    chk(
        "verdict",
        serial.verdict == sharded.verdict && serial.attack_succeeded == sharded.attack_succeeded,
    );
    chk("exit", serial.exit == sharded.exit);
    chk("violations", serial.violations == sharded.violations);
    chk("trace jsonl", serial.trace_jsonl == sharded.trace_jsonl);
    chk("emitted count", serial.emitted == sharded.emitted);
    chk("event log", serial.events == sharded.events);
    chk(
        "machine stats",
        serial.machine_stats == sharded.machine_stats,
    );
    chk("kernel stats", serial.kernel_stats == sharded.kernel_stats);
    chk("cycle counter", serial.cycles == sharded.cycles);
    if !sharded.zip_ok {
        notes.push("zip cross-checks failed".into());
        notes.extend(sharded.zip_notes.iter().cloned());
    }
    notes
}

/// Boot a kernel for the spec. The decode cache is disabled: its warmth
/// is the one state component a snapshot does not carry (restored kernels
/// decode cold, shifting only TLB-hit counters), so it must be off for
/// segment boundaries to be invisible — in *both* modes, so the serial
/// reference measures the same machine.
fn boot(spec: &ShardSpec) -> Kernel {
    let mut k = if spec.install_shell {
        kernel_with_on(spec.protection, spec.tlb, spec.kconfig)
    } else {
        spec.protection.kernel_on(spec.tlb, spec.kconfig)
    };
    k.sys.machine.config.decode_cache = false;
    k
}

/// Spawn every image, returning the first pid (verdict target), or
/// `None` if the first spawn refused cleanly under an OOM plan.
fn spawn_all(k: &mut Kernel, images: &[ExecImage]) -> Option<Pid> {
    let mut first = None;
    for image in images {
        match k.spawn(image) {
            Ok(pid) => {
                if first.is_none() {
                    first = Some(pid);
                }
            }
            Err(sm_kernel::kernel::SpawnError::OutOfMemory) => return None,
            Err(e) => panic!("spawn failed: {e:?}"),
        }
    }
    first
}

fn spawn_oom_run(k: &Kernel) -> ShardedRun {
    ShardedRun {
        verdict: "spawn-oom".into(),
        attack_succeeded: false,
        exit: RunExit::AllExited,
        violations: invariants::check(k),
        trace_jsonl: k.sys.machine.tracer.to_jsonl(),
        emitted: k.sys.machine.tracer.emitted(),
        events: k.sys.events.entries().to_vec(),
        machine_stats: k.sys.machine.stats,
        kernel_stats: k.sys.stats,
        cycles: k.sys.machine.cycles,
        segments: 0,
        zip_ok: true,
        zip_notes: Vec::new(),
        per_segment_jsonl: Vec::new(),
    }
}

/// The shards-off reference: one kernel, one checked run, outputs
/// collected in the same shape the sharded mode produces.
pub fn run_serial(spec: &ShardSpec) -> ShardedRun {
    let mut k = boot(spec);
    let Some(pid) = spawn_all(&mut k, &spec.images) else {
        return spawn_oom_run(&k);
    };
    let (exit, violations) = invariants::run_with_checks(&mut k, spec.max_cycles, spec.stride);
    let (verdict, attack_succeeded) = classify_run(&k, pid, spec.marker);
    ShardedRun {
        verdict,
        attack_succeeded,
        exit,
        violations,
        trace_jsonl: k.sys.machine.tracer.to_jsonl(),
        emitted: k.sys.machine.tracer.emitted(),
        events: k.sys.events.entries().to_vec(),
        machine_stats: k.sys.machine.stats,
        kernel_stats: k.sys.stats,
        cycles: k.sys.machine.cycles,
        segments: 1,
        zip_ok: true,
        zip_notes: Vec::new(),
        per_segment_jsonl: Vec::new(),
    }
}

/// What one re-executed segment reports back to the zipper.
struct SegmentOut {
    start_seq: u64,
    end_seq: u64,
    records: Vec<TraceRecord>,
    events: Vec<(u64, Event)>,
    events_prefix_len: usize,
    m_start: MachineStats,
    k_start: KernelStats,
    m_delta: MachineStats,
    k_delta: KernelStats,
    m_abs: MachineStats,
    k_abs: KernelStats,
    cycles: u64,
    exit: RunExit,
    violations: Vec<Violation>,
    /// Ran its full slice interval and stopped at the boundary (so a
    /// successor segment continues it); `false` means the run *ended*
    /// here — guest exit, deadline, or a violating boundary.
    stopped_by_hook: bool,
    /// sha-256 of the end-state snapshot, for the boundary proof.
    end_sha: [u8; 32],
    verdict: String,
    attack_succeeded: bool,
    jsonl: String,
}

fn run_segment(
    bytes: &[u8],
    spec: &ShardSpec,
    deadline: u64,
    slices: Option<u64>,
    pid: Pid,
) -> SegmentOut {
    let mut k = ksnap::restore(bytes, spec.protection.engine())
        .expect("pre-pass snapshot restores in-process");
    let start_seq = k.sys.machine.tracer.emitted();
    let m_start = k.sys.machine.stats;
    let k_start = k.sys.stats;
    let events_prefix_len = k.sys.events.entries().len();
    let budget = deadline.saturating_sub(k.sys.machine.cycles);
    let mut done_slices = 0u64;
    let (exit, violations) = match slices {
        Some(n) => invariants::run_with_checks_until(&mut k, budget, spec.stride, |_, _| {
            done_slices += 1;
            done_slices < n
        }),
        None => invariants::run_with_checks(&mut k, budget, spec.stride),
    };
    let stopped_by_hook = slices.is_some_and(|n| done_slices == n)
        && violations.is_empty()
        && exit == RunExit::CyclesExhausted;
    let end_sha = if stopped_by_hook {
        sha256(&ksnap::save(&k))
    } else {
        [0; 32]
    };
    let (verdict, attack_succeeded) = classify_run(&k, pid, spec.marker);
    let m_abs = k.sys.machine.stats;
    let k_abs = k.sys.stats;
    SegmentOut {
        start_seq,
        end_seq: k.sys.machine.tracer.emitted(),
        records: k.sys.machine.tracer.snapshot(),
        events: k.sys.events.entries().to_vec(),
        events_prefix_len,
        m_start,
        k_start,
        m_delta: m_abs.since(&m_start),
        k_delta: k_abs.since(&k_start),
        m_abs,
        k_abs,
        cycles: k.sys.machine.cycles,
        exit,
        violations,
        stopped_by_hook,
        end_sha,
        verdict,
        attack_succeeded,
        jsonl: k.sys.machine.tracer.to_jsonl(),
    }
}

/// The segment scheduler: pre-pass, parallel segments, zip.
pub fn run_sharded(spec: &ShardSpec, shards: usize) -> ShardedRun {
    let shards = shards.max(1);
    let stride = spec.stride.max(1);

    // First pre-pass: one sequential *unchecked* run that only counts
    // slice boundaries. Snapshot serialization is far more expensive
    // than raw execution at fine strides, so learning the run length
    // first and re-running — paying execution twice but serializing only
    // the < `shards` boundaries actually used — beats saving
    // speculatively on a cadence. Determinism makes the second pass
    // byte-identical to the first.
    let mut probe = boot(spec);
    let Some(pid) = spawn_all(&mut probe, &spec.images) else {
        return spawn_oom_run(&probe);
    };
    let mut boundaries_total = 0u64;
    invariants::run_slices_hook(&mut probe, spec.max_cycles, stride, |_, _| {
        boundaries_total += 1;
    });
    drop(probe);

    // Second pre-pass: save exactly the boundaries that cut the run into
    // `shards` near-equal segments (fewer when the run is shorter than
    // the segment count).
    let targets: std::collections::BTreeSet<u64> = (1..shards as u64)
        .map(|i| i * boundaries_total / shards as u64)
        .filter(|&b| b > 0)
        .collect();
    let mut k = boot(spec);
    let Some(pid2) = spawn_all(&mut k, &spec.images) else {
        return spawn_oom_run(&k);
    };
    debug_assert_eq!(pid, pid2, "boot is deterministic");
    let deadline = k.sys.machine.cycles.saturating_add(spec.max_cycles);
    let trace_cap = k.sys.machine.tracer.capacity() as u64;

    // Checkpoint 0 is the post-spawn state (boundary 0: zero slices
    // done); its ring contents are the trace prefix segment 0's restored
    // (empty-ring) tracer cannot re-emit.
    let mut kept: Vec<Vec<u8>> = vec![ksnap::save(&k)];
    let mut boundaries: Vec<u64> = vec![0];
    let prefix_records = k.sys.machine.tracer.snapshot();
    invariants::run_slices_hook(&mut k, spec.max_cycles, stride, |k, slice| {
        let boundary = slice + 1;
        if targets.contains(&boundary) {
            kept.push(ksnap::save(k));
            boundaries.push(boundary);
        }
    });
    drop(k);

    // Segment i re-executes [boundaries[i], boundaries[i+1]) checked;
    // the last segment runs to wherever the run actually ends.
    let work: Vec<(usize, Option<u64>)> = (0..kept.len())
        .map(|i| (i, boundaries.get(i + 1).map(|b| b - boundaries[i])))
        .collect();
    let results: Vec<SegmentOut> = work
        .par_iter()
        .map(|&(i, slices)| run_segment(&kept[i], spec, deadline, slices, pid))
        .collect();

    // A segment that did not stop at its boundary ended the run (guest
    // exit, deadline, or a violating boundary the unchecked pre-pass ran
    // past); everything after it re-executed state the serial run never
    // reaches and is discarded.
    let mut used: Vec<&SegmentOut> = Vec::new();
    for r in &results {
        used.push(r);
        if !r.stopped_by_hook {
            break;
        }
    }
    let last = *used.last().expect("at least one segment");
    let mut zip_notes = Vec::new();

    // Boundary proof: each continuing segment's end state must be the
    // snapshot its successor restored, byte for byte.
    for (i, r) in used.iter().enumerate() {
        if r.stopped_by_hook {
            if let Some(next) = kept.get(i + 1) {
                if r.end_sha != sha256(next) {
                    zip_notes.push(format!(
                        "segment {i} end state does not hash to segment {} snapshot",
                        i + 1
                    ));
                }
            }
        }
    }

    // Seq tiling: every segment's tracer must resume exactly where its
    // predecessor stopped (restore_meta carried the right next_seq).
    for pair in used.windows(2) {
        if pair[1].start_seq != pair[0].end_seq {
            zip_notes.push(format!(
                "trace seq tear at a segment boundary: {} resumed after {}",
                pair[1].start_seq, pair[0].end_seq
            ));
        }
    }

    // Stats zip: baseline + Σ deltas must reconstruct the absolute end
    // counters the last segment reports.
    let mut m_zip = used[0].m_start;
    let mut k_zip = used[0].k_start;
    for r in &used {
        m_zip.absorb(&r.m_delta);
        k_zip.absorb(&r.k_delta);
    }
    if m_zip != last.m_abs {
        zip_notes.push("machine stats deltas do not sum to the end counters".into());
    }
    if k_zip != last.k_abs {
        zip_notes.push("kernel stats deltas do not sum to the end counters".into());
    }

    // Event-log zip: the restored prefix plus every segment's delta must
    // equal the last segment's full log.
    let mut ev_zip: Vec<(u64, Event)> = used[0].events[..used[0].events_prefix_len].to_vec();
    for r in &used {
        ev_zip.extend_from_slice(&r.events[r.events_prefix_len..]);
    }
    if ev_zip != last.events {
        zip_notes.push("event-log deltas do not splice to the final log".into());
    }

    // Trace zip: reconstruct the final ring — the last min(cap, total)
    // seqs — from the prefix ring plus the per-segment rings. Each
    // segment retains at least the suffix the window needs (its ring
    // holds its last min(cap, emitted) records, and the window start is
    // ≥ every non-final segment's own retention horizon), so the
    // concatenation tiles the window exactly; `splice` proves it gap-
    // and duplicate-free.
    let total = last.end_seq;
    let window_start = total.saturating_sub(trace_cap.min(total));
    let windowed = |records: &[TraceRecord]| -> Vec<TraceRecord> {
        records
            .iter()
            .filter(|r| r.seq >= window_start)
            .copied()
            .collect()
    };
    let mut streams: Vec<Vec<TraceRecord>> = vec![windowed(&prefix_records)];
    streams.extend(used.iter().map(|r| windowed(&r.records)));
    let trace_jsonl = match sm_machine::trace::splice(&streams) {
        Ok(recs) => {
            let complete = recs.len() as u64 == total - window_start
                && recs
                    .first()
                    .map_or(total == window_start, |r| r.seq == window_start);
            if !complete {
                zip_notes.push(format!(
                    "spliced trace window incomplete: {} records for seqs [{window_start}, {total})",
                    recs.len()
                ));
            }
            let mut out = String::new();
            for r in &recs {
                out.push_str(&r.to_json());
                out.push('\n');
            }
            out
        }
        Err(e) => {
            zip_notes.push(format!("trace splice failed: {e}"));
            String::new()
        }
    };

    ShardedRun {
        verdict: last.verdict.clone(),
        attack_succeeded: last.attack_succeeded,
        exit: last.exit,
        violations: last.violations.clone(),
        trace_jsonl,
        emitted: total,
        events: last.events.clone(),
        machine_stats: last.m_abs,
        kernel_stats: last.k_abs,
        cycles: last.cycles,
        segments: used.len(),
        zip_ok: zip_notes.is_empty(),
        zip_notes,
        per_segment_jsonl: used.iter().map(|r| r.jsonl.clone()).collect(),
    }
}

/// Convenience wrappers for the chaos CLI and the equality tests.
pub fn run_scenario_sharded_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan: sm_machine::chaos::FaultPlan,
    trace_mask: u32,
    trace_capacity: usize,
    shards: usize,
) -> ShardedRun {
    run_sharded(
        &ShardSpec::chaos(scenario, protection, tlb, plan, trace_mask, trace_capacity),
        shards,
    )
}

/// The shards-off counterpart of [`run_scenario_sharded_on`].
pub fn run_scenario_serial_on(
    scenario: Scenario,
    protection: &Protection,
    tlb: TlbPreset,
    plan: sm_machine::chaos::FaultPlan,
    trace_mask: u32,
    trace_capacity: usize,
) -> ShardedRun {
    run_serial(&ShardSpec::chaos(
        scenario,
        protection,
        tlb,
        plan,
        trace_mask,
        trace_capacity,
    ))
}

/// Timing comparison for the `fig6-sharded` bench row.
#[derive(Debug, Clone)]
pub struct ShardedProbe {
    /// Serial verified run, wall milliseconds.
    pub serial_ms: f64,
    /// Sharded verified run (pre-pass + parallel segments + zip), wall
    /// milliseconds.
    pub sharded_ms: f64,
    /// `serial_ms / sharded_ms`.
    pub speedup: f64,
    /// Segments the sharded run executed.
    pub segments: usize,
    /// Rayon worker threads available to the segment phase.
    pub threads: usize,
    /// The two runs produced byte-identical output and every zip
    /// cross-check passed.
    pub identical: bool,
}

/// Canonical request count for the `fig6-sharded` bench row: long enough
/// that the segment phase dominates the pre-pass, short enough for CI.
pub const FIG6_PROBE_REQUESTS: u32 = 40;

/// Canonical slice stride for the `fig6-sharded` bench row. Finer than
/// the chaos sweep default so the per-slice invariant sweep — the half
/// the segment phase parallelizes — dominates raw execution.
pub const FIG6_PROBE_STRIDE: u64 = 2_000;

/// Run the fig6 Apache workload serial-verified and sharded-verified,
/// timing both and checking byte-identity. `requests`/`stride` trade
/// total run length against per-slice verification weight; the bench row
/// uses a finer stride than the chaos default so verification (the
/// parallelizable half) dominates.
pub fn fig6_sharded_probe(
    protection: &Protection,
    tlb: TlbPreset,
    requests: u32,
    stride: u64,
    shards: usize,
) -> ShardedProbe {
    let spec = ShardSpec::fig6(protection, tlb, requests, stride);
    let t0 = Instant::now();
    let serial = run_serial(&spec);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let sharded = run_sharded(&spec, shards);
    let sharded_ms = t1.elapsed().as_secs_f64() * 1e3;
    ShardedProbe {
        serial_ms,
        sharded_ms,
        speedup: serial_ms / sharded_ms.max(1e-9),
        segments: sharded.segments,
        threads: rayon::current_num_threads(),
        identical: compare_runs(&serial, &sharded).is_empty(),
    }
}
