//! Machine-readable benchmark summary (`BENCH_summary.json`).
//!
//! `all_experiments` times every section it runs, probes raw interpreter
//! throughput (steps/sec) with the decode cache on and off, and serialises
//! the lot as JSON so CI can archive per-commit performance without
//! parsing the human-readable report. The JSON is hand-rolled: the shape
//! is tiny, fixed, and all-ASCII, and the workspace deliberately carries
//! no serialisation dependency.

use sm_core::setup::Protection;
use sm_kernel::events::ResponseMode;
use sm_kernel::kernel::{KernelConfig, RunExit};
use sm_kernel::userlib::ProgramBuilder;
use sm_machine::DecodeCacheStats;
use sm_machine::SuperblockStats;
use sm_machine::TlbPreset;
use std::time::Instant;

/// Wall-clock of one report section.
#[derive(Debug, Clone)]
pub struct SectionTiming {
    /// Section label (matches the report heading).
    pub name: String,
    /// Elapsed wall-clock in milliseconds.
    pub wall_ms: f64,
}

/// One raw-throughput probe run.
#[derive(Debug, Clone)]
pub struct StepsProbe {
    /// Whether the decoded-instruction cache was enabled.
    pub decode_cache: bool,
    /// Whether the trace subsystem was enabled (all layers).
    pub trace: bool,
    /// Whether the superblock execution pipeline was enabled.
    pub pipeline: bool,
    /// Trace events captured by the run (zero when tracing is off).
    pub trace_events: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Elapsed wall-clock in milliseconds.
    pub wall_ms: f64,
    /// Retired instructions per wall-clock second.
    pub steps_per_sec: f64,
    /// Decode-cache counters observed by the run (all zero when disabled).
    pub dcache: DecodeCacheStats,
    /// Superblock-pipeline counters (all zero when the pipeline is off).
    pub sblocks: SuperblockStats,
}

/// Counters for one process of the cross-process interference run.
#[derive(Debug, Clone)]
pub struct ProcessProbe {
    /// Process id.
    pub pid: u32,
    /// `"attacker"` (fork parent) or `"victim"` (fork child).
    pub role: String,
    /// Cycles the process spent executing user instructions.
    pub user_cycles: u64,
    /// Exit status, if the process exited.
    pub exit_code: Option<i32>,
}

/// Kernel- and per-process counters from the fault-free cross-process
/// interference run under split memory.
#[derive(Debug, Clone, Default)]
pub struct InterferenceCounters {
    /// Context switches performed (CR3 actually reloaded).
    pub context_switches: u64,
    /// Copy-on-write breaks (the attacker's injection forces at least one).
    pub cow_breaks: u64,
    /// Attack detections logged.
    pub detections: u64,
    /// Per-process counters, in pid order.
    pub processes: Vec<ProcessProbe>,
}

/// Save/restore throughput of the kernel checkpoint subsystem, measured
/// on a mid-run kernel (live guest, warm TLBs, populated page tables).
#[derive(Debug, Clone)]
pub struct SnapshotProbe {
    /// Size of one serialized snapshot in bytes.
    pub snapshot_bytes: usize,
    /// Save (and restore) iterations timed.
    pub iterations: u32,
    /// Total wall-clock across all saves, milliseconds.
    pub save_ms: f64,
    /// Total wall-clock across all restores, milliseconds.
    pub restore_ms: f64,
    /// Serialization throughput, snapshot megabytes per second.
    pub save_mb_per_sec: f64,
    /// Deserialization + validation throughput, megabytes per second.
    pub restore_mb_per_sec: f64,
}

/// Headline numbers from the fleet-scale multi-tenant simulation
/// section: the `fleet_p99` / `fleet_req_per_mcycle` rows CI tracks,
/// plus the thread-count byte-identity verdict.
#[derive(Debug, Clone)]
pub struct FleetProbe {
    /// Tenants simulated.
    pub tenants: u32,
    /// Kernel cells they were spread over.
    pub cells: u32,
    /// Parallel shard groups.
    pub shards: u32,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Requests dropped at the horizon.
    pub dropped: u64,
    /// Fleet-wide p50 request latency, simulated cycles.
    pub p50: u64,
    /// Fleet-wide p95 request latency, simulated cycles.
    pub p95: u64,
    /// Fleet-wide p99 request latency, simulated cycles (the `fleet_p99`
    /// row).
    pub p99: u64,
    /// Completed requests per million simulated cycles (the
    /// `fleet_req_per_mcycle` row).
    pub req_per_mcycle: u64,
    /// Attacks detected / attempted over the attacker population.
    pub detected: u64,
    /// Attack attempts (completed attacker requests).
    pub attempts: u64,
    /// Degradation events (OOM kills, split degradations, spawn
    /// rejections).
    pub degradations: u64,
    /// Simulated fleet duration in cycles.
    pub duration_cycles: u64,
    /// Wall-clock of the parallel run, milliseconds.
    pub wall_ms: f64,
    /// Whether the parallel report was byte-identical to the serial
    /// reference (must be true).
    pub identical: bool,
}

/// One engine × attack matrix cell for the JSON summary (the ROP /
/// ret2libc negative-result rows CI tracks, plus the injection grid).
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Attack label (`ret2libc`, `rop-chain`, `wuftpd-glob`, ...).
    pub attack: String,
    /// Engine label (`split(break)`, `shadow(break)`, ...).
    pub engine: String,
    /// Whether the attacker got code execution.
    pub shell: bool,
    /// Detections the engine logged.
    pub detections: u64,
}

/// The whole summary.
#[derive(Debug, Clone, Default)]
pub struct BenchSummary {
    /// Per-section wall-clock, in report order.
    pub sections: Vec<SectionTiming>,
    /// End-to-end wall-clock in milliseconds.
    pub total_wall_ms: f64,
    /// Interpreter throughput probes (cache on / off).
    pub probes: Vec<StepsProbe>,
    /// Cross-process interference counters (absent if the section did not
    /// run).
    pub interference: Option<InterferenceCounters>,
    /// Snapshot save/restore throughput (absent if the probe did not run).
    pub snapshot: Option<SnapshotProbe>,
    /// Serial- vs sharded-verified fig6 timing (absent if the probe did
    /// not run). The `fig6-sharded` row CI tracks.
    pub sharded: Option<crate::shards::ShardedProbe>,
    /// Fleet-simulation headline rows (absent if the section did not
    /// run).
    pub fleet: Option<FleetProbe>,
    /// Engine × attack matrix cells (empty if the section did not run).
    pub attack_matrix: Vec<MatrixRow>,
}

impl BenchSummary {
    /// Time `f`, record it under `name`, and pass its value through.
    pub fn section<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let v = f();
        self.sections.push(SectionTiming {
            name: name.to_string(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        });
        v
    }

    /// Serialise as JSON.
    pub fn to_json(&self) -> String {
        let sections: Vec<String> = self
            .sections
            .iter()
            .map(|s| {
                format!(
                    "    {{\"name\": \"{}\", \"wall_ms\": {:.3}}}",
                    s.name, s.wall_ms
                )
            })
            .collect();
        let probes: Vec<String> = self
            .probes
            .iter()
            .map(|p| {
                format!(
                    "    {{\"decode_cache\": {}, \"trace\": {}, \"pipeline\": {}, \
                     \"trace_events\": {}, \
                     \"instructions\": {}, \"wall_ms\": {:.3}, \
                     \"steps_per_sec\": {:.0}, \"dcache_hits\": {}, \"dcache_misses\": {}, \
                     \"dcache_invalidations\": {}, \"superblock_hits\": {}, \
                     \"superblock_builds\": {}, \"superblock_invalidations\": {}, \
                     \"superblock_bailouts\": {}, \"superblock_slow_steps\": {}}}",
                    p.decode_cache,
                    p.trace,
                    p.pipeline,
                    p.trace_events,
                    p.instructions,
                    p.wall_ms,
                    p.steps_per_sec,
                    p.dcache.hits,
                    p.dcache.misses,
                    p.dcache.invalidations,
                    p.sblocks.hits,
                    p.sblocks.builds,
                    p.sblocks.invalidations,
                    p.sblocks.bailouts,
                    p.sblocks.slow_steps
                )
            })
            .collect();
        let interference = match &self.interference {
            None => String::new(),
            Some(i) => {
                let procs: Vec<String> = i
                    .processes
                    .iter()
                    .map(|p| {
                        format!(
                            "      {{\"pid\": {}, \"role\": \"{}\", \"user_cycles\": {}, \"exit_code\": {}}}",
                            p.pid,
                            p.role,
                            p.user_cycles,
                            p.exit_code
                                .map_or_else(|| "null".into(), |c| c.to_string())
                        )
                    })
                    .collect();
                format!(
                    ",\n  \"interference\": {{\n    \"context_switches\": {}, \"cow_breaks\": {}, \"detections\": {},\n    \"processes\": [\n{}\n    ]\n  }}",
                    i.context_switches,
                    i.cow_breaks,
                    i.detections,
                    procs.join(",\n")
                )
            }
        };
        let snapshot = match &self.snapshot {
            None => String::new(),
            Some(p) => format!(
                ",\n  \"snapshot_probe\": {{\"snapshot_bytes\": {}, \"iterations\": {}, \
                 \"save_ms\": {:.3}, \"restore_ms\": {:.3}, \
                 \"save_mb_per_sec\": {:.1}, \"restore_mb_per_sec\": {:.1}}}",
                p.snapshot_bytes,
                p.iterations,
                p.save_ms,
                p.restore_ms,
                p.save_mb_per_sec,
                p.restore_mb_per_sec
            ),
        };
        let sharded = match &self.sharded {
            None => String::new(),
            Some(p) => format!(
                ",\n  \"fig6_sharded\": {{\"serial_ms\": {:.3}, \"sharded_ms\": {:.3}, \
                 \"speedup\": {:.2}, \"segments\": {}, \"threads\": {}, \"identical\": {}}}",
                p.serial_ms, p.sharded_ms, p.speedup, p.segments, p.threads, p.identical
            ),
        };
        let fleet = match &self.fleet {
            None => String::new(),
            Some(p) => format!(
                ",\n  \"fleet\": {{\"tenants\": {}, \"cells\": {}, \"shards\": {}, \
                 \"completed\": {}, \"dropped\": {}, \
                 \"fleet_p50\": {}, \"fleet_p95\": {}, \"fleet_p99\": {}, \
                 \"fleet_req_per_mcycle\": {}, \"detected\": {}, \"attempts\": {}, \
                 \"degradations\": {}, \"duration_cycles\": {}, \
                 \"wall_ms\": {:.3}, \"identical\": {}}}",
                p.tenants,
                p.cells,
                p.shards,
                p.completed,
                p.dropped,
                p.p50,
                p.p95,
                p.p99,
                p.req_per_mcycle,
                p.detected,
                p.attempts,
                p.degradations,
                p.duration_cycles,
                p.wall_ms,
                p.identical
            ),
        };
        let matrix = if self.attack_matrix.is_empty() {
            String::new()
        } else {
            let rows: Vec<String> = self
                .attack_matrix
                .iter()
                .map(|r| {
                    format!(
                        "    {{\"attack\": \"{}\", \"engine\": \"{}\", \"shell\": {}, \"detections\": {}}}",
                        r.attack, r.engine, r.shell, r.detections
                    )
                })
                .collect();
            format!(",\n  \"attack_matrix\": [\n{}\n  ]", rows.join(",\n"))
        };
        format!(
            "{{\n  \"total_wall_ms\": {:.3},\n  \"sections\": [\n{}\n  ],\n  \"steps_probes\": [\n{}\n  ]{}{}{}{}{}\n}}\n",
            self.total_wall_ms,
            sections.join(",\n"),
            probes.join(",\n"),
            interference,
            snapshot,
            sharded,
            fleet,
            matrix
        )
    }
}

/// Measure raw interpreter throughput on a tight user-mode loop under
/// stand-alone split memory, with the decode cache on or off and the
/// trace subsystem on or off. The trace-on/trace-off pair bounds the
/// disabled-path cost of tracing: the loop emits essentially no events,
/// so any throughput gap is pure mask-check overhead on the hot path.
pub fn steps_probe(decode_cache: bool, trace: bool) -> StepsProbe {
    steps_probe_with(decode_cache, trace, sm_kernel::kernel::default_pipeline())
}

/// [`steps_probe`] with an explicit superblock-pipeline setting (the
/// `probe-pipeline-on` / `probe-pipeline-off` rows CI tracks).
pub fn steps_probe_with(decode_cache: bool, trace: bool, pipeline: bool) -> StepsProbe {
    let prog = ProgramBuilder::new("/bin/probe")
        .code(
            "_start:
                mov ecx, 1000000
            again:
                dec ecx
                jnz again
                mov ebx, 0
                call exit",
        )
        .build()
        .expect("probe assembles");
    let mut k = Protection::SplitMem(ResponseMode::Break).kernel_on(
        TlbPreset::default(),
        KernelConfig {
            aslr_stack: false,
            trace: if trace { sm_trace::mask::ALL } else { 0 },
            pipeline,
            ..KernelConfig::default()
        },
    );
    k.sys.machine.config.decode_cache = decode_cache;
    k.spawn(&prog.image).expect("probe spawns");
    let t0 = Instant::now();
    let exit = k.run(10_000_000_000);
    let dt = t0.elapsed();
    assert_eq!(exit, RunExit::AllExited, "probe must run to completion");
    let instructions = k.sys.machine.stats.instructions;
    StepsProbe {
        decode_cache,
        trace,
        pipeline,
        trace_events: k.sys.machine.tracer.emitted(),
        instructions,
        wall_ms: dt.as_secs_f64() * 1e3,
        steps_per_sec: instructions as f64 / dt.as_secs_f64(),
        dcache: k.sys.machine.decode_cache.stats,
        sblocks: k.sys.machine.superblocks.stats,
    }
}

/// Measure checkpoint save/restore throughput on a mid-run kernel: spawn
/// the tight-loop probe guest, advance it far enough to warm TLBs and
/// populate page tables, then time `iterations` full serializations and
/// validated restores of the whole system state.
pub fn snapshot_probe(iterations: u32) -> SnapshotProbe {
    let iterations = iterations.max(1);
    let prog = ProgramBuilder::new("/bin/snapprobe")
        .code(
            "_start:
                mov ecx, 1000000
            again:
                dec ecx
                jnz again
                mov ebx, 0
                call exit",
        )
        .build()
        .expect("probe assembles");
    let split = Protection::SplitMem(ResponseMode::Break);
    let mut k = split.kernel_on(
        TlbPreset::default(),
        KernelConfig {
            aslr_stack: false,
            ..KernelConfig::default()
        },
    );
    k.spawn(&prog.image).expect("probe spawns");
    assert_eq!(
        k.run(50_000),
        RunExit::CyclesExhausted,
        "guest must be live"
    );
    let t0 = Instant::now();
    let mut bytes = Vec::new();
    for _ in 0..iterations {
        bytes = sm_kernel::snapshot::save(&k);
    }
    let save_dt = t0.elapsed();
    let t0 = Instant::now();
    for _ in 0..iterations {
        sm_kernel::snapshot::restore(&bytes, split.engine()).expect("own snapshot restores");
    }
    let restore_dt = t0.elapsed();
    let total_mb = bytes.len() as f64 * iterations as f64 / 1e6;
    SnapshotProbe {
        snapshot_bytes: bytes.len(),
        iterations,
        save_ms: save_dt.as_secs_f64() * 1e3,
        restore_ms: restore_dt.as_secs_f64() * 1e3,
        save_mb_per_sec: total_mb / save_dt.as_secs_f64().max(1e-9),
        restore_mb_per_sec: total_mb / restore_dt.as_secs_f64().max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_instructions_and_cache_traffic() {
        let on = steps_probe(true, false);
        assert!(on.instructions > 2_000_000);
        assert!(on.dcache.hits > 1_000_000, "{:?}", on.dcache);
        assert_eq!(on.trace_events, 0);
        let off = steps_probe(false, false);
        assert_eq!(off.dcache, DecodeCacheStats::default());
        assert!(off.instructions > 2_000_000);
    }

    #[test]
    fn traced_probe_captures_events_without_changing_the_run() {
        let traced = steps_probe(true, true);
        assert!(traced.trace, "flag must round-trip");
        assert!(
            traced.trace_events > 0,
            "spawn/exit must emit at least a few events"
        );
        let plain = steps_probe(true, false);
        assert_eq!(
            traced.instructions, plain.instructions,
            "tracing must not perturb the simulation"
        );
    }

    #[test]
    fn json_shape_is_stable() {
        let mut s = BenchSummary::default();
        let v = s.section("demo", || 41 + 1);
        assert_eq!(v, 42);
        s.total_wall_ms = 1.5;
        let j = s.to_json();
        assert!(j.contains("\"total_wall_ms\": 1.500"), "{j}");
        assert!(j.contains("\"name\": \"demo\""), "{j}");
        assert!(j.ends_with("}\n"), "{j}");
        assert!(!j.contains("snapshot_probe"), "{j}");
    }

    #[test]
    fn sharded_row_serializes() {
        let s = BenchSummary {
            sharded: Some(crate::shards::ShardedProbe {
                serial_ms: 10.0,
                sharded_ms: 5.0,
                speedup: 2.0,
                segments: 4,
                threads: 8,
                identical: true,
            }),
            ..BenchSummary::default()
        };
        let j = s.to_json();
        assert!(
            j.contains("\"fig6_sharded\": {\"serial_ms\": 10.000"),
            "{j}"
        );
        assert!(j.contains("\"identical\": true"), "{j}");
        assert!(
            !BenchSummary::default().to_json().contains("fig6_sharded"),
            "row must be absent when the probe did not run"
        );
    }

    #[test]
    fn attack_matrix_rows_serialize() {
        let s = BenchSummary {
            attack_matrix: vec![
                MatrixRow {
                    attack: "rop-chain".into(),
                    engine: "split(break)".into(),
                    shell: true,
                    detections: 0,
                },
                MatrixRow {
                    attack: "rop-chain".into(),
                    engine: "shadow(break)".into(),
                    shell: false,
                    detections: 1,
                },
            ],
            ..BenchSummary::default()
        };
        let j = s.to_json();
        assert!(
            j.contains(
                "{\"attack\": \"rop-chain\", \"engine\": \"split(break)\", \"shell\": true, \"detections\": 0}"
            ),
            "{j}"
        );
        assert!(j.contains("\"attack_matrix\": ["), "{j}");
        assert!(
            !BenchSummary::default().to_json().contains("attack_matrix"),
            "rows must be absent when the matrix did not run"
        );
    }

    #[test]
    fn fleet_row_serializes() {
        let s = BenchSummary {
            fleet: Some(FleetProbe {
                tenants: 500,
                cells: 100,
                shards: 4,
                completed: 3000,
                dropped: 0,
                p50: 90_111,
                p95: 1_015_807,
                p99: 1_277_951,
                req_per_mcycle: 1633,
                detected: 300,
                attempts: 300,
                degradations: 0,
                duration_cycles: 1_836_540,
                wall_ms: 1400.0,
                identical: true,
            }),
            ..BenchSummary::default()
        };
        let j = s.to_json();
        assert!(j.contains("\"fleet_p99\": 1277951"), "{j}");
        assert!(j.contains("\"fleet_req_per_mcycle\": 1633"), "{j}");
        assert!(j.contains("\"identical\": true"), "{j}");
        assert!(
            !BenchSummary::default().to_json().contains("\"fleet\""),
            "row must be absent when the section did not run"
        );
    }

    #[test]
    fn snapshot_probe_round_trips_and_reports() {
        let p = snapshot_probe(3);
        assert!(p.snapshot_bytes > 1000, "{p:?}");
        assert!(
            p.save_mb_per_sec > 0.0 && p.restore_mb_per_sec > 0.0,
            "{p:?}"
        );
        let s = BenchSummary {
            snapshot: Some(p),
            ..BenchSummary::default()
        };
        let j = s.to_json();
        assert!(j.contains("\"snapshot_probe\": {\"snapshot_bytes\""), "{j}");
    }
}
