//! Fig. 9: "Unixbench pipe ctxsw with varying percentages of pages being
//! split" (paper §6.2).
//!
//! The combined configuration: a random fraction of pages is split while
//! the execute-disable bit covers the rest. "Performance increases
//! dramatically when a small percentage of an application's pages are
//! being split. When only 10 percent of the pages are split ... even this
//! 'worst case' test is able to execute at about 80 percent of full
//! speed."
//!
//! Which pages get drawn is random, so each fraction is averaged over
//! several kernel seeds (the paper averaged 10 runs of every benchmark).

use rayon::prelude::*;
use sm_core::setup::Protection;
use sm_machine::TlbPreset;
use sm_workloads::normalized;
use sm_workloads::unixbench::{run_unixbench_seeded_on, UnixbenchTest};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Fraction of pages split (0.0–1.0).
    pub fraction: f64,
    /// Mean normalized performance across seeds.
    pub normalized: f64,
    /// Per-seed values (spread diagnostics).
    pub samples: Vec<f64>,
}

/// Fractions the sweep visits.
pub const FRACTIONS: [f64; 7] = [0.0, 0.05, 0.10, 0.25, 0.50, 0.75, 1.0];

/// Run the sweep: `iterations` ctxsw iterations, `seeds` runs per point.
pub fn run(iterations: u32, seeds: u64) -> Vec<Point> {
    run_on(TlbPreset::default(), iterations, seeds)
}

/// [`run`] on an explicit TLB geometry. `(fraction, seed)` samples are
/// independent (each owns its seeded kernel) and fan out across threads;
/// points keep `FRACTIONS` order, samples keep seed order.
pub fn run_on(tlb: TlbPreset, iterations: u32, seeds: u64) -> Vec<Point> {
    let base = run_unixbench_seeded_on(
        &Protection::Unprotected,
        tlb,
        UnixbenchTest::PipeContextSwitch,
        iterations,
        1,
    );
    FRACTIONS
        .par_iter()
        .map(|&fraction| {
            let samples: Vec<f64> = (0..seeds)
                .map(|seed| {
                    let p = run_unixbench_seeded_on(
                        &Protection::CombinedFraction(fraction),
                        tlb,
                        UnixbenchTest::PipeContextSwitch,
                        iterations,
                        seed * 7919 + 13,
                    );
                    normalized(&p, &base)
                })
                .collect();
            Point {
                fraction,
                normalized: samples.iter().sum::<f64>() / samples.len() as f64,
                samples,
            }
        })
        .collect()
}

/// Render the figure.
pub fn render(points: &[Point]) -> String {
    let series: Vec<(String, f64)> = points
        .iter()
        .map(|p| (format!("{:>3.0}%", p.fraction * 100.0), p.normalized))
        .collect();
    let mut out = crate::report::render_series(
        "pipe-ctxsw normalized performance vs fraction of pages split (NX covers the rest)",
        "split",
        &series,
    );
    out.push_str("\npaper: ~0.80 of full speed at 10% split, degrading towards the\nall-split stand-alone figure as the fraction grows\n");
    out
}
