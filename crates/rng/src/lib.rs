//! Deterministic pseudo-randomness for the workspace.
//!
//! Every source of randomness in the simulator — ASLR placement, split-policy
//! draws, workload input generation, chaos fault plans — flows through one
//! [`StdRng`] seeded from a single `u64`. Two runs with the same seed are
//! byte-for-byte identical, which is what lets a chaos-harness failure replay
//! exactly from its seed (and what keeps the cycle-exactness invariant test
//! meaningful).
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
//! counter passed through a finalizing mixer. It is small, fast, passes
//! BigCrush, and — crucially for this repo — has no external dependency and
//! no platform-dependent behaviour.

#![forbid(unsafe_code)]

/// A deterministic, seedable pseudo-random number generator.
///
/// ```
/// use sm_rng::StdRng;
/// let mut a = StdRng::seed_from_u64(42);
/// let mut b = StdRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

/// Alias kept for call sites that conceptually want a "small" rng; the
/// workspace deliberately has exactly one generator.
pub type SmallRng = StdRng;

impl StdRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }

    /// Next 64 random bits (SplitMix64 step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits (the high half of a 64-bit step).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from a range: `rng.gen_range(0u32..16)`,
    /// `rng.gen_range(b'a'..=b'z')`, `rng.gen_range(0.0..1.0)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }

    /// Fill a byte slice with random data.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Split off an independent generator seeded from this one's stream.
    /// Use it to give a subsystem its own stream without coupling its draw
    /// count to the parent's.
    pub fn fork(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_u64())
    }

    /// The generator's internal state. SplitMix64's state *is* its seed:
    /// `StdRng::seed_from_u64(rng.state())` reproduces the remaining
    /// stream exactly, which is what lets a checkpoint serialize a live
    /// generator with one u64.
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// Ranges a [`StdRng`] can draw uniformly from.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Lemire multiply-shift: unbiased enough for simulation and
                // branch-free (no rejection loop to perturb determinism
                // accounting).
                let draw = (rng.next_u64() as u128 * span) >> 64;
                self.start.wrapping_add(draw as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(0u32..16);
            assert!(v < 16);
            let b = r.gen_range(b'a'..=b'z');
            assert!(b.is_ascii_lowercase());
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = r.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn range_hits_both_endpoints_inclusive() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0u8..=3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut r = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fork_is_independent_and_deterministic() {
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = StdRng::seed_from_u64(1234);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
