//! Instruction set: types, opcode assignments and the decoder.
//!
//! The ISA is a compact x86-flavoured subset. Opcode assignments deliberately
//! match real IA-32 one-byte encodings so that classic shellcode byte
//! sequences mean the same thing here — e.g. the paper's forensic
//! `exit(0)` shellcode
//! `\xbb\x00\x00\x00\x00 \xb8\x01\x00\x00\x00 \xcd\x80`
//! decodes to `mov ebx, 0; mov eax, 1; int 0x80` on both. `0x90` is `nop`
//! (so NOP sleds look authentic in forensic dumps) and `0x00` is *invalid*
//! (so a zero-filled split code page traps on the very first fetched byte —
//! the paper's break mode).
//!
//! The decoder reads bytes from a [`CodeSource`] so that the same code drives
//! both the executing CPU (bytes fetched through the instruction-TLB, each
//! fetch able to page-fault) and the disassembler in `sm-asm` (bytes from a
//! slice).

use crate::cpu::Reg;
use std::fmt;

/// Filler byte written to the otherwise-empty code frames of split data
/// pages in observe/forensics mode. Chosen to be an invalid opcode that is
/// *distinct* from `0x00` so the `#UD` handler can tell "execution reached a
/// split code page we filled" apart from "execution wandered into zeroes"
/// (paper §4.5.2: "Fill the previously empty code pages with invalid
/// opcodes").
pub const SPLIT_FILL_OPCODE: u8 = 0x0E;

/// The `int` vector used for system calls, as on Linux.
pub const SYSCALL_VECTOR: u8 = 0x80;

/// Condition codes in x86 `cc` encoding order (`0x70+cc` short jumps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Cond {
    /// Overflow.
    O = 0,
    /// Not overflow.
    No = 1,
    /// Below (unsigned), i.e. carry.
    B = 2,
    /// Above or equal (unsigned).
    Ae = 3,
    /// Equal / zero.
    E = 4,
    /// Not equal / not zero.
    Ne = 5,
    /// Below or equal (unsigned).
    Be = 6,
    /// Above (unsigned).
    A = 7,
    /// Sign (negative).
    S = 8,
    /// Not sign.
    Ns = 9,
    /// Parity even.
    P = 10,
    /// Parity odd.
    Np = 11,
    /// Less (signed).
    L = 12,
    /// Greater or equal (signed).
    Ge = 13,
    /// Less or equal (signed).
    Le = 14,
    /// Greater (signed).
    G = 15,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// Decode a 4-bit condition field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 15`.
    pub fn from_bits(bits: u8) -> Cond {
        Self::ALL[bits as usize]
    }

    /// Mnemonic suffix (`"e"` for `je`, ...).
    pub fn name(self) -> &'static str {
        [
            "o", "no", "b", "ae", "e", "ne", "be", "a", "s", "ns", "p", "np", "l", "ge", "le", "g",
        ][self as usize]
    }
}

/// Binary ALU operations (register and immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition; sets CF/OF.
    Add,
    /// Bitwise or; clears CF/OF.
    Or,
    /// Bitwise and; clears CF/OF.
    And,
    /// Subtraction; sets CF/OF.
    Sub,
    /// Bitwise xor; clears CF/OF.
    Xor,
    /// Subtraction that only sets flags.
    Cmp,
    /// Bitwise and that only sets flags.
    Test,
}

impl AluOp {
    /// x86 group-1 `/r` extension digit, if this op has an immediate form.
    pub fn group1_ext(self) -> Option<u8> {
        match self {
            AluOp::Add => Some(0),
            AluOp::Or => Some(1),
            AluOp::And => Some(4),
            AluOp::Sub => Some(5),
            AluOp::Xor => Some(6),
            AluOp::Cmp => Some(7),
            AluOp::Test => None,
        }
    }

    /// Mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Sub => "sub",
            AluOp::Xor => "xor",
            AluOp::Cmp => "cmp",
            AluOp::Test => "test",
        }
    }
}

/// Shift operations (`0xC1` / `0xD3` group 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftOp {
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
}

impl ShiftOp {
    /// x86 group-2 extension digit.
    pub fn ext(self) -> u8 {
        match self {
            ShiftOp::Shl => 4,
            ShiftOp::Shr => 5,
            ShiftOp::Sar => 7,
        }
    }

    /// Mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            ShiftOp::Shl => "shl",
            ShiftOp::Shr => "shr",
            ShiftOp::Sar => "sar",
        }
    }
}

/// Unary group-3 operations (`0xF7`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Bitwise complement (no flags).
    Not,
    /// Two's-complement negation.
    Neg,
    /// Unsigned multiply: `edx:eax = eax * operand`.
    Mul,
    /// Unsigned divide: `eax = edx:eax / operand`, `edx =` remainder.
    Div,
}

impl UnOp {
    /// x86 group-3 extension digit.
    pub fn ext(self) -> u8 {
        match self {
            UnOp::Not => 2,
            UnOp::Neg => 3,
            UnOp::Mul => 4,
            UnOp::Div => 6,
        }
    }

    /// Mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::Mul => "mul",
            UnOp::Div => "div",
        }
    }
}

/// Group-5 operations (`0xFF`): the indirect control transfers the
/// function-pointer and longjmp attacks in the benchmark rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grp5Op {
    /// Increment r/m32.
    Inc,
    /// Decrement r/m32.
    Dec,
    /// Indirect call through r/m32.
    Call,
    /// Indirect jump through r/m32.
    Jmp,
    /// Push r/m32.
    Push,
}

impl Grp5Op {
    /// x86 group-5 extension digit.
    pub fn ext(self) -> u8 {
        match self {
            Grp5Op::Inc => 0,
            Grp5Op::Dec => 1,
            Grp5Op::Call => 2,
            Grp5Op::Jmp => 4,
            Grp5Op::Push => 6,
        }
    }
}

/// A decoded memory operand: `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mem {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8), if any. `esp` cannot index.
    pub index: Option<(Reg, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

impl Mem {
    /// An absolute-address operand `[disp]`.
    pub fn abs(addr: u32) -> Mem {
        Mem {
            base: None,
            index: None,
            disp: addr as i32,
        }
    }

    /// A `[base + disp]` operand.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: None,
            disp,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((r, s)) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{r}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                write!(f, "{:+}", self.disp)?;
            } else {
                write!(f, "{:#x}", self.disp as u32)?;
            }
        }
        write!(f, "]")
    }
}

/// A register-or-memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rm {
    /// Register operand.
    Reg(Reg),
    /// Memory operand.
    Mem(Mem),
}

impl fmt::Display for Rm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rm::Reg(r) => write!(f, "{r}"),
            Rm::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// Direction of a two-operand instruction with a ModRM byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `op r/m, reg` (x86 opcodes `0x01`, `0x89`, ...).
    ToRm,
    /// `op reg, r/m` (x86 opcodes `0x03`, `0x8B`, ...).
    FromRm,
}

/// Shift count operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftCount {
    /// Immediate count (masked to 0–31).
    Imm(u8),
    /// Count taken from `cl`.
    Cl,
}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `nop` (0x90).
    Nop,
    /// `hlt` (0xF4); the kernel treats a user-mode halt as a fatal fault.
    Hlt,
    /// `int imm8` (0xCD): software interrupt; vector 0x80 is the syscall gate.
    Int(u8),
    /// `ret` (0xC3).
    Ret,
    /// `leave` (0xC9): `esp = ebp; pop ebp`.
    Leave,
    /// `cdq` (0x99): sign-extend `eax` into `edx`.
    Cdq,
    /// `mov reg, imm32` (0xB8+r).
    MovRegImm(Reg, u32),
    /// `push reg` (0x50+r).
    PushReg(Reg),
    /// `pop reg` (0x58+r).
    PopReg(Reg),
    /// `push imm` (0x68 id / 0x6A ib sign-extended).
    PushImm(i32),
    /// `inc reg` (0x40+r).
    IncReg(Reg),
    /// `dec reg` (0x48+r).
    DecReg(Reg),
    /// `call rel32` (0xE8).
    CallRel(i32),
    /// `jmp rel32` / `jmp rel8` (0xE9 / 0xEB).
    JmpRel(i32),
    /// Conditional jump (0x70+cc rel8, 0x0F 0x80+cc rel32).
    JccRel(Cond, i32),
    /// `mov` between register and r/m (0x88/0x89/0x8A/0x8B).
    MovRmReg {
        /// Byte-sized operation (low byte of the register).
        byte: bool,
        /// Operand direction.
        dir: Dir,
        /// Register-or-memory operand.
        rm: Rm,
        /// Register operand.
        reg: Reg,
    },
    /// `mov r/m, imm` (0xC6/0xC7).
    MovRmImm {
        /// Byte-sized store.
        byte: bool,
        /// Destination.
        rm: Rm,
        /// Immediate (low 8 bits used when `byte`).
        imm: u32,
    },
    /// `movzx r32, r/m8` (0x0F 0xB6).
    Movzx8 {
        /// Destination register.
        dst: Reg,
        /// Byte source.
        src: Rm,
    },
    /// `lea r32, [mem]` (0x8D).
    Lea(Reg, Mem),
    /// Register-form ALU operation (0x01/0x09/0x21/0x29/0x31/0x39/0x85 and
    /// the `FromRm` 0x03/0x0B/0x23/0x2B/0x33/0x3B forms).
    Alu {
        /// Operation.
        op: AluOp,
        /// Operand direction (`Test` is always `ToRm`).
        dir: Dir,
        /// Register-or-memory operand.
        rm: Rm,
        /// Register operand.
        reg: Reg,
    },
    /// Immediate-form ALU operation (0x81 id, 0x83 ib sign-extended).
    AluImm {
        /// Operation (never `Test`).
        op: AluOp,
        /// Destination.
        rm: Rm,
        /// Immediate.
        imm: i32,
    },
    /// Shift (0xC1 /ext ib, 0xD3 /ext by `cl`).
    Shift {
        /// Operation.
        op: ShiftOp,
        /// Destination.
        rm: Rm,
        /// Count.
        count: ShiftCount,
    },
    /// Group 3 (0xF7): `not`/`neg`/`mul`/`div`.
    Grp3 {
        /// Operation.
        op: UnOp,
        /// Operand.
        rm: Rm,
    },
    /// Group 5 (0xFF): `inc`/`dec`/indirect `call`/indirect `jmp`/`push`.
    Grp5 {
        /// Operation.
        op: Grp5Op,
        /// Operand.
        rm: Rm,
    },
}

/// Source of instruction bytes for the decoder.
///
/// The executing machine implements this with instruction-TLB-translated
/// fetches (each byte can fault); the disassembler implements it over a
/// slice (running out of bytes is the error).
pub trait CodeSource {
    /// Error produced when a byte cannot be obtained.
    type Err;

    /// Produce the next instruction byte.
    fn next(&mut self) -> Result<u8, Self::Err>;
}

/// Outcome of decoding: either an instruction and its encoded length, or an
/// invalid opcode (which the CPU turns into `#UD`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// Successfully decoded instruction.
    Insn {
        /// The instruction.
        insn: Insn,
        /// Encoded length in bytes.
        len: u8,
    },
    /// The first opcode byte (or mandatory extension) is not a valid
    /// instruction.
    Invalid {
        /// The offending opcode byte.
        opcode: u8,
    },
}

struct Counting<'a, S> {
    src: &'a mut S,
    n: u8,
}

impl<S: CodeSource> Counting<'_, S> {
    fn u8(&mut self) -> Result<u8, S::Err> {
        let b = self.src.next()?;
        self.n += 1;
        Ok(b)
    }

    fn i8(&mut self) -> Result<i32, S::Err> {
        Ok(self.u8()? as i8 as i32)
    }

    fn u32(&mut self) -> Result<u32, S::Err> {
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.u8()? as u32) << (8 * i);
        }
        Ok(v)
    }

    fn i32(&mut self) -> Result<i32, S::Err> {
        Ok(self.u32()? as i32)
    }

    /// Decode a ModRM byte (plus SIB/displacement) into `(reg_field, rm)`.
    fn modrm(&mut self) -> Result<(u8, Rm), S::Err> {
        let b = self.u8()?;
        let md = b >> 6;
        let reg = (b >> 3) & 7;
        let rm_bits = b & 7;
        if md == 3 {
            return Ok((reg, Rm::Reg(Reg::from_bits(rm_bits))));
        }
        let mut base = None;
        let mut index = None;
        if rm_bits == 4 {
            // SIB byte.
            let sib = self.u8()?;
            let scale = 1u8 << (sib >> 6);
            let idx = (sib >> 3) & 7;
            let bse = sib & 7;
            if idx != 4 {
                index = Some((Reg::from_bits(idx), scale));
            }
            if !(bse == 5 && md == 0) {
                base = Some(Reg::from_bits(bse));
            }
            let disp = match md {
                0 => {
                    if bse == 5 {
                        self.i32()?
                    } else {
                        0
                    }
                }
                1 => self.i8()?,
                _ => self.i32()?,
            };
            return Ok((reg, Rm::Mem(Mem { base, index, disp })));
        }
        if md == 0 && rm_bits == 5 {
            let disp = self.i32()?;
            return Ok((reg, Rm::Mem(Mem { base, index, disp })));
        }
        base = Some(Reg::from_bits(rm_bits));
        let disp = match md {
            0 => 0,
            1 => self.i8()?,
            _ => self.i32()?,
        };
        Ok((reg, Rm::Mem(Mem { base, index, disp })))
    }
}

/// Decode one instruction from a [`CodeSource`].
///
/// # Errors
///
/// Propagates the source's error (a page fault for the CPU, end-of-input for
/// the disassembler). An undecodable opcode is **not** an error: it is
/// reported as [`Decoded::Invalid`] so the CPU can raise `#UD` precisely.
pub fn decode<S: CodeSource>(src: &mut S) -> Result<Decoded, S::Err> {
    let mut c = Counting { src, n: 0 };
    let op = c.u8()?;
    let insn = match op {
        0x90 => Insn::Nop,
        0xF4 => Insn::Hlt,
        0xCD => Insn::Int(c.u8()?),
        0xC3 => Insn::Ret,
        0xC9 => Insn::Leave,
        0x99 => Insn::Cdq,
        0xB8..=0xBF => Insn::MovRegImm(Reg::from_bits(op - 0xB8), c.u32()?),
        0x50..=0x57 => Insn::PushReg(Reg::from_bits(op - 0x50)),
        0x58..=0x5F => Insn::PopReg(Reg::from_bits(op - 0x58)),
        0x40..=0x47 => Insn::IncReg(Reg::from_bits(op - 0x40)),
        0x48..=0x4F => Insn::DecReg(Reg::from_bits(op - 0x48)),
        0x68 => Insn::PushImm(c.i32()?),
        0x6A => Insn::PushImm(c.i8()?),
        0xE8 => Insn::CallRel(c.i32()?),
        0xE9 => Insn::JmpRel(c.i32()?),
        0xEB => Insn::JmpRel(c.i8()?),
        0x70..=0x7F => Insn::JccRel(Cond::from_bits(op - 0x70), c.i8()?),
        0x0F => {
            let op2 = c.u8()?;
            match op2 {
                0x80..=0x8F => Insn::JccRel(Cond::from_bits(op2 - 0x80), c.i32()?),
                0xB6 => {
                    let (reg, rm) = c.modrm()?;
                    Insn::Movzx8 {
                        dst: Reg::from_bits(reg),
                        src: rm,
                    }
                }
                _ => return Ok(Decoded::Invalid { opcode: op2 }),
            }
        }
        0x88..=0x8B => {
            let (reg, rm) = c.modrm()?;
            Insn::MovRmReg {
                byte: op & 1 == 0,
                dir: if op & 2 == 0 { Dir::ToRm } else { Dir::FromRm },
                rm,
                reg: Reg::from_bits(reg),
            }
        }
        0x8D => {
            let (reg, rm) = c.modrm()?;
            match rm {
                Rm::Mem(m) => Insn::Lea(Reg::from_bits(reg), m),
                Rm::Reg(_) => return Ok(Decoded::Invalid { opcode: op }),
            }
        }
        0xC6 | 0xC7 => {
            let byte = op == 0xC6;
            let (ext, rm) = c.modrm()?;
            if ext != 0 {
                return Ok(Decoded::Invalid { opcode: op });
            }
            let imm = if byte { c.u8()? as u32 } else { c.u32()? };
            Insn::MovRmImm { byte, rm, imm }
        }
        0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 | 0x03 | 0x0B | 0x23 | 0x2B | 0x33 | 0x3B => {
            let alu = match op & !2 {
                0x01 => AluOp::Add,
                0x09 => AluOp::Or,
                0x21 => AluOp::And,
                0x29 => AluOp::Sub,
                0x31 => AluOp::Xor,
                0x39 => AluOp::Cmp,
                _ => unreachable!(),
            };
            let (reg, rm) = c.modrm()?;
            Insn::Alu {
                op: alu,
                dir: if op & 2 == 0 { Dir::ToRm } else { Dir::FromRm },
                rm,
                reg: Reg::from_bits(reg),
            }
        }
        0x85 => {
            let (reg, rm) = c.modrm()?;
            Insn::Alu {
                op: AluOp::Test,
                dir: Dir::ToRm,
                rm,
                reg: Reg::from_bits(reg),
            }
        }
        0x81 | 0x83 => {
            let (ext, rm) = c.modrm()?;
            let alu = match ext {
                0 => AluOp::Add,
                1 => AluOp::Or,
                4 => AluOp::And,
                5 => AluOp::Sub,
                6 => AluOp::Xor,
                7 => AluOp::Cmp,
                _ => return Ok(Decoded::Invalid { opcode: op }),
            };
            let imm = if op == 0x83 { c.i8()? } else { c.i32()? };
            Insn::AluImm { op: alu, rm, imm }
        }
        0xC1 | 0xD3 => {
            let (ext, rm) = c.modrm()?;
            let shift = match ext {
                4 => ShiftOp::Shl,
                5 => ShiftOp::Shr,
                7 => ShiftOp::Sar,
                _ => return Ok(Decoded::Invalid { opcode: op }),
            };
            let count = if op == 0xC1 {
                ShiftCount::Imm(c.u8()?)
            } else {
                ShiftCount::Cl
            };
            Insn::Shift {
                op: shift,
                rm,
                count,
            }
        }
        0xF7 => {
            let (ext, rm) = c.modrm()?;
            let un = match ext {
                2 => UnOp::Not,
                3 => UnOp::Neg,
                4 => UnOp::Mul,
                6 => UnOp::Div,
                _ => return Ok(Decoded::Invalid { opcode: op }),
            };
            Insn::Grp3 { op: un, rm }
        }
        0xFF => {
            let (ext, rm) = c.modrm()?;
            let g5 = match ext {
                0 => Grp5Op::Inc,
                1 => Grp5Op::Dec,
                2 => Grp5Op::Call,
                4 => Grp5Op::Jmp,
                6 => Grp5Op::Push,
                _ => return Ok(Decoded::Invalid { opcode: op }),
            };
            Insn::Grp5 { op: g5, rm }
        }
        _ => return Ok(Decoded::Invalid { opcode: op }),
    };
    Ok(Decoded::Insn { insn, len: c.n })
}

/// [`CodeSource`] over a byte slice, for the disassembler and tests.
#[derive(Debug)]
pub struct SliceSource<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Decode from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> SliceSource<'a> {
        SliceSource { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Error for [`SliceSource`]: the slice ended mid-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnexpectedEof;

impl fmt::Display for UnexpectedEof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("unexpected end of code bytes")
    }
}

impl std::error::Error for UnexpectedEof {}

impl CodeSource for SliceSource<'_> {
    type Err = UnexpectedEof;

    fn next(&mut self) -> Result<u8, UnexpectedEof> {
        let b = *self.bytes.get(self.pos).ok_or(UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }
}

/// Decode one instruction from a slice. Convenience wrapper around
/// [`decode`] + [`SliceSource`].
///
/// # Errors
///
/// Returns [`UnexpectedEof`] if the slice ends mid-instruction.
pub fn decode_slice(bytes: &[u8]) -> Result<Decoded, UnexpectedEof> {
    decode(&mut SliceSource::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insn(bytes: &[u8]) -> (Insn, u8) {
        match decode_slice(bytes).expect("eof") {
            Decoded::Insn { insn, len } => (insn, len),
            Decoded::Invalid { opcode } => panic!("invalid opcode {opcode:#x}"),
        }
    }

    #[test]
    fn paper_forensic_shellcode_decodes_as_on_x86() {
        // mov ebx, 0 ; mov eax, 1 ; int 0x80  — exit(0) from paper §6.1.3.
        let bytes = b"\xbb\x00\x00\x00\x00\xb8\x01\x00\x00\x00\xcd\x80";
        let (i1, l1) = insn(bytes);
        assert_eq!(i1, Insn::MovRegImm(Reg::Ebx, 0));
        assert_eq!(l1, 5);
        let (i2, _) = insn(&bytes[5..]);
        assert_eq!(i2, Insn::MovRegImm(Reg::Eax, 1));
        let (i3, _) = insn(&bytes[10..]);
        assert_eq!(i3, Insn::Int(0x80));
    }

    #[test]
    fn nop_is_0x90_and_zero_is_invalid() {
        assert_eq!(insn(&[0x90]).0, Insn::Nop);
        assert_eq!(
            decode_slice(&[0x00]).unwrap(),
            Decoded::Invalid { opcode: 0x00 }
        );
        assert_eq!(
            decode_slice(&[SPLIT_FILL_OPCODE]).unwrap(),
            Decoded::Invalid {
                opcode: SPLIT_FILL_OPCODE
            }
        );
    }

    #[test]
    fn push_pop_inc_dec_families() {
        assert_eq!(insn(&[0x50]).0, Insn::PushReg(Reg::Eax));
        assert_eq!(insn(&[0x5D]).0, Insn::PopReg(Reg::Ebp));
        assert_eq!(insn(&[0x41]).0, Insn::IncReg(Reg::Ecx));
        assert_eq!(insn(&[0x4F]).0, Insn::DecReg(Reg::Edi));
    }

    #[test]
    fn relative_branches() {
        assert_eq!(insn(&[0xEB, 0xFE]).0, Insn::JmpRel(-2));
        assert_eq!(insn(&[0xE9, 0x10, 0x00, 0x00, 0x00]).0, Insn::JmpRel(0x10));
        assert_eq!(insn(&[0x74, 0x05]).0, Insn::JccRel(Cond::E, 5));
        assert_eq!(
            insn(&[0x0F, 0x85, 0xFF, 0xFF, 0xFF, 0xFF]).0,
            Insn::JccRel(Cond::Ne, -1)
        );
        assert_eq!(
            insn(&[0xE8, 0x00, 0x01, 0x00, 0x00]).0,
            Insn::CallRel(0x100)
        );
    }

    #[test]
    fn modrm_register_form() {
        // 0x89 /r with mod=11: mov edi, eax → modrm 11 000 111 = 0xC7.
        let (i, l) = insn(&[0x89, 0xC7]);
        assert_eq!(
            i,
            Insn::MovRmReg {
                byte: false,
                dir: Dir::ToRm,
                rm: Rm::Reg(Reg::Edi),
                reg: Reg::Eax
            }
        );
        assert_eq!(l, 2);
    }

    #[test]
    fn modrm_base_disp8() {
        // mov eax, [ebp-4]: 0x8B modrm 01 000 101 = 0x45, disp8 0xFC.
        let (i, _) = insn(&[0x8B, 0x45, 0xFC]);
        assert_eq!(
            i,
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem::base_disp(Reg::Ebp, -4)),
                reg: Reg::Eax
            }
        );
    }

    #[test]
    fn modrm_absolute_disp32() {
        // mov eax, [0x1234]: mod=00 rm=101.
        let (i, _) = insn(&[0x8B, 0x05, 0x34, 0x12, 0x00, 0x00]);
        assert_eq!(
            i,
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem::abs(0x1234)),
                reg: Reg::Eax
            }
        );
    }

    #[test]
    fn modrm_sib_scaled_index() {
        // mov eax, [ebx+esi*4+8]: 0x8B, modrm 01 000 100 = 0x44,
        // sib scale=10 index=110 base=011 = 0xB3, disp8 8.
        let (i, _) = insn(&[0x8B, 0x44, 0xB3, 0x08]);
        assert_eq!(
            i,
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem {
                    base: Some(Reg::Ebx),
                    index: Some((Reg::Esi, 4)),
                    disp: 8
                }),
                reg: Reg::Eax
            }
        );
    }

    #[test]
    fn sib_no_base_form() {
        // mov eax, [esi*4 + 0x100]: modrm 00 000 100, sib 10 110 101, disp32.
        let (i, _) = insn(&[0x8B, 0x04, 0xB5, 0x00, 0x01, 0x00, 0x00]);
        assert_eq!(
            i,
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem {
                    base: None,
                    index: Some((Reg::Esi, 4)),
                    disp: 0x100
                }),
                reg: Reg::Eax
            }
        );
    }

    #[test]
    fn group1_immediate_forms() {
        // add ebx, 0x100: 0x81 modrm 11 000 011 = 0xC3, imm32.
        let (i, _) = insn(&[0x81, 0xC3, 0x00, 0x01, 0x00, 0x00]);
        assert_eq!(
            i,
            Insn::AluImm {
                op: AluOp::Add,
                rm: Rm::Reg(Reg::Ebx),
                imm: 0x100
            }
        );
        // sub esp, 8 (short form): 0x83 modrm 11 101 100 = 0xEC, imm8.
        let (i, l) = insn(&[0x83, 0xEC, 0x08]);
        assert_eq!(
            i,
            Insn::AluImm {
                op: AluOp::Sub,
                rm: Rm::Reg(Reg::Esp),
                imm: 8
            }
        );
        assert_eq!(l, 3);
    }

    #[test]
    fn group5_indirect_call_and_jmp() {
        // call eax: 0xFF modrm 11 010 000 = 0xD0.
        let (i, _) = insn(&[0xFF, 0xD0]);
        assert_eq!(
            i,
            Insn::Grp5 {
                op: Grp5Op::Call,
                rm: Rm::Reg(Reg::Eax)
            }
        );
        // jmp [ebx]: modrm 00 100 011 = 0x23.
        let (i, _) = insn(&[0xFF, 0x23]);
        assert_eq!(
            i,
            Insn::Grp5 {
                op: Grp5Op::Jmp,
                rm: Rm::Mem(Mem::base_disp(Reg::Ebx, 0))
            }
        );
    }

    #[test]
    fn movzx_and_byte_moves() {
        // movzx eax, byte [esi]: 0x0F 0xB6 modrm 00 000 110 = 0x06.
        let (i, _) = insn(&[0x0F, 0xB6, 0x06]);
        assert_eq!(
            i,
            Insn::Movzx8 {
                dst: Reg::Eax,
                src: Rm::Mem(Mem::base_disp(Reg::Esi, 0))
            }
        );
        // mov [edi], al: 0x88 modrm 00 000 111 = 0x07.
        let (i, _) = insn(&[0x88, 0x07]);
        assert_eq!(
            i,
            Insn::MovRmReg {
                byte: true,
                dir: Dir::ToRm,
                rm: Rm::Mem(Mem::base_disp(Reg::Edi, 0)),
                reg: Reg::Eax
            }
        );
    }

    #[test]
    fn truncated_instruction_reports_eof() {
        assert_eq!(decode_slice(&[0xB8, 0x01]), Err(UnexpectedEof));
        assert_eq!(decode_slice(&[]), Err(UnexpectedEof));
    }

    #[test]
    fn invalid_group_extensions_are_ud() {
        // 0xF7 /0 (test imm) is not implemented → invalid.
        assert_eq!(
            decode_slice(&[0xF7, 0xC0]).unwrap(),
            Decoded::Invalid { opcode: 0xF7 }
        );
        // 0xFF /7 is undefined on x86 too.
        assert_eq!(
            decode_slice(&[0xFF, 0xF8]).unwrap(),
            Decoded::Invalid { opcode: 0xFF }
        );
    }

    #[test]
    fn lea_requires_memory_operand() {
        // lea with register rm is invalid.
        assert_eq!(
            decode_slice(&[0x8D, 0xC0]).unwrap(),
            Decoded::Invalid { opcode: 0x8D }
        );
        let (i, _) = insn(&[0x8D, 0x44, 0xB3, 0x08]);
        assert!(matches!(i, Insn::Lea(Reg::Eax, _)));
    }
}
