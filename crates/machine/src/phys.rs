//! Simulated physical memory and the frame allocator.
//!
//! Physical memory is a flat byte array divided into 4 KiB frames. Pagetables
//! live *inside* this memory (the hardware walker reads them from here), just
//! like on a real machine, so every pagetable manipulation performed by the
//! simulated kernel is observable by the simulated hardware.

use crate::pte::{Frame, PAGE_SIZE};
use std::fmt;

/// Simulated physical memory plus the allocator that hands out its frames.
///
/// All accessors take *physical* byte addresses. Accesses beyond the end of
/// memory panic: the simulated kernel/hardware is trusted to stay in bounds
/// (virtual-address safety is enforced separately by the MMU).
pub struct PhysMemory {
    pub(crate) bytes: Vec<u8>,
    /// Per-frame write generation, bumped by every mutating accessor. The
    /// decoded-instruction cache snapshots a frame's version when it caches
    /// decodes from that frame and treats any later mismatch as "this frame
    /// was written, drop the decodes" — so *every* write path (user stores,
    /// kernel loads, COW copies, pagetable A/D updates, frame fills) must go
    /// through the methods below. The snapshot codec restores both fields
    /// verbatim (bypassing `bump`) so generations survive a round trip.
    pub(crate) versions: Vec<u64>,
    /// Allocator over this memory's frames.
    pub allocator: FrameAllocator,
}

impl PhysMemory {
    /// Create `frames` frames of zeroed physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is 0 or the total size would overflow a `u32`
    /// physical address space.
    pub fn new(frames: u32) -> PhysMemory {
        assert!(frames > 0, "physical memory must have at least one frame");
        assert!(
            (frames as u64) * (PAGE_SIZE as u64) <= u32::MAX as u64 + 1,
            "physical memory exceeds the 32-bit physical address space"
        );
        PhysMemory {
            bytes: vec![0; frames as usize * PAGE_SIZE as usize],
            versions: vec![0; frames as usize],
            allocator: FrameAllocator::new(frames),
        }
    }

    /// Write generation of frame `pfn`: monotonically increases with every
    /// write that touches the frame.
    #[inline]
    pub fn frame_version(&self, pfn: u32) -> u64 {
        self.versions[pfn as usize]
    }

    /// Bump the version of every frame a `len`-byte write at `paddr` touches.
    #[inline]
    fn bump(&mut self, paddr: u32, len: usize) {
        let first = (paddr / PAGE_SIZE) as usize;
        let last = (paddr as usize + len.max(1) - 1) / PAGE_SIZE as usize;
        for f in first..=last {
            self.versions[f] += 1;
        }
    }

    /// Total number of frames.
    pub fn frame_count(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE as usize) as u32
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, paddr: u32) -> u8 {
        self.bytes[paddr as usize]
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, paddr: u32, v: u8) {
        self.bump(paddr, 1);
        self.bytes[paddr as usize] = v;
    }

    /// Read a little-endian 32-bit word (no alignment requirement).
    #[inline]
    pub fn read_u32(&self, paddr: u32) -> u32 {
        let i = paddr as usize;
        u32::from_le_bytes(self.bytes[i..i + 4].try_into().unwrap())
    }

    /// Write a little-endian 32-bit word (no alignment requirement).
    #[inline]
    pub fn write_u32(&mut self, paddr: u32, v: u32) {
        self.bump(paddr, 4);
        let i = paddr as usize;
        self.bytes[i..i + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copy `data` into memory starting at `paddr`.
    pub fn write(&mut self, paddr: u32, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.bump(paddr, data.len());
        let i = paddr as usize;
        self.bytes[i..i + data.len()].copy_from_slice(data);
    }

    /// Copy `buf.len()` bytes out of memory starting at `paddr`.
    pub fn read(&self, paddr: u32, buf: &mut [u8]) {
        let i = paddr as usize;
        buf.copy_from_slice(&self.bytes[i..i + buf.len()]);
    }

    /// Borrow the contents of one frame.
    pub fn frame_bytes(&self, f: Frame) -> &[u8] {
        let i = f.base() as usize;
        &self.bytes[i..i + PAGE_SIZE as usize]
    }

    /// Zero an entire frame.
    pub fn zero_frame(&mut self, f: Frame) {
        self.versions[f.0 as usize] += 1;
        let i = f.base() as usize;
        self.bytes[i..i + PAGE_SIZE as usize].fill(0);
    }

    /// Fill an entire frame with one byte value.
    pub fn fill_frame(&mut self, f: Frame, v: u8) {
        self.versions[f.0 as usize] += 1;
        let i = f.base() as usize;
        self.bytes[i..i + PAGE_SIZE as usize].fill(v);
    }

    /// Copy the contents of frame `src` into frame `dst`.
    pub fn copy_frame(&mut self, src: Frame, dst: Frame) {
        self.versions[dst.0 as usize] += 1;
        let (s, d) = (src.base() as usize, dst.base() as usize);
        let n = PAGE_SIZE as usize;
        self.bytes.copy_within(s..s + n, d);
    }
}

impl fmt::Debug for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMemory")
            .field("frames", &self.frame_count())
            .field("free", &self.allocator.free_count())
            .finish()
    }
}

/// Error returned when the machine has no free physical frames left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfFrames;

impl fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("out of physical memory frames")
    }
}

impl std::error::Error for OutOfFrames {}

/// Free-list allocator over physical frames.
///
/// Frame 0 is never handed out: a zero PFN in a pagetable entry is reserved
/// so that a completely empty entry is unambiguously "nothing".
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    /// Frames returned by [`FrameAllocator::free`], reallocated LIFO. The
    /// snapshot codec serializes this list verbatim (order included): LIFO
    /// recycling order is part of the deterministic allocation stream.
    pub(crate) free: Vec<Frame>,
    /// Lowest never-allocated frame: `next_fresh..total` are all free, so
    /// construction is O(1) instead of materialising the whole free list.
    pub(crate) next_fresh: u32,
    /// Per-frame reference count. `alloc` hands a frame out at count 1;
    /// [`FrameAllocator::retain`] bumps it (COW sharing, shared code
    /// frames); [`FrameAllocator::release`] drops it and only returns the
    /// frame to the free pool when the count reaches 0. The legacy
    /// [`FrameAllocator::free`] path is equivalent to releasing a count-1
    /// frame. A count of 0 means "not allocated".
    pub(crate) refcounts: Vec<u32>,
    pub(crate) total: u32,
    pub(crate) allocated: u32,
    /// High-water mark of simultaneously allocated frames.
    pub(crate) peak: u32,
    /// Total `alloc` calls, successful or not (the fault-injection clock).
    pub(crate) alloc_calls: u64,
    /// Absolute call number at which the next injected failure fires.
    pub(crate) inject_next: Option<u64>,
    /// After the first injected failure, keep failing every N-th call.
    pub(crate) inject_every: Option<u64>,
    /// Failures injected so far.
    pub injected_failures: u64,
}

impl FrameAllocator {
    /// Allocator over frames `1..total` (frame 0 is reserved).
    pub fn new(total: u32) -> FrameAllocator {
        // Fresh frames are handed out in ascending order (recycled frames
        // first, LIFO), which keeps traces readable.
        FrameAllocator {
            free: Vec::new(),
            next_fresh: 1,
            refcounts: vec![0; total as usize],
            total,
            allocated: 0,
            peak: 0,
            alloc_calls: 0,
            inject_next: None,
            inject_every: None,
            injected_failures: 0,
        }
    }

    /// Arrange for the `at`-th allocation from now (1-based) to fail with
    /// [`OutOfFrames`], and — if `every` is set — every `every`-th call
    /// after that. The chaos harness uses this to exercise OOM paths
    /// (two-frame splits, COW, fork, pagetable growth) deterministically.
    pub fn inject_oom(&mut self, at: u64, every: Option<u64>) {
        self.inject_next = Some(self.alloc_calls + at.max(1));
        self.inject_every = every;
    }

    /// Allocate one frame.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when every frame is in use, or when a fault
    /// scheduled via [`FrameAllocator::inject_oom`] is due.
    pub fn alloc(&mut self) -> Result<Frame, OutOfFrames> {
        self.alloc_calls += 1;
        if self.inject_next.is_some_and(|n| self.alloc_calls >= n) {
            self.injected_failures += 1;
            self.inject_next = self.inject_every.map(|e| self.alloc_calls + e.max(1));
            return Err(OutOfFrames);
        }
        let f = match self.free.pop() {
            Some(f) => f,
            None if self.next_fresh < self.total => {
                let f = Frame(self.next_fresh);
                self.next_fresh += 1;
                f
            }
            None => return Err(OutOfFrames),
        };
        self.allocated += 1;
        self.peak = self.peak.max(self.allocated);
        debug_assert_eq!(
            self.refcounts[f.0 as usize], 0,
            "allocator handed out live frame {f}"
        );
        self.refcounts[f.0 as usize] = 1;
        Ok(f)
    }

    /// Total `alloc` calls so far (successful or failed).
    pub fn alloc_calls(&self) -> u64 {
        self.alloc_calls
    }

    /// Return a frame to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if `f` is frame 0 or out of range; double frees are detected in
    /// debug builds only (the check is O(free list)).
    pub fn free(&mut self, f: Frame) {
        assert!(f.0 != 0 && f.0 < self.total, "freeing invalid {f}");
        debug_assert!(f.0 < self.next_fresh, "freeing never-allocated {f}");
        debug_assert!(!self.free.contains(&f), "double free of {f}");
        debug_assert!(
            self.refcounts[f.0 as usize] <= 1,
            "freeing shared frame {f} (refcount {})",
            self.refcounts[f.0 as usize]
        );
        self.refcounts[f.0 as usize] = 0;
        self.allocated -= 1;
        self.free.push(f);
    }

    /// Bump the reference count of an allocated frame (the frame is now
    /// shared: COW after fork, or a pristine code frame mapped into several
    /// address spaces).
    ///
    /// # Panics
    ///
    /// Panics if `f` is frame 0 or out of range; retaining a frame that is
    /// not currently allocated is caught in debug builds.
    pub fn retain(&mut self, f: Frame) {
        assert!(f.0 != 0 && f.0 < self.total, "retaining invalid {f}");
        debug_assert!(
            self.refcounts[f.0 as usize] > 0,
            "retaining unallocated {f}"
        );
        self.refcounts[f.0 as usize] += 1;
    }

    /// Drop one reference to `f`. Returns `true` — and recycles the frame
    /// onto the free list — when this was the last reference.
    ///
    /// # Panics
    ///
    /// Panics if `f` is frame 0 or out of range. Releasing a frame whose
    /// count is already 0 (a double free / refcount underflow) is caught in
    /// debug builds; release builds tolerate it and return `false` so a
    /// long-running sweep degrades instead of corrupting the free list.
    pub fn release(&mut self, f: Frame) -> bool {
        assert!(f.0 != 0 && f.0 < self.total, "releasing invalid {f}");
        let rc = &mut self.refcounts[f.0 as usize];
        debug_assert!(*rc > 0, "refcount underflow on {f}");
        if *rc == 0 {
            return false;
        }
        *rc -= 1;
        if *rc > 0 {
            return false;
        }
        debug_assert!(f.0 < self.next_fresh, "freeing never-allocated {f}");
        debug_assert!(!self.free.contains(&f), "double free of {f}");
        self.allocated -= 1;
        self.free.push(f);
        true
    }

    /// Current reference count of `f` (0 when free or out of range).
    pub fn refcount(&self, f: Frame) -> u32 {
        self.refcounts.get(f.0 as usize).copied().unwrap_or(0)
    }

    /// Number of frames currently free.
    pub fn free_count(&self) -> u32 {
        self.free.len() as u32 + (self.total - self.next_fresh)
    }

    /// Number of frames currently allocated.
    pub fn allocated_count(&self) -> u32 {
        self.allocated
    }

    /// High-water mark of simultaneously allocated frames (memory-overhead
    /// measurements in the evaluation use this).
    pub fn peak_allocated(&self) -> u32 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_roundtrip() {
        let mut m = PhysMemory::new(4);
        m.write_u32(100, 0xdead_beef);
        assert_eq!(m.read_u32(100), 0xdead_beef);
        assert_eq!(m.read_u8(100), 0xef); // little-endian
        m.write_u8(103, 0x01);
        assert_eq!(m.read_u32(100), 0x01ad_beef);
    }

    #[test]
    fn unaligned_word_access() {
        let mut m = PhysMemory::new(1);
        m.write_u32(1, 0x11223344);
        assert_eq!(m.read_u32(1), 0x11223344);
    }

    #[test]
    fn bulk_copy() {
        let mut m = PhysMemory::new(4);
        m.write(4096, b"hello");
        let mut buf = [0u8; 5];
        m.read(4096, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn frame_versions_track_every_write_path() {
        let mut m = PhysMemory::new(4);
        assert_eq!(m.frame_version(1), 0);
        m.write_u8(Frame(1).base(), 7);
        assert_eq!(m.frame_version(1), 1);
        m.write_u32(Frame(1).base() + 8, 0xdead_beef);
        assert_eq!(m.frame_version(1), 2);
        // A word write straddling a frame boundary bumps both frames.
        m.write_u32(Frame(2).base() - 2, 0x1122_3344);
        assert_eq!(m.frame_version(1), 3);
        assert_eq!(m.frame_version(2), 1);
        // Bulk writes bump every frame they touch; reads bump none.
        m.write(Frame(1).base() + PAGE_SIZE - 4, &[0u8; 8]);
        assert_eq!(m.frame_version(1), 4);
        assert_eq!(m.frame_version(2), 2);
        let mut buf = [0u8; 16];
        m.read(Frame(1).base(), &mut buf);
        assert_eq!(m.read_u8(Frame(1).base()), 7);
        assert_eq!(m.frame_version(1), 4);
        // Frame-granularity ops.
        m.zero_frame(Frame(3));
        m.fill_frame(Frame(3), 0xAA);
        m.copy_frame(Frame(3), Frame(2));
        assert_eq!(m.frame_version(3), 2);
        assert_eq!(m.frame_version(2), 3);
    }

    #[test]
    fn frame_ops() {
        let mut m = PhysMemory::new(4);
        m.fill_frame(Frame(1), 0xAA);
        m.copy_frame(Frame(1), Frame(2));
        assert_eq!(m.read_u8(Frame(2).base() + 123), 0xAA);
        m.zero_frame(Frame(2));
        assert_eq!(m.read_u8(Frame(2).base() + 123), 0);
        assert_eq!(m.read_u8(Frame(1).base() + 123), 0xAA);
    }

    #[test]
    fn allocator_never_hands_out_frame_zero_and_tracks_peak() {
        let mut a = FrameAllocator::new(4); // frames 1,2,3 available
        let mut got = Vec::new();
        while let Ok(f) = a.alloc() {
            assert_ne!(f.0, 0);
            got.push(f);
        }
        assert_eq!(got.len(), 3);
        assert_eq!(a.peak_allocated(), 3);
        for f in got {
            a.free(f);
        }
        assert_eq!(a.free_count(), 3);
        assert_eq!(a.allocated_count(), 0);
        assert_eq!(a.peak_allocated(), 3);
    }

    #[test]
    fn allocator_reuses_freed_frames() {
        let mut a = FrameAllocator::new(3);
        let f1 = a.alloc().unwrap();
        a.free(f1);
        let again = a.alloc().unwrap();
        assert_eq!(again, f1);
    }

    #[test]
    fn injected_oom_fires_at_the_kth_call_then_periodically() {
        let mut a = FrameAllocator::new(64);
        a.inject_oom(3, Some(2));
        assert!(a.alloc().is_ok()); // call 1
        assert!(a.alloc().is_ok()); // call 2
        assert!(a.alloc().is_err()); // call 3: injected
        assert!(a.alloc().is_ok()); // call 4
        assert!(a.alloc().is_err()); // call 5: periodic
        assert_eq!(a.injected_failures, 2);
        assert_eq!(a.alloc_calls(), 5);
        // Injected failures never leak frames.
        assert_eq!(a.allocated_count(), 3);
    }

    #[test]
    #[should_panic(expected = "freeing invalid")]
    fn free_frame_zero_panics() {
        let mut a = FrameAllocator::new(3);
        a.free(Frame(0));
    }

    #[test]
    fn refcounts_share_and_release() {
        let mut a = FrameAllocator::new(8);
        let f = a.alloc().unwrap();
        assert_eq!(a.refcount(f), 1);
        a.retain(f);
        a.retain(f);
        assert_eq!(a.refcount(f), 3);
        // Dropping references keeps the frame allocated until the last one.
        assert!(!a.release(f));
        assert!(!a.release(f));
        assert_eq!(a.allocated_count(), 1);
        assert!(a.release(f));
        assert_eq!(a.refcount(f), 0);
        assert_eq!(a.allocated_count(), 0);
        // Recycled LIFO: the released frame comes back first, at count 1.
        let again = a.alloc().unwrap();
        assert_eq!(again, f);
        assert_eq!(a.refcount(again), 1);
    }

    #[test]
    fn refcount_of_free_or_out_of_range_frame_is_zero() {
        let a = FrameAllocator::new(4);
        assert_eq!(a.refcount(Frame(1)), 0);
        assert_eq!(a.refcount(Frame(999)), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn release_underflow_is_caught_in_debug() {
        // Regression for the recycled-LIFO double-free hazard: releasing a
        // frame past zero must trip the debug assertion instead of pushing
        // the frame onto the free list twice.
        let mut a = FrameAllocator::new(4);
        let f = a.alloc().unwrap();
        assert!(a.release(f));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.release(f)));
        assert!(r.is_err(), "refcount underflow must panic in debug builds");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "freeing shared frame")]
    fn legacy_free_of_shared_frame_panics_in_debug() {
        let mut a = FrameAllocator::new(4);
        let f = a.alloc().unwrap();
        a.retain(f);
        a.free(f);
    }
}
