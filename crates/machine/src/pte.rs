//! Pagetable entry layout and virtual-address arithmetic.
//!
//! The simulated MMU uses a classic two-level x86 scheme: a 32-bit virtual
//! address is split into a 10-bit directory index, a 10-bit table index and a
//! 12-bit page offset. Pagetable entries are 32-bit words stored in simulated
//! physical memory and read by the hardware walker in
//! [`crate::machine::Machine::translate`].
//!
//! Besides the architectural bits (present / writable / user / accessed /
//! dirty) the layout reserves the "available to software" bits that the
//! operating system uses, mirroring the paper's implementation:
//!
//! * [`COW`] marks a copy-on-write page (Linux-style `fork` support, paper
//!   §5.4),
//! * [`SPLIT`] is the "previously unused bit ... used to signify that the
//!   page is being split" (paper §5.1),
//! * [`NX`] simulates the execute-disable bit for the hardware-assisted
//!   baseline and combined modes (paper §2, §6.2). On real IA-32 this lives
//!   in bit 63 of a PAE entry; the simulator keeps everything in one word.

use std::fmt;

/// Size of one page / physical frame in bytes.
pub const PAGE_SIZE: u32 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Number of entries in a page directory or page table.
pub const ENTRIES_PER_TABLE: u32 = 1024;

/// Entry is present; translations through a non-present entry raise `#PF`.
pub const PRESENT: u32 = 1 << 0;
/// Entry permits writes (user-mode writes; the simulated kernel, like a
/// pre-`CR0.WP` x86 kernel, may write through read-only entries).
pub const WRITABLE: u32 = 1 << 1;
/// Entry permits user-mode (CPL 3) access. A cleared bit means
/// *supervisor-only*: this is the restriction bit that split memory flips.
pub const USER: u32 = 1 << 2;
/// Set by the hardware walker whenever the entry is used for a translation.
pub const ACCESSED: u32 = 1 << 3;
/// Set by the hardware walker when the translation is used for a write.
pub const DIRTY: u32 = 1 << 4;
/// Software: page is copy-on-write (write faults are resolved by copying).
pub const COW: u32 = 1 << 5;
/// Software: page is split into separate code and data frames.
pub const SPLIT: u32 = 1 << 6;
/// Simulated execute-disable: instruction fetches through this entry fault
/// when [`crate::MachineConfig::nx_enabled`] is true.
pub const NX: u32 = 1 << 7;

/// Mask covering the physical frame number bits of an entry.
pub const PFN_MASK: u32 = 0xFFFF_F000;
/// Mask covering all flag bits of an entry.
pub const FLAGS_MASK: u32 = !PFN_MASK;

/// A physical frame number, newtyped so frames and addresses cannot be mixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Frame(pub u32);

impl Frame {
    /// Physical byte address of the first byte of the frame.
    #[inline]
    pub fn base(self) -> u32 {
        self.0 << PAGE_SHIFT
    }

    /// Frame containing the given physical address.
    #[inline]
    pub fn containing(paddr: u32) -> Frame {
        Frame(paddr >> PAGE_SHIFT)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame#{:#x}", self.0)
    }
}

/// Build a pagetable entry from a frame and flag bits.
///
/// # Panics
///
/// Panics (debug builds) if `flags` has bits outside [`FLAGS_MASK`].
#[inline]
pub fn make(frame: Frame, flags: u32) -> u32 {
    debug_assert_eq!(flags & PFN_MASK, 0, "flags overlap the PFN field");
    (frame.0 << PAGE_SHIFT) | flags
}

/// Frame referenced by an entry.
#[inline]
pub fn frame(entry: u32) -> Frame {
    Frame(entry >> PAGE_SHIFT)
}

/// Flag bits of an entry.
#[inline]
pub fn flags(entry: u32) -> u32 {
    entry & FLAGS_MASK
}

/// Replace the frame of an entry, preserving its flags.
#[inline]
pub fn with_frame(entry: u32, f: Frame) -> u32 {
    (entry & FLAGS_MASK) | (f.0 << PAGE_SHIFT)
}

/// True if `entry & bit` is set for every bit in `bits`.
#[inline]
pub fn has(entry: u32, bits: u32) -> bool {
    entry & bits == bits
}

/// Virtual page number of a virtual address.
#[inline]
pub fn vpn(vaddr: u32) -> u32 {
    vaddr >> PAGE_SHIFT
}

/// First address of the page containing `vaddr`.
#[inline]
pub fn page_base(vaddr: u32) -> u32 {
    vaddr & PFN_MASK
}

/// Offset of `vaddr` within its page.
#[inline]
pub fn page_offset(vaddr: u32) -> u32 {
    vaddr & (PAGE_SIZE - 1)
}

/// Page-directory index (top 10 bits) of a virtual address.
#[inline]
pub fn dir_index(vaddr: u32) -> u32 {
    vaddr >> 22
}

/// Page-table index (middle 10 bits) of a virtual address.
#[inline]
pub fn table_index(vaddr: u32) -> u32 {
    (vaddr >> PAGE_SHIFT) & (ENTRIES_PER_TABLE - 1)
}

/// Round `len` up to a whole number of pages.
#[inline]
pub fn pages_for(len: u32) -> u32 {
    len.div_ceil(PAGE_SIZE)
}

/// Round an address up to the next page boundary (identity on boundaries).
#[inline]
pub fn page_align_up(addr: u32) -> u32 {
    (addr + PAGE_SIZE - 1) & PFN_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_decomposition() {
        let v = 0xdead_beef_u32;
        assert_eq!(dir_index(v), 0xdead_beef >> 22);
        assert_eq!(table_index(v), (0xdead_beef >> 12) & 0x3ff);
        assert_eq!(page_offset(v), 0xeef);
        assert_eq!(page_base(v), 0xdead_b000);
        assert_eq!(vpn(v), 0x000d_eadb);
        // Recompose.
        assert_eq!(
            (dir_index(v) << 22) | (table_index(v) << 12) | page_offset(v),
            v
        );
    }

    #[test]
    fn entry_roundtrip() {
        let e = make(Frame(0x1234), PRESENT | USER | SPLIT);
        assert_eq!(frame(e), Frame(0x1234));
        assert_eq!(flags(e), PRESENT | USER | SPLIT);
        assert!(has(e, PRESENT));
        assert!(has(e, PRESENT | SPLIT));
        assert!(!has(e, WRITABLE));
    }

    #[test]
    fn with_frame_preserves_flags() {
        let e = make(Frame(1), PRESENT | WRITABLE | COW);
        let e2 = with_frame(e, Frame(99));
        assert_eq!(frame(e2), Frame(99));
        assert_eq!(flags(e2), PRESENT | WRITABLE | COW);
    }

    #[test]
    fn frame_base_and_containing() {
        assert_eq!(Frame(2).base(), 8192);
        assert_eq!(Frame::containing(8191), Frame(1));
        assert_eq!(Frame::containing(8192), Frame(2));
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(page_align_up(0), 0);
        assert_eq!(page_align_up(1), 4096);
        assert_eq!(page_align_up(4096), 4096);
    }

    // The overlap check is a debug_assert, compiled out of release
    // builds, so only expect the panic where it exists.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "flags overlap")]
    fn make_rejects_pfn_bits_in_flags() {
        let _ = make(Frame(1), 0x1000);
    }
}
