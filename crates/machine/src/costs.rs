//! Deterministic cycle cost model.
//!
//! The paper's evaluation reports *relative* slowdowns on a Pentium III
//! testbed; the interesting quantities are event counts (TLB misses, page
//! faults, single-step reloads, context-switch flushes) multiplied by their
//! approximate costs. The simulator therefore charges a configurable number
//! of cycles per event and the benchmark harness reports ratios of total
//! cycles, which reproduces the paper's *shapes* without host-timing noise.
//!
//! The defaults are loosely calibrated to P6-era microarchitecture folklore:
//! a hardware pagetable walk costs tens of cycles, a trap into the kernel and
//! back costs low hundreds, and the split-memory instruction-TLB reload —
//! two traps plus handler work (paper §4.6) — costs several hundred.

/// Cycle prices for every hardware and kernel-software event the simulator
/// charges for. All fields are public so experiments can run sensitivity
/// sweeps (the ablation benches do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleCosts {
    /// Base cost of executing one instruction.
    pub insn: u64,
    /// Hardware pagetable walk performed on a TLB miss.
    pub tlb_walk: u64,
    /// Hardware exception delivery + eventual return (one trap).
    pub exception: u64,
    /// `int`-based system call entry/exit plus dispatch.
    pub syscall: u64,
    /// CR3 load (the TLB flush itself; refills are charged as they happen).
    pub cr3_load: u64,
    /// Single-page TLB invalidation (`invlpg`).
    pub invlpg: u64,
    /// Software cost of the generic page-fault handler path.
    pub pf_handler: u64,
    /// Extra software cost of the split-memory data-TLB reload
    /// (unrestrict PTE, touch byte, restrict — Algorithm 1 lines 7–11).
    pub split_data_reload: u64,
    /// Extra software cost of the split-memory instruction-TLB reload
    /// (unrestrict, set trap flag, restart — Algorithm 1 lines 2–5).
    /// The second trap is charged separately via [`CycleCosts::exception`] +
    /// [`CycleCosts::debug_handler`].
    pub split_code_reload: u64,
    /// Software cost of the debug-interrupt handler (Algorithm 2).
    pub debug_handler: u64,
    /// Software cost of demand-paging in a fresh zeroed page.
    pub demand_page: u64,
    /// Software cost of a copy-on-write break (allocate + copy one frame).
    pub cow_copy: u64,
    /// Scheduler + register save/restore cost of a context switch
    /// (the CR3 load and subsequent TLB refills are charged on top).
    pub context_switch: u64,
    /// Per-byte cost of kernel copies between user and kernel space.
    pub copy_byte: u64,
    /// Software cost of one kernel-performed TLB fill on a
    /// software-loaded-TLB architecture (paper §4.7). The miss trap itself
    /// is charged separately (and such architectures use a lightweight
    /// dedicated trap vector — see the §4.7 experiment's cost table).
    pub soft_tlb_fill: u64,
    /// Cache-coherency penalty for writing to a page that is (or is about
    /// to be) executed — the cost that made the paper's experimental
    /// `ret`-based instruction-TLB loader *slower* than single-stepping
    /// (§4.2.4: "the processor invalidates the memory caches corresponding
    /// to that page, and also invalidates any portions of the instruction
    /// pipeline").
    pub icache_flush: u64,
}

impl Default for CycleCosts {
    fn default() -> CycleCosts {
        CycleCosts {
            insn: 1,
            tlb_walk: 24,
            exception: 140,
            syscall: 120,
            cr3_load: 36,
            invlpg: 12,
            pf_handler: 180,
            split_data_reload: 90,
            split_code_reload: 130,
            debug_handler: 80,
            demand_page: 420,
            cow_copy: 540,
            context_switch: 460,
            copy_byte: 1,
            icache_flush: 420,
            soft_tlb_fill: 40,
        }
    }
}

impl CycleCosts {
    /// Total price of one split-memory data-TLB reload event: the fault trap,
    /// the generic PF entry and the reload work.
    pub fn data_reload_total(&self) -> u64 {
        self.exception + self.pf_handler + self.split_data_reload
    }

    /// Total price of one split-memory instruction-TLB reload event: a page
    /// fault trap, the reload work, then a debug trap and its handler.
    pub fn code_reload_total(&self) -> u64 {
        self.exception
            + self.pf_handler
            + self.split_code_reload
            + self.exception
            + self.debug_handler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_nonzero_and_ordered() {
        let c = CycleCosts::default();
        assert!(c.insn >= 1);
        assert!(c.tlb_walk > c.insn);
        assert!(c.exception > c.tlb_walk);
        // The paper's §4.6: instruction-TLB loads are the expensive path
        // because they need two interrupts.
        assert!(c.code_reload_total() > c.data_reload_total());
    }

    #[test]
    fn reload_totals_compose() {
        let c = CycleCosts::default();
        assert_eq!(
            c.data_reload_total(),
            c.exception + c.pf_handler + c.split_data_reload
        );
        assert_eq!(
            c.code_reload_total(),
            2 * c.exception + c.pf_handler + c.split_code_reload + c.debug_handler
        );
    }
}
