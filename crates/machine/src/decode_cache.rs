//! Per-code-frame decoded-instruction cache.
//!
//! [`Machine::step`](crate::Machine::step) normally re-decodes every
//! instruction byte-by-byte through the I-TLB on every retire. This cache
//! keys completed [`Decoded`] results by **(physical frame, page offset)**
//! so a hot loop decodes each instruction once and then replays the cached
//! result.
//!
//! # Coherence
//!
//! Correctness rests on one rule: *any write to a physical frame must
//! invalidate that frame's cached decodes*. Rather than coupling every
//! write path to the cache, [`PhysMemory`](crate::phys::PhysMemory) keeps a
//! per-frame write-generation counter and the cache snapshots it when it
//! first caches decodes from a frame. A lookup that observes a newer
//! generation drops the frame's decodes lazily (counted as an
//! *invalidation*). This mirrors the paper's split-memory semantics:
//! under split memory, instruction fetches target the **code frame** while
//! injected writes land in the **data frame**, so an attack write never
//! perturbs the decode cache — a code-frame invalidation during a
//! data-frame attack would itself be evidence the split leaked (see
//! `sm-core`'s invariant checker).
//!
//! # Transparency
//!
//! The cache must not change the modeled machine. The fetch path always
//! performs the byte-1 I-TLB translation (walks, page faults, A/D-bit
//! updates, LRU recency and `tlb_walk` charges are identical with the cache
//! on or off), and instructions whose encoding crosses a page boundary are
//! never cached (their continuation bytes translate through a *different*
//! page whose mapping can change independently). A proptest in
//! `tests/decode_cache_props.rs` runs arbitrary programs both ways and
//! requires identical [`MachineStats`](crate::stats::MachineStats), cycles
//! and final machine state. Cache effectiveness counters therefore live in
//! [`DecodeCacheStats`], *outside* `MachineStats`.

use crate::isa::Decoded;
use crate::pte::PAGE_SIZE;

/// One cached decode: the outcome plus the number of bytes the decoder
/// consumed (for `Decoded::Invalid` this is how far the decoder got before
/// rejecting, which the fetch path needs to reproduce the uncached cursor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedDecode {
    /// Decoder outcome (instruction or invalid opcode).
    pub decoded: Decoded,
    /// Bytes consumed from the fetch stream.
    pub len: u8,
}

/// Cache-effectiveness counters. Deliberately **not** part of
/// [`MachineStats`](crate::stats::MachineStats): the cache is transparent
/// to the modeled machine, and keeping these separate lets the
/// equivalence proptest compare `MachineStats` for equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the byte-by-byte decoder.
    pub misses: u64,
    /// Frames whose cached decodes were dropped because the frame was
    /// written (version mismatch observed on lookup).
    pub invalidations: u64,
}

/// Decodes cached for one physical frame.
struct FrameDecodes {
    /// [`PhysMemory::frame_version`](crate::phys::PhysMemory::frame_version)
    /// observed when these entries were cached. A mismatch on lookup means
    /// the frame has been written since: every entry is stale.
    version: u64,
    /// Occupied slots in `entries`. Lets the coherence checker stop
    /// scanning a frame as soon as it has visited every cached decode
    /// (code clusters at low offsets, so the scan usually ends early).
    used: u32,
    /// One slot per byte offset an instruction can start at.
    entries: Vec<Option<CachedDecode>>,
}

impl FrameDecodes {
    fn new(version: u64) -> FrameDecodes {
        FrameDecodes {
            version,
            used: 0,
            entries: vec![None; PAGE_SIZE as usize],
        }
    }

    fn clear(&mut self, version: u64) {
        self.entries.iter_mut().for_each(|e| *e = None);
        self.version = version;
        self.used = 0;
    }
}

/// Decoded-instruction cache over all physical frames; one lives in every
/// [`Machine`](crate::Machine) (enabled via
/// [`MachineConfig::decode_cache`](crate::MachineConfig::decode_cache)).
pub struct DecodeCache {
    /// Indexed by PFN; a frame gets a table lazily on its first cached
    /// decode (~128 KiB per frame that ever executes code).
    frames: Vec<Option<Box<FrameDecodes>>>,
    /// Effectiveness counters.
    pub stats: DecodeCacheStats,
}

impl DecodeCache {
    /// Empty cache over `frames` physical frames.
    pub fn new(frames: u32) -> DecodeCache {
        DecodeCache {
            frames: (0..frames).map(|_| None).collect(),
            stats: DecodeCacheStats::default(),
        }
    }

    /// Cached decode at (`pfn`, `off`), if the frame's decodes were cached
    /// at write-generation `version`. Observing a different generation
    /// drops the frame's decodes (the lazy invalidation path) and counts an
    /// invalidation; both that and a plain absence count a miss.
    #[inline]
    pub fn lookup(&mut self, pfn: u32, off: u32, version: u64) -> Option<CachedDecode> {
        let slot = match self.frames[pfn as usize].as_deref_mut() {
            Some(fd) => {
                if fd.version != version {
                    fd.clear(version);
                    self.stats.invalidations += 1;
                    None
                } else {
                    fd.entries[off as usize]
                }
            }
            None => None,
        };
        match slot {
            Some(_) => self.stats.hits += 1,
            None => self.stats.misses += 1,
        }
        slot
    }

    /// Cache a decode at (`pfn`, `off`) observed at write-generation
    /// `version`. The caller guarantees the encoding lies entirely within
    /// the frame (page-crossing instructions are never cached).
    pub fn insert(&mut self, pfn: u32, off: u32, version: u64, c: CachedDecode) {
        debug_assert!(off + c.len.max(1) as u32 <= PAGE_SIZE);
        let fd =
            self.frames[pfn as usize].get_or_insert_with(|| Box::new(FrameDecodes::new(version)));
        if fd.version != version {
            // The frame was written between this entry's lookup-miss and
            // now (e.g. the byte-1 walk set A/D bits in a pagetable that
            // shares the frame). Restart the table at the new generation.
            fd.clear(version);
        }
        if fd.entries[off as usize].is_none() {
            fd.used += 1;
        }
        fd.entries[off as usize] = Some(c);
    }

    /// Iterate the per-frame tables as `(pfn, snapshot_version,
    /// occupied_count, entries)` — the coherence-invariant checker in
    /// `sm-core` skips stale tables by version without touching their
    /// entries, and `occupied_count` lets it stop scanning a live table as
    /// soon as every cached decode has been visited.
    pub fn iter_frames(&self) -> impl Iterator<Item = (u32, u64, u32, &[Option<CachedDecode>])> {
        self.frames.iter().enumerate().filter_map(|(pfn, fd)| {
            fd.as_deref()
                .map(|fd| (pfn as u32, fd.version, fd.used, fd.entries.as_slice()))
        })
    }

    /// Iterate every cached decode as `(pfn, snapshot_version, off, entry)`.
    pub fn iter_cached(&self) -> impl Iterator<Item = (u32, u64, u32, CachedDecode)> + '_ {
        self.iter_frames().flat_map(|(pfn, version, _, entries)| {
            entries
                .iter()
                .enumerate()
                .filter_map(move |(off, e)| e.map(|c| (pfn, version, off as u32, c)))
        })
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodeCache")
            .field(
                "frames_cached",
                &self.frames.iter().filter(|f| f.is_some()).count(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Insn;

    fn nop(len: u8) -> CachedDecode {
        CachedDecode {
            decoded: Decoded::Insn {
                insn: Insn::Nop,
                len,
            },
            len,
        }
    }

    #[test]
    fn miss_insert_hit() {
        let mut c = DecodeCache::new(4);
        assert_eq!(c.lookup(2, 100, 0), None);
        c.insert(2, 100, 0, nop(1));
        assert_eq!(c.lookup(2, 100, 0), Some(nop(1)));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.invalidations, 0);
    }

    #[test]
    fn version_mismatch_invalidates_whole_frame() {
        let mut c = DecodeCache::new(4);
        c.insert(1, 0, 7, nop(1));
        c.insert(1, 1, 7, nop(2));
        // Same generation: both hit.
        assert!(c.lookup(1, 0, 7).is_some());
        // Newer generation: everything cached for frame 1 is stale.
        assert_eq!(c.lookup(1, 1, 8), None);
        assert_eq!(c.stats.invalidations, 1);
        assert_eq!(c.lookup(1, 0, 8), None);
        assert_eq!(c.stats.invalidations, 1, "already reset; no double count");
    }

    #[test]
    fn frames_are_independent() {
        let mut c = DecodeCache::new(4);
        c.insert(1, 5, 0, nop(1));
        c.insert(3, 5, 9, nop(3));
        assert!(c.lookup(1, 5, 0).is_some());
        assert!(c.lookup(3, 5, 9).is_some());
        // Invalidate frame 3 only.
        assert!(c.lookup(3, 5, 10).is_none());
        assert!(c.lookup(1, 5, 0).is_some());
        let cached: Vec<_> = c.iter_cached().collect();
        assert_eq!(cached, vec![(1, 0, 5, nop(1))]);
    }

    #[test]
    fn insert_at_newer_version_restarts_table() {
        let mut c = DecodeCache::new(2);
        c.insert(1, 0, 0, nop(1));
        c.insert(1, 9, 2, nop(2));
        assert_eq!(c.lookup(1, 0, 2), None, "older entry dropped");
        assert_eq!(c.lookup(1, 9, 2), Some(nop(2)));
    }
}
