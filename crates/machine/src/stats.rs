//! Machine-level event counters.
//!
//! TLB-specific counters live on each [`crate::tlb::Tlb`]; this struct counts
//! whole-machine events. The benchmark harness diffs snapshots of these
//! counters around a workload to attribute overhead (e.g. "how many
//! instruction-TLB reloads did this Apache run take?").

/// Counters maintained by [`crate::Machine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Instructions retired (faulting instructions are counted when they
    /// eventually complete, not per attempt).
    pub instructions: u64,
    /// Hardware pagetable walks (i.e. TLB misses that went to memory).
    pub walks: u64,
    /// Page faults raised.
    pub page_faults: u64,
    /// Invalid-opcode (`#UD`) exceptions raised.
    pub invalid_opcodes: u64,
    /// Debug (`#DB`) single-step traps delivered.
    pub debug_traps: u64,
    /// Divide-error (`#DE`) exceptions raised.
    pub divide_errors: u64,
    /// Software interrupts executed (`int n`).
    pub syscalls: u64,
    /// CR3 loads (each flushes both TLBs).
    pub cr3_loads: u64,
    /// `invlpg` executions.
    pub invlpgs: u64,
}

impl MachineStats {
    /// Field-wise difference `self - earlier`; use with a snapshot taken
    /// before a measured region. Saturating: a snapshot taken from a
    /// *different* (or reset) machine yields zeros for regressed fields
    /// rather than a debug panic / release wrap-around, so harness code
    /// diffing across process teardown never reports 2^64-ish counts.
    pub fn since(&self, earlier: &MachineStats) -> MachineStats {
        MachineStats {
            instructions: self.instructions.saturating_sub(earlier.instructions),
            walks: self.walks.saturating_sub(earlier.walks),
            page_faults: self.page_faults.saturating_sub(earlier.page_faults),
            invalid_opcodes: self.invalid_opcodes.saturating_sub(earlier.invalid_opcodes),
            debug_traps: self.debug_traps.saturating_sub(earlier.debug_traps),
            divide_errors: self.divide_errors.saturating_sub(earlier.divide_errors),
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            cr3_loads: self.cr3_loads.saturating_sub(earlier.cr3_loads),
            invlpgs: self.invlpgs.saturating_sub(earlier.invlpgs),
        }
    }

    /// Field-wise saturating accumulation of a [`since`](Self::since)
    /// delta, the inverse operation: summing each segment's delta onto the
    /// first segment's baseline reconstructs the end-of-run totals.
    pub fn absorb(&mut self, delta: &MachineStats) {
        self.instructions = self.instructions.saturating_add(delta.instructions);
        self.walks = self.walks.saturating_add(delta.walks);
        self.page_faults = self.page_faults.saturating_add(delta.page_faults);
        self.invalid_opcodes = self.invalid_opcodes.saturating_add(delta.invalid_opcodes);
        self.debug_traps = self.debug_traps.saturating_add(delta.debug_traps);
        self.divide_errors = self.divide_errors.saturating_add(delta.divide_errors);
        self.syscalls = self.syscalls.saturating_add(delta.syscalls);
        self.cr3_loads = self.cr3_loads.saturating_add(delta.cr3_loads);
        self.invlpgs = self.invlpgs.saturating_add(delta.invlpgs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_fieldwise() {
        let early = MachineStats {
            instructions: 10,
            walks: 1,
            ..MachineStats::default()
        };
        let late = MachineStats {
            instructions: 25,
            walks: 4,
            page_faults: 2,
            ..MachineStats::default()
        };
        let d = late.since(&early);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.walks, 3);
        assert_eq!(d.page_faults, 2);
    }

    #[test]
    fn absorb_inverts_since() {
        let early = MachineStats {
            instructions: 10,
            walks: 1,
            syscalls: 3,
            ..MachineStats::default()
        };
        let late = MachineStats {
            instructions: 25,
            walks: 4,
            page_faults: 2,
            syscalls: 7,
            ..MachineStats::default()
        };
        let mut rebuilt = early;
        rebuilt.absorb(&late.since(&early));
        assert_eq!(rebuilt, late);
    }
}
