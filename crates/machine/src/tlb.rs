//! Translation lookaside buffers.
//!
//! The simulator implements the two properties of real x86 TLBs that the
//! split-memory technique depends on (paper §4.1–4.2):
//!
//! 1. **Split TLBs.** Instruction fetches and data accesses are served by
//!    physically separate buffers. Nothing keeps them coherent: if the
//!    operating system arranges for them to be filled from *different*
//!    pagetable entries, the same virtual page translates to two different
//!    physical frames depending on access type.
//! 2. **Rights are cached at fill time.** A [`TlbEntry`] snapshots the
//!    user/writable/execute-disable bits of the pagetable entry *as they were
//!    when the walker filled the entry*. A later change to the pagetable
//!    (e.g. re-setting the supervisor bit) does **not** affect accesses that
//!    hit the cached entry — this is what lets the fault handler unrestrict a
//!    PTE, touch the page to load the TLB, and restrict it again.
//!
//! Entries are evicted FIFO via a round-robin clock hand, which matches the
//! pessimistic behaviour the paper assumes (any flush or capacity pressure
//! forces a re-walk and hence a fresh page fault on restricted pages).

/// One cached translation, including the rights snapshot taken at fill time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number this entry translates.
    pub vpn: u32,
    /// Physical frame number it maps to.
    pub pfn: u32,
    /// Snapshot of the PTE user bit: user-mode accesses allowed.
    pub user: bool,
    /// Snapshot of the PTE writable bit.
    pub writable: bool,
    /// Snapshot of the simulated execute-disable bit.
    pub nx: bool,
}

/// Running counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed (a hardware pagetable walk follows).
    pub misses: u64,
    /// Entries inserted by the walker.
    pub fills: u64,
    /// Whole-TLB flushes (CR3 loads).
    pub flushes: u64,
    /// Single-page invalidations (`invlpg`).
    pub page_invalidations: u64,
    /// Valid entries discarded to make room for a new fill.
    pub evictions: u64,
}

/// A single TLB (the machine instantiates one for instructions and one for
/// data).
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    hand: usize,
    /// Counters; reset with [`TlbStats::default`] assignment if needed.
    pub stats: TlbStats,
}

impl Tlb {
    /// Create a TLB with space for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            entries: vec![None; capacity],
            hand: 0,
            stats: TlbStats::default(),
        }
    }

    /// Number of entry slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Look up a virtual page number, updating hit/miss statistics.
    pub fn lookup(&mut self, vpn: u32) -> Option<TlbEntry> {
        let found = self.peek(vpn);
        if found.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        found
    }

    /// Look up a virtual page number without touching statistics (used by
    /// tests and by the kernel when it inspects — rather than simulates —
    /// TLB state).
    pub fn peek(&self, vpn: u32) -> Option<TlbEntry> {
        self.entries
            .iter()
            .flatten()
            .find(|e| e.vpn == vpn)
            .copied()
    }

    /// Insert an entry, replacing any existing entry for the same page and
    /// otherwise evicting FIFO.
    pub fn fill(&mut self, entry: TlbEntry) {
        self.stats.fills += 1;
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|s| matches!(s, Some(e) if e.vpn == entry.vpn))
        {
            *slot = Some(entry);
            return;
        }
        if let Some(free) = self.entries.iter_mut().find(|s| s.is_none()) {
            *free = Some(entry);
            return;
        }
        self.stats.evictions += 1;
        self.entries[self.hand] = Some(entry);
        self.hand = (self.hand + 1) % self.entries.len();
    }

    /// Drop every entry (a CR3 load — e.g. a context switch — does this).
    pub fn flush_all(&mut self) {
        self.stats.flushes += 1;
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// Drop any entry for `vpn` (`invlpg`). Returns whether one was present.
    pub fn flush_page(&mut self, vpn: u32) -> bool {
        self.stats.page_invalidations += 1;
        self.drop_entry(vpn)
    }

    /// Drop any entry for `vpn` without counting it as a software
    /// invalidation (hardware-initiated eviction on a rights violation).
    pub fn drop_entry(&mut self, vpn: u32) -> bool {
        let mut dropped = false;
        for slot in &mut self.entries {
            if matches!(slot, Some(e) if e.vpn == vpn) {
                *slot = None;
                dropped = true;
            }
        }
        dropped
    }

    /// Evict one valid entry chosen by `draw` (any u64; reduced modulo the
    /// current occupancy), counting it as a capacity eviction. Returns the
    /// evicted entry's vpn, or `None` if the TLB is empty. Used by the
    /// chaos harness to model seeded capacity pressure.
    pub fn evict_one(&mut self, draw: u64) -> Option<u32> {
        let valid: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.is_some().then_some(i))
            .collect();
        if valid.is_empty() {
            return None;
        }
        let idx = valid[(draw % valid.len() as u64) as usize];
        let vpn = self.entries[idx].take().map(|e| e.vpn);
        self.stats.evictions += 1;
        vpn
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// True if no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the valid entries (diagnostics / assertions in tests).
    pub fn iter(&self) -> impl Iterator<Item = &TlbEntry> {
        self.entries.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u32, pfn: u32) -> TlbEntry {
        TlbEntry {
            vpn,
            pfn,
            user: true,
            writable: true,
            nx: false,
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut t = Tlb::new(4);
        t.fill(entry(7, 42));
        assert_eq!(t.lookup(7).unwrap().pfn, 42);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 0);
    }

    #[test]
    fn miss_is_counted() {
        let mut t = Tlb::new(4);
        assert!(t.lookup(9).is_none());
        assert_eq!(t.stats.misses, 1);
    }

    #[test]
    fn refill_same_page_replaces_in_place() {
        let mut t = Tlb::new(2);
        t.fill(entry(1, 10));
        t.fill(entry(1, 20));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(1).unwrap().pfn, 20);
    }

    #[test]
    fn rights_snapshot_is_what_was_filled() {
        // The core of the split-memory trick: the entry keeps the rights it
        // was filled with even if "the pagetable" would now disagree.
        let mut t = Tlb::new(4);
        t.fill(TlbEntry {
            vpn: 5,
            pfn: 50,
            user: true,
            writable: false,
            nx: false,
        });
        let e = t.lookup(5).unwrap();
        assert!(e.user);
        assert!(!e.writable);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut t = Tlb::new(2);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        t.fill(entry(3, 3)); // evicts vpn 1 (first slot, clock hand 0)
        assert!(t.peek(1).is_none());
        assert!(t.peek(2).is_some());
        assert!(t.peek(3).is_some());
        assert_eq!(t.stats.evictions, 1);
    }

    #[test]
    fn flush_all_clears_and_counts() {
        let mut t = Tlb::new(4);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.stats.flushes, 1);
    }

    #[test]
    fn evict_one_is_seeded_and_bounded() {
        let mut t = Tlb::new(4);
        assert!(t.evict_one(99).is_none());
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        let vpn = t.evict_one(1).unwrap();
        assert!(vpn == 1 || vpn == 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats.evictions, 1);
        t.evict_one(0).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn flush_page_only_drops_target() {
        let mut t = Tlb::new(4);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        assert!(t.flush_page(1));
        assert!(!t.flush_page(1)); // already gone
        assert!(t.peek(2).is_some());
    }
}
