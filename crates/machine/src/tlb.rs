//! Translation lookaside buffers.
//!
//! The simulator implements the two properties of real x86 TLBs that the
//! split-memory technique depends on (paper §4.1–4.2):
//!
//! 1. **Split TLBs.** Instruction fetches and data accesses are served by
//!    physically separate buffers. Nothing keeps them coherent: if the
//!    operating system arranges for them to be filled from *different*
//!    pagetable entries, the same virtual page translates to two different
//!    physical frames depending on access type.
//! 2. **Rights are cached at fill time.** A [`TlbEntry`] snapshots the
//!    user/writable/execute-disable bits of the pagetable entry *as they were
//!    when the walker filled the entry*. A later change to the pagetable
//!    (e.g. re-setting the supervisor bit) does **not** affect accesses that
//!    hit the cached entry — this is what lets the fault handler unrestrict a
//!    PTE, touch the page to load the TLB, and restrict it again.
//!
//! The buffer is **set-associative** with true per-set LRU replacement,
//! matching the split-TLB hardware the paper's testbed actually has (a
//! Pentium III: 32-entry 4-way instruction TLB, 64-entry 4-way data TLB —
//! see [`TlbPreset::pentium3`]). The set index is the low bits of the
//! virtual page number, as on real hardware. A [`TlbGeometry`] of one set
//! degenerates to a fully-associative LRU buffer
//! ([`TlbGeometry::fully_associative`]), the backward-compatible default.
//!
//! Misses are classified into the classic three Cs against a *shadow*
//! fully-associative LRU model of the same total capacity, fed the same
//! access and invalidation stream: **cold** (page never filled before),
//! **conflict** (the shadow would have hit — only set pressure evicted it)
//! and **capacity** (the shadow missed too). With one set the model *is*
//! its own shadow, so conflict misses are structurally zero there.
//! Chaos-harness evictions ([`Tlb::evict_one`]) are counted in
//! [`TlbStats::chaos_evictions`], never in [`TlbStats::evictions`], so
//! fault injection cannot masquerade as genuine capacity pressure.

use std::collections::HashSet;

/// Shape of one TLB: `sets × ways` entries, set index = low VPN bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Number of sets (must be a power of two so the set index is a bit
    /// mask of the VPN, as on real hardware).
    pub sets: usize,
    /// Entries per set.
    pub ways: usize,
}

impl TlbGeometry {
    /// A `sets × ways` geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> TlbGeometry {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "TLB set count must be a nonzero power of two, got {sets}"
        );
        assert!(ways > 0, "TLB way count must be non-zero");
        TlbGeometry { sets, ways }
    }

    /// One set holding `n` ways: a fully-associative LRU buffer (the
    /// backward-compatible shape of the pre-set-associative model).
    pub fn fully_associative(n: usize) -> TlbGeometry {
        TlbGeometry::new(1, n)
    }

    /// Total entry count.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// Set index for a virtual page number (low VPN bits).
    #[inline]
    pub fn set_of(&self, vpn: u32) -> usize {
        vpn as usize & (self.sets - 1)
    }
}

/// Geometry for the machine's I-TLB/D-TLB pair, with presets for the
/// hardware configurations the paper discusses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbPreset {
    /// Instruction-TLB geometry.
    pub itlb: TlbGeometry,
    /// Data-TLB geometry.
    pub dtlb: TlbGeometry,
}

impl TlbPreset {
    /// Both TLBs fully associative with `n` entries (the shape every
    /// experiment ran with before set-associativity existed).
    pub fn fully_associative(n: usize) -> TlbPreset {
        TlbPreset {
            itlb: TlbGeometry::fully_associative(n),
            dtlb: TlbGeometry::fully_associative(n),
        }
    }

    /// The paper's testbed (§6): a Pentium III with a 32-entry 4-way
    /// instruction TLB and a 64-entry 4-way data TLB.
    pub fn pentium3() -> TlbPreset {
        TlbPreset {
            itlb: TlbGeometry::new(8, 4),
            dtlb: TlbGeometry::new(16, 4),
        }
    }
}

impl Default for TlbPreset {
    fn default() -> TlbPreset {
        TlbPreset::fully_associative(64)
    }
}

/// One cached translation, including the rights snapshot taken at fill time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number this entry translates.
    pub vpn: u32,
    /// Physical frame number it maps to.
    pub pfn: u32,
    /// Address-space identifier stamped at fill time ([`Tlb::set_asid`]).
    /// Always 0 in the default flush-on-switch configuration; in tagged
    /// mode it records which address space the translation belongs to, and
    /// lookups from a different ASID miss instead of aliasing.
    pub asid: u16,
    /// Snapshot of the PTE user bit: user-mode accesses allowed.
    pub user: bool,
    /// Snapshot of the PTE writable bit.
    pub writable: bool,
    /// Snapshot of the simulated execute-disable bit.
    pub nx: bool,
}

/// Running counters for one TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed (a hardware pagetable walk follows). Always
    /// `cold_misses + capacity_misses + conflict_misses`.
    pub misses: u64,
    /// Misses to a page never filled before.
    pub cold_misses: u64,
    /// Misses a fully-associative buffer of the same capacity would also
    /// have taken (includes re-walks forced by flushes/invalidations).
    pub capacity_misses: u64,
    /// Misses only set pressure explains: the shadow fully-associative
    /// model still held the page.
    pub conflict_misses: u64,
    /// Entries inserted by the walker.
    pub fills: u64,
    /// Whole-TLB flushes (CR3 loads).
    pub flushes: u64,
    /// Single-page invalidations (`invlpg`).
    pub page_invalidations: u64,
    /// Valid entries discarded by per-set LRU to make room for a fill —
    /// genuine pressure only, never chaos injection.
    pub evictions: u64,
    /// Entries discarded by the chaos harness ([`Tlb::evict_one`]), kept
    /// out of [`TlbStats::evictions`] so fault injection does not pollute
    /// capacity diagnostics.
    pub chaos_evictions: u64,
}

impl TlbStats {
    /// Field-wise difference `self - earlier`; use with a snapshot taken
    /// before a measured region. Saturating: a baseline from a different
    /// (or reset) TLB yields zeros for regressed fields rather than a
    /// debug panic / release wrap-around.
    pub fn since(&self, earlier: &TlbStats) -> TlbStats {
        TlbStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            cold_misses: self.cold_misses.saturating_sub(earlier.cold_misses),
            capacity_misses: self.capacity_misses.saturating_sub(earlier.capacity_misses),
            conflict_misses: self.conflict_misses.saturating_sub(earlier.conflict_misses),
            fills: self.fills.saturating_sub(earlier.fills),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            page_invalidations: self
                .page_invalidations
                .saturating_sub(earlier.page_invalidations),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            chaos_evictions: self.chaos_evictions.saturating_sub(earlier.chaos_evictions),
        }
    }
}

/// What [`Tlb::fill`] did: where the entry landed and what (if anything)
/// per-set LRU pushed out to make room. Consumed by the machine's trace
/// emit sites; existing callers are free to ignore it.
#[derive(Debug, Clone, Copy)]
pub struct FillOutcome {
    /// Set index the entry was inserted into.
    pub set: u32,
    /// MRU position the entry landed in (always 0: fills are
    /// most-recently-used by definition).
    pub way: u32,
    /// The entry evicted from the set's LRU tail, if the set was full and
    /// the fill was not an in-place replacement.
    pub victim: Option<TlbEntry>,
}

/// A single TLB (the machine instantiates one for instructions and one for
/// data).
#[derive(Debug, Clone)]
pub struct Tlb {
    geometry: TlbGeometry,
    /// `sets[i]` is ordered most-recently-used first; `len() <= ways`.
    /// The snapshot codec serializes per-set MRU order verbatim: LRU
    /// replacement order is part of the deterministic miss stream.
    pub(crate) sets: Vec<Vec<TlbEntry>>,
    /// Shadow fully-associative LRU of the same total capacity
    /// (`(asid, vpn)` keys, MRU-first), fed the same access/invalidation
    /// stream; the reference for conflict-miss classification.
    pub(crate) shadow: Vec<u64>,
    /// Every `(asid, vpn)` ever filled (cold-miss classification).
    pub(crate) seen: HashSet<u64>,
    /// ASID stamped on fills and required on lookups. Stays 0 unless the
    /// machine runs with tagged TLBs.
    pub(crate) current_asid: u16,
    /// 3C class of the most recent miss (the classification happens inline
    /// in [`Tlb::lookup`]; the walker reads it back when tracing fills).
    pub(crate) last_miss: sm_trace::MissClass,
    /// The entry the most recent [`Tlb::lookup`] hit or [`Tlb::fill`]
    /// installed, if nothing has disturbed the buffer since. Such an entry
    /// is at way 0 of its set and at the front of the shadow recency list,
    /// so a repeat lookup of the same page under the same ASID is a
    /// guaranteed hit whose MRU rotation and shadow touch are both no-ops.
    /// Purely derived state: never serialized, cleared by every mutation,
    /// observable only as saved host work (see [`Tlb::replay_peek`]).
    pub(crate) last: Option<TlbEntry>,
    /// Counters; reset with [`TlbStats::default`] assignment if needed.
    pub stats: TlbStats,
}

/// Shadow/seen key: the ASID in the high bits, the VPN in the low 32.
#[inline]
fn key_of(asid: u16, vpn: u32) -> u64 {
    ((asid as u64) << 32) | vpn as u64
}

impl Tlb {
    /// Create a fully-associative TLB with space for `capacity` entries
    /// (backward-compatible constructor; see [`Tlb::with_geometry`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Tlb {
        Tlb::with_geometry(TlbGeometry::fully_associative(capacity))
    }

    /// Create a TLB with the given set/way geometry.
    pub fn with_geometry(geometry: TlbGeometry) -> Tlb {
        Tlb {
            geometry,
            sets: vec![Vec::with_capacity(geometry.ways); geometry.sets],
            shadow: Vec::with_capacity(geometry.capacity()),
            seen: HashSet::new(),
            current_asid: 0,
            last_miss: sm_trace::MissClass::Cold,
            last: None,
            stats: TlbStats::default(),
        }
    }

    /// The entry a repeat lookup of `vpn` would hit with no state change
    /// beyond `stats.hits += 1` (see the `last` field invariant), or
    /// `None` if the fast path cannot prove that. Callers that take the
    /// shortcut own the hit-counter increment.
    #[inline]
    pub(crate) fn replay_peek(&self, vpn: u32) -> Option<TlbEntry> {
        self.last
            .filter(|e| e.vpn == vpn && e.asid == self.current_asid)
    }

    /// Switch the active address-space identifier. Subsequent fills are
    /// stamped with `asid` and lookups only hit entries stamped with it —
    /// entries belonging to other address spaces stay resident but
    /// unreachable, which is the whole point of tagged TLBs (no flush on
    /// context switch).
    pub fn set_asid(&mut self, asid: u16) {
        self.current_asid = asid;
        self.last = None;
    }

    /// The active address-space identifier (0 unless tagged mode is used).
    pub fn asid(&self) -> u16 {
        self.current_asid
    }

    /// The set/way shape.
    pub fn geometry(&self) -> TlbGeometry {
        self.geometry
    }

    /// Number of entry slots.
    pub fn capacity(&self) -> usize {
        self.geometry.capacity()
    }

    /// Move `key` to the front of the shadow model (inserting if absent),
    /// evicting its own LRU tail at capacity.
    fn shadow_touch(&mut self, key: u64) {
        // With a single set the buffer *is* its own fully-associative
        // shadow: the set's MRU order and the shadow's recency order are
        // the same list, every miss key is absent from both, and conflict
        // misses are structurally zero. Maintaining the duplicate list
        // would recompute the scan-and-rotate `lookup`/`fill` just did on
        // every access, so it is skipped (the shadow stays empty and the
        // miss classifier's `contains` is vacuously false, exactly as the
        // populated shadow would answer).
        if self.geometry.sets == 1 {
            return;
        }
        // MRU-rotation in place: equivalent to remove+insert(0) but one
        // bounded memmove instead of two, and free when already MRU — this
        // runs on every TLB access, so it is part of the step() hot path.
        if self.shadow.first() == Some(&key) {
            return;
        }
        if let Some(i) = self.shadow.iter().position(|v| *v == key) {
            self.shadow[..=i].rotate_right(1);
        } else {
            self.shadow.insert(0, key);
            self.shadow.truncate(self.geometry.capacity());
        }
    }

    /// Drop `vpn` from the shadow for *every* ASID (`invlpg` semantics:
    /// software invalidation is conservative across address spaces).
    fn shadow_drop_vpn(&mut self, vpn: u32) {
        self.shadow.retain(|k| (*k & 0xFFFF_FFFF) != vpn as u64);
    }

    /// Look up a virtual page number in the active address space, updating
    /// hit/miss statistics and the per-set LRU order.
    pub fn lookup(&mut self, vpn: u32) -> Option<TlbEntry> {
        let asid = self.current_asid;
        let si = self.geometry.set_of(vpn);
        if let Some(i) = self.sets[si]
            .iter()
            .position(|e| e.vpn == vpn && e.asid == asid)
        {
            // Rotate the hit entry to MRU in place (identical order to the
            // old remove+insert, without shifting the set twice; a hit on
            // the already-MRU way — the hot-loop common case — moves
            // nothing).
            if i != 0 {
                self.sets[si][..=i].rotate_right(1);
            }
            let e = self.sets[si][0];
            self.shadow_touch(key_of(asid, vpn));
            self.stats.hits += 1;
            self.last = Some(e);
            return Some(e);
        }
        self.stats.misses += 1;
        let key = key_of(asid, vpn);
        if !self.seen.contains(&key) {
            self.stats.cold_misses += 1;
            self.last_miss = sm_trace::MissClass::Cold;
        } else if self.shadow.contains(&key) {
            self.stats.conflict_misses += 1;
            self.last_miss = sm_trace::MissClass::Conflict;
        } else {
            self.stats.capacity_misses += 1;
            self.last_miss = sm_trace::MissClass::Capacity;
        }
        None
    }

    /// 3C class of the most recent miss (valid right after a [`Tlb::lookup`]
    /// that returned `None`; used by the walker's trace emit site).
    pub fn last_miss_class(&self) -> sm_trace::MissClass {
        self.last_miss
    }

    /// Look up a virtual page number in the active address space without
    /// touching statistics or the LRU order (used by tests and by the
    /// kernel when it inspects — rather than simulates — TLB state). Only
    /// the page's own set is searched.
    pub fn peek(&self, vpn: u32) -> Option<TlbEntry> {
        self.sets[self.geometry.set_of(vpn)]
            .iter()
            .find(|e| e.vpn == vpn && e.asid == self.current_asid)
            .copied()
    }

    /// Insert an entry — stamped with the active ASID — replacing any
    /// existing same-ASID entry for the same page and otherwise evicting
    /// the least-recently-used way of the page's set. Returns where the
    /// entry landed and any LRU victim.
    pub fn fill(&mut self, entry: TlbEntry) -> FillOutcome {
        let entry = TlbEntry {
            asid: self.current_asid,
            ..entry
        };
        self.last = Some(entry);
        self.stats.fills += 1;
        self.seen.insert(key_of(entry.asid, entry.vpn));
        self.shadow_touch(key_of(entry.asid, entry.vpn));
        let si = self.geometry.set_of(entry.vpn);
        let set = &mut self.sets[si];
        let mut outcome = FillOutcome {
            set: si as u32,
            way: 0,
            victim: None,
        };
        if let Some(i) = set
            .iter()
            .position(|e| e.vpn == entry.vpn && e.asid == entry.asid)
        {
            if i != 0 {
                set[..=i].rotate_right(1);
            }
            set[0] = entry;
            return outcome;
        }
        if set.len() == self.geometry.ways {
            outcome.victim = set.pop();
            self.stats.evictions += 1;
        }
        set.insert(0, entry);
        outcome
    }

    /// Drop every entry (a CR3 load — e.g. a context switch — does this).
    /// The shadow model is flushed too: a fully-associative buffer takes
    /// the same CR3 hit, so post-flush re-walks are capacity misses, not
    /// conflicts.
    pub fn flush_all(&mut self) {
        self.stats.flushes += 1;
        self.sets.iter_mut().for_each(Vec::clear);
        self.shadow.clear();
        self.last = None;
    }

    /// Drop any entry for `vpn` (`invlpg`). Returns whether one was present.
    pub fn flush_page(&mut self, vpn: u32) -> bool {
        self.stats.page_invalidations += 1;
        self.drop_entry(vpn)
    }

    /// Drop any entry for `vpn` — in *every* address space — without
    /// counting it as a software invalidation (hardware-initiated eviction
    /// on a rights violation). Dropping across ASIDs keeps `invlpg`
    /// conservative: the kernel never has to know which tag a stale
    /// translation was cached under.
    pub fn drop_entry(&mut self, vpn: u32) -> bool {
        self.last = None;
        self.shadow_drop_vpn(vpn);
        let set = &mut self.sets[self.geometry.set_of(vpn)];
        let before = set.len();
        set.retain(|e| e.vpn != vpn);
        set.len() != before
    }

    /// Evict one valid entry chosen by `draw`: the low half of the draw
    /// picks among the non-empty sets, the high half picks the way.
    /// Counted in [`TlbStats::chaos_evictions`] — never in
    /// [`TlbStats::evictions`] — and mirrored into the shadow model so the
    /// victim's re-walk reads as the capacity pressure the injection
    /// simulates, not as a phantom conflict. Returns the evicted entry's
    /// vpn, or `None` if the TLB is empty. Used by the chaos harness.
    pub fn evict_one(&mut self, draw: u64) -> Option<u32> {
        let nonempty: Vec<usize> = (0..self.sets.len())
            .filter(|i| !self.sets[*i].is_empty())
            .collect();
        if nonempty.is_empty() {
            return None;
        }
        let si = nonempty[(draw % nonempty.len() as u64) as usize];
        let wi = ((draw >> 32) % self.sets[si].len() as u64) as usize;
        let victim = self.sets[si].remove(wi);
        self.last = None;
        self.shadow
            .retain(|k| *k != key_of(victim.asid, victim.vpn));
        self.stats.chaos_evictions += 1;
        Some(victim.vpn)
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True if no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Iterate over the valid entries (diagnostics / assertions in tests).
    pub fn iter(&self) -> impl Iterator<Item = &TlbEntry> {
        self.sets.iter().flatten()
    }

    /// Iterate over the sets: `(set index, entries MRU-first)`. The
    /// invariant checker walks the buffer this way so a scan stays honest
    /// about which set a translation can actually live in.
    pub fn iter_sets(&self) -> impl Iterator<Item = (usize, &[TlbEntry])> {
        self.sets.iter().enumerate().map(|(i, s)| (i, s.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u32, pfn: u32) -> TlbEntry {
        TlbEntry {
            vpn,
            pfn,
            asid: 0,
            user: true,
            writable: true,
            nx: false,
        }
    }

    #[test]
    fn fill_then_hit() {
        let mut t = Tlb::new(4);
        t.fill(entry(7, 42));
        assert_eq!(t.lookup(7).unwrap().pfn, 42);
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 0);
    }

    #[test]
    fn miss_is_counted_and_classified_cold() {
        let mut t = Tlb::new(4);
        assert!(t.lookup(9).is_none());
        assert_eq!(t.stats.misses, 1);
        assert_eq!(t.stats.cold_misses, 1);
        assert_eq!(t.stats.capacity_misses + t.stats.conflict_misses, 0);
    }

    #[test]
    fn refill_same_page_replaces_in_place() {
        let mut t = Tlb::new(2);
        t.fill(entry(1, 10));
        t.fill(entry(1, 20));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(1).unwrap().pfn, 20);
    }

    #[test]
    fn rights_snapshot_is_what_was_filled() {
        // The core of the split-memory trick: the entry keeps the rights it
        // was filled with even if "the pagetable" would now disagree.
        let mut t = Tlb::new(4);
        t.fill(TlbEntry {
            vpn: 5,
            pfn: 50,
            asid: 0,
            user: true,
            writable: false,
            nx: false,
        });
        let e = t.lookup(5).unwrap();
        assert!(e.user);
        assert!(!e.writable);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = Tlb::new(2);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        t.fill(entry(3, 3)); // evicts vpn 1 (least recently used)
        assert!(t.peek(1).is_none());
        assert!(t.peek(2).is_some());
        assert!(t.peek(3).is_some());
        assert_eq!(t.stats.evictions, 1);
    }

    #[test]
    fn lookup_refreshes_lru_order() {
        let mut t = Tlb::new(2);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        t.lookup(1); // vpn 2 is now least recently used
        t.fill(entry(3, 3));
        assert!(t.peek(1).is_some());
        assert!(t.peek(2).is_none());
        assert!(t.peek(3).is_some());
    }

    /// Regression pin for the pre-rewrite "FIFO" clock hand: the hand only
    /// advanced on evictions, was never reset by `flush_all`, and fills
    /// into free slots recorded no insertion order, so post-flush eviction
    /// order diverged from the documented policy. Under true LRU the
    /// victim after a fill/flush/refill cycle is always the oldest
    /// untouched fill, regardless of pre-flush history.
    #[test]
    fn post_flush_eviction_order_is_documented_lru() {
        let mut t = Tlb::new(2);
        // Pre-flush history that left the old clock hand mid-rotation.
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        t.fill(entry(3, 3)); // one eviction; old hand moved to slot 1
        t.flush_all();
        // Refill. The documented policy evicts the oldest fill (vpn 4);
        // the old clock hand would have evicted slot 1 (vpn 5) instead.
        t.fill(entry(4, 4));
        t.fill(entry(5, 5));
        t.fill(entry(6, 6));
        assert!(t.peek(4).is_none(), "victim must be the oldest fill");
        assert!(t.peek(5).is_some());
        assert!(t.peek(6).is_some());
    }

    #[test]
    fn set_index_is_low_vpn_bits() {
        let g = TlbGeometry::new(4, 2);
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(5), 1);
        assert_eq!(g.set_of(0xBFFFF), 3);
        assert_eq!(g.capacity(), 8);
        // Entries land in (and are found from) their own set only.
        let mut t = Tlb::with_geometry(g);
        t.fill(entry(0x10, 1)); // set 0
        t.fill(entry(0x11, 2)); // set 1
        let sets: Vec<(usize, usize)> = t.iter_sets().map(|(i, s)| (i, s.len())).collect();
        assert_eq!(sets, vec![(0, 1), (1, 1), (2, 0), (3, 0)]);
    }

    #[test]
    fn per_set_lru_is_independent_of_other_sets() {
        // 2 sets × 2 ways. Set 0 overflows; set 1 must be untouched.
        let mut t = Tlb::with_geometry(TlbGeometry::new(2, 2));
        t.fill(entry(2, 1)); // set 0
        t.fill(entry(4, 2)); // set 0
        t.fill(entry(1, 3)); // set 1
        t.fill(entry(6, 4)); // set 0: evicts vpn 2 (set-LRU)
        assert!(t.peek(2).is_none());
        assert!(t.peek(4).is_some());
        assert!(t.peek(6).is_some());
        assert!(t.peek(1).is_some(), "other set must not lose entries");
        assert_eq!(t.stats.evictions, 1);
    }

    #[test]
    fn conflict_miss_is_set_pressure_the_shadow_absorbs() {
        // 2 sets × 1 way, capacity 2. VPNs 0 and 2 both index set 0 while
        // the shadow (capacity 2, fully associative) holds both.
        let mut t = Tlb::with_geometry(TlbGeometry::new(2, 1));
        t.fill(entry(0, 1));
        t.fill(entry(2, 2)); // evicts vpn 0 from set 0; shadow keeps both
        assert!(t.lookup(0).is_none());
        assert_eq!(t.stats.conflict_misses, 1, "{:?}", t.stats);
        assert_eq!(t.stats.capacity_misses, 0);
    }

    #[test]
    fn capacity_miss_when_the_shadow_missed_too() {
        // Fully associative, capacity 2: a cyclic scan of 3 pages misses
        // in any same-capacity model — capacity, not conflict.
        let mut t = Tlb::new(2);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        t.fill(entry(3, 3)); // evicts vpn 1 everywhere
        assert!(t.lookup(1).is_none());
        assert_eq!(t.stats.capacity_misses, 1, "{:?}", t.stats);
        assert_eq!(t.stats.conflict_misses, 0);
    }

    #[test]
    fn single_set_geometry_never_reports_conflicts() {
        let mut t = Tlb::new(3);
        for i in 0..64u32 {
            t.lookup(i % 7);
            t.fill(entry(i % 7, i));
        }
        assert_eq!(t.stats.conflict_misses, 0, "{:?}", t.stats);
        assert_eq!(
            t.stats.misses,
            t.stats.cold_misses + t.stats.capacity_misses
        );
    }

    #[test]
    fn flush_all_clears_and_counts() {
        let mut t = Tlb::new(4);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        t.flush_all();
        assert!(t.is_empty());
        assert_eq!(t.stats.flushes, 1);
        // Post-flush re-walks are capacity misses (the shadow flushed
        // too), never conflicts.
        assert!(t.lookup(1).is_none());
        assert_eq!(t.stats.capacity_misses, 1);
        assert_eq!(t.stats.conflict_misses, 0);
    }

    #[test]
    fn chaos_eviction_is_seeded_bounded_and_counted_separately() {
        let mut t = Tlb::new(4);
        assert!(t.evict_one(99).is_none());
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        let vpn = t.evict_one(1).unwrap();
        assert!(vpn == 1 || vpn == 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats.chaos_evictions, 1);
        assert_eq!(t.stats.evictions, 0, "chaos must not pollute evictions");
        t.evict_one(0).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.stats.chaos_evictions, 2);
    }

    #[test]
    fn chaos_eviction_picks_set_then_way() {
        // 2 sets × 2 ways, set 1 empty: every draw must pick from set 0.
        let mut t = Tlb::with_geometry(TlbGeometry::new(2, 2));
        t.fill(entry(0, 1));
        t.fill(entry(2, 2));
        for draw in [0u64, 1, 2, (1 << 32) | 1, u64::MAX] {
            let mut probe = t.clone();
            let vpn = probe.evict_one(draw).unwrap();
            assert!(vpn == 0 || vpn == 2, "victim {vpn} from an empty set");
        }
    }

    #[test]
    fn flush_page_only_drops_target() {
        let mut t = Tlb::new(4);
        t.fill(entry(1, 1));
        t.fill(entry(2, 2));
        assert!(t.flush_page(1));
        assert!(!t.flush_page(1)); // already gone
        assert!(t.peek(2).is_some());
    }

    #[test]
    fn miss_classes_always_partition_misses() {
        let mut t = Tlb::with_geometry(TlbGeometry::new(4, 2));
        for i in 0..200u32 {
            let vpn = (i * 7) % 23;
            if t.lookup(vpn).is_none() {
                t.fill(entry(vpn, vpn));
            }
            if i % 31 == 0 {
                t.flush_all();
            }
            if i % 17 == 0 {
                t.flush_page(vpn);
            }
        }
        assert_eq!(
            t.stats.misses,
            t.stats.cold_misses + t.stats.capacity_misses + t.stats.conflict_misses,
            "{:?}",
            t.stats
        );
    }

    #[test]
    fn asid_tags_isolate_address_spaces_without_flushing() {
        let mut t = Tlb::new(4);
        t.fill(entry(7, 42)); // asid 0
        t.set_asid(1);
        // The other address space's entry is resident but unreachable.
        assert!(t.lookup(7).is_none());
        assert!(t.peek(7).is_none());
        assert_eq!(t.len(), 1, "asid miss must not discard the entry");
        // Same page, different frame, different tag: both coexist.
        t.fill(entry(7, 99));
        assert_eq!(t.lookup(7).unwrap().pfn, 99);
        assert_eq!(t.len(), 2);
        t.set_asid(0);
        assert_eq!(t.lookup(7).unwrap().pfn, 42);
    }

    #[test]
    fn fill_stamps_the_active_asid() {
        let mut t = Tlb::new(4);
        t.set_asid(3);
        t.fill(entry(1, 10)); // helper says asid 0; fill must restamp
        assert_eq!(t.peek(1).unwrap().asid, 3);
    }

    #[test]
    fn invlpg_drops_every_asid_for_the_page() {
        let mut t = Tlb::new(4);
        t.fill(entry(5, 1));
        t.set_asid(2);
        t.fill(entry(5, 2));
        assert_eq!(t.len(), 2);
        assert!(t.flush_page(5));
        assert!(t.is_empty(), "invlpg must be conservative across ASIDs");
    }

    #[test]
    fn asid_zero_stream_is_identical_to_untagged_model() {
        // The default configuration never calls set_asid, so the miss
        // classification stream must be exactly what the untagged model
        // produced (byte-identical sweep outputs depend on this).
        let mut t = Tlb::with_geometry(TlbGeometry::new(2, 1));
        t.fill(entry(0, 1));
        t.fill(entry(2, 2));
        assert!(t.lookup(0).is_none());
        assert_eq!(t.stats.conflict_misses, 1, "{:?}", t.stats);
        assert_eq!(t.stats.capacity_misses, 0);
    }

    #[test]
    fn presets_have_the_documented_shapes() {
        let p3 = TlbPreset::pentium3();
        assert_eq!(p3.itlb.capacity(), 32);
        assert_eq!((p3.itlb.sets, p3.itlb.ways), (8, 4));
        assert_eq!(p3.dtlb.capacity(), 64);
        assert_eq!((p3.dtlb.sets, p3.dtlb.ways), (16, 4));
        let compat = TlbPreset::default();
        assert_eq!(compat.itlb.sets, 1);
        assert_eq!(compat.itlb.capacity(), 64);
        assert_eq!(compat, TlbPreset::fully_associative(64));
    }
}
