//! The machine: CPU + physical memory + split TLBs + the hardware
//! pagetable walker, glued together with cycle accounting.

use crate::costs::CycleCosts;
use crate::cpu::{Access, Cpu, PageFaultInfo, Privilege};
use crate::decode_cache::DecodeCache;
use crate::exec;
use crate::phys::{OutOfFrames, PhysMemory};
use crate::pte::{self, Frame, PAGE_SIZE};
use crate::stats::MachineStats;
use crate::tlb::{Tlb, TlbEntry, TlbPreset};
use sm_trace::{mask, FlushScope, Tracer};

/// Construction-time machine parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Number of 4 KiB physical frames (default 16384 = 64 MiB).
    pub phys_frames: u32,
    /// Geometry of the instruction/data TLB pair. The default is a pair of
    /// 64-entry fully-associative buffers (the pre-set-associative model);
    /// [`MachineConfig::pentium3`] selects the paper's testbed hardware.
    pub tlb: TlbPreset,
    /// Whether the execute-disable bit is honoured by the MMU. `false`
    /// models the legacy x86 hardware the paper's stand-alone mode targets;
    /// `true` models the "recent hardware" of its combined mode (§6.2).
    pub nx_enabled: bool,
    /// Software-loaded TLBs (paper §4.7, the SPARC-style port): the
    /// hardware never walks the pagetable — every TLB miss raises a fault
    /// and the kernel fills the TLB explicitly via
    /// [`Machine::fill_itlb`]/[`Machine::fill_dtlb`]. Split memory on such
    /// an architecture needs "no complex data or instruction TLB loading
    /// techniques".
    pub software_tlb: bool,
    /// Cache completed instruction decodes per (physical frame, offset),
    /// invalidated by frame write-generation (see
    /// [`decode_cache`](crate::decode_cache)). Transparent to the modeled
    /// machine — identical [`MachineStats`], cycles and TLB/pagetable
    /// behaviour either way — so it defaults to on; tests flip it off to
    /// check exactly that equivalence.
    pub decode_cache: bool,
    /// Machine-layer trace mask ([`sm_trace::mask`] bits). 0 (the default)
    /// disables tracing entirely; the kernel ORs its own layers in at
    /// construction. Tracing is transparent to the modeled machine:
    /// identical stats, cycles and TLB behaviour either way.
    pub trace: u32,
    /// Ring capacity of the tracer when any layer is enabled.
    pub trace_capacity: usize,
    /// Report control-flow transfers (`call`/`ret`/indirect jumps) to the
    /// embedding kernel as [`Trap::ControlFlow`] events after the
    /// instruction retires. Models the CET-style shadow-stack/indirect-
    /// branch-tracking hardware assist; off for every engine that does not
    /// ask for it, so the plain machine pays nothing. Never serialized:
    /// snapshots re-arm it from the restored engine, keeping the dump
    /// format and golden dumps unchanged.
    pub cfi_events: bool,
    /// Cycle cost model.
    pub costs: CycleCosts,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            phys_frames: 16384,
            tlb: TlbPreset::default(),
            nx_enabled: false,
            software_tlb: false,
            decode_cache: true,
            trace: 0,
            trace_capacity: Tracer::DEFAULT_CAPACITY,
            cfi_events: false,
            costs: CycleCosts::default(),
        }
    }
}

impl MachineConfig {
    /// The paper's testbed (§6): Pentium III split TLBs — 32-entry 4-way
    /// instruction, 64-entry 4-way data, per-set LRU.
    pub fn pentium3() -> MachineConfig {
        MachineConfig {
            tlb: TlbPreset::pentium3(),
            ..MachineConfig::default()
        }
    }
}

/// Kind of control-flow transfer reported by a [`Trap::ControlFlow`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfiKind {
    /// Direct `call rel32`; the return address was pushed.
    Call,
    /// Indirect `call r/m32`; the return address was pushed.
    IndirectCall,
    /// `ret`; the return address was popped.
    Ret,
    /// Indirect `jmp r/m32` (direct jumps are not reported — their targets
    /// are fixed at assembly time and carry no hijack surface).
    IndirectJmp,
}

/// A retired control-flow transfer, reported when
/// [`MachineConfig::cfi_events`] is set. `eip` already points at `target`;
/// the kernel's protection engine decides whether the transfer was
/// legitimate (shadow-stack match, CFI target check) after the fact, the
/// way CET raises `#CP` on the retiring `ret`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfiEvent {
    /// What kind of transfer retired.
    pub kind: CfiKind,
    /// Transfer destination (the new `eip`).
    pub target: u32,
    /// For calls: the return address that was pushed. For `ret`: the
    /// address that was popped (== `target`). For jumps: 0.
    pub link: u32,
}

/// Result of executing one instruction: either it retired normally or it
/// trapped. Traps are returned to the embedding kernel rather than vectored
/// through a simulated IDT — the simulated kernel is host code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Instruction retired with no event.
    None,
    /// `int n` executed; `eip` already points at the next instruction.
    Syscall {
        /// Interrupt vector (0x80 for system calls).
        vector: u8,
    },
    /// Page fault; registers are rolled back to instruction start and CR2
    /// holds the faulting address.
    PageFault(PageFaultInfo),
    /// Invalid opcode (`#UD`); registers are rolled back, `eip` points at
    /// the offending instruction.
    InvalidOpcode {
        /// Address of the undecodable instruction.
        eip: u32,
        /// First offending opcode byte.
        opcode: u8,
    },
    /// Single-step debug trap (`#DB`): the trap flag was set when the
    /// just-retired instruction began.
    DebugStep,
    /// Divide error (`#DE`); registers rolled back.
    DivideError,
    /// A control-flow transfer retired while [`MachineConfig::cfi_events`]
    /// was set; `eip` already points at the transfer target.
    ControlFlow(CfiEvent),
    /// `hlt` executed.
    Halt,
}

impl Trap {
    /// True for [`Trap::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, Trap::None)
    }
}

/// Which TLB an access kind goes through, in trace-event terms.
fn side_of(access: Access) -> sm_trace::TlbSide {
    match access {
        Access::Fetch => sm_trace::TlbSide::Instruction,
        _ => sm_trace::TlbSide::Data,
    }
}

/// The simulated machine.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Machine {
    /// CPU registers.
    pub cpu: Cpu,
    /// Physical memory and its frame allocator.
    pub phys: PhysMemory,
    /// Instruction TLB (filled only by instruction fetches).
    pub itlb: Tlb,
    /// Data TLB (filled by loads, stores and kernel touches).
    pub dtlb: Tlb,
    /// Configuration (cost model is read from here on every event).
    pub config: MachineConfig,
    /// Simulated cycle counter; every hardware and (via
    /// [`Machine::charge`]) kernel event advances it.
    pub cycles: u64,
    /// Event counters.
    pub stats: MachineStats,
    /// Decoded-instruction cache (consulted only when
    /// [`MachineConfig::decode_cache`] is set; its counters stay zero
    /// otherwise).
    pub decode_cache: DecodeCache,
    /// Superblock cache backing [`Machine::run_block`] (the pipeline
    /// fast path). Derived-only state like the decode cache: never
    /// serialized, rebuilt cold after a snapshot restore, and untouched
    /// by machines driven purely through [`Machine::step`].
    pub superblocks: crate::superblock::SuperblockCache,
    /// Flight recorder. Owned by the machine so every layer — hardware,
    /// kernel, engine — stamps events with the one simulated-cycle clock
    /// ([`Machine::cycles`]) and shares one ring.
    pub tracer: Tracer,
    pub(crate) pending_singlestep: bool,
    /// Control-flow event set by the just-executed instruction when
    /// [`MachineConfig::cfi_events`] is on; drained by
    /// [`Machine::step`]/[`Machine::run_block`] within the same retire, so
    /// it is never live across calls and never serialized.
    pub(crate) pending_cfi: Option<CfiEvent>,
}

impl Machine {
    /// Build a machine with zeroed memory and empty TLBs.
    pub fn new(config: MachineConfig) -> Machine {
        Machine {
            cpu: Cpu::default(),
            phys: PhysMemory::new(config.phys_frames),
            itlb: Tlb::with_geometry(config.tlb.itlb),
            dtlb: Tlb::with_geometry(config.tlb.dtlb),
            decode_cache: DecodeCache::new(config.phys_frames),
            superblocks: crate::superblock::SuperblockCache::new(config.phys_frames),
            tracer: Tracer::new(
                config.trace,
                if config.trace == 0 {
                    0
                } else {
                    config.trace_capacity
                },
            ),
            config,
            cycles: 0,
            stats: MachineStats::default(),
            pending_singlestep: false,
            pending_cfi: None,
        }
    }

    /// Record a trace event at the current cycle if `layer` is enabled;
    /// the closure is not called otherwise. The single funnel every layer
    /// uses keeps trace stamps and kernel `EventLog` stamps on the same
    /// clock.
    #[inline(always)]
    pub fn trace(&mut self, layer: u32, f: impl FnOnce() -> sm_trace::TraceEvent) {
        let cycles = self.cycles;
        self.tracer.emit(layer, cycles, f);
    }

    /// Enable additional trace layers (the kernel ORs its configured mask
    /// in at construction), sizing the ring from
    /// [`MachineConfig::trace_capacity`].
    pub fn enable_trace(&mut self, layers: u32) {
        let cap = self.config.trace_capacity;
        self.tracer.enable(layers, cap);
    }

    /// Advance the cycle counter (used by the kernel to charge software
    /// handler costs from the same [`CycleCosts`] table).
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Allocate a physical frame.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when physical memory is exhausted.
    pub fn alloc_frame(&mut self) -> Result<Frame, OutOfFrames> {
        self.phys.allocator.alloc()
    }

    /// Allocate a zeroed physical frame.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] when physical memory is exhausted.
    pub fn alloc_zeroed_frame(&mut self) -> Result<Frame, OutOfFrames> {
        let f = self.phys.allocator.alloc()?;
        self.phys.zero_frame(f);
        Ok(f)
    }

    /// Free a physical frame.
    pub fn free_frame(&mut self, f: Frame) {
        self.phys.allocator.free(f);
    }

    /// Load CR3 with a new page-directory frame. As on x86, this flushes
    /// both TLBs — the dominant overhead source for split memory under
    /// context-switch-heavy loads (paper §4.6).
    pub fn set_cr3(&mut self, dir: Frame) {
        self.cpu.regs.cr3 = dir.0;
        self.itlb.flush_all();
        self.dtlb.flush_all();
        self.stats.cr3_loads += 1;
        self.charge(self.config.costs.cr3_load);
        self.trace(mask::TLB, || sm_trace::TraceEvent::TlbFlush {
            scope: FlushScope::All,
            vpn: 0,
        });
    }

    /// Load CR3 with a new page-directory frame *without* flushing the
    /// TLBs, retagging both with `asid` instead (tagged-TLB context
    /// switch). Entries belonging to other address spaces stay resident
    /// but unreachable; the cost model still charges a CR3 load, but the
    /// switched-to process keeps its warm translations.
    pub fn set_cr3_tagged(&mut self, dir: Frame, asid: u16) {
        self.cpu.regs.cr3 = dir.0;
        self.itlb.set_asid(asid);
        self.dtlb.set_asid(asid);
        self.stats.cr3_loads += 1;
        self.charge(self.config.costs.cr3_load);
    }

    /// Current page-directory frame.
    pub fn cr3(&self) -> Frame {
        Frame(self.cpu.regs.cr3)
    }

    /// Invalidate any TLB entries for the page containing `vaddr`
    /// (`invlpg`).
    pub fn invlpg(&mut self, vaddr: u32) {
        let vpn = pte::vpn(vaddr);
        self.itlb.flush_page(vpn);
        self.dtlb.flush_page(vpn);
        self.stats.invlpgs += 1;
        self.charge(self.config.costs.invlpg);
        self.trace(mask::TLB, || sm_trace::TraceEvent::TlbFlush {
            scope: FlushScope::Page,
            vpn,
        });
    }

    /// Flush both TLBs without touching CR3 (used by tests and by the
    /// kernel when it needs a full shootdown).
    pub fn flush_tlbs(&mut self) {
        self.itlb.flush_all();
        self.dtlb.flush_all();
        self.trace(mask::TLB, || sm_trace::TraceEvent::TlbFlush {
            scope: FlushScope::All,
            vpn: 0,
        });
    }

    /// True if the just-completed `int` instruction had the trap flag set,
    /// meaning a `#DB` is architecturally due after the syscall is serviced.
    /// Reading the flag clears it.
    pub fn take_pending_singlestep(&mut self) -> bool {
        std::mem::take(&mut self.pending_singlestep)
    }

    /// Translate a virtual address, consulting the access-appropriate TLB
    /// first and walking the pagetable on a miss (filling that TLB).
    ///
    /// This is the heart of the simulation: rights are checked against the
    /// *TLB entry* on a hit and against the *pagetable* only on a walk, so a
    /// TLB entry filled under one pagetable state remains authoritative
    /// after the pagetable changes — exactly the desynchronisation window
    /// split memory exploits.
    ///
    /// # Errors
    ///
    /// Returns [`PageFaultInfo`] (without setting CR2; the instruction path
    /// does that) on a missing mapping or rights violation.
    #[inline]
    pub fn translate(
        &mut self,
        vaddr: u32,
        access: Access,
        privilege: Privilege,
    ) -> Result<u32, PageFaultInfo> {
        // Repeat-hit fast path (data side only): when the D-TLB proves the
        // last lookup hit or filled this very page under the active ASID,
        // the full hit path's MRU rotation and shadow touch are both
        // no-ops, so `hits += 1` replays it exactly. A rights mismatch
        // falls through to the full path, which owns the hit accounting
        // and the drop-and-rewalk protocol. The instruction side keeps the
        // full path: `run_block` already replays fetch hits itself, and
        // the per-step fetch is the slow path by definition. The fast path
        // lives in this thin inlined wrapper so a repeat hit never pays
        // the full walk routine's frame.
        if access != Access::Fetch {
            let vpn = pte::vpn(vaddr);
            if let Some(e) = self.dtlb.replay_peek(vpn) {
                if Self::check_entry_rights(&self.config, &e, vaddr, access, privilege).is_ok() {
                    self.dtlb.stats.hits += 1;
                    return Ok((e.pfn << pte::PAGE_SHIFT) | pte::page_offset(vaddr));
                }
            }
        }
        self.translate_full(vaddr, access, privilege)
    }

    fn translate_full(
        &mut self,
        vaddr: u32,
        access: Access,
        privilege: Privilege,
    ) -> Result<u32, PageFaultInfo> {
        let vpn = pte::vpn(vaddr);
        let tlb = match access {
            Access::Fetch => &mut self.itlb,
            _ => &mut self.dtlb,
        };
        if let Some(e) = tlb.lookup(vpn) {
            if Self::check_entry_rights(&self.config, &e, vaddr, access, privilege).is_ok() {
                return Ok((e.pfn << pte::PAGE_SHIFT) | pte::page_offset(vaddr));
            }
            // A rights violation on a cached entry: the hardware drops the
            // entry and re-walks the pagetable before deciding to fault —
            // TLB entries may be *stale-permissive* (the property split
            // memory exploits) but are never authoritative for denial.
            tlb.drop_entry(vpn);
            let set = tlb.geometry().set_of(vpn) as u32;
            self.trace(mask::TLB, || sm_trace::TraceEvent::TlbEvict {
                tlb: side_of(access),
                vpn,
                set,
                cause: sm_trace::EvictCause::Drop,
            });
        }
        if self.config.software_tlb {
            // Software-loaded TLBs: the hardware raises a miss fault and
            // the kernel is responsible for the fill (paper §4.7).
            return Err(PageFaultInfo {
                addr: vaddr,
                access,
                privilege,
                present: false,
            });
        }
        // TLB miss: hardware pagetable walk.
        self.stats.walks += 1;
        self.charge(self.config.costs.tlb_walk);
        let not_present = |present| PageFaultInfo {
            addr: vaddr,
            access,
            privilege,
            present,
        };
        let dir_base = Frame(self.cpu.regs.cr3).base();
        let pde_addr = dir_base + pte::dir_index(vaddr) * 4;
        let pde = self.phys.read_u32(pde_addr);
        if !pte::has(pde, pte::PRESENT) {
            return Err(not_present(false));
        }
        let pte_addr = pte::frame(pde).base() + pte::table_index(vaddr) * 4;
        let entry = self.phys.read_u32(pte_addr);
        if !pte::has(entry, pte::PRESENT) {
            return Err(not_present(false));
        }
        let e = TlbEntry {
            vpn,
            pfn: pte::frame(entry).0,
            asid: 0, // fill() restamps with the active ASID
            user: pte::has(pde, pte::USER) && pte::has(entry, pte::USER),
            writable: pte::has(pde, pte::WRITABLE) && pte::has(entry, pte::WRITABLE),
            nx: pte::has(entry, pte::NX),
        };
        Self::check_entry_rights(&self.config, &e, vaddr, access, privilege)?;
        // Walk succeeded: update accessed/dirty bits and fill the TLB.
        self.phys.write_u32(pde_addr, pde | pte::ACCESSED);
        let mut new_entry = entry | pte::ACCESSED;
        if access == Access::Write {
            new_entry |= pte::DIRTY;
        }
        self.phys.write_u32(pte_addr, new_entry);
        let paddr = (e.pfn << pte::PAGE_SHIFT) | pte::page_offset(vaddr);
        let tlb = match access {
            Access::Fetch => &mut self.itlb,
            _ => &mut self.dtlb,
        };
        let outcome = tlb.fill(e);
        if self.tracer.wants(mask::TLB) {
            let class = tlb.last_miss_class();
            let side = side_of(access);
            if let Some(victim) = outcome.victim {
                self.trace(mask::TLB, || sm_trace::TraceEvent::TlbEvict {
                    tlb: side,
                    vpn: victim.vpn,
                    set: outcome.set,
                    cause: sm_trace::EvictCause::Capacity,
                });
            }
            self.trace(mask::TLB, || sm_trace::TraceEvent::TlbFill {
                tlb: side,
                vpn,
                pfn: e.pfn,
                set: outcome.set,
                way: outcome.way,
                class,
            });
        }
        Ok(paddr)
    }

    pub(crate) fn check_entry_rights(
        config: &MachineConfig,
        e: &TlbEntry,
        vaddr: u32,
        access: Access,
        privilege: Privilege,
    ) -> Result<(), PageFaultInfo> {
        let violation = PageFaultInfo {
            addr: vaddr,
            access,
            privilege,
            present: true,
        };
        if privilege == Privilege::User {
            if !e.user {
                return Err(violation);
            }
            if access == Access::Write && !e.writable {
                return Err(violation);
            }
        }
        // Execute-disable applies regardless of privilege; the simulated
        // kernel never fetches, so in practice this guards user fetches.
        if access == Access::Fetch && e.nx && config.nx_enabled {
            return Err(violation);
        }
        Ok(())
    }

    /// Kernel-managed instruction-TLB fill (software-TLB mode, §4.7).
    pub fn fill_itlb(&mut self, entry: TlbEntry) {
        let outcome = self.itlb.fill(entry);
        let class = self.itlb.last_miss_class();
        self.trace_soft_fill(sm_trace::TlbSide::Instruction, entry, outcome, class);
    }

    /// Kernel-managed data-TLB fill (software-TLB mode, §4.7).
    pub fn fill_dtlb(&mut self, entry: TlbEntry) {
        let outcome = self.dtlb.fill(entry);
        let class = self.dtlb.last_miss_class();
        self.trace_soft_fill(sm_trace::TlbSide::Data, entry, outcome, class);
    }

    fn trace_soft_fill(
        &mut self,
        side: sm_trace::TlbSide,
        entry: TlbEntry,
        outcome: crate::tlb::FillOutcome,
        class: sm_trace::MissClass,
    ) {
        if let Some(victim) = outcome.victim {
            self.trace(mask::TLB, || sm_trace::TraceEvent::TlbEvict {
                tlb: side,
                vpn: victim.vpn,
                set: outcome.set,
                cause: sm_trace::EvictCause::Capacity,
            });
        }
        self.trace(mask::TLB, || sm_trace::TraceEvent::TlbFill {
            tlb: side,
            vpn: entry.vpn,
            pfn: entry.pfn,
            set: outcome.set,
            way: outcome.way,
            class,
        });
    }

    /// Read the PTE for `vaddr` under the current CR3 directly from
    /// physical memory, bypassing the TLBs (how the kernel inspects
    /// pagetables). Returns `None` if the directory entry is not present.
    pub fn read_pte(&self, vaddr: u32) -> Option<u32> {
        let pde = self
            .phys
            .read_u32(Frame(self.cpu.regs.cr3).base() + pte::dir_index(vaddr) * 4);
        if !pte::has(pde, pte::PRESENT) {
            return None;
        }
        Some(
            self.phys
                .read_u32(pte::frame(pde).base() + pte::table_index(vaddr) * 4),
        )
    }

    // ---- data accessors ---------------------------------------------------

    /// Read one byte with the given privilege (data access: fills D-TLB).
    ///
    /// # Errors
    ///
    /// Page fault per [`Machine::translate`].
    pub fn read_u8(&mut self, vaddr: u32, privilege: Privilege) -> Result<u8, PageFaultInfo> {
        let p = self.translate(vaddr, Access::Read, privilege)?;
        Ok(self.phys.read_u8(p))
    }

    /// Write one byte with the given privilege.
    ///
    /// # Errors
    ///
    /// Page fault per [`Machine::translate`].
    pub fn write_u8(
        &mut self,
        vaddr: u32,
        v: u8,
        privilege: Privilege,
    ) -> Result<(), PageFaultInfo> {
        let p = self.translate(vaddr, Access::Write, privilege)?;
        self.phys.write_u8(p, v);
        Ok(())
    }

    /// Read a little-endian u32; unaligned and page-crossing reads are
    /// legal (as on x86).
    ///
    /// # Errors
    ///
    /// Page fault per [`Machine::translate`].
    pub fn read_u32(&mut self, vaddr: u32, privilege: Privilege) -> Result<u32, PageFaultInfo> {
        if pte::page_offset(vaddr) <= PAGE_SIZE - 4 {
            let p = self.translate(vaddr, Access::Read, privilege)?;
            return Ok(self.phys.read_u32(p));
        }
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            let p = self.translate(vaddr.wrapping_add(i as u32), Access::Read, privilege)?;
            *b = self.phys.read_u8(p);
        }
        Ok(u32::from_le_bytes(bytes))
    }

    /// Write a little-endian u32. Page-crossing writes pre-translate both
    /// pages before mutating memory, so a faulting store changes nothing
    /// (precise exceptions).
    ///
    /// # Errors
    ///
    /// Page fault per [`Machine::translate`].
    pub fn write_u32(
        &mut self,
        vaddr: u32,
        v: u32,
        privilege: Privilege,
    ) -> Result<(), PageFaultInfo> {
        if pte::page_offset(vaddr) <= PAGE_SIZE - 4 {
            let p = self.translate(vaddr, Access::Write, privilege)?;
            self.phys.write_u32(p, v);
            return Ok(());
        }
        let mut paddrs = [0u32; 4];
        for (i, pa) in paddrs.iter_mut().enumerate() {
            *pa = self.translate(vaddr.wrapping_add(i as u32), Access::Write, privilege)?;
        }
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.phys.write_u8(paddrs[i], *b);
        }
        Ok(())
    }

    /// Kernel-privilege byte read. This is the primitive behind the paper's
    /// D-TLB load: it performs a *data* access that fills the D-TLB with a
    /// rights snapshot of the current PTE (Algorithm 1 line 9,
    /// `read_byte(addr)`).
    ///
    /// # Errors
    ///
    /// Page fault if the page is unmapped.
    pub fn kernel_read_u8(&mut self, vaddr: u32) -> Result<u8, PageFaultInfo> {
        self.read_u8(vaddr, Privilege::Kernel)
    }

    /// Copy bytes from user space at kernel privilege, charging per-byte
    /// copy cost.
    ///
    /// # Errors
    ///
    /// Page fault on the first unmapped byte (partially-read data is
    /// discarded).
    pub fn copy_from_user(&mut self, vaddr: u32, len: u32) -> Result<Vec<u8>, PageFaultInfo> {
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            out.push(self.read_u8(vaddr.wrapping_add(i), Privilege::Kernel)?);
        }
        self.charge(self.config.costs.copy_byte * len as u64);
        Ok(out)
    }

    /// Copy bytes into user space at kernel privilege, charging per-byte
    /// copy cost.
    ///
    /// # Errors
    ///
    /// Page fault on the first unmapped byte (earlier bytes stay written,
    /// as with a faulting `copy_to_user`).
    pub fn copy_to_user(&mut self, vaddr: u32, data: &[u8]) -> Result<(), PageFaultInfo> {
        for (i, b) in data.iter().enumerate() {
            self.write_u8(vaddr.wrapping_add(i as u32), *b, Privilege::Kernel)?;
        }
        self.charge(self.config.costs.copy_byte * data.len() as u64);
        Ok(())
    }

    /// Read a NUL-terminated string from user space (kernel privilege),
    /// capped at `max` bytes.
    ///
    /// # Errors
    ///
    /// Page fault if the string runs off mapped memory.
    pub fn read_cstr(&mut self, vaddr: u32, max: u32) -> Result<Vec<u8>, PageFaultInfo> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(vaddr.wrapping_add(i), Privilege::Kernel)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        self.charge(self.config.costs.copy_byte * out.len() as u64);
        Ok(out)
    }

    // ---- execution ---------------------------------------------------------

    /// Execute one instruction at `eip`.
    ///
    /// Faults are precise: on [`Trap::PageFault`], [`Trap::InvalidOpcode`]
    /// and [`Trap::DivideError`] the register file is rolled back to the
    /// state at instruction start (CR2 is updated for page faults). On
    /// [`Trap::Syscall`] and [`Trap::DebugStep`] the instruction has
    /// retired and `eip` points at the next instruction.
    ///
    /// Cycle accounting is independent of host decode work: the per-retire
    /// [`CycleCosts::insn`] charge below and the [`CycleCosts::tlb_walk`]
    /// charge inside [`Machine::translate`] are the only fetch-path charges,
    /// and both fire identically whether the decode came from the
    /// byte-by-byte decoder or the decode cache (same-page continuation
    /// bytes are TLB hits, which charge nothing).
    pub fn step(&mut self) -> Trap {
        let snapshot = self.cpu.regs;
        let tf = self.cpu.regs.flag(crate::cpu::flags::TF);
        self.charge(self.config.costs.insn);
        match exec::step(self) {
            Ok(exec::Flow::Normal) => {
                self.stats.instructions += 1;
                if let Some(ev) = self.pending_cfi.take() {
                    // The control-flow report takes precedence over the
                    // single-step trap; the #DB belongs after the kernel has
                    // ruled on the transfer, so it is deferred the same way
                    // a syscall defers it.
                    if tf {
                        self.pending_singlestep = true;
                    }
                    Trap::ControlFlow(ev)
                } else if tf {
                    self.stats.debug_traps += 1;
                    Trap::DebugStep
                } else {
                    Trap::None
                }
            }
            Ok(exec::Flow::Syscall { vector }) => {
                self.stats.instructions += 1;
                self.stats.syscalls += 1;
                if tf {
                    // The #DB belongs after the int completes; the kernel
                    // services the syscall first and then polls this flag.
                    self.pending_singlestep = true;
                }
                Trap::Syscall { vector }
            }
            Ok(exec::Flow::Halt) => {
                self.stats.instructions += 1;
                Trap::Halt
            }
            Err(exec::Exc::PageFault(pf)) => {
                self.cpu.regs = snapshot;
                self.cpu.regs.cr2 = pf.addr;
                self.stats.page_faults += 1;
                Trap::PageFault(pf)
            }
            Err(exec::Exc::InvalidOpcode { opcode }) => {
                self.cpu.regs = snapshot;
                self.stats.invalid_opcodes += 1;
                Trap::InvalidOpcode {
                    eip: snapshot.eip,
                    opcode,
                }
            }
            Err(exec::Exc::DivideError) => {
                self.cpu.regs = snapshot;
                self.stats.divide_errors += 1;
                Trap::DivideError
            }
        }
    }
}
