//! Deterministic fault injection ("chaos") for the simulated machine.
//!
//! A [`FaultPlan`] describes *which* architectural misfortunes to inject —
//! spurious whole-TLB flushes, seeded single-entry evictions, forced
//! preemptions, frame-allocator exhaustion at the k-th allocation, and
//! perturbations aimed specifically at the Algorithm 1→2 single-step
//! window — and [`ChaosState`] turns the plan into a per-step decision
//! stream that is a pure function of `(plan, seed)`, so every run replays
//! byte-for-byte.
//!
//! The machine crate owns the plan and the decision stream; the kernel
//! applies the decisions (it is the layer that knows what a "step", a
//! "window" and a "preemption" are). None of the split-memory machinery
//! may *rely* on TLB residency for correctness — these faults are exactly
//! the events (context switches, capacity evictions, NMIs) that real
//! hardware produces at arbitrary points, so a protection verdict must be
//! identical under any plan.

use sm_rng::StdRng;

/// What to inject, and when. All counters are in *kernel steps* (one
/// executed-or-trapped instruction of the current process). `None` / `false`
/// disables a fault class; [`FaultPlan::default`] is fully inert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Flush both TLBs every N steps (a spurious shootdown).
    pub flush_every: Option<u64>,
    /// Evict one seeded-random entry from each TLB every N steps
    /// (capacity pressure).
    pub evict_every: Option<u64>,
    /// Force a preemption (real context switch, CR3 reload, TLB flush)
    /// every N steps — including inside the single-step window.
    pub preempt_every: Option<u64>,
    /// Make the k-th frame allocation (1-based, counted from machine
    /// construction) fail with `OutOfFrames`.
    pub oom_at: Option<u64>,
    /// After the first injected OOM, keep failing every N-th allocation.
    pub oom_every_after: Option<u64>,
    /// Deliver a signal (the kernel uses SIGUSR1, only to processes with a
    /// registered handler) the first time the current process sits in the
    /// single-step window — the mixed-page trampoline case. One-shot by
    /// design: the signal handler consumes the arming (its first
    /// instruction takes the debug trap), so the armed instruction only
    /// retires on a signal-free pass — injecting on *every* window entry
    /// would be a genuine livelock, not a test of one.
    pub signal_in_window: bool,
    /// Flush both TLBs whenever the current process sits in the
    /// single-step window.
    pub flush_in_window: bool,
    /// Fail every N-th filesystem operation (reads *and* writes) with an
    /// I/O error — the disk analogue of `oom_at`. Counted on a separate
    /// per-fs-op clock ([`ChaosState::on_fs_op`]), so the fault lands on
    /// the N-th `read`/`write`/`execve`/`dlopen` touch of the RAM fs, not
    /// the N-th instruction.
    pub fs_error_every: Option<u64>,
    /// Truncate every N-th filesystem read/write to a single byte (a
    /// short-I/O fault: the syscall succeeds but transfers less than
    /// asked, which POSIX permits and sloppy callers mishandle).
    pub fs_short_every: Option<u64>,
    /// Corrupt every N-th snapshot save ([`ChaosState::on_snapshot_op`])
    /// with a seeded-random [`SnapshotFault`]. Counted on its own clock
    /// with its own RNG stream, so checkpointing a run — corrupted or not
    /// — never perturbs the step or fs fault schedules. Short *writes* of
    /// snapshot files ride the existing fs-op clock instead.
    pub snap_fault_every: Option<u64>,
    /// Seed for the fault stream's own randomness (eviction draws). Kept
    /// separate from the kernel seed so the same workload can be replayed
    /// under many fault streams.
    pub seed: u64,
}

impl FaultPlan {
    /// True if the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        self.flush_every.is_some()
            || self.evict_every.is_some()
            || self.preempt_every.is_some()
            || self.oom_at.is_some()
            || self.signal_in_window
            || self.flush_in_window
            || self.fs_error_every.is_some()
            || self.fs_short_every.is_some()
            || self.snap_fault_every.is_some()
    }
}

/// How to corrupt a serialized snapshot ([`ChaosState::on_snapshot_op`]).
/// Every kind must be *detected* at load time by the snapshot container's
/// structural/checksum validation — a corruption that loads silently is a
/// bug in the format, not in the consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFault {
    /// Cut the byte stream at a seeded-random offset (torn write / partial
    /// flush).
    Truncate,
    /// Flip one seeded-random bit (media corruption).
    BitFlip,
    /// Swap two manifest entries without recomputing the manifest checksum
    /// (reordered sections from an out-of-order writer).
    SectionReorder,
    /// Bump the format version field (a snapshot from a "future" writer).
    VersionSkew,
}

/// Salt XORed into [`FaultPlan::seed`] for the snapshot-fault RNG stream,
/// keeping it independent of the step stream's eviction draws.
const SNAP_SEED_SALT: u64 = 0x534e_4150_4641_554c; // "SNAPFAUL"

/// The faults due on one step, as decided by [`ChaosState::on_step`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepFaults {
    /// Flush both TLBs.
    pub flush: bool,
    /// Evict one entry from each TLB using [`StepFaults::evict_draws`].
    pub evict: bool,
    /// Seeded draws for the evictions: `[0]` for the I-TLB, `[1]` for the
    /// D-TLB. Two independent values from the fault stream's generator —
    /// deriving both from one u64 would correlate the victim choices of
    /// the two buffers.
    pub evict_draws: [u64; 2],
    /// Force a real context switch at the next scheduling point.
    pub preempt: bool,
    /// Deliver the window signal (plan had `signal_in_window` and the
    /// process is in the window).
    pub signal: bool,
}

/// Counters for injected faults (replay diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Steps observed.
    pub steps: u64,
    /// Spurious whole-TLB flushes (periodic + in-window).
    pub flushes: u64,
    /// Periodic eviction rounds.
    pub evictions: u64,
    /// Forced preemptions.
    pub preemptions: u64,
    /// Flushes fired specifically inside the single-step window.
    pub window_flushes: u64,
    /// Signals fired inside the single-step window.
    pub window_signals: u64,
    /// Filesystem operations observed.
    pub fs_ops: u64,
    /// Injected filesystem I/O errors.
    pub fs_errors: u64,
    /// Injected short filesystem transfers.
    pub fs_shorts: u64,
    /// Snapshot save operations observed.
    pub snap_ops: u64,
    /// Injected snapshot corruptions.
    pub snap_faults: u64,
}

/// The fault decision for one filesystem operation
/// ([`ChaosState::on_fs_op`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsFault {
    /// Fail the operation with an I/O error (takes precedence over
    /// `short`).
    pub error: bool,
    /// Truncate the transfer to one byte.
    pub short: bool,
}

/// The live decision stream for one [`FaultPlan`].
#[derive(Debug)]
pub struct ChaosState {
    /// The plan being executed (immutable once constructed).
    pub plan: FaultPlan,
    pub(crate) rng: StdRng,
    /// Independent stream for snapshot-fault kind draws (see
    /// [`FaultPlan::snap_fault_every`]).
    pub(crate) snap_rng: StdRng,
    /// Injection counters.
    pub stats: ChaosStats,
    /// Whether the previous step was inside the window (edge detector for
    /// the per-window-entry faults).
    pub(crate) was_in_window: bool,
}

impl ChaosState {
    /// Start the decision stream for `plan`.
    pub fn new(plan: FaultPlan) -> ChaosState {
        ChaosState {
            plan,
            rng: StdRng::seed_from_u64(plan.seed),
            snap_rng: StdRng::seed_from_u64(plan.seed ^ SNAP_SEED_SALT),
            stats: ChaosStats::default(),
            was_in_window: false,
        }
    }

    /// Advance one step and report which faults are due. `in_window` is
    /// true when the current process has an armed single-step reload
    /// pending (the Algorithm 1→2 window).
    pub fn on_step(&mut self, in_window: bool) -> StepFaults {
        self.stats.steps += 1;
        let steps = self.stats.steps;
        let due = move |every: Option<u64>| every.is_some_and(|n| steps.is_multiple_of(n.max(1)));
        let mut f = StepFaults {
            flush: due(self.plan.flush_every),
            evict: due(self.plan.evict_every),
            evict_draws: [0; 2],
            preempt: due(self.plan.preempt_every),
            signal: false,
        };
        // Window faults fire on window *entry*, not on every in-window
        // step: a spurious flush is a one-off event that happens to land
        // in the window. (Flushing every in-window step would wipe the
        // armed instruction's own data reload each round — a guaranteed
        // livelock by construction, like `flush_every = 1`, rather than a
        // perturbation the reload dance can be expected to absorb.)
        let entered_window = in_window && !self.was_in_window;
        self.was_in_window = in_window;
        if entered_window && self.plan.flush_in_window {
            f.flush = true;
            self.stats.window_flushes += 1;
        }
        if entered_window && self.plan.signal_in_window && self.stats.window_signals == 0 {
            f.signal = true;
            self.stats.window_signals += 1;
        }
        if f.flush {
            self.stats.flushes += 1;
        }
        if f.evict {
            // Draw even when the TLBs turn out to be empty: the stream must
            // not depend on machine state, only on the step count.
            f.evict_draws = [self.rng.next_u64(), self.rng.next_u64()];
            self.stats.evictions += 1;
        }
        if f.preempt {
            self.stats.preemptions += 1;
        }
        f
    }

    /// Advance the filesystem-operation clock and report whether this
    /// operation should fail or transfer short. A pure function of
    /// `(plan, fs-op count)` — independent of the instruction-step stream,
    /// so adding fs traffic never perturbs the TLB/preemption schedule and
    /// vice versa. When both faults are due on the same operation the hard
    /// error wins.
    pub fn on_fs_op(&mut self) -> FsFault {
        self.stats.fs_ops += 1;
        let ops = self.stats.fs_ops;
        let due = |every: Option<u64>| every.is_some_and(|n| ops.is_multiple_of(n.max(1)));
        let f = FsFault {
            error: due(self.plan.fs_error_every),
            short: !due(self.plan.fs_error_every) && due(self.plan.fs_short_every),
        };
        if f.error {
            self.stats.fs_errors += 1;
        }
        if f.short {
            self.stats.fs_shorts += 1;
        }
        f
    }

    /// Advance the snapshot-save clock and report the corruption (if any)
    /// to apply to the bytes just serialized. A pure function of
    /// `(plan, snapshot-op count)` on its own RNG stream — checkpointing a
    /// run never perturbs the step or fs fault schedules, so a checkpointed
    /// run stays byte-identical to an uncheckpointed one.
    pub fn on_snapshot_op(&mut self) -> Option<SnapshotFault> {
        self.stats.snap_ops += 1;
        let ops = self.stats.snap_ops;
        let due = self
            .plan
            .snap_fault_every
            .is_some_and(|n| ops.is_multiple_of(n.max(1)));
        if !due {
            return None;
        }
        self.stats.snap_faults += 1;
        Some(match self.snap_rng.next_u64() % 4 {
            0 => SnapshotFault::Truncate,
            1 => SnapshotFault::BitFlip,
            2 => SnapshotFault::SectionReorder,
            _ => SnapshotFault::VersionSkew,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut c = ChaosState::new(plan);
        for _ in 0..100 {
            assert_eq!(c.on_step(false), StepFaults::default());
        }
        assert_eq!(c.stats.flushes, 0);
        assert_eq!(c.stats.steps, 100);
    }

    #[test]
    fn periodic_faults_fire_on_schedule() {
        let mut c = ChaosState::new(FaultPlan {
            flush_every: Some(3),
            preempt_every: Some(5),
            ..FaultPlan::default()
        });
        let fired: Vec<(bool, bool)> = (0..15)
            .map(|_| {
                let f = c.on_step(false);
                (f.flush, f.preempt)
            })
            .collect();
        let flushes = fired.iter().filter(|(f, _)| *f).count();
        let preempts = fired.iter().filter(|(_, p)| *p).count();
        assert_eq!(flushes, 5); // steps 3,6,9,12,15
        assert_eq!(preempts, 3); // steps 5,10,15
    }

    #[test]
    fn window_faults_only_fire_in_window() {
        let mut c = ChaosState::new(FaultPlan {
            flush_in_window: true,
            signal_in_window: true,
            ..FaultPlan::default()
        });
        let out = c.on_step(false);
        assert!(!out.flush && !out.signal);
        let inw = c.on_step(true);
        assert!(inw.flush && inw.signal);
        assert_eq!(c.stats.window_flushes, 1);
        assert_eq!(c.stats.window_signals, 1);
        // Window faults are edge-triggered: staying in the window (the
        // armed instruction's own data access may fault for several
        // rounds) injects nothing further.
        let again = c.on_step(true);
        assert!(!again.flush && !again.signal);
        // Leaving and re-entering the window fires the flush again; the
        // signal stays one-shot for the whole run.
        let out = c.on_step(false);
        assert!(!out.flush && !out.signal);
        let reentry = c.on_step(true);
        assert!(reentry.flush && !reentry.signal);
        assert_eq!(c.stats.window_flushes, 2);
        assert_eq!(c.stats.window_signals, 1);
    }

    #[test]
    fn eviction_draws_are_independent_per_tlb() {
        let mut c = ChaosState::new(FaultPlan {
            evict_every: Some(1),
            seed: 7,
            ..FaultPlan::default()
        });
        for _ in 0..32 {
            let f = c.on_step(false);
            assert!(f.evict);
            let [i, d] = f.evict_draws;
            assert_ne!(i, d, "I- and D-TLB draws must not be correlated");
            // The old scheme derived the D-TLB draw as `i >> 32`; pin that
            // the two values are not that projection of one another.
            assert_ne!(d, i >> 32);
        }
    }

    #[test]
    fn fs_faults_fire_on_their_own_clock() {
        let mut c = ChaosState::new(FaultPlan {
            fs_error_every: Some(3),
            fs_short_every: Some(2),
            ..FaultPlan::default()
        });
        // Instruction steps never advance the fs clock.
        for _ in 0..50 {
            c.on_step(false);
        }
        assert_eq!(c.stats.fs_ops, 0);
        let decisions: Vec<FsFault> = (0..6).map(|_| c.on_fs_op()).collect();
        // op 1: clean; op 2: short; op 3: error; op 4: short;
        // op 5: clean; op 6: error wins over short.
        let e = |error, short| FsFault { error, short };
        assert_eq!(
            decisions,
            vec![
                e(false, false),
                e(false, true),
                e(true, false),
                e(false, true),
                e(false, false),
                e(true, false),
            ]
        );
        assert_eq!(c.stats.fs_errors, 2);
        assert_eq!(c.stats.fs_shorts, 2);
    }

    #[test]
    fn inert_plan_never_faults_fs_ops() {
        let mut c = ChaosState::new(FaultPlan::default());
        for _ in 0..100 {
            assert_eq!(c.on_fs_op(), FsFault::default());
        }
        assert!(!FaultPlan::default().is_active());
        assert!(FaultPlan {
            fs_error_every: Some(5),
            ..FaultPlan::default()
        }
        .is_active());
    }

    #[test]
    fn snapshot_faults_fire_on_their_own_clock_and_stream() {
        let plan = FaultPlan {
            flush_every: Some(7),
            evict_every: Some(4),
            snap_fault_every: Some(2),
            seed: 99,
            ..FaultPlan::default()
        };
        assert!(plan.is_active());
        // Two runs, one of which also takes snapshot ops: the step streams
        // must be identical anyway.
        let mut a = ChaosState::new(plan);
        let mut b = ChaosState::new(plan);
        let mut faults = Vec::new();
        for i in 0..100 {
            let fa = a.on_step(i % 13 == 0);
            if i % 10 == 0 {
                faults.push(b.on_snapshot_op());
            }
            let fb = b.on_step(i % 13 == 0);
            assert_eq!(fa, fb, "snapshot ops must not perturb the step stream");
        }
        // Every second snapshot op injects a fault.
        assert_eq!(faults.iter().filter(|f| f.is_some()).count(), 5);
        assert_eq!(b.stats.snap_ops, 10);
        assert_eq!(b.stats.snap_faults, 5);
        assert_eq!(a.stats.snap_ops, 0);
        // Inert plans never inject.
        let mut c = ChaosState::new(FaultPlan::default());
        for _ in 0..20 {
            assert_eq!(c.on_snapshot_op(), None);
        }
    }

    #[test]
    fn decision_stream_is_deterministic() {
        let plan = FaultPlan {
            flush_every: Some(7),
            evict_every: Some(4),
            seed: 1234,
            ..FaultPlan::default()
        };
        let run = |mut c: ChaosState| -> Vec<StepFaults> {
            (0..200).map(|i| c.on_step(i % 13 == 0)).collect()
        };
        let a = run(ChaosState::new(plan));
        let b = run(ChaosState::new(plan));
        assert_eq!(a, b);
    }
}
