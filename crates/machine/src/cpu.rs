//! CPU architectural state: general-purpose registers, `EFLAGS` (including
//! the trap flag used for single-step mode), control registers and the
//! page-fault descriptor.

use std::fmt;

/// General-purpose register names, numbered in x86 encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; syscall number / return value by kernel convention.
    Eax = 0,
    /// Counter; third syscall argument.
    Ecx = 1,
    /// Data; fourth syscall argument, high word of mul/div.
    Edx = 2,
    /// Base; first syscall argument.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame pointer.
    Ebp = 5,
    /// Source index; second syscall argument in this kernel's convention.
    Esi = 6,
    /// Destination index.
    Edi = 7,
}

impl Reg {
    /// All registers in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// Decode a 3-bit register field.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 7`.
    pub fn from_bits(bits: u8) -> Reg {
        Self::ALL[bits as usize]
    }

    /// Lowercase name as used by the assembler (`"eax"`, ...).
    pub fn name(self) -> &'static str {
        ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"][self as usize]
    }

    /// Name of the low byte of the register (`"al"`, ...). The simulator
    /// allows byte operations on every register's low byte (a deliberate
    /// simplification of x86's `ah`/`ch`/`dh`/`bh` encodings).
    pub fn byte_name(self) -> &'static str {
        ["al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil"][self as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `EFLAGS` bit masks.
pub mod flags {
    /// Carry flag.
    pub const CF: u32 = 1 << 0;
    /// Parity flag (parity of the low byte of a result).
    pub const PF: u32 = 1 << 2;
    /// Zero flag.
    pub const ZF: u32 = 1 << 6;
    /// Sign flag.
    pub const SF: u32 = 1 << 7;
    /// Trap flag: when set, the CPU raises a debug trap after the next
    /// instruction completes. The split-memory instruction-TLB load
    /// (paper Algorithm 1, lines 2–5) rides on this bit.
    pub const TF: u32 = 1 << 8;
    /// Interrupt-enable flag (modelled but unused: devices are synchronous).
    pub const IF: u32 = 1 << 9;
    /// Overflow flag.
    pub const OF: u32 = 1 << 11;
}

/// The architectural register file. `Copy` so the executor can snapshot it
/// at instruction start and roll back on a fault, giving precise exceptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regs {
    /// General-purpose registers, indexed by [`Reg`] encoding.
    pub gpr: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Flags register (see [`flags`]).
    pub eflags: u32,
    /// Page-fault linear address, written by the MMU when a `#PF` is raised
    /// (paper §4.2.2 step 3 reads this to distinguish TLB-miss kinds).
    pub cr2: u32,
    /// Physical frame number of the current page directory. Loaded via
    /// [`crate::Machine::set_cr3`], which flushes both TLBs.
    pub cr3: u32,
}

impl Default for Regs {
    fn default() -> Regs {
        Regs {
            gpr: [0; 8],
            eip: 0,
            eflags: flags::IF,
            cr2: 0,
            cr3: 0,
        }
    }
}

impl Regs {
    /// Read a general-purpose register.
    #[inline]
    pub fn get(&self, r: Reg) -> u32 {
        self.gpr[r as usize]
    }

    /// Write a general-purpose register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u32) {
        self.gpr[r as usize] = v;
    }

    /// Test an `EFLAGS` bit mask.
    #[inline]
    pub fn flag(&self, mask: u32) -> bool {
        self.eflags & mask != 0
    }

    /// Set or clear an `EFLAGS` bit mask.
    #[inline]
    pub fn set_flag(&mut self, mask: u32, on: bool) {
        if on {
            self.eflags |= mask;
        } else {
            self.eflags &= !mask;
        }
    }
}

/// Privilege level of a memory access. The simulated kernel runs as host
/// code, so "kernel mode" appears only through the explicit
/// `kernel_read_*`/`kernel_write_*` accessors on [`crate::Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Privilege {
    /// CPL 0: supervisor; may access pages whose user bit is clear, and (like
    /// a pre-`CR0.WP` x86 kernel) may write through read-only entries.
    Kernel,
    /// CPL 3: ordinary guest execution.
    User,
}

/// Kind of memory access, which selects the TLB: [`Access::Fetch`] goes to
/// the instruction-TLB, everything else to the data-TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Read,
    /// Data store.
    Write,
}

/// Everything the kernel learns from a page fault — the x86 error code plus
/// CR2, decomposed into named fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFaultInfo {
    /// Faulting linear address (also latched into CR2).
    pub addr: u32,
    /// The access that faulted.
    pub access: Access,
    /// Privilege of the faulting access.
    pub privilege: Privilege,
    /// `true` = protection violation on a present entry; `false` = entry not
    /// present.
    pub present: bool,
}

impl PageFaultInfo {
    /// x86-style error code: bit0 = present, bit1 = write, bit2 = user,
    /// bit4 = instruction fetch.
    pub fn error_code(&self) -> u32 {
        let mut c = 0;
        if self.present {
            c |= 1;
        }
        if self.access == Access::Write {
            c |= 2;
        }
        if self.privilege == Privilege::User {
            c |= 4;
        }
        if self.access == Access::Fetch {
            c |= 16;
        }
        c
    }
}

impl fmt::Display for PageFaultInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "page fault at {:#010x} ({:?} {:?}, {})",
            self.addr,
            self.access,
            self.privilege,
            if self.present {
                "protection"
            } else {
                "not present"
            }
        )
    }
}

/// The CPU: register file plus the latched single-step-pending state used
/// when an instruction that raises a software interrupt completes with the
/// trap flag set (the `#DB` is delivered after the syscall is serviced).
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// Architectural registers.
    pub regs: Regs,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(Reg::from_bits(i as u8), *r);
            assert_eq!(*r as usize, i);
        }
    }

    #[test]
    fn reg_names_match_x86_order() {
        assert_eq!(Reg::from_bits(0).name(), "eax");
        assert_eq!(Reg::from_bits(4).name(), "esp");
        assert_eq!(Reg::Ebx.byte_name(), "bl");
    }

    #[test]
    fn flags_accessors() {
        let mut r = Regs::default();
        assert!(r.flag(flags::IF));
        assert!(!r.flag(flags::TF));
        r.set_flag(flags::TF, true);
        assert!(r.flag(flags::TF));
        r.set_flag(flags::TF, false);
        assert!(!r.flag(flags::TF));
    }

    #[test]
    fn gpr_get_set() {
        let mut r = Regs::default();
        r.set(Reg::Esp, 0xbfff_0000);
        assert_eq!(r.get(Reg::Esp), 0xbfff_0000);
        assert_eq!(r.gpr[4], 0xbfff_0000);
    }

    #[test]
    fn error_code_bits() {
        let pf = PageFaultInfo {
            addr: 0x1000,
            access: Access::Write,
            privilege: Privilege::User,
            present: true,
        };
        assert_eq!(pf.error_code(), 1 | 2 | 4);
        let pf = PageFaultInfo {
            addr: 0x1000,
            access: Access::Fetch,
            privilege: Privilege::User,
            present: false,
        };
        assert_eq!(pf.error_code(), 4 | 16);
    }
}
