//! Serialization of machine state: the wire primitives shared by every
//! snapshot section, plus the codec for the machine itself (CPU, physical
//! memory, frame allocator, both TLBs, tracer metadata) and for the chaos
//! decision stream.
//!
//! The container format — sections, manifest, checksums — lives in
//! `sm-kernel`'s `snapshot` module; this module provides the building
//! blocks. Design rules:
//!
//! * **Verbatim where determinism demands it.** The free-list order, the
//!   per-set TLB MRU order, the shadow model's recency order and the RNG
//!   states are all part of the deterministic event stream; they round-trip
//!   exactly, so a restored run replays byte-for-byte.
//! * **Sparse where memory is big.** Physical frames are stored only when
//!   their contents or write-generation are nonzero; a freshly booted 64 MiB
//!   machine snapshots in kilobytes.
//! * **Hostile-input safe.** [`Reader`] bounds-checks every take and never
//!   allocates ahead of the data actually present, so corrupted or
//!   truncated snapshots surface as [`SnapshotError`] values — never as
//!   panics or absurd allocations. The corrupted-snapshot fuzz tests hold
//!   the whole load path to that contract.
//! * **Observations are not state.** The decoded-instruction cache and the
//!   trace ring contents are reconstructible/diagnostic artifacts; only the
//!   tracer's counters and configuration are serialized, and the decode
//!   cache restores cold (it is transparent to the modeled machine).

use crate::chaos::{ChaosState, ChaosStats, FaultPlan};
use crate::costs::CycleCosts;
use crate::machine::{Machine, MachineConfig};
use crate::pte::{Frame, PAGE_SIZE};
use crate::stats::MachineStats;
use crate::tlb::{Tlb, TlbEntry, TlbGeometry, TlbPreset, TlbStats};
use sm_rng::StdRng;
use sm_trace::Tracer;
use std::fmt;

/// Largest tracer ring capacity a snapshot may claim. Far above any real
/// configuration; exists so a corrupted capacity field cannot demand an
/// absurd allocation as the restored ring fills.
pub const MAX_TRACE_CAPACITY: usize = 1 << 22;

/// Largest TLB set/way count a snapshot may claim (per dimension).
pub const MAX_TLB_DIM: usize = 1 << 16;

/// Why a snapshot failed to load. Every corruption mode the chaos harness
/// injects (and the fuzz tests generate) must land in one of these — a
/// snapshot that loads wrongly instead of erroring is a format bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The leading magic bytes are wrong: not a snapshot at all.
    BadMagic,
    /// The format version is newer (or garbage) relative to this reader.
    UnsupportedVersion {
        /// Version field found in the header.
        found: u32,
    },
    /// The byte stream ended before a field it promised.
    Truncated,
    /// A section's payload does not hash to its manifest digest.
    SectionChecksum {
        /// Four-byte section tag, as ASCII.
        tag: [u8; 4],
    },
    /// The manifest itself does not hash to its recorded digest (covers
    /// reordered, duplicated or retagged sections).
    ManifestChecksum,
    /// The same section tag appears twice in the manifest.
    DuplicateSection {
        /// The repeated tag.
        tag: [u8; 4],
    },
    /// A section the loader requires is absent.
    MissingSection {
        /// The absent tag.
        tag: [u8; 4],
    },
    /// A field decoded but its value is structurally impossible (bad bool
    /// byte, out-of-range frame number, non-power-of-two set count, …).
    Malformed(&'static str),
    /// The snapshot was taken under a different protection engine than the
    /// one offered for restore.
    EngineMismatch {
        /// Engine name recorded in the snapshot.
        expected: String,
        /// Engine name offered at restore time.
        found: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn ascii(tag: &[u8; 4]) -> String {
            tag.iter().map(|b| *b as char).collect()
        }
        match self {
            SnapshotError::BadMagic => f.write_str("bad snapshot magic"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated => f.write_str("snapshot truncated"),
            SnapshotError::SectionChecksum { tag } => {
                write!(f, "section '{}' checksum mismatch", ascii(tag))
            }
            SnapshotError::ManifestChecksum => f.write_str("manifest checksum mismatch"),
            SnapshotError::DuplicateSection { tag } => {
                write!(f, "duplicate section '{}'", ascii(tag))
            }
            SnapshotError::MissingSection { tag } => {
                write!(f, "missing section '{}'", ascii(tag))
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::EngineMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot taken under engine '{expected}', restoring with '{found}'"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian byte-stream builder for snapshot payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append an `Option<u64>` as a presence byte plus (when present) the
    /// value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// Append an `Option<u32>` as a presence byte plus (when present) the
    /// value.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    /// Append a u64 length prefix followed by the bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append raw bytes with no length prefix (fixed-size payloads whose
    /// length the reader already knows).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked reader over a snapshot byte stream. Every accessor
/// returns [`SnapshotError::Truncated`] instead of reading past the end,
/// and length-prefixed reads verify the claimed length against the bytes
/// actually remaining *before* allocating.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Take `n` raw bytes.
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take_raw(1)?[0])
    }

    /// Take a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take_raw(2)?.try_into().unwrap()))
    }

    /// Take a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take_raw(4)?.try_into().unwrap()))
    }

    /// Take a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take_raw(8)?.try_into().unwrap()))
    }

    /// Take a bool byte; anything but 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool byte not 0 or 1")),
        }
    }

    /// Take an `Option<u64>` (presence byte + value).
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Malformed("option tag not 0 or 1")),
        }
    }

    /// Take an `Option<u32>` (presence byte + value).
    pub fn opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(SnapshotError::Malformed("option tag not 0 or 1")),
        }
    }

    /// Take a u64-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(SnapshotError::Truncated);
        }
        Ok(self.take_raw(n as usize)?.to_vec())
    }

    /// Take a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        String::from_utf8(self.bytes()?).map_err(|_| SnapshotError::Malformed("invalid utf-8"))
    }

    /// Take a usize stored as u64, rejecting values above `max` (guards
    /// element counts before any allocation or loop trusts them).
    pub fn count(&mut self, max: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > max as u64 {
            return Err(SnapshotError::Malformed("count out of range"));
        }
        Ok(n as usize)
    }
}

// ---- machine codec --------------------------------------------------------

fn write_costs(w: &mut Writer, c: &CycleCosts) {
    for v in [
        c.insn,
        c.tlb_walk,
        c.exception,
        c.syscall,
        c.cr3_load,
        c.invlpg,
        c.pf_handler,
        c.split_data_reload,
        c.split_code_reload,
        c.debug_handler,
        c.demand_page,
        c.cow_copy,
        c.context_switch,
        c.copy_byte,
        c.soft_tlb_fill,
        c.icache_flush,
    ] {
        w.u64(v);
    }
}

fn read_costs(r: &mut Reader) -> Result<CycleCosts, SnapshotError> {
    Ok(CycleCosts {
        insn: r.u64()?,
        tlb_walk: r.u64()?,
        exception: r.u64()?,
        syscall: r.u64()?,
        cr3_load: r.u64()?,
        invlpg: r.u64()?,
        pf_handler: r.u64()?,
        split_data_reload: r.u64()?,
        split_code_reload: r.u64()?,
        debug_handler: r.u64()?,
        demand_page: r.u64()?,
        cow_copy: r.u64()?,
        context_switch: r.u64()?,
        copy_byte: r.u64()?,
        soft_tlb_fill: r.u64()?,
        icache_flush: r.u64()?,
    })
}

fn read_geometry(r: &mut Reader) -> Result<TlbGeometry, SnapshotError> {
    let sets = r.count(MAX_TLB_DIM)?;
    let ways = r.count(MAX_TLB_DIM)?;
    if sets == 0 || !sets.is_power_of_two() {
        return Err(SnapshotError::Malformed("TLB set count not a power of two"));
    }
    if ways == 0 {
        return Err(SnapshotError::Malformed("TLB way count is zero"));
    }
    Ok(TlbGeometry::new(sets, ways))
}

fn write_config(w: &mut Writer, c: &MachineConfig) {
    w.u32(c.phys_frames);
    w.u64(c.tlb.itlb.sets as u64);
    w.u64(c.tlb.itlb.ways as u64);
    w.u64(c.tlb.dtlb.sets as u64);
    w.u64(c.tlb.dtlb.ways as u64);
    w.bool(c.nx_enabled);
    w.bool(c.software_tlb);
    w.bool(c.decode_cache);
    w.u32(c.trace);
    w.u64(c.trace_capacity as u64);
    write_costs(w, &c.costs);
}

fn read_config(r: &mut Reader) -> Result<MachineConfig, SnapshotError> {
    let phys_frames = r.u32()?;
    if phys_frames == 0 {
        return Err(SnapshotError::Malformed("zero physical frames"));
    }
    if phys_frames as u64 * PAGE_SIZE as u64 > u32::MAX as u64 + 1 {
        return Err(SnapshotError::Malformed("physical memory too large"));
    }
    let itlb = read_geometry(r)?;
    let dtlb = read_geometry(r)?;
    Ok(MachineConfig {
        phys_frames,
        tlb: TlbPreset { itlb, dtlb },
        nx_enabled: r.bool()?,
        software_tlb: r.bool()?,
        decode_cache: r.bool()?,
        trace: r.u32()?,
        trace_capacity: r.count(MAX_TRACE_CAPACITY)?,
        // Never serialized: the kernel re-arms it from the restored
        // engine's `wants_cfi_events`, keeping the dump format stable.
        cfi_events: false,
        costs: read_costs(r)?,
    })
}

fn write_tlb_stats(w: &mut Writer, s: &TlbStats) {
    for v in [
        s.hits,
        s.misses,
        s.cold_misses,
        s.capacity_misses,
        s.conflict_misses,
        s.fills,
        s.flushes,
        s.page_invalidations,
        s.evictions,
        s.chaos_evictions,
    ] {
        w.u64(v);
    }
}

fn read_tlb_stats(r: &mut Reader) -> Result<TlbStats, SnapshotError> {
    Ok(TlbStats {
        hits: r.u64()?,
        misses: r.u64()?,
        cold_misses: r.u64()?,
        capacity_misses: r.u64()?,
        conflict_misses: r.u64()?,
        fills: r.u64()?,
        flushes: r.u64()?,
        page_invalidations: r.u64()?,
        evictions: r.u64()?,
        chaos_evictions: r.u64()?,
    })
}

fn write_tlb(w: &mut Writer, t: &Tlb) {
    w.u16(t.current_asid);
    w.u8(match t.last_miss {
        sm_trace::MissClass::Cold => 0,
        sm_trace::MissClass::Conflict => 1,
        sm_trace::MissClass::Capacity => 2,
    });
    write_tlb_stats(w, &t.stats);
    // Per-set contents, MRU-first, exactly as resident: replacement order
    // is part of the deterministic miss stream.
    w.u64(t.sets.len() as u64);
    for set in &t.sets {
        w.u64(set.len() as u64);
        for e in set {
            w.u32(e.vpn);
            w.u32(e.pfn);
            w.u16(e.asid);
            w.bool(e.user);
            w.bool(e.writable);
            w.bool(e.nx);
        }
    }
    // Shadow recency order verbatim; `seen` sorted for canonical bytes.
    w.u64(t.shadow.len() as u64);
    for k in &t.shadow {
        w.u64(*k);
    }
    let mut seen: Vec<u64> = t.seen.iter().copied().collect();
    seen.sort_unstable();
    w.u64(seen.len() as u64);
    for k in seen {
        w.u64(k);
    }
}

fn read_tlb(r: &mut Reader, t: &mut Tlb) -> Result<(), SnapshotError> {
    let geometry = t.geometry();
    // The repeat-hit memo is derived state (never serialized): a restored
    // TLB starts without one and re-earns it on its first hit or fill.
    t.last = None;
    t.current_asid = r.u16()?;
    t.last_miss = match r.u8()? {
        0 => sm_trace::MissClass::Cold,
        1 => sm_trace::MissClass::Conflict,
        2 => sm_trace::MissClass::Capacity,
        _ => return Err(SnapshotError::Malformed("unknown miss class")),
    };
    t.stats = read_tlb_stats(r)?;
    let nsets = r.count(MAX_TLB_DIM)?;
    if nsets != geometry.sets {
        return Err(SnapshotError::Malformed(
            "TLB set count disagrees with geometry",
        ));
    }
    for si in 0..nsets {
        let n = r.count(geometry.ways)?;
        let set = &mut t.sets[si];
        set.clear();
        for _ in 0..n {
            let e = TlbEntry {
                vpn: r.u32()?,
                pfn: r.u32()?,
                asid: r.u16()?,
                user: r.bool()?,
                writable: r.bool()?,
                nx: r.bool()?,
            };
            if geometry.set_of(e.vpn) != si {
                return Err(SnapshotError::Malformed("TLB entry in wrong set"));
            }
            set.push(e);
        }
    }
    let nshadow = r.count(geometry.capacity())?;
    t.shadow.clear();
    for _ in 0..nshadow {
        t.shadow.push(r.u64()?);
    }
    let nseen = r.count(r.remaining() / 8)?;
    t.seen.clear();
    for _ in 0..nseen {
        t.seen.insert(r.u64()?);
    }
    Ok(())
}

/// Serialize the complete architectural state of a machine. The decoded-
/// instruction cache and the trace ring contents are intentionally not
/// state (see module docs); everything else round-trips exactly.
pub fn save_machine(m: &Machine) -> Vec<u8> {
    let mut w = Writer::new();
    write_config(&mut w, &m.config);
    w.u64(m.cycles);
    for g in m.cpu.regs.gpr {
        w.u32(g);
    }
    w.u32(m.cpu.regs.eip);
    w.u32(m.cpu.regs.eflags);
    w.u32(m.cpu.regs.cr2);
    w.u32(m.cpu.regs.cr3);
    w.bool(m.pending_singlestep);
    for v in [
        m.stats.instructions,
        m.stats.walks,
        m.stats.page_faults,
        m.stats.invalid_opcodes,
        m.stats.debug_traps,
        m.stats.divide_errors,
        m.stats.syscalls,
        m.stats.cr3_loads,
        m.stats.invlpgs,
    ] {
        w.u64(v);
    }
    // Physical memory, sparse: frames with a nonzero write generation, then
    // frames with nonzero contents (raw 4 KiB payloads).
    let frames = m.phys.frame_count();
    let nonzero_vers: Vec<u32> = (0..frames)
        .filter(|f| m.phys.versions[*f as usize] != 0)
        .collect();
    w.u64(nonzero_vers.len() as u64);
    for f in nonzero_vers {
        w.u32(f);
        w.u64(m.phys.versions[f as usize]);
    }
    let page = PAGE_SIZE as usize;
    let zero_page = [0u8; PAGE_SIZE as usize];
    let nonzero_frames: Vec<u32> = (0..frames)
        .filter(|f| {
            // Write generation 0 means the frame was never written, so it
            // is still all-zero — skipping it turns this scan from all of
            // physical memory into just the touched frames, which is what
            // makes `save` cheap enough to call per segment boundary.
            // Touched frames still get the content check (a frame can be
            // written back to zero), as a single memcmp.
            m.phys.versions[*f as usize] != 0 && {
                let i = *f as usize * page;
                m.phys.bytes[i..i + page] != zero_page
            }
        })
        .collect();
    w.u64(nonzero_frames.len() as u64);
    for f in nonzero_frames {
        w.u32(f);
        w.raw(&m.phys.bytes[f as usize * page..(f as usize + 1) * page]);
    }
    // Frame allocator, verbatim (free-list order included).
    let a = &m.phys.allocator;
    w.u64(a.free.len() as u64);
    for f in &a.free {
        w.u32(f.0);
    }
    w.u32(a.next_fresh);
    let nonzero_rc: Vec<u32> = (0..a.total)
        .filter(|f| a.refcounts[*f as usize] != 0)
        .collect();
    w.u64(nonzero_rc.len() as u64);
    for f in nonzero_rc {
        w.u32(f);
        w.u32(a.refcounts[f as usize]);
    }
    w.u32(a.total);
    w.u32(a.allocated);
    w.u32(a.peak);
    w.u64(a.alloc_calls);
    w.opt_u64(a.inject_next);
    w.opt_u64(a.inject_every);
    w.u64(a.injected_failures);
    write_tlb(&mut w, &m.itlb);
    write_tlb(&mut w, &m.dtlb);
    // Tracer metadata (mask/capacity/seq/filter — not the ring contents).
    w.u32(m.tracer.enabled());
    w.u64(m.tracer.capacity() as u64);
    w.u64(m.tracer.emitted());
    w.opt_u32(m.tracer.pid_filter());
    w.into_bytes()
}

/// Rebuild a machine from [`save_machine`] bytes.
///
/// # Errors
///
/// Any structural or bounds violation in the byte stream returns a
/// [`SnapshotError`]; corrupted input never panics.
pub fn load_machine(bytes: &[u8]) -> Result<Machine, SnapshotError> {
    let mut r = Reader::new(bytes);
    let m = load_machine_from(&mut r)?;
    if !r.is_done() {
        return Err(SnapshotError::Malformed(
            "trailing bytes after machine state",
        ));
    }
    Ok(m)
}

fn load_machine_from(r: &mut Reader) -> Result<Machine, SnapshotError> {
    let config = read_config(r)?;
    let mut m = Machine::new(config);
    m.cycles = r.u64()?;
    for g in m.cpu.regs.gpr.iter_mut() {
        *g = r.u32()?;
    }
    m.cpu.regs.eip = r.u32()?;
    m.cpu.regs.eflags = r.u32()?;
    m.cpu.regs.cr2 = r.u32()?;
    m.cpu.regs.cr3 = r.u32()?;
    m.pending_singlestep = r.bool()?;
    m.stats = MachineStats {
        instructions: r.u64()?,
        walks: r.u64()?,
        page_faults: r.u64()?,
        invalid_opcodes: r.u64()?,
        debug_traps: r.u64()?,
        divide_errors: r.u64()?,
        syscalls: r.u64()?,
        cr3_loads: r.u64()?,
        invlpgs: r.u64()?,
    };
    let frames = m.phys.frame_count();
    let nvers = r.count(frames as usize)?;
    for _ in 0..nvers {
        let f = r.u32()?;
        let v = r.u64()?;
        if f >= frames {
            return Err(SnapshotError::Malformed("frame version index out of range"));
        }
        // Restored verbatim, bypassing `bump`: generations must survive the
        // round trip unchanged or decode-cache invalidation would diverge.
        m.phys.versions[f as usize] = v;
    }
    let page = PAGE_SIZE as usize;
    let nframes = r.count(frames as usize)?;
    for _ in 0..nframes {
        let f = r.u32()?;
        if f >= frames {
            return Err(SnapshotError::Malformed("frame content index out of range"));
        }
        let data = r.take_raw(page)?;
        m.phys.bytes[f as usize * page..(f as usize + 1) * page].copy_from_slice(data);
    }
    let a = &mut m.phys.allocator;
    let nfree = r.count(a.total as usize)?;
    a.free.clear();
    for _ in 0..nfree {
        let f = r.u32()?;
        if f == 0 || f >= a.total {
            return Err(SnapshotError::Malformed("free-list frame out of range"));
        }
        a.free.push(Frame(f));
    }
    a.next_fresh = r.u32()?;
    if a.next_fresh == 0 || a.next_fresh > a.total {
        return Err(SnapshotError::Malformed("next_fresh out of range"));
    }
    let nrc = r.count(a.total as usize)?;
    a.refcounts.iter_mut().for_each(|rc| *rc = 0);
    for _ in 0..nrc {
        let f = r.u32()?;
        let rc = r.u32()?;
        if f as usize >= a.refcounts.len() {
            return Err(SnapshotError::Malformed("refcount frame out of range"));
        }
        a.refcounts[f as usize] = rc;
    }
    let total = r.u32()?;
    if total != a.total {
        return Err(SnapshotError::Malformed(
            "allocator total disagrees with config",
        ));
    }
    a.allocated = r.u32()?;
    a.peak = r.u32()?;
    a.alloc_calls = r.u64()?;
    a.inject_next = r.opt_u64()?;
    a.inject_every = r.opt_u64()?;
    a.injected_failures = r.u64()?;
    read_tlb(r, &mut m.itlb)?;
    read_tlb(r, &mut m.dtlb)?;
    let mask = r.u32()?;
    let capacity = r.count(MAX_TRACE_CAPACITY)?;
    let next_seq = r.u64()?;
    let pid_filter = r.opt_u32()?;
    m.tracer = Tracer::restore_meta(mask, capacity, next_seq, pid_filter);
    Ok(m)
}

// ---- chaos codec ----------------------------------------------------------

/// Serialize a [`FaultPlan`] in field-declaration order. Shared by the
/// chaos codec below, the kernel snapshot's CONF section, and the chaos
/// bench's failure-dump header, so a plan written anywhere reads back
/// everywhere.
pub fn write_plan(w: &mut Writer, p: &FaultPlan) {
    w.opt_u64(p.flush_every);
    w.opt_u64(p.evict_every);
    w.opt_u64(p.preempt_every);
    w.opt_u64(p.oom_at);
    w.opt_u64(p.oom_every_after);
    w.bool(p.signal_in_window);
    w.bool(p.flush_in_window);
    w.opt_u64(p.fs_error_every);
    w.opt_u64(p.fs_short_every);
    w.opt_u64(p.snap_fault_every);
    w.u64(p.seed);
}

/// Deserialize a [`FaultPlan`] written by [`write_plan`].
///
/// # Errors
///
/// [`SnapshotError::Truncated`] or [`SnapshotError::Malformed`] on any
/// structural violation.
pub fn read_plan(r: &mut Reader) -> Result<FaultPlan, SnapshotError> {
    Ok(FaultPlan {
        flush_every: r.opt_u64()?,
        evict_every: r.opt_u64()?,
        preempt_every: r.opt_u64()?,
        oom_at: r.opt_u64()?,
        oom_every_after: r.opt_u64()?,
        signal_in_window: r.bool()?,
        flush_in_window: r.bool()?,
        fs_error_every: r.opt_u64()?,
        fs_short_every: r.opt_u64()?,
        snap_fault_every: r.opt_u64()?,
        seed: r.u64()?,
    })
}

/// Serialize a chaos decision stream: the plan, both RNG states (SplitMix64
/// state *is* the seed of the remaining stream), the injection counters and
/// the window edge-detector.
pub fn save_chaos(c: &ChaosState) -> Vec<u8> {
    let mut w = Writer::new();
    write_plan(&mut w, &c.plan);
    w.u64(c.rng.state());
    w.u64(c.snap_rng.state());
    for v in [
        c.stats.steps,
        c.stats.flushes,
        c.stats.evictions,
        c.stats.preemptions,
        c.stats.window_flushes,
        c.stats.window_signals,
        c.stats.fs_ops,
        c.stats.fs_errors,
        c.stats.fs_shorts,
        c.stats.snap_ops,
        c.stats.snap_faults,
    ] {
        w.u64(v);
    }
    w.bool(c.was_in_window);
    w.into_bytes()
}

/// Rebuild a chaos decision stream from [`save_chaos`] bytes. The restored
/// stream continues exactly where the saved one left off.
///
/// # Errors
///
/// [`SnapshotError`] on any structural violation.
pub fn load_chaos(bytes: &[u8]) -> Result<ChaosState, SnapshotError> {
    let mut r = Reader::new(bytes);
    let plan = read_plan(&mut r)?;
    let mut c = ChaosState::new(plan);
    c.rng = StdRng::seed_from_u64(r.u64()?);
    c.snap_rng = StdRng::seed_from_u64(r.u64()?);
    c.stats = ChaosStats {
        steps: r.u64()?,
        flushes: r.u64()?,
        evictions: r.u64()?,
        preemptions: r.u64()?,
        window_flushes: r.u64()?,
        window_signals: r.u64()?,
        fs_ops: r.u64()?,
        fs_errors: r.u64()?,
        fs_shorts: r.u64()?,
        snap_ops: r.u64()?,
        snap_faults: r.u64()?,
    };
    c.was_in_window = r.bool()?;
    if !r.is_done() {
        return Err(SnapshotError::Malformed("trailing bytes after chaos state"));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Privilege;
    use crate::pte;

    fn busy_machine() -> Machine {
        let mut m = Machine::new(MachineConfig {
            trace: sm_trace::mask::TLB,
            ..MachineConfig::pentium3()
        });
        let dir = m.alloc_frame().unwrap();
        let tab = m.alloc_frame().unwrap();
        let code = m.alloc_frame().unwrap();
        let data = m.alloc_frame().unwrap();
        m.phys.write_u32(
            dir.base(),
            pte::make(tab, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        m.phys.write_u32(
            tab.base() + 4,
            pte::make(code, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        m.phys.write_u32(
            tab.base() + 8,
            pte::make(data, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        m.phys.write(code.base(), &[0x90, 0xF4]); // nop; hlt
        m.set_cr3(dir);
        m.cpu.regs.eip = PAGE_SIZE;
        assert!(m.step().is_none());
        m.write_u8(2 * PAGE_SIZE + 5, 0xAB, Privilege::User)
            .unwrap();
        // Leave some allocator history: a freed frame on the free list.
        let scratch = m.alloc_frame().unwrap();
        m.free_frame(scratch);
        m
    }

    fn assert_machines_equal(a: &Machine, b: &Machine) {
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cpu.regs, b.cpu.regs);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.phys.bytes, b.phys.bytes);
        assert_eq!(a.phys.versions, b.phys.versions);
        assert_eq!(a.phys.allocator.free, b.phys.allocator.free);
        assert_eq!(a.phys.allocator.next_fresh, b.phys.allocator.next_fresh);
        assert_eq!(a.phys.allocator.refcounts, b.phys.allocator.refcounts);
        assert_eq!(a.itlb.stats, b.itlb.stats);
        assert_eq!(a.dtlb.stats, b.dtlb.stats);
        assert_eq!(a.itlb.sets, b.itlb.sets);
        assert_eq!(a.dtlb.sets, b.dtlb.sets);
        assert_eq!(a.itlb.shadow, b.itlb.shadow);
        assert_eq!(a.dtlb.shadow, b.dtlb.shadow);
        assert_eq!(a.itlb.seen, b.itlb.seen);
        assert_eq!(a.dtlb.seen, b.dtlb.seen);
        assert_eq!(a.tracer.enabled(), b.tracer.enabled());
        assert_eq!(a.tracer.capacity(), b.tracer.capacity());
        assert_eq!(a.tracer.emitted(), b.tracer.emitted());
    }

    #[test]
    fn machine_roundtrip_is_exact_and_canonical() {
        let m = busy_machine();
        let bytes = save_machine(&m);
        let restored = load_machine(&bytes).unwrap();
        assert_machines_equal(&m, &restored);
        // Canonical form: serializing the restored machine reproduces the
        // exact bytes (sorted maps, verbatim orders).
        assert_eq!(save_machine(&restored), bytes);
    }

    #[test]
    fn restored_machine_continues_identically() {
        // Decode cache off: the restored machine must be bit-identical in
        // every observable, including TLB hit counters.
        let mut m = Machine::new(MachineConfig {
            decode_cache: false,
            ..MachineConfig::pentium3()
        });
        let dir = m.alloc_frame().unwrap();
        let tab = m.alloc_frame().unwrap();
        let code = m.alloc_frame().unwrap();
        m.phys.write_u32(
            dir.base(),
            pte::make(tab, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        m.phys.write_u32(
            tab.base() + 4,
            pte::make(code, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        m.phys.write(code.base(), &[0x90, 0xF4]); // nop; hlt
        m.set_cr3(dir);
        m.cpu.regs.eip = PAGE_SIZE;
        assert!(m.step().is_none());
        let bytes = save_machine(&m);
        let mut r = load_machine(&bytes).unwrap();
        // Drive both for a few steps; streams must match exactly.
        for _ in 0..4 {
            m.cpu.regs.eip = PAGE_SIZE;
            r.cpu.regs.eip = PAGE_SIZE;
            assert_eq!(m.step(), r.step());
            assert_eq!(m.cycles, r.cycles);
        }
        assert_machines_equal(&m, &r);
    }

    #[test]
    fn decode_cache_warmth_only_affects_tlb_hit_counters() {
        // The decode cache is deliberately not snapshot state: it restores
        // cold, and the only observable difference a cold cache can make is
        // extra same-page I-TLB *hits* while instructions re-decode (hits
        // charge no cycles, walk nothing and change no MachineStats
        // counter). Pin that contract: everything except `TlbStats::hits`
        // continues identically.
        let mut m = busy_machine();
        let bytes = save_machine(&m);
        let mut r = load_machine(&bytes).unwrap();
        for _ in 0..4 {
            m.cpu.regs.eip = PAGE_SIZE;
            r.cpu.regs.eip = PAGE_SIZE;
            assert_eq!(m.step(), r.step());
            assert_eq!(m.cycles, r.cycles);
        }
        assert_eq!(m.stats, r.stats);
        let neutral = |s: &TlbStats| TlbStats { hits: 0, ..*s };
        assert_eq!(neutral(&m.itlb.stats), neutral(&r.itlb.stats));
        assert_eq!(m.dtlb.stats, r.dtlb.stats, "data path never re-decodes");
        assert_eq!(m.itlb.sets, r.itlb.sets);
        assert_eq!(m.phys.bytes, r.phys.bytes);
    }

    #[test]
    fn sparse_encoding_keeps_fresh_machines_small() {
        let m = Machine::new(MachineConfig::default()); // 64 MiB of frames
        let bytes = save_machine(&m);
        assert!(
            bytes.len() < 4096,
            "fresh 64 MiB machine serialized to {} bytes",
            bytes.len()
        );
        let restored = load_machine(&bytes).unwrap();
        assert_machines_equal(&m, &restored);
    }

    #[test]
    fn truncation_and_flips_error_not_panic() {
        let bytes = save_machine(&busy_machine());
        for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
            match load_machine(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncation at {cut} loaded successfully"),
            }
        }
        // Bit flips either fail structurally or load as a machine; both are
        // acceptable at this layer (the kernel container adds checksums) —
        // the requirement here is no panic.
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let mut corrupt = bytes.clone();
            let bit = rng.next_u64() as usize % (corrupt.len() * 8);
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let _ = load_machine(&corrupt);
        }
    }

    #[test]
    fn chaos_roundtrip_resumes_the_stream() {
        let plan = FaultPlan {
            evict_every: Some(3),
            flush_every: Some(5),
            snap_fault_every: Some(2),
            seed: 42,
            ..FaultPlan::default()
        };
        let mut a = ChaosState::new(plan);
        for i in 0..37 {
            a.on_step(i % 5 == 0);
            if i % 11 == 0 {
                a.on_snapshot_op();
            }
        }
        let bytes = save_chaos(&a);
        let mut b = load_chaos(&bytes).unwrap();
        assert_eq!(a.stats, b.stats);
        for i in 0..37 {
            assert_eq!(a.on_step(i % 4 == 0), b.on_step(i % 4 == 0));
            assert_eq!(a.on_snapshot_op(), b.on_snapshot_op());
        }
        assert_eq!(save_chaos(&a), save_chaos(&b));
    }

    #[test]
    fn reader_rejects_bad_bools_options_and_counts() {
        let mut w = Writer::new();
        w.u8(2);
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes).bool(),
            Err(SnapshotError::Malformed("bool byte not 0 or 1"))
        );
        assert_eq!(
            Reader::new(&bytes).opt_u64(),
            Err(SnapshotError::Malformed("option tag not 0 or 1"))
        );
        let mut w = Writer::new();
        w.u64(u64::MAX); // a count that would demand an absurd allocation
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes).count(1000),
            Err(SnapshotError::Malformed("count out of range"))
        );
        assert_eq!(Reader::new(&bytes).bytes(), Err(SnapshotError::Truncated));
        assert_eq!(Reader::new(&[]).u32(), Err(SnapshotError::Truncated));
    }
}
