//! Instruction execution semantics.
//!
//! [`Machine::step`] fetches (through the instruction-TLB), decodes and
//! executes one instruction against a [`Machine`]. Every memory operand access goes
//! through the data-TLB. The executor mutates registers freely because
//! [`Machine::step`] snapshots and rolls back the register file on a fault;
//! memory is only mutated by stores that have already fully translated, so
//! all exceptions are precise.

use crate::cpu::{flags, Access, PageFaultInfo, Privilege, Reg};
use crate::isa::{
    self, AluOp, CodeSource, Cond, Decoded, Dir, Grp5Op, Insn, Mem, Rm, ShiftCount, ShiftOp, UnOp,
};
use crate::machine::{CfiEvent, CfiKind, Machine};

/// How an instruction retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Execution continues at the (already updated) `eip`.
    Normal,
    /// `int n` retired; the kernel should service vector `vector`.
    Syscall {
        /// Interrupt vector.
        vector: u8,
    },
    /// `hlt` retired.
    Halt,
}

/// Exception raised mid-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exc {
    /// Page fault (fetch or data).
    PageFault(PageFaultInfo),
    /// Undecodable instruction.
    InvalidOpcode {
        /// First offending opcode byte.
        opcode: u8,
    },
    /// Division by zero or quotient overflow.
    DivideError,
}

impl From<PageFaultInfo> for Exc {
    fn from(pf: PageFaultInfo) -> Exc {
        Exc::PageFault(pf)
    }
}

/// Fetches instruction bytes through the I-TLB, advancing a cursor.
struct FetchSource<'m> {
    m: &'m mut Machine,
    addr: u32,
}

impl CodeSource for FetchSource<'_> {
    type Err = PageFaultInfo;

    fn next(&mut self) -> Result<u8, PageFaultInfo> {
        let p = self
            .m
            .translate(self.addr, Access::Fetch, Privilege::User)?;
        self.addr = self.addr.wrapping_add(1);
        Ok(self.m.phys.read_u8(p))
    }
}

/// Fetch and decode the instruction at `eip`, returning the outcome and the
/// address of the following instruction.
///
/// With the decode cache enabled this still performs the **byte-1 I-TLB
/// translation unconditionally**, so TLB fills/walks/LRU recency, A/D-bit
/// updates, page faults and `tlb_walk` cycle charges are identical to the
/// uncached byte-by-byte path (bytes 2..len of a non-page-crossing
/// instruction can only ever be same-page TLB hits, which charge nothing
/// and change no [`MachineStats`](crate::stats::MachineStats) counter).
/// Instructions whose encoding crosses into the next page are never cached:
/// the continuation page's mapping can change independently of the first
/// frame's write-generation.
fn fetch_decode(m: &mut Machine, eip: u32) -> Result<(Decoded, u32), Exc> {
    if !m.config.decode_cache {
        let mut src = FetchSource { m, addr: eip };
        let decoded = isa::decode(&mut src)?;
        let next_eip = src.addr;
        return Ok((decoded, next_eip));
    }
    let p = m.translate(eip, Access::Fetch, Privilege::User)?;
    let pfn = p >> crate::pte::PAGE_SHIFT;
    let off = crate::pte::page_offset(p);
    let version = m.phys.frame_version(pfn);
    if let Some(c) = m.decode_cache.lookup(pfn, off, version) {
        return Ok((c.decoded, eip.wrapping_add(c.len as u32)));
    }
    // Miss: decode byte-by-byte exactly as the uncached path would (the
    // byte-1 re-translation is a guaranteed I-TLB hit and thus free).
    let mut src = FetchSource { m, addr: eip };
    let decoded = isa::decode(&mut src)?;
    let next_eip = src.addr;
    let len = next_eip.wrapping_sub(eip);
    if off + len <= crate::pte::PAGE_SIZE {
        m.decode_cache.insert(
            pfn,
            off,
            version,
            crate::decode_cache::CachedDecode {
                decoded,
                len: len as u8,
            },
        );
    }
    Ok((decoded, next_eip))
}

/// Execute one instruction. See [`Machine::step`] for the public wrapper
/// that adds snapshotting, trap-flag handling and statistics.
pub(crate) fn step(m: &mut Machine) -> Result<Flow, Exc> {
    let start_eip = m.cpu.regs.eip;
    let (decoded, next_eip) = fetch_decode(m, start_eip)?;
    let insn = match decoded {
        Decoded::Insn { insn, .. } => insn,
        Decoded::Invalid { opcode } => return Err(Exc::InvalidOpcode { opcode }),
    };
    m.cpu.regs.eip = next_eip;
    exec_insn(m, insn, next_eip).inspect_err(|_| {
        // Machine::step restores the full snapshot; keep eip coherent anyway
        // for internal callers.
        m.cpu.regs.eip = start_eip;
    })
}

pub(crate) fn exec_insn(m: &mut Machine, insn: Insn, next_eip: u32) -> Result<Flow, Exc> {
    match insn {
        Insn::Nop => {}
        Insn::Hlt => return Ok(Flow::Halt),
        Insn::Int(v) => return Ok(Flow::Syscall { vector: v }),
        Insn::Ret => {
            let target = pop(m)?;
            m.cpu.regs.eip = target;
            if m.config.cfi_events {
                m.pending_cfi = Some(CfiEvent {
                    kind: CfiKind::Ret,
                    target,
                    link: target,
                });
            }
        }
        Insn::Leave => {
            m.cpu.regs.set(Reg::Esp, m.cpu.regs.get(Reg::Ebp));
            let bp = pop(m)?;
            m.cpu.regs.set(Reg::Ebp, bp);
        }
        Insn::Cdq => {
            let sign = ((m.cpu.regs.get(Reg::Eax) as i32) >> 31) as u32;
            m.cpu.regs.set(Reg::Edx, sign);
        }
        Insn::MovRegImm(r, imm) => m.cpu.regs.set(r, imm),
        Insn::PushReg(r) => {
            let v = m.cpu.regs.get(r);
            push(m, v)?;
        }
        Insn::PopReg(r) => {
            let v = pop(m)?;
            m.cpu.regs.set(r, v);
        }
        Insn::PushImm(v) => push(m, v as u32)?,
        Insn::IncReg(r) => {
            let v = m.cpu.regs.get(r).wrapping_add(1);
            m.cpu.regs.set(r, v);
            set_incdec_flags(m, v, true);
        }
        Insn::DecReg(r) => {
            let v = m.cpu.regs.get(r).wrapping_sub(1);
            m.cpu.regs.set(r, v);
            set_incdec_flags(m, v, false);
        }
        Insn::CallRel(rel) => {
            push(m, next_eip)?;
            m.cpu.regs.eip = next_eip.wrapping_add(rel as u32);
            if m.config.cfi_events {
                m.pending_cfi = Some(CfiEvent {
                    kind: CfiKind::Call,
                    target: m.cpu.regs.eip,
                    link: next_eip,
                });
            }
        }
        Insn::JmpRel(rel) => {
            m.cpu.regs.eip = next_eip.wrapping_add(rel as u32);
        }
        Insn::JccRel(cond, rel) => {
            if cond_holds(&m.cpu.regs.eflags, cond) {
                m.cpu.regs.eip = next_eip.wrapping_add(rel as u32);
            }
        }
        Insn::MovRmReg { byte, dir, rm, reg } => match dir {
            Dir::ToRm => {
                let v = m.cpu.regs.get(reg);
                write_rm(m, rm, v, byte)?;
            }
            Dir::FromRm => {
                let v = read_rm(m, rm, byte)?;
                if byte {
                    // x86 `mov r8, r/m8` merges into the low byte.
                    let old = m.cpu.regs.get(reg);
                    m.cpu.regs.set(reg, (old & !0xFF) | (v & 0xFF));
                } else {
                    m.cpu.regs.set(reg, v);
                }
            }
        },
        Insn::MovRmImm { byte, rm, imm } => write_rm(m, rm, imm, byte)?,
        Insn::Movzx8 { dst, src } => {
            let v = read_rm(m, src, true)?;
            m.cpu.regs.set(dst, v & 0xFF);
        }
        Insn::Lea(dst, mem) => {
            let addr = effective_address(m, &mem);
            m.cpu.regs.set(dst, addr);
        }
        Insn::Alu { op, dir, rm, reg } => {
            let (dst_val, src_val) = match dir {
                Dir::ToRm => (read_rm(m, rm, false)?, m.cpu.regs.get(reg)),
                Dir::FromRm => (m.cpu.regs.get(reg), read_rm(m, rm, false)?),
            };
            let result = alu(m, op, dst_val, src_val);
            if let Some(result) = result {
                match dir {
                    Dir::ToRm => write_rm(m, rm, result, false)?,
                    Dir::FromRm => m.cpu.regs.set(reg, result),
                }
            }
        }
        Insn::AluImm { op, rm, imm } => {
            let dst_val = read_rm(m, rm, false)?;
            if let Some(result) = alu(m, op, dst_val, imm as u32) {
                write_rm(m, rm, result, false)?;
            }
        }
        Insn::Shift { op, rm, count } => {
            let n = match count {
                ShiftCount::Imm(i) => i,
                ShiftCount::Cl => m.cpu.regs.get(Reg::Ecx) as u8,
            } & 31;
            let v = read_rm(m, rm, false)?;
            if n != 0 {
                let (result, cf) = match op {
                    ShiftOp::Shl => (v.wrapping_shl(n as u32), (v >> (32 - n)) & 1 == 1),
                    ShiftOp::Shr => (v.wrapping_shr(n as u32), (v >> (n - 1)) & 1 == 1),
                    ShiftOp::Sar => (
                        ((v as i32).wrapping_shr(n as u32)) as u32,
                        ((v as i32) >> (n - 1)) & 1 == 1,
                    ),
                };
                write_rm(m, rm, result, false)?;
                let mut fl = zsp(result);
                if cf {
                    fl |= flags::CF;
                }
                apply_flags(&mut m.cpu.regs, ALU_FLAGS, fl);
            }
        }
        Insn::Grp3 { op, rm } => match op {
            UnOp::Not => {
                let v = !read_rm(m, rm, false)?;
                write_rm(m, rm, v, false)?;
            }
            UnOp::Neg => {
                let v = read_rm(m, rm, false)?;
                let r = 0u32.wrapping_sub(v);
                write_rm(m, rm, r, false)?;
                let mut fl = zsp(r);
                if v != 0 {
                    fl |= flags::CF;
                }
                if v == 0x8000_0000 {
                    fl |= flags::OF;
                }
                apply_flags(&mut m.cpu.regs, ALU_FLAGS, fl);
            }
            UnOp::Mul => {
                let v = read_rm(m, rm, false)? as u64;
                let prod = m.cpu.regs.get(Reg::Eax) as u64 * v;
                m.cpu.regs.set(Reg::Eax, prod as u32);
                m.cpu.regs.set(Reg::Edx, (prod >> 32) as u32);
                let hi = (prod >> 32) != 0;
                m.cpu.regs.set_flag(flags::CF, hi);
                m.cpu.regs.set_flag(flags::OF, hi);
            }
            UnOp::Div => {
                let divisor = read_rm(m, rm, false)? as u64;
                if divisor == 0 {
                    return Err(Exc::DivideError);
                }
                let dividend =
                    ((m.cpu.regs.get(Reg::Edx) as u64) << 32) | m.cpu.regs.get(Reg::Eax) as u64;
                let q = dividend / divisor;
                if q > u32::MAX as u64 {
                    return Err(Exc::DivideError);
                }
                m.cpu.regs.set(Reg::Eax, q as u32);
                m.cpu.regs.set(Reg::Edx, (dividend % divisor) as u32);
            }
        },
        Insn::Grp5 { op, rm } => match op {
            Grp5Op::Inc => {
                let v = read_rm(m, rm, false)?.wrapping_add(1);
                write_rm(m, rm, v, false)?;
                set_incdec_flags(m, v, true);
            }
            Grp5Op::Dec => {
                let v = read_rm(m, rm, false)?.wrapping_sub(1);
                write_rm(m, rm, v, false)?;
                set_incdec_flags(m, v, false);
            }
            Grp5Op::Call => {
                let target = read_rm(m, rm, false)?;
                push(m, next_eip)?;
                m.cpu.regs.eip = target;
                if m.config.cfi_events {
                    m.pending_cfi = Some(CfiEvent {
                        kind: CfiKind::IndirectCall,
                        target,
                        link: next_eip,
                    });
                }
            }
            Grp5Op::Jmp => {
                let target = read_rm(m, rm, false)?;
                m.cpu.regs.eip = target;
                if m.config.cfi_events {
                    m.pending_cfi = Some(CfiEvent {
                        kind: CfiKind::IndirectJmp,
                        target,
                        link: 0,
                    });
                }
            }
            Grp5Op::Push => {
                let v = read_rm(m, rm, false)?;
                push(m, v)?;
            }
        },
    }
    Ok(Flow::Normal)
}

/// Flag bits an ALU operation writes, composed once and applied with a
/// single masked `eflags` update (per-bit `set_flag` calls form a
/// serial dependence chain on the same word — this is the interpreter's
/// hottest flag path).
const ALU_FLAGS: u32 = flags::CF | flags::OF | flags::ZF | flags::SF | flags::PF;

fn apply_flags(f: &mut crate::cpu::Regs, affected: u32, set: u32) {
    f.eflags = (f.eflags & !affected) | set;
}

/// Evaluate an ALU operation, set flags, and return the result to be
/// written back (`None` for compare/test which only set flags).
fn alu(m: &mut Machine, op: AluOp, a: u32, b: u32) -> Option<u32> {
    match op {
        AluOp::Add => {
            let r = a.wrapping_add(b);
            let mut fl = zsp(r);
            if r < a {
                fl |= flags::CF;
            }
            if ((a ^ !b) & (a ^ r)) >> 31 == 1 {
                fl |= flags::OF;
            }
            apply_flags(&mut m.cpu.regs, ALU_FLAGS, fl);
            Some(r)
        }
        AluOp::Sub | AluOp::Cmp => {
            let r = a.wrapping_sub(b);
            let mut fl = zsp(r);
            if a < b {
                fl |= flags::CF;
            }
            if ((a ^ b) & (a ^ r)) >> 31 == 1 {
                fl |= flags::OF;
            }
            apply_flags(&mut m.cpu.regs, ALU_FLAGS, fl);
            (op == AluOp::Sub).then_some(r)
        }
        AluOp::Or | AluOp::And | AluOp::Xor | AluOp::Test => {
            let r = match op {
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                _ => a & b, // And and Test
            };
            apply_flags(&mut m.cpu.regs, ALU_FLAGS, zsp(r));
            (op != AluOp::Test).then_some(r)
        }
    }
}

/// ZF/SF/PF bits for a result, as a mask to OR into the composed flags.
fn zsp(r: u32) -> u32 {
    let mut fl = 0;
    if r == 0 {
        fl |= flags::ZF;
    }
    if (r as i32) < 0 {
        fl |= flags::SF;
    }
    if parity_even(r) {
        fl |= flags::PF;
    }
    fl
}

fn set_incdec_flags(m: &mut Machine, r: u32, inc: bool) {
    let mut fl = zsp(r);
    // OF: inc overflows into 0x80000000; dec overflows out of it.
    if r == if inc { 0x8000_0000 } else { 0x7FFF_FFFF } {
        fl |= flags::OF;
    }
    // CF is preserved, as on x86.
    apply_flags(
        &mut m.cpu.regs,
        flags::OF | flags::ZF | flags::SF | flags::PF,
        fl,
    );
}

fn parity_even(r: u32) -> bool {
    (r as u8).count_ones().is_multiple_of(2)
}

pub(crate) fn cond_holds(eflags: &u32, cond: Cond) -> bool {
    let f = |mask: u32| eflags & mask != 0;
    match cond {
        Cond::O => f(flags::OF),
        Cond::No => !f(flags::OF),
        Cond::B => f(flags::CF),
        Cond::Ae => !f(flags::CF),
        Cond::E => f(flags::ZF),
        Cond::Ne => !f(flags::ZF),
        Cond::Be => f(flags::CF) || f(flags::ZF),
        Cond::A => !f(flags::CF) && !f(flags::ZF),
        Cond::S => f(flags::SF),
        Cond::Ns => !f(flags::SF),
        Cond::P => f(flags::PF),
        Cond::Np => !f(flags::PF),
        Cond::L => f(flags::SF) != f(flags::OF),
        Cond::Ge => f(flags::SF) == f(flags::OF),
        Cond::Le => f(flags::ZF) || (f(flags::SF) != f(flags::OF)),
        Cond::G => !f(flags::ZF) && (f(flags::SF) == f(flags::OF)),
    }
}

fn effective_address(m: &Machine, mem: &Mem) -> u32 {
    let mut addr = mem.disp as u32;
    if let Some(b) = mem.base {
        addr = addr.wrapping_add(m.cpu.regs.get(b));
    }
    if let Some((idx, scale)) = mem.index {
        addr = addr.wrapping_add(m.cpu.regs.get(idx).wrapping_mul(scale as u32));
    }
    addr
}

fn read_rm(m: &mut Machine, rm: Rm, byte: bool) -> Result<u32, PageFaultInfo> {
    match rm {
        Rm::Reg(r) => Ok(if byte {
            m.cpu.regs.get(r) & 0xFF
        } else {
            m.cpu.regs.get(r)
        }),
        Rm::Mem(mem) => {
            let addr = effective_address(m, &mem);
            if byte {
                Ok(m.read_u8(addr, Privilege::User)? as u32)
            } else {
                m.read_u32(addr, Privilege::User)
            }
        }
    }
}

fn write_rm(m: &mut Machine, rm: Rm, v: u32, byte: bool) -> Result<(), PageFaultInfo> {
    match rm {
        Rm::Reg(r) => {
            if byte {
                let old = m.cpu.regs.get(r);
                m.cpu.regs.set(r, (old & !0xFF) | (v & 0xFF));
            } else {
                m.cpu.regs.set(r, v);
            }
            Ok(())
        }
        Rm::Mem(mem) => {
            let addr = effective_address(m, &mem);
            if byte {
                m.write_u8(addr, v as u8, Privilege::User)
            } else {
                m.write_u32(addr, v, Privilege::User)
            }
        }
    }
}

fn push(m: &mut Machine, v: u32) -> Result<(), PageFaultInfo> {
    let sp = m.cpu.regs.get(Reg::Esp).wrapping_sub(4);
    m.write_u32(sp, v, Privilege::User)?;
    m.cpu.regs.set(Reg::Esp, sp);
    Ok(())
}

fn pop(m: &mut Machine) -> Result<u32, PageFaultInfo> {
    let sp = m.cpu.regs.get(Reg::Esp);
    let v = m.read_u32(sp, Privilege::User)?;
    m.cpu.regs.set(Reg::Esp, sp.wrapping_add(4));
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineConfig, Trap};
    use crate::pte::{self, PAGE_SIZE};

    /// Build a machine with a flat identity mapping of `pages` user pages
    /// starting at virtual 0x1000, and the given code at 0x1000.
    fn harness(code: &[u8], pages: u32) -> Machine {
        let mut m = Machine::new(MachineConfig {
            phys_frames: 256,
            ..MachineConfig::default()
        });
        let dir = m.alloc_zeroed_frame().unwrap();
        let tab = m.alloc_zeroed_frame().unwrap();
        m.phys.write_u32(
            dir.base(),
            pte::make(tab, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        for i in 0..pages {
            let f = m.alloc_zeroed_frame().unwrap();
            m.phys.write_u32(
                tab.base() + (1 + i) * 4,
                pte::make(f, pte::PRESENT | pte::WRITABLE | pte::USER),
            );
            if i == 0 {
                m.phys.write(f.base(), code);
            }
        }
        m.set_cr3(dir);
        m.cpu.regs.eip = PAGE_SIZE;
        // Stack at the top of the mapped region.
        m.cpu.regs.set(Reg::Esp, PAGE_SIZE * (1 + pages));
        m
    }

    fn run_until_halt(m: &mut Machine, max: u32) {
        for _ in 0..max {
            match m.step() {
                Trap::None => {}
                Trap::Halt => return,
                t => panic!("unexpected trap {t:?} at eip {:#x}", m.cpu.regs.eip),
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn mov_imm_and_halt() {
        let mut m = harness(b"\xb8\x2a\x00\x00\x00\xf4", 4); // mov eax,42; hlt
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 42);
    }

    #[test]
    fn push_pop_roundtrip() {
        // mov eax, 0x1234; push eax; pop ebx; hlt
        let mut m = harness(b"\xb8\x34\x12\x00\x00\x50\x5b\xf4", 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Ebx), 0x1234);
    }

    #[test]
    fn call_ret_flow() {
        // 0x1000: call +3 (to 0x1008); hlt (0x1005..); target: mov eax,7; ret
        // call rel32 is 5 bytes, then hlt at 0x1005, pad, func at 0x1008.
        let code = [
            0xE8, 0x03, 0x00, 0x00, 0x00, // call 0x1008
            0xF4, // hlt
            0x90, 0x90, // padding
            0xB8, 0x07, 0x00, 0x00, 0x00, // mov eax, 7
            0xC3, // ret
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 7);
    }

    #[test]
    fn conditional_branch_loop() {
        // Count eax from 0 to 5: xor eax,eax; loop: inc eax; cmp eax,5 (0x83/7);
        // jne loop; hlt
        let code = [
            0x31, 0xC0, // xor eax, eax
            0x40, // inc eax
            0x83, 0xF8, 0x05, // cmp eax, 5
            0x75, 0xFA, // jne -6 (back to inc eax)
            0xF4, // hlt
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 40);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 5);
    }

    #[test]
    fn memory_store_load() {
        // mov ebx, 0x2000; mov dword [ebx], 0xdeadbeef; mov ecx, [ebx]; hlt
        let code = [
            0xBB, 0x00, 0x20, 0x00, 0x00, // mov ebx, 0x2000
            0xC7, 0x03, 0xEF, 0xBE, 0xAD, 0xDE, // mov [ebx], 0xdeadbeef
            0x8B, 0x0B, // mov ecx, [ebx]
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Ecx), 0xDEAD_BEEF);
    }

    #[test]
    fn byte_store_merges() {
        // mov ebx,0x2000; mov dword [ebx],-1; movb [ebx], 0; movzx eax, byte [ebx+1]; hlt
        let code = [
            0xBB, 0x00, 0x20, 0x00, 0x00, //
            0xC7, 0x03, 0xFF, 0xFF, 0xFF, 0xFF, //
            0xC6, 0x03, 0x00, // mov byte [ebx], 0
            0x0F, 0xB6, 0x43, 0x01, // movzx eax, byte [ebx+1]
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 0xFF);
    }

    #[test]
    fn mul_div_pair() {
        // mov eax, 100; mov ebx, 7; mul ebx; mov ebx, 25; div ebx; hlt
        // 700 / 25 = 28 rem 0
        let code = [
            0xB8, 0x64, 0x00, 0x00, 0x00, //
            0xBB, 0x07, 0x00, 0x00, 0x00, //
            0xF7, 0xE3, // mul ebx
            0xBB, 0x19, 0x00, 0x00, 0x00, //
            0xF7, 0xF3, // div ebx
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 28);
        assert_eq!(m.cpu.regs.get(Reg::Edx), 0);
    }

    #[test]
    fn divide_by_zero_is_precise() {
        // xor ebx, ebx; div ebx
        let mut m = harness(&[0x31, 0xDB, 0xF7, 0xF3], 4);
        assert!(m.step().is_none());
        let eip_before = m.cpu.regs.eip;
        assert_eq!(m.step(), Trap::DivideError);
        assert_eq!(m.cpu.regs.eip, eip_before, "regs rolled back");
    }

    #[test]
    fn invalid_opcode_is_precise() {
        let mut m = harness(&[0x00], 4);
        match m.step() {
            Trap::InvalidOpcode { eip, opcode } => {
                assert_eq!(eip, 0x1000);
                assert_eq!(opcode, 0x00);
            }
            t => panic!("expected #UD, got {t:?}"),
        }
        assert_eq!(m.cpu.regs.eip, 0x1000);
    }

    #[test]
    fn syscall_trap_reports_vector() {
        let mut m = harness(&[0xCD, 0x80], 4);
        assert_eq!(m.step(), Trap::Syscall { vector: 0x80 });
        assert_eq!(m.cpu.regs.eip, 0x1002, "eip past the int");
    }

    #[test]
    fn fault_on_unmapped_page_sets_cr2_and_rolls_back() {
        // mov eax, [0x00500000] — far outside the mapping.
        let code = [0x8B, 0x05, 0x00, 0x00, 0x50, 0x00, 0xF4];
        let mut m = harness(&code, 4);
        match m.step() {
            Trap::PageFault(pf) => {
                assert_eq!(pf.addr, 0x0050_0000);
                assert!(!pf.present);
                assert_eq!(pf.access, Access::Read);
            }
            t => panic!("expected #PF, got {t:?}"),
        }
        assert_eq!(m.cpu.regs.cr2, 0x0050_0000);
        assert_eq!(m.cpu.regs.eip, 0x1000);
    }

    #[test]
    fn trap_flag_raises_debug_after_one_instruction() {
        let mut m = harness(&[0x90, 0x90], 4);
        m.cpu.regs.set_flag(flags::TF, true);
        assert_eq!(m.step(), Trap::DebugStep);
        m.cpu.regs.set_flag(flags::TF, false);
        assert!(m.step().is_none());
    }

    #[test]
    fn trap_flag_with_int_defers_debug_until_after_syscall() {
        let mut m = harness(&[0xCD, 0x80], 4);
        m.cpu.regs.set_flag(flags::TF, true);
        assert_eq!(m.step(), Trap::Syscall { vector: 0x80 });
        assert!(m.take_pending_singlestep());
        assert!(!m.take_pending_singlestep(), "flag is consumed");
    }

    #[test]
    fn indirect_call_through_register() {
        // mov eax, 0x1008; call eax; hlt @0x1007; func@0x1008: mov ebx,9; ret
        let code = [
            0xB8, 0x08, 0x10, 0x00, 0x00, // mov eax, 0x1008
            0xFF, 0xD0, // call eax
            0xF4, // hlt
            0xBB, 0x09, 0x00, 0x00, 0x00, // mov ebx, 9
            0xC3,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Ebx), 9);
    }

    #[test]
    fn shifts_and_flags() {
        // mov eax,1; shl eax,4; hlt
        let code = [0xB8, 0x01, 0x00, 0x00, 0x00, 0xC1, 0xE0, 0x04, 0xF4];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 16);
        assert!(!m.cpu.regs.flag(flags::ZF));
    }

    #[test]
    fn leave_unwinds_frame() {
        // Emulate: push ebp; mov ebp,esp (0x89 0xE5); sub esp,16; leave; hlt
        let code = [0x55, 0x89, 0xE5, 0x83, 0xEC, 0x10, 0xC9, 0xF4];
        let mut m = harness(&code, 4);
        let sp0 = m.cpu.regs.get(Reg::Esp);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Esp), sp0);
    }

    #[test]
    fn push_immediate_forms() {
        // push 5 (imm8); push 0x12345 (imm32); pop into regs; hlt
        let code = [
            0x6A, 0x05, // push 5
            0x68, 0x45, 0x23, 0x01, 0x00, // push 0x12345
            0x58, // pop eax (0x12345)
            0x5B, // pop ebx (5)
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 0x12345);
        assert_eq!(m.cpu.regs.get(Reg::Ebx), 5);
    }

    #[test]
    fn push_negative_imm8_sign_extends() {
        let code = [0x6A, 0xFF, 0x58, 0xF4]; // push -1; pop eax
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 0xFFFF_FFFF);
    }

    #[test]
    fn grp5_memory_inc_dec_push() {
        // mov ebx,0x2000; mov [ebx],7; inc [ebx]; inc [ebx]; dec [ebx];
        // push [ebx]; pop eax; hlt  → eax = 8
        let code = [
            0xBB, 0x00, 0x20, 0x00, 0x00, //
            0xC7, 0x03, 0x07, 0x00, 0x00, 0x00, //
            0xFF, 0x03, // inc dword [ebx]
            0xFF, 0x03, //
            0xFF, 0x0B, // dec dword [ebx]
            0xFF, 0x33, // push dword [ebx]
            0x58, // pop eax
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 16);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 8);
    }

    #[test]
    fn movzx_from_byte_register() {
        // mov ebx, 0x1234FF; movzx eax, bl; hlt → eax = 0xFF
        let code = [
            0xBB, 0xFF, 0x34, 0x12, 0x00, //
            0x0F, 0xB6, 0xC3, // movzx eax, bl
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 0xFF);
    }

    #[test]
    fn sar_preserves_sign_shr_does_not() {
        // mov eax,-8; sar eax,1 → -4 ; mov ebx,-8; shr ebx,1 → 0x7FFFFFFC
        let code = [
            0xB8, 0xF8, 0xFF, 0xFF, 0xFF, //
            0xC1, 0xF8, 0x01, // sar eax, 1
            0xBB, 0xF8, 0xFF, 0xFF, 0xFF, //
            0xC1, 0xEB, 0x01, // shr ebx, 1
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax) as i32, -4);
        assert_eq!(m.cpu.regs.get(Reg::Ebx), 0x7FFF_FFFC);
    }

    #[test]
    fn logical_ops_clear_carry_and_overflow() {
        // mov eax,-1; add eax,1 (sets CF); or eax, 1 (must clear CF/OF)
        let code = [
            0xB8, 0xFF, 0xFF, 0xFF, 0xFF, //
            0x83, 0xC0, 0x01, // add eax, 1 → CF
            0x83, 0xC8, 0x01, // or eax, 1
            0xF4,
        ];
        let mut m = harness(&code, 4);
        assert!(m.step().is_none());
        assert!(m.step().is_none());
        assert!(m.cpu.regs.flag(flags::CF), "add set carry");
        assert!(m.step().is_none());
        assert!(!m.cpu.regs.flag(flags::CF), "or cleared carry");
        assert!(!m.cpu.regs.flag(flags::OF));
    }

    #[test]
    fn neg_and_not_semantics() {
        // mov eax, 5; neg eax → -5; not eax → 4
        let code = [
            0xB8, 0x05, 0x00, 0x00, 0x00, //
            0xF7, 0xD8, // neg eax
            0xF7, 0xD0, // not eax
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Eax), 4);
    }

    #[test]
    fn div_quotient_overflow_is_de() {
        // edx:eax = 2^32, divisor 1 → quotient overflow
        let code = [
            0xBA, 0x01, 0x00, 0x00, 0x00, // mov edx, 1
            0x31, 0xC0, // xor eax, eax
            0xBB, 0x01, 0x00, 0x00, 0x00, // mov ebx, 1
            0xF7, 0xF3, // div ebx
        ];
        let mut m = harness(&code, 4);
        assert!(m.step().is_none());
        assert!(m.step().is_none());
        assert!(m.step().is_none());
        assert_eq!(m.step(), Trap::DivideError);
    }

    #[test]
    fn unsigned_vs_signed_conditions() {
        // cmp -1, 1: unsigned -1 is huge → ja taken; signed → jl taken.
        let code = [
            0xB8, 0xFF, 0xFF, 0xFF, 0xFF, // mov eax, -1
            0x83, 0xF8, 0x01, // cmp eax, 1
            0x77, 0x02, // ja +2 (taken)
            0xF4, 0xF4, // (skipped)
            0x7C, 0x02, // jl +2 (taken: -1 < 1 signed)
            0xF4, 0xF4, // (skipped)
            0xBB, 0x2A, 0x00, 0x00, 0x00, // mov ebx, 42
            0xF4,
        ];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Ebx), 42);
    }

    #[test]
    fn cdq_sign_extends() {
        // mov eax, -1 (0xFFFFFFFF); cdq; hlt
        let code = [0xB8, 0xFF, 0xFF, 0xFF, 0xFF, 0x99, 0xF4];
        let mut m = harness(&code, 4);
        run_until_halt(&mut m, 10);
        assert_eq!(m.cpu.regs.get(Reg::Edx), 0xFFFF_FFFF);
    }
}
