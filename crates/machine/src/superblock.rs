//! Superblock execution tier: pre-decoded straight-line runs.
//!
//! The decode cache (PR 3) removed per-retire *decode* work but the step
//! loop still pays per-retire *dispatch* work: a full [`Machine::step`]
//! call, a byte-1 I-TLB [`Machine::translate`], a trap-enum match and a
//! per-step trip back through the kernel's `run_slice` bookkeeping — for
//! every instruction of a hot loop whose outcome is already known to be
//! "same page, guaranteed I-TLB hit, retire normally". This module
//! extends the per-instruction cache into a **superblock cache**: maximal
//! straight-line decode runs keyed by `(physical frame, entry offset)`,
//! executed back-to-back by [`Machine::run_block`] without re-entering
//! the dispatcher.
//!
//! # Byte-identity
//!
//! The pipeline must be invisible to the modeled machine — same bar the
//! decode cache and the PR 7 shard zipper met. Cycle ledger, TLB stats
//! (hits, misses, 3C classes, evictions), [`MachineStats`], the trace
//! ring and every kernel-visible trap must match the per-`step()` path
//! exactly. The key observations that make a fast path possible at all:
//!
//! 1. **Within a block every fetch touches one page.** The block entry
//!    performs the byte-1 translation *for real* (MRU rotation, shadow
//!    recency, hit/miss accounting, A/D bits). Every later same-block
//!    fetch byte is then a *guaranteed hit on the same entry*: the
//!    set-LRU rotate and the shadow-model touch are both no-ops for an
//!    already-MRU key, so the only architectural effect is
//!    `TlbStats::hits` advancing — which the fast path replays as a
//!    counter increment. Nothing can evict the entry mid-block: data
//!    accesses go through the *data* TLB, chaos injection is fenced off
//!    (the kernel only enters the pipeline with no plan armed), and the
//!    ISA has no TLB-management instructions.
//! 2. **A translate hit emits no trace event** (only evicts, fills and
//!    flushes are traced), so replayed hits leave the ring untouched.
//! 3. **The decode cache is still consulted per op** — its hit/miss/
//!    invalidation counters, insertions and the miss path's extra
//!    `len` fetch-byte TLB hits are reproduced exactly, so
//!    `DecodeCacheStats` stay identical too.
//!
//! Everything that *cannot* be replayed exactly falls back: a cold or
//! rights-dirty I-TLB entry, a software-TLB machine, a page-crossing
//! entry instruction or an armed trap flag each route through one plain
//! [`Machine::step`], whose accounting is definitionally identical.
//!
//! # Coherence and bailout
//!
//! Like the decode cache, superblocks snapshot the spanned frame's
//! write-generation ([`PhysMemory::frame_version`]) and invalidate
//! lazily when a lookup observes a newer generation. Because a block
//! *executes* for many retires after its lookup, the version is also
//! re-checked **before every subsequent op**: a store that lands in the
//! executing code frame (self-modifying code) bails out of the block
//! before charging the next instruction, and the chain loop re-decodes
//! from the freshly-written bytes — exactly when the per-step decoder
//! would first observe them. Termination points at build time are
//! dynamic control transfers (`ret`, `call`, `jmp`, `int`, `hlt`,
//! indirect `Grp5` call/jmp), undecodable bytes, and the page edge
//! (instructions whose encoding crosses into the next page are never
//! cached, mirroring the decode-cache rule). Conditional branches do
//! *not* terminate a block — the fall-through run continues it, and a
//! taken branch is detected at runtime by `eip` diverging from the
//! decoded fall-through address.
//!
//! Pipeline state is **derived-only**: never serialized by the snapshot
//! codec, rebuilt cold after a restore (the same contract the decode
//! cache pins with `decode_cache_warmth_only_affects_tlb_hit_counters` —
//! except superblock warmth affects *nothing*, because the per-op
//! accounting above replays the decode-cache state machine either way).
//! Effectiveness counters live in [`SuperblockStats`], outside
//! [`MachineStats`], so equivalence tests can compare the latter for
//! equality.
//!
//! [`MachineStats`]: crate::stats::MachineStats
//! [`PhysMemory::frame_version`]: crate::phys::PhysMemory::frame_version

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::cpu::{flags, Access, Privilege};
use crate::decode_cache::CachedDecode;
use crate::exec;
use crate::isa::{self, Decoded, Grp5Op, Insn, Rm, SliceSource, UnOp};
use crate::machine::{Machine, Trap};
use crate::pte::{self, Frame};

/// Pipeline-effectiveness counters. Deliberately **not** part of
/// [`MachineStats`](crate::stats::MachineStats): the superblock tier is
/// transparent to the modeled machine, and keeping these separate lets
/// the pipeline-on ≡ pipeline-off proptest compare `MachineStats` for
/// equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Block entries answered from the cache.
    pub hits: u64,
    /// Blocks decoded and cached (lookup misses).
    pub builds: u64,
    /// Frames whose cached blocks were dropped because the frame was
    /// written (version mismatch observed on lookup).
    pub invalidations: u64,
    /// Blocks abandoned mid-execution because the spanned frame's
    /// write-generation advanced under them (self-modifying code).
    pub bailouts: u64,
    /// Instructions routed through the plain [`Machine::step`] slow path
    /// (cold I-TLB, rights re-walk due, software TLB, page-crossing
    /// entry instruction, armed trap flag).
    pub slow_steps: u64,
}

/// Op is eligible for the batched lane: it cannot transfer control to a
/// dynamic target, cannot syscall and cannot halt, so its only possible
/// outcomes are "retire and fall through", "taken relative branch"
/// ([`F_BRANCH`]) or a precise trap. Everything else (`ret`, `call`,
/// `int`, `hlt`, indirect `Grp5`) terminates its block at build time and
/// runs through the general path.
const F_LANE: u8 = 1 << 0;
/// Op may store to guest memory (stack pushes included): only after one
/// of these can the executing frame's write-generation have moved, so
/// only then does the per-op coherence re-check have anything to catch.
const F_WRITES_MEM: u8 = 1 << 1;
/// Op can mutate registers or flags *before* a fault-capable access
/// (`leave` moves `esp` before its pop; memory-destination ALU ops set
/// flags between the read and the store): precise rollback needs the
/// full pre-op register file, not just `eip`. Ops without this flag
/// reach every `Err` return with all registers untouched, so restoring
/// `eip` alone reconstructs the pre-op state exactly.
const F_FULL_SNAP: u8 = 1 << 2;
/// Relative branch (`jmp rel`, `jcc rel`): infallible, store-free, and
/// the only register it can write is `eip`. The lane pre-sets `eip` to
/// the fall-through and detects a taken branch by `eip` diverging.
const F_BRANCH: u8 = 1 << 3;
/// Op provably returns `Ok(Flow::Normal)` and touches no guest memory
/// (register-only ops and relative branches): no fault path, no store,
/// no trace emission, and exactly `insn_cost` charged. Runs of these
/// execute with the per-op budget check precomputed and the cycle
/// charges batched (see the sub-run in [`Machine::run_block`]).
const F_NO_FAULT: u8 = 1 << 4;

/// Per-op execution flags, derived once at insert time. Every arm is a
/// proof obligation against [`exec::exec_insn`]'s fault ordering; new
/// instructions must be classified here explicitly (no catch-all), and
/// when in doubt `0` (general path, full per-op bookkeeping) is always
/// correct.
fn classify(decoded: &Decoded) -> u8 {
    let Decoded::Insn { insn, .. } = decoded else {
        // `#UD` traps before executing: general path only.
        return 0;
    };
    let mem = |rm: &Rm| matches!(rm, Rm::Mem(_));
    match insn {
        // Dynamic control transfers, syscall gates and halts: excluded
        // from the lane (each also ends its block at build time).
        Insn::Ret
        | Insn::CallRel(_)
        | Insn::Int(_)
        | Insn::Hlt
        | Insn::Grp5 {
            op: Grp5Op::Call | Grp5Op::Jmp,
            ..
        } => 0,
        // Relative branches: infallible and store-free.
        Insn::JmpRel(_) | Insn::JccRel(..) => F_LANE | F_BRANCH | F_NO_FAULT,
        // `leave` sets `esp` from `ebp` before its pop can fault.
        Insn::Leave => F_LANE | F_FULL_SNAP,
        // Stack pushes: the store fault precedes the `esp` update.
        Insn::PushReg(_)
        | Insn::PushImm(_)
        | Insn::Grp5 {
            op: Grp5Op::Push, ..
        } => F_LANE | F_WRITES_MEM,
        // Compare/test: sets flags only after the (sole) possible read
        // fault and never stores, memory operand or not.
        Insn::Alu {
            op: isa::AluOp::Cmp | isa::AluOp::Test,
            ..
        } => F_LANE,
        Insn::AluImm {
            op: isa::AluOp::Cmp,
            rm,
            ..
        } if mem(rm) => F_LANE,
        // Memory-destination ALU: flags are written between the read and
        // the store, so a store fault needs the full register file.
        Insn::Alu {
            dir: isa::Dir::ToRm,
            rm,
            ..
        } if mem(rm) => F_LANE | F_WRITES_MEM | F_FULL_SNAP,
        Insn::AluImm { rm, .. } if mem(rm) => F_LANE | F_WRITES_MEM | F_FULL_SNAP,
        // Memory-destination stores whose flag/register writes all come
        // after the last fault-capable access: light rollback.
        Insn::MovRmReg {
            dir: isa::Dir::ToRm,
            rm,
            ..
        } if mem(rm) => F_LANE | F_WRITES_MEM,
        Insn::MovRmImm { rm, .. } if mem(rm) => F_LANE | F_WRITES_MEM,
        Insn::Shift { rm, .. } if mem(rm) => F_LANE | F_WRITES_MEM,
        Insn::Grp3 {
            op: UnOp::Not | UnOp::Neg,
            rm,
        } if mem(rm) => F_LANE | F_WRITES_MEM,
        Insn::Grp5 {
            op: Grp5Op::Inc | Grp5Op::Dec,
            rm,
        } if mem(rm) => F_LANE | F_WRITES_MEM,
        // Register-only ops: infallible, memory-free, `eip` untouched.
        Insn::Nop
        | Insn::Cdq
        | Insn::MovRegImm(..)
        | Insn::IncReg(_)
        | Insn::DecReg(_)
        | Insn::Lea(..) => F_LANE | F_NO_FAULT,
        Insn::Movzx8 {
            src: Rm::Reg(_), ..
        } => F_LANE | F_NO_FAULT,
        Insn::MovRmReg { rm: Rm::Reg(_), .. }
        | Insn::MovRmImm { rm: Rm::Reg(_), .. }
        | Insn::Alu { rm: Rm::Reg(_), .. }
        | Insn::AluImm { rm: Rm::Reg(_), .. }
        | Insn::Shift { rm: Rm::Reg(_), .. } => F_LANE | F_NO_FAULT,
        Insn::Grp3 {
            op: UnOp::Not | UnOp::Neg | UnOp::Mul,
            rm: Rm::Reg(_),
        } => F_LANE | F_NO_FAULT,
        Insn::Grp5 {
            op: Grp5Op::Inc | Grp5Op::Dec,
            rm: Rm::Reg(_),
        } => F_LANE | F_NO_FAULT,
        // Everything left: loads, stack pops and `div` (whose `#DE`
        // checks precede its register writes). The only possible fault
        // precedes every register/flag write, and nothing is stored.
        Insn::PopReg(_)
        | Insn::Movzx8 { .. }
        | Insn::MovRmReg { .. }
        | Insn::MovRmImm { .. }
        | Insn::Alu { .. }
        | Insn::AluImm { .. }
        | Insn::Shift { .. }
        | Insn::Grp3 { .. }
        | Insn::Grp5 { .. } => F_LANE,
    }
}

/// One cached superblock: the pre-resolved op vector plus per-op
/// execution metadata derived once at build time.
pub struct Block {
    /// Pre-decoded ops in entry order — what the coherence-invariant
    /// checker re-validates against current frame bytes.
    pub ops: Box<[CachedDecode]>,
    /// Per-op `F_*` flags.
    flags: Box<[u8]>,
    /// `runs[i]` is the length of the maximal lane-eligible
    /// ([`F_LANE`]) run starting at op `i` (0 when op `i` itself is not
    /// lane-eligible).
    runs: Box<[u16]>,
    /// Like `runs`, but for [`F_NO_FAULT`] ops (the lane's batched
    /// sub-run).
    fast: Box<[u16]>,
}

impl Block {
    fn new(ops: Vec<CachedDecode>) -> Block {
        let flags: Box<[u8]> = ops.iter().map(|op| classify(&op.decoded)).collect();
        let run_lengths = |bit: u8| {
            let mut runs = vec![0u16; ops.len()].into_boxed_slice();
            let mut run = 0u16;
            for i in (0..ops.len()).rev() {
                run = if flags[i] & bit != 0 { run + 1 } else { 0 };
                runs[i] = run;
            }
            runs
        };
        let runs = run_lengths(F_LANE);
        let fast = run_lengths(F_NO_FAULT);
        Block {
            ops: ops.into(),
            flags,
            runs,
            fast,
        }
    }
}

/// Superblocks cached for one physical frame.
struct FrameBlocks {
    /// [`PhysMemory::frame_version`](crate::phys::PhysMemory::frame_version)
    /// observed when these blocks were decoded. A mismatch on lookup
    /// means the frame has been written since: every block is stale.
    version: u64,
    /// Blocks keyed by entry offset. Overlapping blocks (a jump into the
    /// middle of an existing run) simply coexist; the decode cache
    /// underneath deduplicates the per-op accounting.
    blocks: BTreeMap<u32, Arc<Block>>,
}

/// Superblock cache over all physical frames; one lives in every
/// [`Machine`] (consulted only by [`Machine::run_block`], so machines
/// driven purely through [`Machine::step`] never populate it).
pub struct SuperblockCache {
    /// Indexed by PFN; a frame gets a table lazily on its first block.
    frames: Vec<Option<Box<FrameBlocks>>>,
    /// Effectiveness counters.
    pub stats: SuperblockStats,
}

impl SuperblockCache {
    /// Empty cache over `frames` physical frames.
    pub fn new(frames: u32) -> SuperblockCache {
        SuperblockCache {
            frames: (0..frames).map(|_| None).collect(),
            stats: SuperblockStats::default(),
        }
    }

    /// Cached block entered at (`pfn`, `off`), if the frame's blocks were
    /// decoded at write-generation `version`. Observing a different
    /// generation drops the frame's blocks (lazy invalidation).
    #[inline]
    pub fn lookup(&mut self, pfn: u32, off: u32, version: u64) -> Option<Arc<Block>> {
        let fb = self.frames[pfn as usize].as_deref_mut()?;
        if fb.version != version {
            fb.blocks.clear();
            fb.version = version;
            self.stats.invalidations += 1;
            return None;
        }
        let block = fb.blocks.get(&off).cloned();
        if block.is_some() {
            self.stats.hits += 1;
        }
        block
    }

    /// Cache a freshly decoded block entered at (`pfn`, `off`) observed
    /// at write-generation `version`, returning the shared handle.
    pub fn insert(
        &mut self,
        pfn: u32,
        off: u32,
        version: u64,
        ops: Vec<CachedDecode>,
    ) -> Arc<Block> {
        self.stats.builds += 1;
        let fb = self.frames[pfn as usize].get_or_insert_with(|| {
            Box::new(FrameBlocks {
                version,
                blocks: BTreeMap::new(),
            })
        });
        if fb.version != version {
            fb.blocks.clear();
            fb.version = version;
        }
        let block = Arc::new(Block::new(ops));
        fb.blocks.insert(off, Arc::clone(&block));
        block
    }

    /// Iterate the per-frame tables as `(pfn, snapshot_version, blocks)` —
    /// the coherence-invariant checker in `sm-core` skips stale tables by
    /// version (they are one lookup away from lazy invalidation) and
    /// re-decodes live ones against current frame bytes.
    pub fn iter_frames(&self) -> impl Iterator<Item = (u32, u64, &BTreeMap<u32, Arc<Block>>)> {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(pfn, fb)| fb.as_deref().map(|fb| (pfn as u32, fb.version, &fb.blocks)))
    }
}

impl std::fmt::Debug for SuperblockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuperblockCache")
            .field(
                "frames_cached",
                &self.frames.iter().filter(|f| f.is_some()).count(),
            )
            .field("stats", &self.stats)
            .finish()
    }
}

/// True if `insn` always diverts control (or traps): the block ends with
/// it. This is an optimization, not a correctness gate — the runtime
/// `eip != next_eip` check catches any control transfer regardless — but
/// stopping here keeps blocks from caching unreachable tails.
fn ends_block(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Ret
            | Insn::Hlt
            | Insn::Int(_)
            | Insn::CallRel(_)
            | Insn::JmpRel(_)
            | Insn::Grp5 {
                op: Grp5Op::Call | Grp5Op::Jmp,
                ..
            }
    )
}

/// Decode a maximal straight-line run from `bytes[entry..]`, stopping at
/// dynamic control transfers, undecodable bytes and the page edge. An
/// instruction whose encoding runs off the slice is *not* included (the
/// continuation page's mapping can change independently of this frame's
/// write-generation, so page-crossers are uncacheable — same rule as the
/// decode cache); an empty result means the entry instruction itself
/// crosses, and the caller must use the slow path.
pub(crate) fn build_block(bytes: &[u8], entry: u32) -> Vec<CachedDecode> {
    let mut ops = Vec::new();
    let mut off = entry as usize;
    while off < bytes.len() {
        let mut src = SliceSource::new(&bytes[off..]);
        let decoded = match isa::decode(&mut src) {
            Ok(d) => d,
            Err(isa::UnexpectedEof) => break,
        };
        let len = src.position() as u8;
        debug_assert!(len > 0, "decoder must consume at least one byte");
        ops.push(CachedDecode { decoded, len });
        match decoded {
            // Undecodable bytes trap; nothing after them ever executes
            // from this entry.
            Decoded::Invalid { .. } => break,
            Decoded::Insn { insn, .. } => {
                if ends_block(&insn) {
                    break;
                }
            }
        }
        off += len as usize;
    }
    ops
}

impl Machine {
    /// Execute instructions through the superblock pipeline until the
    /// cycle counter reaches `cycle_limit` or a trap is due, returning
    /// `(instructions retired, trap)`. `Trap::None` means the budget ran
    /// out; with `retired == 0` the machine did not move at all (the
    /// budget was already exhausted on entry).
    ///
    /// Byte-identical to calling [`Machine::step`] in a loop with the
    /// same budget check before every call — cycles, stats, TLB
    /// counters, decode-cache counters, trace events and the returned
    /// trap all match (see the [module docs](self) for why). The caller
    /// owns everything a per-step loop would do *between* retires; this
    /// must only be entered when nothing can happen between them (no
    /// chaos plan armed, no stop-sequence watch, no pending signal — the
    /// kernel's `run_slice` enforces exactly that).
    pub fn run_block(&mut self, cycle_limit: u64) -> (u64, Trap) {
        if self.cpu.regs.flag(flags::TF) {
            // Armed single-step window: the slow path owns trap-flag
            // bookkeeping (#DB accounting, pending syscall single-step).
            self.superblocks.stats.slow_steps += 1;
            return (0, self.step());
        }
        let mut retired: u64 = 0;
        let dc_on = self.config.decode_cache;
        let insn_cost = self.config.costs.insn;
        // Intra-call memos. Both are *derived* state over facts re-checked
        // every chain entry (frame version) or invariant within the call
        // (I-TLB entry residency — see below), so neither outlives the
        // call and neither can go stale inside it.
        //
        // `hot_page`: the page whose I-TLB entry the last fast-path block
        // entry translated for real. That translate left the entry at way
        // 0 of its set and at the front of the shadow recency list, with
        // rights already vetted; and nothing inside the fast path touches
        // the I-TLB afterwards (data accesses go through the D-TLB, and a
        // different page's fetch replaces the memo by re-translating). So
        // a chain re-entry on the same page is a guaranteed hit whose
        // rotate and shadow-touch are both no-ops: `hits += 1` replays it
        // exactly. Any slow [`Machine::step`] clears the memo — its fetch
        // may touch other pages (e.g. a page-crossing instruction).
        //
        // `memo`: the last block executed, keyed by (pfn, off, version),
        // short-circuiting the BTreeMap probe for tight loops. `dc_warm`
        // counts the leading ops known present in the decode cache at
        // `version`: the cache only loses entries on a write-generation
        // bump (which misses the memo and rebuilds), so a warm op's
        // lookup is a guaranteed hit and `DecodeCacheStats::hits += 1`
        // replays it exactly (debug builds still probe and assert).
        let mut hot_page: Option<(u32, u32)> = None;
        struct BlockMemo {
            pfn: u32,
            off: u32,
            version: u64,
            dc_warm: u32,
            block: Arc<Block>,
        }
        let mut memo: Option<BlockMemo> = None;
        loop {
            if self.cycles >= cycle_limit {
                return (retired, Trap::None);
            }
            let eip = self.cpu.regs.eip;
            let vpn = pte::vpn(eip);
            let (pfn, mut entry_hot) = match hot_page {
                Some((hv, hp)) if hv == vpn => (hp, true),
                _ => {
                    let entry = self.itlb.peek(vpn);
                    let usable = entry.is_some_and(|e| {
                        !self.config.software_tlb
                            && Machine::check_entry_rights(
                                &self.config,
                                &e,
                                eip,
                                Access::Fetch,
                                Privilege::User,
                            )
                            .is_ok()
                    });
                    let Some(entry) = entry.filter(|_| usable) else {
                        // Cold I-TLB, rights re-walk due, or software-TLB
                        // fill protocol: one plain step reproduces the
                        // walk/fault/drop-and-trace accounting
                        // definitionally.
                        hot_page = None;
                        self.superblocks.stats.slow_steps += 1;
                        match self.step() {
                            Trap::None => {
                                retired += 1;
                                continue;
                            }
                            t => return (retired, t),
                        }
                    };
                    (entry.pfn, false)
                }
            };
            let off = pte::page_offset(eip);
            let version = self.phys.frame_version(pfn);
            let memo_hit = memo
                .as_ref()
                .is_some_and(|m| m.pfn == pfn && m.off == off && m.version == version);
            if memo_hit {
                self.superblocks.stats.hits += 1;
            } else {
                let block = match self.superblocks.lookup(pfn, off, version) {
                    Some(b) => b,
                    None => {
                        let ops = build_block(self.phys.frame_bytes(Frame(pfn)), off);
                        self.superblocks.insert(pfn, off, version, ops)
                    }
                };
                if block.ops.is_empty() {
                    // The entry instruction crosses the page edge:
                    // uncacheable.
                    hot_page = None;
                    self.superblocks.stats.slow_steps += 1;
                    match self.step() {
                        Trap::None => {
                            retired += 1;
                            continue;
                        }
                        t => return (retired, t),
                    }
                }
                memo = Some(BlockMemo {
                    pfn,
                    off,
                    version,
                    dc_warm: 0,
                    block,
                });
            }
            let BlockMemo { dc_warm, block, .. } = memo.as_mut().expect("memo set above");
            let block: &Block = block;
            let ops: &[CachedDecode] = &block.ops;
            let mut eip_i = eip;
            let mut off_i = off;
            // Set once an executed op may have stored. The version was
            // read at chain entry, store-free ops cannot move it, and the
            // re-check below is exact when it runs — so gating it on
            // `dirty` skips only vacuously-true compares.
            let mut dirty = false;
            let mut i = 0usize;
            'ops: while i < ops.len() {
                if i > 0 {
                    if self.cycles >= cycle_limit {
                        return (retired, Trap::None);
                    }
                    if dirty && self.phys.frame_version(pfn) != version {
                        // A store landed in the executing code frame:
                        // every remaining pre-decoded op is suspect. Bail
                        // before charging; the chain re-entry re-decodes
                        // from the freshly written bytes — the same point
                        // the per-step decoder would first observe them.
                        self.superblocks.stats.bailouts += 1;
                        break;
                    }
                }
                // Batched lane: a decode-cache-warm run of lane-eligible
                // ops (everything but dynamic control transfers, `int`,
                // `hlt` and `#UD` bytes — see [`classify`]). Each lane
                // op's fetch/decode side is exactly {charge `insn_cost`,
                // I-TLB replay hit, decode-cache replay hit}, so those
                // counters are flushed as batched adds at every lane
                // exit; the execute side runs for real (data-TLB walks
                // charge and trace through the canonical counters
                // in-place). The step loop's per-op budget check and the
                // dirty-gated coherence re-check run per op, same as the
                // general path. `regs.eip` is left stale between ops —
                // nothing a lane op executes reads it, and no
                // machine-layer trace event records it — except for
                // branches, which get the fall-through pre-set so a taken
                // transfer is detected by divergence; every other lane
                // exit re-syncs it before control leaves the lane.
                if dc_on && (i > 0 || entry_hot) {
                    let i0 = i;
                    let end = (*dc_warm as usize).min(i0 + block.runs[i0] as usize);
                    // Counter flush at lane exits: ops `i0..f` fetched
                    // (charged + replay hits), ops `i0..d` also retired.
                    macro_rules! flush {
                        ($f:expr, $d:expr) => {{
                            let (f, d) = (($f - i0) as u64, ($d - i0) as u64);
                            self.itlb.stats.hits += f;
                            self.decode_cache.stats.hits += f;
                            self.stats.instructions += d;
                            retired += d;
                        }};
                    }
                    let mut j = i0;
                    while j < end {
                        if j > i0 {
                            if self.cycles >= cycle_limit {
                                flush!(j, j);
                                self.cpu.regs.eip = eip_i;
                                return (retired, Trap::None);
                            }
                            if dirty && self.phys.frame_version(pfn) != version {
                                flush!(j, j);
                                self.cpu.regs.eip = eip_i;
                                self.superblocks.stats.bailouts += 1;
                                break 'ops;
                            }
                        }
                        if block.flags[j] & F_NO_FAULT != 0 {
                            // Infallible sub-run: none of these ops can
                            // fault, store or charge anything but
                            // `insn_cost`, so the per-op budget check is
                            // precomputed (the count that executes before
                            // the check first fails is ceil(remaining /
                            // cost)), the coherence re-check stays exactly
                            // as valid as it was at op `j` (stores are the
                            // only thing that move the version, and there
                            // are none), and the cycle charges land as one
                            // batched add.
                            let lim = end.min(j + block.fast[j] as usize);
                            let want = lim - j;
                            // Budget precomputation avoids the division when
                            // the whole run fits (`want` ≤ block len, so the
                            // product cannot overflow).
                            let n = if insn_cost == 0
                                || want as u64 * insn_cost <= cycle_limit - self.cycles
                            {
                                want
                            } else {
                                let budget = (cycle_limit - self.cycles).div_ceil(insn_cost);
                                want.min(budget.min(u32::MAX as u64) as usize)
                            };
                            let (start, stop) = (j, j + n);
                            let mut taken = false;
                            while j < stop {
                                let op = &ops[j];
                                let Decoded::Insn { insn, .. } = op.decoded else {
                                    unreachable!("no-fault op cannot be Invalid");
                                };
                                eip_i = eip_i.wrapping_add(op.len as u32);
                                off_i += op.len as u32;
                                if block.flags[j] & F_BRANCH != 0 {
                                    // Branches evaluate inline: `JmpRel` and
                                    // `JccRel` read only `eflags` and write
                                    // only `eip` (the same two arms
                                    // `exec_insn` would run), and a
                                    // not-taken branch leaves `eip` exactly
                                    // where the lane's stale-`eip` invariant
                                    // already has it — dead until the next
                                    // sync point — so only a taken transfer
                                    // touches the register file at all.
                                    j += 1;
                                    let target = match insn {
                                        Insn::JmpRel(rel) => Some(eip_i.wrapping_add(rel as u32)),
                                        Insn::JccRel(cond, rel) => {
                                            exec::cond_holds(&self.cpu.regs.eflags, cond)
                                                .then(|| eip_i.wrapping_add(rel as u32))
                                        }
                                        _ => unreachable!("F_BRANCH is exactly JmpRel/JccRel"),
                                    };
                                    if let Some(t) = target {
                                        if t != eip_i {
                                            self.cpu.regs.eip = t;
                                            taken = true;
                                            break;
                                        }
                                    }
                                } else {
                                    let flow = exec::exec_insn(self, insn, eip_i);
                                    debug_assert!(matches!(flow, Ok(exec::Flow::Normal)));
                                    let _ = flow;
                                    j += 1;
                                }
                            }
                            self.cycles += (j - start) as u64 * insn_cost;
                            if taken {
                                flush!(j, j);
                                if self.cpu.regs.eip == eip
                                    && self.cycles < cycle_limit
                                    && self.phys.frame_version(pfn) == version
                                {
                                    // Self-loop re-entry (see the
                                    // fallible path below for why this is
                                    // exact).
                                    self.superblocks.stats.hits += 1;
                                    entry_hot = true;
                                    eip_i = eip;
                                    off_i = off;
                                    dirty = false;
                                    i = 0;
                                    continue 'ops;
                                }
                                break 'ops;
                            }
                            continue;
                        }
                        let op = &ops[j];
                        let fl = block.flags[j];
                        let Decoded::Insn { insn, .. } = op.decoded else {
                            unreachable!("lane-flagged op cannot be Invalid");
                        };
                        let snapshot = (fl & F_FULL_SNAP != 0).then_some(self.cpu.regs);
                        self.cycles += insn_cost;
                        let fall = eip_i.wrapping_add(op.len as u32);
                        if fl & F_BRANCH != 0 {
                            self.cpu.regs.eip = fall;
                        }
                        match exec::exec_insn(self, insn, fall) {
                            Ok(exec::Flow::Normal) => {
                                j += 1;
                                dirty |= fl & F_WRITES_MEM != 0;
                                if fl & F_BRANCH != 0 && self.cpu.regs.eip != fall {
                                    flush!(j, j);
                                    if self.cpu.regs.eip == eip
                                        && self.cycles < cycle_limit
                                        && self.phys.frame_version(pfn) == version
                                    {
                                        // Self-loop: the taken branch
                                        // targets this block's own entry.
                                        // The chain re-entry is replayed
                                        // inline — budget check, version
                                        // re-check (above; the memo
                                        // compare is vacuous for an
                                        // unchanged key) and the
                                        // superblock hit — without
                                        // re-resolving page or memo. The
                                        // entry is hot by construction:
                                        // this page's fetch translate
                                        // already ran this call.
                                        self.superblocks.stats.hits += 1;
                                        entry_hot = true;
                                        eip_i = eip;
                                        off_i = off;
                                        dirty = false;
                                        i = 0;
                                        continue 'ops;
                                    }
                                    // Taken branch: chain from the target.
                                    break 'ops;
                                }
                                eip_i = fall;
                                off_i += op.len as u32;
                            }
                            Ok(exec::Flow::Syscall { .. } | exec::Flow::Halt) => {
                                unreachable!("int/hlt are never lane-eligible")
                            }
                            Err(e) => {
                                // Fetch-side accounting for the faulting
                                // op already happened (charge + replay
                                // hits), but it did not retire. The
                                // snapshot's `eip` is the lane's stale
                                // value, so the op-start `eip` is forced
                                // in both rollback shapes.
                                if let Some(regs) = snapshot {
                                    self.cpu.regs = regs;
                                }
                                self.cpu.regs.eip = eip_i;
                                flush!(j + 1, j);
                                match e {
                                    exec::Exc::PageFault(pf) => {
                                        self.cpu.regs.cr2 = pf.addr;
                                        self.stats.page_faults += 1;
                                        return (retired, Trap::PageFault(pf));
                                    }
                                    exec::Exc::InvalidOpcode { opcode } => {
                                        self.stats.invalid_opcodes += 1;
                                        return (
                                            retired,
                                            Trap::InvalidOpcode { eip: eip_i, opcode },
                                        );
                                    }
                                    exec::Exc::DivideError => {
                                        self.stats.divide_errors += 1;
                                        return (retired, Trap::DivideError);
                                    }
                                }
                            }
                        }
                    }
                    if j > i0 {
                        flush!(j, j);
                        i = j;
                        self.cpu.regs.eip = eip_i;
                        continue 'ops;
                    }
                }
                let op = &ops[i];
                let op_flags = block.flags[i];
                // Precise-exception rollback state. Most ops reach every
                // possible `Err` with all registers untouched (the fault
                // precedes any write), so restoring `eip` alone is exact;
                // only `F_FULL_SNAP` ops pay the full register-file copy.
                let snapshot = (op_flags & F_FULL_SNAP != 0).then_some(self.cpu.regs);
                let restore = |s: &mut Machine, snapshot: Option<crate::cpu::Regs>| match snapshot {
                    Some(regs) => s.cpu.regs = regs,
                    None => s.cpu.regs.eip = eip_i,
                };
                self.charge(insn_cost);
                if i == 0 && !entry_hot {
                    // First fast-path touch of this page in this call:
                    // byte-1 translation for real — MRU rotation, shadow
                    // recency, hit accounting and any A/D-bit work
                    // exactly as step() would do them. Later same-page
                    // entries replay it as `hits += 1` (see `hot_page`).
                    if let Err(pf) = self.translate(eip_i, Access::Fetch, Privilege::User) {
                        // Unreachable after the peek/rights gate above,
                        // but kept faithful to the slow path regardless.
                        restore(self, snapshot);
                        self.cpu.regs.cr2 = pf.addr;
                        self.stats.page_faults += 1;
                        return (retired, Trap::PageFault(pf));
                    }
                    hot_page = Some((vpn, pfn));
                } else {
                    // Guaranteed hit (same page as the op before it, or a
                    // hot block entry): rotate-to-MRU and shadow-touch are
                    // no-ops for a repeated key, so the hit counter is the
                    // lookup's only effect.
                    self.itlb.stats.hits += 1;
                }
                if dc_on {
                    if (i as u32) < *dc_warm {
                        // Known cached at this version: the probe would
                        // hit, and a hit's only effect is the counter.
                        #[cfg(debug_assertions)]
                        debug_assert_eq!(self.decode_cache.lookup(pfn, off_i, version), Some(*op));
                        #[cfg(not(debug_assertions))]
                        {
                            self.decode_cache.stats.hits += 1;
                        }
                    } else {
                        match self.decode_cache.lookup(pfn, off_i, version) {
                            Some(cached) => debug_assert_eq!(cached, *op),
                            None => {
                                // Decode-cache miss: the byte-by-byte
                                // decoder re-fetches all `len` bytes
                                // through the I-TLB — same-page hits.
                                self.itlb.stats.hits += op.len as u64;
                                self.decode_cache.insert(pfn, off_i, version, *op);
                            }
                        }
                        *dc_warm = i as u32 + 1;
                    }
                } else {
                    // Uncached fetch: bytes 2..len are same-page hits.
                    self.itlb.stats.hits += op.len as u64 - 1;
                }
                let next_eip = eip_i.wrapping_add(op.len as u32);
                let insn = match op.decoded {
                    Decoded::Insn { insn, .. } => insn,
                    Decoded::Invalid { opcode } => {
                        restore(self, snapshot);
                        self.stats.invalid_opcodes += 1;
                        return (retired, Trap::InvalidOpcode { eip: eip_i, opcode });
                    }
                };
                self.cpu.regs.eip = next_eip;
                match exec::exec_insn(self, insn, next_eip) {
                    Ok(exec::Flow::Normal) => {
                        self.stats.instructions += 1;
                        retired += 1;
                        dirty |= op_flags & F_WRITES_MEM != 0;
                        if let Some(ev) = self.pending_cfi.take() {
                            // Same drain point as Machine::step: the
                            // transfer already retired, so the per-step and
                            // pipelined trap streams stay identical (calls
                            // and rets always terminate a block and execute
                            // through this general path).
                            return (retired, Trap::ControlFlow(ev));
                        }
                        if self.cpu.regs.eip != next_eip {
                            // Taken branch / call / ret: chain from the
                            // transfer target.
                            break;
                        }
                        eip_i = next_eip;
                        off_i += op.len as u32;
                        i += 1;
                    }
                    Ok(exec::Flow::Syscall { vector }) => {
                        self.stats.instructions += 1;
                        self.stats.syscalls += 1;
                        return (retired, Trap::Syscall { vector });
                    }
                    Ok(exec::Flow::Halt) => {
                        self.stats.instructions += 1;
                        return (retired, Trap::Halt);
                    }
                    Err(exec::Exc::PageFault(pf)) => {
                        restore(self, snapshot);
                        self.cpu.regs.cr2 = pf.addr;
                        self.stats.page_faults += 1;
                        return (retired, Trap::PageFault(pf));
                    }
                    Err(exec::Exc::InvalidOpcode { opcode }) => {
                        restore(self, snapshot);
                        self.stats.invalid_opcodes += 1;
                        return (retired, Trap::InvalidOpcode { eip: eip_i, opcode });
                    }
                    Err(exec::Exc::DivideError) => {
                        restore(self, snapshot);
                        self.stats.divide_errors += 1;
                        return (retired, Trap::DivideError);
                    }
                }
            }
            // Fell off the block end (last op ended flush with the page
            // edge), bailed on a version bump, or took a branch: chain.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop(len: u8) -> CachedDecode {
        CachedDecode {
            decoded: Decoded::Insn {
                insn: Insn::Nop,
                len,
            },
            len,
        }
    }

    #[test]
    fn lookup_insert_hit_and_version_invalidation() {
        let mut c = SuperblockCache::new(4);
        assert!(c.lookup(2, 16, 0).is_none());
        c.insert(2, 16, 0, vec![nop(1), nop(1)]);
        assert_eq!(c.lookup(2, 16, 0).unwrap().ops.len(), 2);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.builds, 1);
        // Newer generation: every block in the frame is stale.
        assert!(c.lookup(2, 16, 1).is_none());
        assert_eq!(c.stats.invalidations, 1);
        assert!(c.lookup(2, 16, 1).is_none(), "already cleared");
        assert_eq!(c.stats.invalidations, 1, "no double count");
    }

    #[test]
    fn build_stops_at_control_transfer() {
        // nop; nop; ret; nop — the trailing nop must not be included.
        let bytes = [0x90, 0x90, 0xC3, 0x90];
        let ops = build_block(&bytes, 0);
        assert_eq!(ops.len(), 3);
        assert!(matches!(
            ops[2].decoded,
            Decoded::Insn {
                insn: Insn::Ret,
                ..
            }
        ));
    }

    #[test]
    fn build_continues_through_conditional_branches() {
        // dec eax; jnz -3; hlt — the fall-through run spans the branch.
        let bytes = [0x48, 0x75, 0xFD, 0xF4];
        let ops = build_block(&bytes, 0);
        assert_eq!(ops.len(), 3);
        assert!(matches!(
            ops[2].decoded,
            Decoded::Insn {
                insn: Insn::Hlt,
                ..
            }
        ));
    }

    #[test]
    fn build_excludes_page_crossing_tail() {
        // `mov eax, imm32` needs 5 bytes; only 3 remain: not included.
        let bytes = [0x90, 0xB8, 0x01, 0x02];
        let ops = build_block(&bytes, 0);
        assert_eq!(ops.len(), 1, "only the nop fits");
        // Entered *at* the crosser, the block is empty (slow path).
        assert!(build_block(&bytes, 1).is_empty());
    }

    #[test]
    fn build_stops_after_invalid_opcode() {
        // nop; 0x0F (undecodable); nop — invalid terminates, included.
        let bytes = [0x90, 0x0F, 0x90];
        let ops = build_block(&bytes, 0);
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[1].decoded, Decoded::Invalid { .. }));
    }
}
