//! Simulated 32-bit x86-flavoured machine used as the hardware substrate for
//! the split-memory (virtual Harvard architecture) reproduction.
//!
//! The crate models exactly the architectural features the paper's technique
//! exploits:
//!
//! * **Physical memory** organised in 4 KiB frames ([`phys::PhysMemory`],
//!   [`phys::FrameAllocator`]).
//! * **Two-level, hardware-walked pagetables** stored *in* simulated physical
//!   memory, with x86-style permission bits including the supervisor/user bit
//!   ([`pte`]).
//! * **Split translation lookaside buffers**: a dedicated instruction-TLB and
//!   data-TLB whose entries **cache access rights at fill time** and are never
//!   re-validated against the pagetable on a hit ([`tlb`]). This is the
//!   microarchitectural property that makes TLB desynchronisation — and hence
//!   the virtual Harvard architecture — possible.
//! * A **CPU** with the registers, trap flag (single-step mode), exception
//!   model (`#PF` with CR2, `#UD`, `#DB`, `#DE`) and a compact x86-flavoured
//!   instruction set ([`cpu`], [`isa`], [`exec`]).
//! * A deterministic **cycle cost model** so experiments measure relative
//!   performance without host timing noise ([`costs`]).
//!
//! # Example
//!
//! ```
//! use sm_machine::{Machine, MachineConfig};
//! use sm_machine::pte::{self, PAGE_SIZE};
//!
//! let mut m = Machine::new(MachineConfig::default());
//! // Identity-map one page at virtual 0x1000 and run a tiny program.
//! let dir = m.alloc_frame().expect("frame");
//! let tab = m.alloc_frame().expect("frame");
//! let code = m.alloc_frame().expect("frame");
//! m.phys.write_u32(dir.base(), pte::make(tab, pte::PRESENT | pte::WRITABLE | pte::USER));
//! m.phys.write_u32(tab.base() + 4, pte::make(code, pte::PRESENT | pte::WRITABLE | pte::USER));
//! m.phys.write(code.base(), &[0x90, 0xF4]); // nop; hlt
//! m.set_cr3(dir);
//! m.cpu.regs.eip = PAGE_SIZE; // 0x1000
//! let trap = m.step(); // executes the nop
//! assert_eq!(trap, sm_machine::Trap::None);
//! ```

pub mod chaos;
pub mod costs;
pub mod cpu;
pub mod decode_cache;
pub mod exec;
pub mod isa;
pub mod phys;
pub mod pte;
pub mod sha256;
pub mod snapshot;
pub mod stats;
pub mod superblock;
pub mod tlb;

mod machine;

pub use decode_cache::DecodeCacheStats;
pub use machine::{CfiEvent, CfiKind, Machine, MachineConfig, Trap};
pub use superblock::SuperblockStats;
pub use tlb::{TlbGeometry, TlbPreset};

/// Re-export of the trace substrate so embedders reach the event types
/// through the machine they trace.
pub use sm_trace as trace;
