//! Property tests for the set-associative TLB model.
//!
//! The load-bearing one: a geometry with a single set (`ways == capacity`)
//! must be observably identical to a plain fully-associative LRU buffer —
//! same hit/miss answers, same victim choices, same resident entries in
//! the same recency order — for arbitrary interleavings of lookups, fills,
//! flushes, invalidations and chaos evictions. That is what makes
//! `TlbPreset::default()` a faithful stand-in for the pre-set-associative
//! model every earlier experiment ran on.

use proptest::prelude::*;
use sm_machine::tlb::{Tlb, TlbEntry, TlbGeometry};

/// Reference model: a fully-associative LRU buffer, written the obvious
/// way with no sets anywhere.
struct RefFullyAssoc {
    cap: usize,
    /// MRU-first.
    entries: Vec<TlbEntry>,
}

impl RefFullyAssoc {
    fn new(cap: usize) -> RefFullyAssoc {
        RefFullyAssoc {
            cap,
            entries: Vec::new(),
        }
    }

    fn lookup(&mut self, vpn: u32) -> Option<TlbEntry> {
        let i = self.entries.iter().position(|e| e.vpn == vpn)?;
        let e = self.entries.remove(i);
        self.entries.insert(0, e);
        Some(e)
    }

    fn fill(&mut self, entry: TlbEntry) {
        if let Some(i) = self.entries.iter().position(|e| e.vpn == entry.vpn) {
            self.entries.remove(i);
        } else if self.entries.len() == self.cap {
            self.entries.pop();
        }
        self.entries.insert(0, entry);
    }

    fn flush_all(&mut self) {
        self.entries.clear();
    }

    fn drop_entry(&mut self, vpn: u32) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.vpn != vpn);
        self.entries.len() != before
    }

    /// Mirror of [`Tlb::evict_one`] specialised to one set: the set draw
    /// is vacuous, the way draw indexes the recency order.
    fn evict_one(&mut self, draw: u64) -> Option<u32> {
        if self.entries.is_empty() {
            return None;
        }
        let wi = ((draw >> 32) % self.entries.len() as u64) as usize;
        Some(self.entries.remove(wi).vpn)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u32),
    Fill(u32),
    FlushAll,
    FlushPage(u32),
    Evict(u64),
}

/// Decode one op from a raw draw (the vendored proptest subset has no
/// `prop_oneof`; a weighted decode of `any::<u64>()` does the same job).
/// A small VPN domain on a small capacity forces heavy reuse, replacement
/// and victim churn; flushes and chaos evictions stay rare enough that
/// the buffer is usually populated.
fn decode(raw: u64) -> Op {
    let vpn = ((raw >> 8) % 24) as u32;
    match raw % 11 {
        0..=3 => Op::Lookup(vpn),
        4..=7 => Op::Fill(vpn),
        8 => Op::FlushAll,
        9 => Op::FlushPage(vpn),
        _ => Op::Evict(raw.rotate_left(17)),
    }
}

fn entry(vpn: u32) -> TlbEntry {
    TlbEntry {
        vpn,
        pfn: vpn.wrapping_mul(7) + 1,
        asid: 0,
        user: true,
        writable: vpn.is_multiple_of(2),
        nx: vpn.is_multiple_of(3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One-set geometry ≡ fully-associative LRU, observation by
    /// observation.
    #[test]
    fn single_set_matches_fully_associative_reference(
        raws in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        const CAP: usize = 8;
        let mut tlb = Tlb::with_geometry(TlbGeometry::fully_associative(CAP));
        let mut reference = RefFullyAssoc::new(CAP);
        for op in raws.iter().map(|r| decode(*r)) {
            match op {
                Op::Lookup(vpn) => {
                    prop_assert_eq!(tlb.lookup(vpn), reference.lookup(vpn));
                }
                Op::Fill(vpn) => {
                    tlb.fill(entry(vpn));
                    reference.fill(entry(vpn));
                }
                Op::FlushAll => {
                    tlb.flush_all();
                    reference.flush_all();
                }
                Op::FlushPage(vpn) => {
                    prop_assert_eq!(tlb.flush_page(vpn), reference.drop_entry(vpn));
                }
                Op::Evict(draw) => {
                    prop_assert_eq!(tlb.evict_one(draw), reference.evict_one(draw));
                }
            }
            // Same residents, same recency order, after every single op.
            let got: Vec<TlbEntry> = tlb.iter().copied().collect();
            prop_assert_eq!(&got, &reference.entries);
        }
        // And set pressure cannot exist where there is only one set.
        prop_assert_eq!(tlb.stats.conflict_misses, 0);
    }

    /// On any geometry, the miss classes partition the misses and hits
    /// plus misses account for every lookup.
    #[test]
    fn miss_classes_partition_on_any_geometry(
        sets_log2 in 0u32..5,
        ways in 1usize..5,
        raws in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let mut tlb = Tlb::with_geometry(TlbGeometry::new(1 << sets_log2, ways));
        let mut lookups = 0u64;
        let mut injected = 0u64;
        for op in raws.iter().map(|r| decode(*r)) {
            match op {
                Op::Lookup(vpn) => {
                    lookups += 1;
                    if tlb.lookup(vpn).is_none() {
                        tlb.fill(entry(vpn));
                    }
                }
                Op::Fill(vpn) => {
                    tlb.fill(entry(vpn));
                }
                Op::FlushAll => tlb.flush_all(),
                Op::FlushPage(vpn) => {
                    tlb.flush_page(vpn);
                }
                Op::Evict(draw) => {
                    if tlb.evict_one(draw).is_some() {
                        injected += 1;
                    }
                }
            }
        }
        let s = tlb.stats;
        prop_assert_eq!(s.hits + s.misses, lookups);
        prop_assert_eq!(s.misses, s.cold_misses + s.capacity_misses + s.conflict_misses);
        // Chaos evictions are counted apart from genuine LRU pressure.
        prop_assert_eq!(s.chaos_evictions, injected);
        // Every entry sits in the set its VPN selects.
        for (si, entries) in tlb.iter_sets() {
            for e in entries {
                prop_assert_eq!(tlb.geometry().set_of(e.vpn), si);
            }
        }
    }
}
