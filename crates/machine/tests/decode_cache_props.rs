//! Decode-cache transparency and coherence tests.
//!
//! The cache must be invisible to the modeled machine: running the same
//! program with the cache on and off must produce the same trap sequence,
//! register file, `MachineStats`, cycle count and physical memory — the
//! only observable difference is host speed (and the cache's own counters).

use proptest::prelude::*;
use sm_machine::cpu::{flags, Reg};
use sm_machine::pte::{self, PAGE_SIZE};
use sm_machine::{Machine, MachineConfig, Trap};

/// Machine with `pages` user pages identity-ish mapped at 0x1000.., code
/// installed at 0x1000 (same shape as `machine_props.rs`).
fn harness(code: &[u8], pages: u32, config: MachineConfig) -> Machine {
    let mut m = Machine::new(MachineConfig {
        phys_frames: pages + 64,
        ..config
    });
    let dir = m.alloc_zeroed_frame().unwrap();
    let tab = m.alloc_zeroed_frame().unwrap();
    m.phys.write_u32(
        dir.base(),
        pte::make(tab, pte::PRESENT | pte::WRITABLE | pte::USER),
    );
    for i in 0..pages {
        let f = m.alloc_zeroed_frame().unwrap();
        m.phys.write_u32(
            tab.base() + (1 + i) * 4,
            pte::make(f, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        if i == 0 {
            m.phys.write(f.base(), code);
        }
    }
    m.set_cr3(dir);
    m.cpu.regs.eip = PAGE_SIZE;
    m.cpu.regs.set(Reg::Esp, PAGE_SIZE * (1 + pages));
    m
}

fn config(cache: bool, tf: bool) -> MachineConfig {
    let _ = tf;
    MachineConfig {
        decode_cache: cache,
        ..MachineConfig::default()
    }
}

/// Step both machines in lockstep, asserting identical traps, registers,
/// stats and cycles at every retire; stop after `max` steps or the first
/// terminal trap. Returns the number of steps taken.
fn run_lockstep(cached: &mut Machine, plain: &mut Machine, max: u32) -> u32 {
    for i in 0..max {
        let tc = cached.step();
        let tp = plain.step();
        assert_eq!(tc, tp, "trap diverged at step {i}");
        assert_eq!(
            cached.cpu.regs, plain.cpu.regs,
            "registers diverged at step {i}"
        );
        assert_eq!(cached.stats, plain.stats, "stats diverged at step {i}");
        assert_eq!(cached.cycles, plain.cycles, "cycles diverged at step {i}");
        match tc {
            Trap::None | Trap::DebugStep => {}
            // A real kernel would service these; for equivalence purposes
            // the comparison above already covered the interesting state.
            _ => return i + 1,
        }
    }
    max
}

/// Compare all of physical memory.
fn assert_same_memory(a: &Machine, b: &Machine) {
    assert_eq!(a.phys.frame_count(), b.phys.frame_count());
    for f in 0..a.phys.frame_count() {
        let fr = pte::Frame(f);
        assert_eq!(
            a.phys.frame_bytes(fr),
            b.phys.frame_bytes(fr),
            "physical frame {f} diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte programs behave identically with the cache on/off:
    /// same traps, registers, `MachineStats`, cycles and final memory.
    #[test]
    fn cache_is_transparent_on_arbitrary_code(
        code in proptest::collection::vec(any::<u8>(), 1..64),
        tf in any::<bool>(),
    ) {
        let mut cached = harness(&code, 8, config(true, tf));
        let mut plain = harness(&code, 8, config(false, tf));
        cached.cpu.regs.set_flag(flags::TF, tf);
        plain.cpu.regs.set_flag(flags::TF, tf);
        run_lockstep(&mut cached, &mut plain, 256);
        assert_same_memory(&cached, &plain);
        prop_assert_eq!(
            plain.decode_cache.stats,
            sm_machine::DecodeCacheStats::default(),
            "disabled cache must not count"
        );
    }

    /// Same equivalence on the paper's testbed geometry (set-associative
    /// TLBs exercise eviction/recency interplay with the fetch path).
    #[test]
    fn cache_is_transparent_on_pentium3(
        code in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut cached = harness(&code, 8, MachineConfig { decode_cache: true, ..MachineConfig::pentium3() });
        let mut plain = harness(&code, 8, MachineConfig { decode_cache: false, ..MachineConfig::pentium3() });
        run_lockstep(&mut cached, &mut plain, 256);
        assert_same_memory(&cached, &plain);
    }
}

/// A self-modifying program on an *unsplit* code page must see fresh
/// decodes: the overwritten instruction executes as its new encoding, and
/// the cache records the frame invalidation.
#[test]
fn self_modifying_code_sees_fresh_decodes() {
    // 0x1000: jmp 0x1010           ; first pass caches the nop at 0x1010
    // 0x1002: mov byte [0x1010], 0xF4   ; overwrite it with hlt
    // 0x1009: jmp 0x1010           ; re-execute: must decode hlt now
    // 0x1010: nop                  ; -> hlt after the store
    // 0x1011: jmp 0x1002           ; loop back to the overwriting store
    let code = [
        0xEB, 0x0E, // jmp +14 -> 0x1010
        0xC6, 0x05, 0x10, 0x10, 0x00, 0x00, 0xF4, // mov byte [0x1010], 0xF4
        0xEB, 0x05, // jmp +5 -> 0x1010
        0x90, 0x90, 0x90, 0x90, 0x90, // pad
        0x90, // 0x1010: nop (becomes hlt)
        0xEB, 0xEF, // jmp -17 -> 0x1002
    ];
    for cache in [true, false] {
        let mut m = harness(&code, 2, config(cache, false));
        let mut halted = false;
        for _ in 0..8 {
            match m.step() {
                Trap::None => {}
                Trap::Halt => {
                    halted = true;
                    break;
                }
                t => panic!("unexpected trap {t:?}"),
            }
        }
        assert!(halted, "stale decode executed (cache={cache})");
        if cache {
            assert!(
                m.decode_cache.stats.invalidations >= 1,
                "the code-frame overwrite must invalidate cached decodes"
            );
        } else {
            assert_eq!(
                m.decode_cache.stats,
                sm_machine::DecodeCacheStats::default()
            );
        }
    }
}

/// Hot loops actually hit: re-executing the same instructions decodes each
/// one exactly once.
#[test]
fn hot_loop_hits_after_first_decode() {
    // inc eax; jmp -3 — the micro-bench loop.
    let code = [0x40, 0xEB, 0xFD];
    let mut m = harness(&code, 2, config(true, false));
    for _ in 0..100 {
        assert_eq!(m.step(), Trap::None);
    }
    let s = m.decode_cache.stats;
    assert_eq!(s.misses, 2, "one miss per distinct instruction");
    assert_eq!(s.hits, 98);
    assert_eq!(s.invalidations, 0);
}

/// An instruction whose encoding crosses a page boundary is never cached —
/// every execution re-decodes byte-by-byte.
#[test]
fn page_crossing_instructions_are_not_cached() {
    // Place `mov eax, imm32` (5 bytes) so it straddles 0x1FFF/0x2000, and
    // jump to it repeatedly from page 1.
    let mut code = vec![0u8; (PAGE_SIZE - 1) as usize + 5];
    code[0] = 0xE9; // jmp rel32 -> 0x1FFF
    code[1..5].copy_from_slice(&(0x0FFAu32).to_le_bytes()); // 0x1005 + 0xFFA = 0x1FFF
    code[(PAGE_SIZE - 1) as usize] = 0xB8; // mov eax, imm32 at 0x1FFF
                                           // imm bytes land at 0x2000.. (zero-filled page 2) = mov eax, 0.
    let mut cached = harness(&code, 4, config(true, false));
    let mut plain = harness(&code, 4, config(false, false));
    for _ in 0..4 {
        // jmp; mov; then eip runs into zeroed page 2 -> invalid opcode 0.
        let tc = cached.step();
        assert_eq!(tc, plain.step());
        if !matches!(tc, Trap::None) {
            break;
        }
    }
    let s = cached.decode_cache.stats;
    assert_eq!(
        s.hits, 0,
        "straddling decode must never be served from cache"
    );
    assert!(s.misses >= 2);
    assert_same_memory(&cached, &plain);
}
