//! Machine-level integration and property tests: MMU corner cases, NX,
//! TLB capacity behaviour, the software-TLB mode, and robustness of the
//! executor against arbitrary byte programs.

use proptest::prelude::*;
use sm_machine::cpu::{flags, Access, Privilege, Reg};
use sm_machine::pte::{self, Frame, PAGE_SIZE};
use sm_machine::tlb::TlbEntry;
use sm_machine::{Machine, MachineConfig, Trap};

/// Machine with `pages` user pages identity-ish mapped at 0x1000.., code
/// installed at 0x1000.
fn harness(code: &[u8], pages: u32, config: MachineConfig) -> Machine {
    let mut m = Machine::new(MachineConfig {
        phys_frames: pages + 64,
        ..config
    });
    let dir = m.alloc_zeroed_frame().unwrap();
    let tab = m.alloc_zeroed_frame().unwrap();
    m.phys.write_u32(
        dir.base(),
        pte::make(tab, pte::PRESENT | pte::WRITABLE | pte::USER),
    );
    for i in 0..pages {
        let f = m.alloc_zeroed_frame().unwrap();
        m.phys.write_u32(
            tab.base() + (1 + i) * 4,
            pte::make(f, pte::PRESENT | pte::WRITABLE | pte::USER),
        );
        if i == 0 {
            m.phys.write(f.base(), code);
        }
    }
    m.set_cr3(dir);
    m.cpu.regs.eip = PAGE_SIZE;
    m.cpu.regs.set(Reg::Esp, PAGE_SIZE * (1 + pages));
    m
}

#[test]
fn page_crossing_word_access_works() {
    // Write a u32 across the 0x1FFF/0x2000 boundary and read it back.
    let mut m = harness(&[0x90], 4, MachineConfig::default());
    m.write_u32(0x1FFE, 0xAABBCCDD, Privilege::User).unwrap();
    assert_eq!(m.read_u32(0x1FFE, Privilege::User).unwrap(), 0xAABBCCDD);
    // The two halves landed on different physical frames.
    let p1 = m.translate(0x1FFF, Access::Read, Privilege::User).unwrap();
    let p2 = m.translate(0x2000, Access::Read, Privilege::User).unwrap();
    assert_ne!(p1 >> 12, p2 >> 12);
}

#[test]
fn page_crossing_write_is_precise_when_second_page_unmapped() {
    let mut m = harness(&[0x90], 1, MachineConfig::default());
    // 0x1FFE..0x2002 crosses into unmapped 0x2000.
    let before = m.read_u32(0x1FFC, Privilege::User).unwrap();
    let err = m
        .write_u32(0x1FFE, 0xDEADBEEF, Privilege::User)
        .unwrap_err();
    assert_eq!(err.addr & !0xFFF, 0x2000);
    // Nothing was partially written.
    assert_eq!(m.read_u32(0x1FFC, Privilege::User).unwrap(), before);
}

#[test]
fn nx_bit_blocks_fetch_but_not_data() {
    let mut m = harness(
        &[0x90],
        4,
        MachineConfig {
            nx_enabled: true,
            ..MachineConfig::default()
        },
    );
    // Mark page 2 (0x2000) NX.
    let e = m.read_pte(0x2000).unwrap();
    let tab = pte::frame(m.phys.read_u32(Frame(m.cpu.regs.cr3).base()));
    m.phys.write_u32(tab.base() + 2 * 4, e | pte::NX);
    // Data access fine.
    assert!(m.read_u8(0x2000, Privilege::User).is_ok());
    // Fetch faults with a protection error.
    let err = m
        .translate(0x2000, Access::Fetch, Privilege::User)
        .unwrap_err();
    assert!(err.present);
    assert_eq!(err.access, Access::Fetch);
    // With the bit disabled, the same fetch succeeds.
    let mut m2 = harness(&[0x90], 4, MachineConfig::default());
    let e2 = m2.read_pte(0x2000).unwrap();
    let tab2 = pte::frame(m2.phys.read_u32(Frame(m2.cpu.regs.cr3).base()));
    m2.phys.write_u32(tab2.base() + 2 * 4, e2 | pte::NX);
    assert!(m2.translate(0x2000, Access::Fetch, Privilege::User).is_ok());
}

#[test]
fn tlb_capacity_eviction_forces_rewalks() {
    // Touch more pages than the D-TLB holds; early pages must re-walk.
    let mut m = harness(&[0x90], 80, MachineConfig::default());
    for i in 0..80u32 {
        m.read_u8(PAGE_SIZE * (1 + i), Privilege::User).unwrap();
    }
    let walks_after_first_pass = m.stats.walks;
    assert_eq!(walks_after_first_pass, 80);
    // Second pass: capacity is 64, so the working set does not fit and
    // at least some accesses walk again.
    for i in 0..80u32 {
        m.read_u8(PAGE_SIZE * (1 + i), Privilege::User).unwrap();
    }
    assert!(
        m.stats.walks > walks_after_first_pass,
        "no capacity evictions observed"
    );
    assert!(m.dtlb.stats.evictions > 0);
}

#[test]
fn stale_tlb_entry_survives_pte_change_until_flush() {
    // The paper's core microarchitectural fact, at machine level.
    let mut m = harness(&[0x90], 4, MachineConfig::default());
    let paddr1 = m.translate(0x2000, Access::Read, Privilege::User).unwrap();
    // Point the PTE somewhere else without invlpg.
    let tab = pte::frame(m.phys.read_u32(Frame(m.cpu.regs.cr3).base()));
    let other = m.alloc_zeroed_frame().unwrap();
    m.phys.write_u32(
        tab.base() + 2 * 4,
        pte::make(other, pte::PRESENT | pte::WRITABLE | pte::USER),
    );
    // Still translates to the OLD frame (cached).
    let paddr2 = m.translate(0x2000, Access::Read, Privilege::User).unwrap();
    assert_eq!(paddr1, paddr2);
    // After invlpg, the new mapping takes effect.
    m.invlpg(0x2000);
    let paddr3 = m.translate(0x2000, Access::Read, Privilege::User).unwrap();
    assert_eq!(paddr3 >> 12, other.0);
}

#[test]
fn cr3_load_flushes_both_tlbs() {
    let mut m = harness(&[0x90], 4, MachineConfig::default());
    m.read_u8(0x2000, Privilege::User).unwrap();
    m.translate(0x1000, Access::Fetch, Privilege::User).unwrap();
    assert!(!m.dtlb.is_empty());
    assert!(!m.itlb.is_empty());
    let dir = m.cr3();
    m.set_cr3(dir);
    assert!(m.dtlb.is_empty());
    assert!(m.itlb.is_empty());
}

#[test]
fn softtlb_mode_never_walks() {
    let mut m = harness(
        &[0x90],
        4,
        MachineConfig {
            software_tlb: true,
            ..MachineConfig::default()
        },
    );
    // Every access misses until the "kernel" fills the TLB.
    let err = m.read_u8(0x2000, Privilege::User).unwrap_err();
    assert!(!err.present);
    assert_eq!(m.stats.walks, 0);
    m.fill_dtlb(TlbEntry {
        vpn: 2,
        pfn: (m.read_pte(0x2000).unwrap()) >> 12,
        asid: 0,
        user: true,
        writable: true,
        nx: false,
    });
    assert!(m.read_u8(0x2000, Privilege::User).is_ok());
    assert_eq!(m.stats.walks, 0);
}

#[test]
fn trap_flag_sequences_are_precise_across_faults() {
    // TF set; instruction faults; after the fault is fixed the retry
    // completes and only then does the debug trap fire.
    // mov eax, [0x5000] with page 5 unmapped... use page 4 mapped? Use an
    // unmapped high page then map it manually.
    let code = [0x8B, 0x05, 0x00, 0x90, 0x00, 0x00, 0x90]; // mov eax,[0x9000]; nop
    let mut m = harness(&code, 4, MachineConfig::default());
    m.cpu.regs.set_flag(flags::TF, true);
    match m.step() {
        Trap::PageFault(pf) => assert_eq!(pf.addr, 0x9000),
        t => panic!("expected fault, got {t:?}"),
    }
    // "Kernel" maps page 8 (0x9000 >> 12 = 9; table index 9).
    let tab = pte::frame(m.phys.read_u32(Frame(m.cpu.regs.cr3).base()));
    let f = m.alloc_zeroed_frame().unwrap();
    m.phys.write_u32(
        tab.base() + 9 * 4,
        pte::make(f, pte::PRESENT | pte::WRITABLE | pte::USER),
    );
    // Retry: completes and raises the deferred debug trap.
    assert_eq!(m.step(), Trap::DebugStep);
    m.cpu.regs.set_flag(flags::TF, false);
    assert!(m.step().is_none()); // the nop
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The machine never panics executing arbitrary bytes as code: every
    /// outcome is a well-defined trap.
    #[test]
    fn arbitrary_code_never_panics(code in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut m = harness(&code, 8, MachineConfig::default());
        for _ in 0..256 {
            match m.step() {
                Trap::None => {}
                Trap::Syscall { .. } => break, // kernel's problem
                Trap::Halt
                | Trap::PageFault(_)
                | Trap::InvalidOpcode { .. }
                | Trap::DivideError
                | Trap::DebugStep => break,
                // CFI tracing is opt-in; with `cfi_events` off (the default
                // config used here) the machine must never surface one.
                Trap::ControlFlow(ev) => panic!("CFI event with cfi_events off: {ev:?}"),
            }
        }
    }

    /// Faults are register-precise under arbitrary code: after any fault
    /// trap, EIP points at the faulting instruction.
    #[test]
    fn faults_restore_eip(code in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut m = harness(&code, 2, MachineConfig::default());
        for _ in 0..64 {
            let eip_before = m.cpu.regs.eip;
            match m.step() {
                Trap::PageFault(_) | Trap::InvalidOpcode { .. } | Trap::DivideError => {
                    prop_assert_eq!(m.cpu.regs.eip, eip_before);
                    break;
                }
                Trap::None | Trap::DebugStep => {}
                _ => break,
            }
        }
    }

    /// Data written through the MMU reads back identically (any offset,
    /// including page-crossing ones).
    #[test]
    fn mmu_rw_roundtrip(off in 0u32..8190, val in any::<u32>()) {
        let mut m = harness(&[0x90], 4, MachineConfig::default());
        let addr = 0x1000 + off;
        m.write_u32(addr, val, Privilege::User).unwrap();
        prop_assert_eq!(m.read_u32(addr, Privilege::User).unwrap(), val);
    }
}
