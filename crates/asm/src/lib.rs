//! Two-pass assembler and disassembler for the `sm-machine` instruction set.
//!
//! Guest programs — the vulnerable servers, exploit payloads, the guest C
//! library and every benchmark workload in this repository — are written in
//! an Intel-flavoured assembly dialect and assembled to machine code with
//! this crate. The disassembler is used by the forensics response mode to
//! render captured shellcode.
//!
//! # Syntax
//!
//! One statement per line; comments start with `;` or `#`.
//!
//! ```text
//! ; compute 6*7 and exit with it
//!         .equ SYS_EXIT, 1
//! start:  mov eax, 6
//!         mov ebx, 7
//!         mul ebx
//!         mov ebx, eax        ; exit code
//!         mov eax, SYS_EXIT
//!         int 0x80
//! msg:    .asciz "hello"
//! buf:    .space 64, 0
//! ```
//!
//! * Registers: `eax ecx edx ebx esp ebp esi edi`; byte registers
//!   `al cl dl bl spl bpl sil dil` select byte-sized moves.
//! * Memory operands: `[expr]`, `[reg]`, `[reg+disp]`, `[reg+reg*scale]`,
//!   `[reg+reg*scale+disp]`; prefix with `byte`/`dword` to size an
//!   immediate store (`mov byte [eax], 0`).
//! * Immediates: decimal, `0x` hex, `'c'` characters, label names, and
//!   `+`/`-` chains of those.
//! * Directives: `.byte`, `.word` (32-bit), `.ascii`, `.asciz`, `.space n
//!   [, fill]`, `.align n`, `.equ name, expr`.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), sm_asm::AsmError> {
//! let out = sm_asm::assemble("mov eax, 1\nmov ebx, 0\nint 0x80\n", 0x1000)?;
//! assert_eq!(out.bytes[0], 0xB8); // mov eax, imm32
//! let text = sm_asm::disassemble(&out.bytes, 0x1000);
//! assert!(text[0].text.starts_with("mov eax"));
//! # Ok(())
//! # }
//! ```

mod disasm;
mod encoder;
mod parser;

pub use disasm::{disassemble, format_insn, DisLine};
pub use encoder::{assemble, AsmOutput};
pub use parser::AsmError;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use sm_machine::isa::{decode_slice, Decoded};

    proptest! {
        /// The decoder never panics on arbitrary bytes.
        #[test]
        fn decoder_total_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
            let _ = decode_slice(&bytes);
        }

        /// disassemble → assemble → disassemble is the identity on the
        /// rendered text, for arbitrary byte strings that happen to decode.
        /// (Encodings may differ — `jmp rel8` re-encodes as `rel32` — but the
        /// position-aware text, including absolute branch targets, must not.)
        #[test]
        fn disasm_asm_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..16)) {
            if let Ok(Decoded::Insn { insn, len }) = decode_slice(&bytes) {
                let line = &crate::disassemble(&bytes[..len as usize], 0)[0];
                let out = crate::assemble(&line.text, 0)
                    .unwrap_or_else(|e| panic!("formatted `{}` failed to assemble: {e}", line.text));
                let line2 = &crate::disassemble(&out.bytes, 0)[0];
                prop_assert_eq!(
                    &line2.text, &line.text,
                    "{:?} (len {}) reassembled differently", insn, len
                );
            }
        }
    }
}
