//! Two-pass encoder: statements → machine code.
//!
//! Pass one sizes every statement (encoding-width choices depend only on
//! operand *shape*, never on unresolved symbol values, so sizes are stable)
//! and assigns label addresses; pass two encodes with the full symbol table.

use crate::parser::{self, AsmError, Expr, Line, OpSize, Operand, Stmt};
use sm_machine::cpu::Reg;
use std::collections::HashMap;

/// Result of assembling a source file.
#[derive(Debug, Clone)]
pub struct AsmOutput {
    /// Machine code, laid out from the requested base address.
    pub bytes: Vec<u8>,
    /// Every label and `.equ` symbol with its resolved value.
    pub symbols: HashMap<String, u32>,
}

impl AsmOutput {
    /// Address of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is not defined — convenient in tests and
    /// program-construction code where a missing label is a bug.
    pub fn sym(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol `{name}`"))
    }
}

/// Assemble `src` with its first byte at virtual address `base`.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax errors, unknown
/// mnemonics/operand combinations, undefined or duplicate symbols, and
/// out-of-range values.
pub fn assemble(src: &str, base: u32) -> Result<AsmOutput, AsmError> {
    let lines = parser::parse(src)?;
    // Pass 1: sizes and symbol values.
    let mut syms: HashMap<String, i64> = HashMap::new();
    let mut addr = base as i64;
    let mut placed: Vec<(u32, &Line)> = Vec::new();
    for line in &lines {
        match &line.stmt {
            Stmt::Label(name) => {
                if syms.insert(name.clone(), addr).is_some() {
                    return Err(AsmError::new(line.no, format!("duplicate symbol `{name}`")));
                }
            }
            Stmt::Equ(name, e) => {
                let v = e.eval(&syms).map_err(|m| AsmError::new(line.no, m))?;
                if syms.insert(name.clone(), v).is_some() {
                    return Err(AsmError::new(line.no, format!("duplicate symbol `{name}`")));
                }
            }
            stmt => {
                let size = stmt_size(stmt, addr as u32, &syms, line.no)?;
                placed.push((addr as u32, line));
                addr += size as i64;
            }
        }
    }
    // Pass 2: encode.
    let mut bytes = Vec::with_capacity((addr - base as i64) as usize);
    for (at, line) in placed {
        debug_assert_eq!(base + bytes.len() as u32, at);
        encode_stmt(&line.stmt, at, &syms, line.no, &mut bytes, true)?;
    }
    let symbols = syms.into_iter().map(|(k, v)| (k, v as u32)).collect();
    Ok(AsmOutput { bytes, symbols })
}

fn stmt_size(
    stmt: &Stmt,
    addr: u32,
    syms: &HashMap<String, i64>,
    no: usize,
) -> Result<u32, AsmError> {
    let mut buf = Vec::new();
    encode_stmt(stmt, addr, syms, no, &mut buf, false)?;
    Ok(buf.len() as u32)
}

/// Resolve an expression; in the sizing pass unknown symbols read as 0
/// (widths never depend on symbol values, only on whether one is present).
fn resolve(
    e: &Expr,
    syms: &HashMap<String, i64>,
    no: usize,
    strict: bool,
) -> Result<i64, AsmError> {
    match e.eval(syms) {
        Ok(v) => Ok(v),
        Err(m) if strict => Err(AsmError::new(no, m)),
        Err(_) => Ok(0),
    }
}

fn fits_i8(v: i64) -> bool {
    (-128..=127).contains(&v)
}

fn check_u32(v: i64, no: usize) -> Result<u32, AsmError> {
    if (u32::MIN as i64..=u32::MAX as i64).contains(&v) || (i32::MIN as i64..0).contains(&v) {
        Ok(v as u32)
    } else {
        Err(AsmError::new(no, format!("value {v} out of 32-bit range")))
    }
}

/// Width of an immediate: symbols are always 32-bit so sizing is stable.
fn imm_is_short(e: &Expr) -> bool {
    e.const_val().is_some_and(fits_i8)
}

struct MemOp<'a> {
    base: Option<Reg>,
    index: Option<(Reg, u8)>,
    disp: &'a Expr,
}

/// Emit a ModRM (and SIB / displacement) for a memory operand.
fn emit_modrm_mem(
    out: &mut Vec<u8>,
    reg_field: u8,
    m: &MemOp<'_>,
    syms: &HashMap<String, i64>,
    no: usize,
    strict: bool,
) -> Result<(), AsmError> {
    let disp_v = resolve(m.disp, syms, no, strict)?;
    let disp_const = m.disp.const_val();
    match (m.base, m.index) {
        (None, None) => {
            out.push(reg_field << 3 | 0b101);
            out.extend_from_slice(&(disp_v as i32).to_le_bytes());
        }
        (None, Some((idx, scale))) => {
            out.push(reg_field << 3 | 0b100);
            out.push(scale_bits(scale) << 6 | (idx as u8) << 3 | 0b101);
            out.extend_from_slice(&(disp_v as i32).to_le_bytes());
        }
        (Some(base), index) => {
            let need_sib = index.is_some() || base == Reg::Esp;
            // mod choice is shape-stable: symbolic displacements are 32-bit.
            let (md, short) = match disp_const {
                Some(0) if base != Reg::Ebp => (0b00u8, None),
                Some(v) if fits_i8(v) => (0b01, Some(v as i8)),
                _ => (0b10, None),
            };
            let rm = if need_sib { 0b100 } else { base as u8 };
            out.push(md << 6 | reg_field << 3 | rm);
            if need_sib {
                let (idx_bits, scale) = match index {
                    Some((idx, scale)) => (idx as u8, scale),
                    None => (0b100, 1),
                };
                out.push(scale_bits(scale) << 6 | idx_bits << 3 | base as u8);
            }
            match (md, short) {
                (0b00, _) => {}
                (0b01, Some(v)) => out.push(v as u8),
                _ => out.extend_from_slice(&(disp_v as i32).to_le_bytes()),
            }
        }
    }
    Ok(())
}

fn scale_bits(scale: u8) -> u8 {
    match scale {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => unreachable!("parser validated scale"),
    }
}

fn emit_modrm_reg(out: &mut Vec<u8>, reg_field: u8, rm: Reg) {
    out.push(0b11 << 6 | reg_field << 3 | rm as u8);
}

enum RmOp<'a> {
    Reg(Reg),
    Mem(MemOp<'a>),
}

fn as_rm<'a>(op: &'a Operand, no: usize) -> Result<(RmOp<'a>, Option<OpSize>), AsmError> {
    match op {
        Operand::Reg(r) => Ok((RmOp::Reg(*r), Some(OpSize::Dword))),
        Operand::ByteReg(r) => Ok((RmOp::Reg(*r), Some(OpSize::Byte))),
        Operand::Mem {
            size,
            base,
            index,
            disp,
        } => Ok((
            RmOp::Mem(MemOp {
                base: *base,
                index: *index,
                disp,
            }),
            *size,
        )),
        Operand::Imm(_) => Err(AsmError::new(no, "immediate used where r/m expected")),
    }
}

fn emit_rm(
    out: &mut Vec<u8>,
    reg_field: u8,
    rm: &RmOp<'_>,
    syms: &HashMap<String, i64>,
    no: usize,
    strict: bool,
) -> Result<(), AsmError> {
    match rm {
        RmOp::Reg(r) => {
            emit_modrm_reg(out, reg_field, *r);
            Ok(())
        }
        RmOp::Mem(m) => emit_modrm_mem(out, reg_field, m, syms, no, strict),
    }
}

fn cond_code(mn: &str) -> Option<u8> {
    Some(match mn {
        "jo" => 0,
        "jno" => 1,
        "jb" | "jc" | "jnae" => 2,
        "jae" | "jnc" | "jnb" => 3,
        "je" | "jz" => 4,
        "jne" | "jnz" => 5,
        "jbe" | "jna" => 6,
        "ja" | "jnbe" => 7,
        "js" => 8,
        "jns" => 9,
        "jp" | "jpe" => 10,
        "jnp" | "jpo" => 11,
        "jl" | "jnge" => 12,
        "jge" | "jnl" => 13,
        "jle" | "jng" => 14,
        "jg" | "jnle" => 15,
        _ => return None,
    })
}

fn alu_opcodes(mn: &str) -> Option<(u8, u8)> {
    // (to-rm opcode, group-1 extension)
    Some(match mn {
        "add" => (0x01, 0),
        "or" => (0x09, 1),
        "and" => (0x21, 4),
        "sub" => (0x29, 5),
        "xor" => (0x31, 6),
        "cmp" => (0x39, 7),
        _ => return None,
    })
}

fn shift_ext(mn: &str) -> Option<u8> {
    Some(match mn {
        "shl" | "sal" => 4,
        "shr" => 5,
        "sar" => 7,
        _ => return None,
    })
}

fn grp3_ext(mn: &str) -> Option<u8> {
    Some(match mn {
        "not" => 2,
        "neg" => 3,
        "mul" => 4,
        "div" => 6,
        _ => return None,
    })
}

#[allow(clippy::too_many_lines)]
fn encode_stmt(
    stmt: &Stmt,
    addr: u32,
    syms: &HashMap<String, i64>,
    no: usize,
    out: &mut Vec<u8>,
    strict: bool,
) -> Result<(), AsmError> {
    match stmt {
        Stmt::Label(_) | Stmt::Equ(..) => {}
        Stmt::Byte(exprs) => {
            for e in exprs {
                let v = resolve(e, syms, no, strict)?;
                if strict && !(-128..=255).contains(&v) {
                    return Err(AsmError::new(no, format!(".byte value {v} out of range")));
                }
                out.push(v as u8);
            }
        }
        Stmt::Word(exprs) => {
            for e in exprs {
                let v = check_u32(resolve(e, syms, no, strict)?, no)?;
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Stmt::Ascii(bytes) => out.extend_from_slice(bytes),
        Stmt::Space { len, fill } => {
            // Always strict: a forward-referenced length would change size
            // between passes.
            let n = resolve(len, syms, no, true)?;
            if n < 0 {
                return Err(AsmError::new(no, ".space length is negative"));
            }
            out.extend(std::iter::repeat_n(*fill, n as usize));
        }
        Stmt::Align(n) => {
            let misalign = addr % n;
            if misalign != 0 {
                out.extend(std::iter::repeat_n(0x90, (n - misalign) as usize));
            }
        }
        Stmt::Insn { mnemonic, ops } => {
            encode_insn(mnemonic, ops, addr, syms, no, out, strict)?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn encode_insn(
    mn: &str,
    ops: &[Operand],
    addr: u32,
    syms: &HashMap<String, i64>,
    no: usize,
    out: &mut Vec<u8>,
    strict: bool,
) -> Result<(), AsmError> {
    let bad = || AsmError::new(no, format!("bad operands for `{mn}`"));
    let imm_of = |op: &Operand| -> Option<Expr> {
        match op {
            Operand::Imm(e) => Some(e.clone()),
            _ => None,
        }
    };
    match (mn, ops) {
        ("nop", []) => out.push(0x90),
        ("hlt", []) => out.push(0xF4),
        ("ret", []) => out.push(0xC3),
        ("leave", []) => out.push(0xC9),
        ("cdq", []) => out.push(0x99),
        ("int", [imm]) => {
            let e = imm_of(imm).ok_or_else(bad)?;
            let v = resolve(&e, syms, no, strict)?;
            if strict && !(0..=255).contains(&v) {
                return Err(AsmError::new(no, format!("int vector {v} out of range")));
            }
            out.push(0xCD);
            out.push(v as u8);
        }
        ("mov", [Operand::Reg(r), Operand::Imm(e)]) => {
            let v = check_u32(resolve(e, syms, no, strict)?, no)?;
            out.push(0xB8 + *r as u8);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ("mov", [Operand::Reg(dst), Operand::Reg(src)]) => {
            out.push(0x89);
            emit_modrm_reg(out, *src as u8, *dst);
        }
        ("mov", [Operand::Reg(dst), m @ Operand::Mem { size, .. }]) => {
            if *size == Some(OpSize::Byte) {
                return Err(AsmError::new(
                    no,
                    "use a byte register or movzx for byte loads",
                ));
            }
            let (rm, _) = as_rm(m, no)?;
            out.push(0x8B);
            emit_rm(out, *dst as u8, &rm, syms, no, strict)?;
        }
        ("mov", [m @ Operand::Mem { size, .. }, Operand::Reg(src)]) => {
            if *size == Some(OpSize::Byte) {
                return Err(AsmError::new(no, "byte store needs a byte register"));
            }
            let (rm, _) = as_rm(m, no)?;
            out.push(0x89);
            emit_rm(out, *src as u8, &rm, syms, no, strict)?;
        }
        ("mov", [Operand::ByteReg(dst), m @ Operand::Mem { .. }]) => {
            let (rm, _) = as_rm(m, no)?;
            out.push(0x8A);
            emit_rm(out, *dst as u8, &rm, syms, no, strict)?;
        }
        ("mov", [m @ Operand::Mem { .. }, Operand::ByteReg(src)]) => {
            let (rm, _) = as_rm(m, no)?;
            out.push(0x88);
            emit_rm(out, *src as u8, &rm, syms, no, strict)?;
        }
        ("mov", [Operand::ByteReg(dst), Operand::ByteReg(src)]) => {
            out.push(0x88);
            emit_modrm_reg(out, *src as u8, *dst);
        }
        ("mov", [Operand::ByteReg(dst), Operand::Imm(e)]) => {
            let v = resolve(e, syms, no, strict)?;
            out.push(0xC6);
            emit_modrm_reg(out, 0, *dst);
            out.push(v as u8);
        }
        ("mov", [m @ Operand::Mem { size, .. }, Operand::Imm(e)]) => {
            let (rm, _) = as_rm(m, no)?;
            let v = resolve(e, syms, no, strict)?;
            if *size == Some(OpSize::Byte) {
                out.push(0xC6);
                emit_rm(out, 0, &rm, syms, no, strict)?;
                out.push(v as u8);
            } else {
                out.push(0xC7);
                emit_rm(out, 0, &rm, syms, no, strict)?;
                out.extend_from_slice(&check_u32(v, no)?.to_le_bytes());
            }
        }
        ("movzx", [Operand::Reg(dst), src]) => {
            let (rm, size) = as_rm(src, no)?;
            if size == Some(OpSize::Dword) && matches!(src, Operand::Mem { .. }) {
                return Err(AsmError::new(no, "movzx source must be byte-sized"));
            }
            out.push(0x0F);
            out.push(0xB6);
            emit_rm(out, *dst as u8, &rm, syms, no, strict)?;
        }
        ("lea", [Operand::Reg(dst), m @ Operand::Mem { .. }]) => {
            let (rm, _) = as_rm(m, no)?;
            out.push(0x8D);
            emit_rm(out, *dst as u8, &rm, syms, no, strict)?;
        }
        ("push", [Operand::Reg(r)]) => out.push(0x50 + *r as u8),
        ("push", [Operand::Imm(e)]) => {
            let v = resolve(e, syms, no, strict)?;
            if imm_is_short(e) {
                out.push(0x6A);
                out.push(v as i8 as u8);
            } else {
                out.push(0x68);
                out.extend_from_slice(&check_u32(v, no)?.to_le_bytes());
            }
        }
        ("push", [m @ Operand::Mem { .. }]) => {
            let (rm, _) = as_rm(m, no)?;
            out.push(0xFF);
            emit_rm(out, 6, &rm, syms, no, strict)?;
        }
        ("pop", [Operand::Reg(r)]) => out.push(0x58 + *r as u8),
        ("inc", [Operand::Reg(r)]) => out.push(0x40 + *r as u8),
        ("dec", [Operand::Reg(r)]) => out.push(0x48 + *r as u8),
        ("inc", [m @ Operand::Mem { .. }]) => {
            let (rm, _) = as_rm(m, no)?;
            out.push(0xFF);
            emit_rm(out, 0, &rm, syms, no, strict)?;
        }
        ("dec", [m @ Operand::Mem { .. }]) => {
            let (rm, _) = as_rm(m, no)?;
            out.push(0xFF);
            emit_rm(out, 1, &rm, syms, no, strict)?;
        }
        ("test", [a, Operand::Reg(r)]) | ("test", [Operand::Reg(r), a])
            if !matches!(a, Operand::Imm(_) | Operand::ByteReg(_)) =>
        {
            let (rm, _) = as_rm(a, no)?;
            out.push(0x85);
            emit_rm(out, *r as u8, &rm, syms, no, strict)?;
        }
        (_, [dst, Operand::Imm(e)]) if alu_opcodes(mn).is_some() => {
            let (_, ext) = alu_opcodes(mn).unwrap();
            let (rm, size) = as_rm(dst, no)?;
            if size == Some(OpSize::Byte) {
                return Err(AsmError::new(no, "byte-sized ALU immediates unsupported"));
            }
            let v = resolve(e, syms, no, strict)?;
            if imm_is_short(e) {
                out.push(0x83);
                emit_rm(out, ext, &rm, syms, no, strict)?;
                out.push(v as i8 as u8);
            } else {
                out.push(0x81);
                emit_rm(out, ext, &rm, syms, no, strict)?;
                out.extend_from_slice(&check_u32(v, no)?.to_le_bytes());
            }
        }
        (_, [Operand::Reg(dst), Operand::Reg(src)]) if alu_opcodes(mn).is_some() => {
            let (op, _) = alu_opcodes(mn).unwrap();
            out.push(op);
            emit_modrm_reg(out, *src as u8, *dst);
        }
        (_, [m @ Operand::Mem { .. }, Operand::Reg(src)]) if alu_opcodes(mn).is_some() => {
            let (op, _) = alu_opcodes(mn).unwrap();
            let (rm, _) = as_rm(m, no)?;
            out.push(op);
            emit_rm(out, *src as u8, &rm, syms, no, strict)?;
        }
        (_, [Operand::Reg(dst), m @ Operand::Mem { .. }]) if alu_opcodes(mn).is_some() => {
            let (op, _) = alu_opcodes(mn).unwrap();
            let (rm, _) = as_rm(m, no)?;
            out.push(op + 2); // 0x03-style reg, r/m direction
            emit_rm(out, *dst as u8, &rm, syms, no, strict)?;
        }
        (_, [dst, count]) if shift_ext(mn).is_some() => {
            let ext = shift_ext(mn).unwrap();
            let (rm, _) = as_rm(dst, no)?;
            match count {
                Operand::Imm(e) => {
                    let v = resolve(e, syms, no, strict)?;
                    out.push(0xC1);
                    emit_rm(out, ext, &rm, syms, no, strict)?;
                    out.push(v as u8);
                }
                Operand::ByteReg(Reg::Ecx) => {
                    out.push(0xD3);
                    emit_rm(out, ext, &rm, syms, no, strict)?;
                }
                _ => return Err(bad()),
            }
        }
        (_, [op1]) if grp3_ext(mn).is_some() => {
            let ext = grp3_ext(mn).unwrap();
            let (rm, _) = as_rm(op1, no)?;
            out.push(0xF7);
            emit_rm(out, ext, &rm, syms, no, strict)?;
        }
        ("call", [Operand::Imm(e)]) => {
            let target = resolve(e, syms, no, strict)?;
            out.push(0xE8);
            let rel = target.wrapping_sub(addr as i64 + 5) as i32;
            out.extend_from_slice(&rel.to_le_bytes());
        }
        ("call", [op1]) => {
            let (rm, _) = as_rm(op1, no)?;
            out.push(0xFF);
            emit_rm(out, 2, &rm, syms, no, strict)?;
        }
        ("jmp", [Operand::Imm(e)]) => {
            let target = resolve(e, syms, no, strict)?;
            out.push(0xE9);
            let rel = target.wrapping_sub(addr as i64 + 5) as i32;
            out.extend_from_slice(&rel.to_le_bytes());
        }
        ("jmp", [op1]) => {
            let (rm, _) = as_rm(op1, no)?;
            out.push(0xFF);
            emit_rm(out, 4, &rm, syms, no, strict)?;
        }
        (_, [Operand::Imm(e)]) if cond_code(mn).is_some() => {
            let cc = cond_code(mn).unwrap();
            let target = resolve(e, syms, no, strict)?;
            out.push(0x0F);
            out.push(0x80 + cc);
            let rel = target.wrapping_sub(addr as i64 + 6) as i32;
            out.extend_from_slice(&rel.to_le_bytes());
        }
        _ => return Err(bad()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sm_machine::isa::{decode_slice, AluOp, Cond, Decoded, Dir, Grp5Op, Insn, Mem, Rm};

    fn asm(src: &str) -> Vec<u8> {
        assemble(src, 0x1000).expect("assemble").bytes
    }

    fn first(src: &str) -> Insn {
        match decode_slice(&asm(src)).unwrap() {
            Decoded::Insn { insn, .. } => insn,
            Decoded::Invalid { opcode } => panic!("invalid {opcode:#x}"),
        }
    }

    #[test]
    fn mov_imm_matches_x86_bytes() {
        assert_eq!(asm("mov ebx, 0"), b"\xbb\x00\x00\x00\x00");
        assert_eq!(asm("mov eax, 1"), b"\xb8\x01\x00\x00\x00");
        assert_eq!(asm("int 0x80"), b"\xcd\x80");
    }

    #[test]
    fn reg_reg_and_mem_moves() {
        assert_eq!(
            first("mov eax, ebx"),
            Insn::MovRmReg {
                byte: false,
                dir: Dir::ToRm,
                rm: Rm::Reg(sm_machine::cpu::Reg::Eax),
                reg: sm_machine::cpu::Reg::Ebx
            }
        );
        assert_eq!(
            first("mov eax, [ebp-4]"),
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem::base_disp(sm_machine::cpu::Reg::Ebp, -4)),
                reg: sm_machine::cpu::Reg::Eax
            }
        );
    }

    #[test]
    fn esp_based_addressing_uses_sib() {
        // [esp+8] must produce a SIB byte the decoder understands.
        assert_eq!(
            first("mov eax, [esp+8]"),
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem::base_disp(sm_machine::cpu::Reg::Esp, 8)),
                reg: sm_machine::cpu::Reg::Eax
            }
        );
    }

    #[test]
    fn ebp_no_disp_still_encodes() {
        // [ebp] has no mod=00 encoding; must fall back to disp8=0.
        assert_eq!(
            first("mov eax, [ebp]"),
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem::base_disp(sm_machine::cpu::Reg::Ebp, 0)),
                reg: sm_machine::cpu::Reg::Eax
            }
        );
    }

    #[test]
    fn scaled_index_roundtrip() {
        assert_eq!(
            first("mov eax, [ebx+esi*4+12]"),
            Insn::MovRmReg {
                byte: false,
                dir: Dir::FromRm,
                rm: Rm::Mem(Mem {
                    base: Some(sm_machine::cpu::Reg::Ebx),
                    index: Some((sm_machine::cpu::Reg::Esi, 4)),
                    disp: 12
                }),
                reg: sm_machine::cpu::Reg::Eax
            }
        );
    }

    #[test]
    fn alu_short_and_long_immediates() {
        let short = asm("sub esp, 8");
        assert_eq!(short[0], 0x83);
        let long = asm("sub esp, 0x1000");
        assert_eq!(long[0], 0x81);
        assert_eq!(
            first("add eax, 5"),
            Insn::AluImm {
                op: AluOp::Add,
                rm: Rm::Reg(sm_machine::cpu::Reg::Eax),
                imm: 5
            }
        );
    }

    #[test]
    fn labels_resolve_in_branches() {
        // 0x1000: jmp over; 0x1005: hlt; over(0x1006): nop
        let out = assemble("jmp over\nhlt\nover: nop\n", 0x1000).unwrap();
        assert_eq!(out.sym("over"), 0x1006);
        match decode_slice(&out.bytes).unwrap() {
            Decoded::Insn {
                insn: Insn::JmpRel(rel),
                len,
            } => assert_eq!(0x1000 + len as i32 + rel, 0x1006),
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn backward_branch() {
        let out = assemble("top: nop\njne top\n", 0x2000).unwrap();
        match decode_slice(&out.bytes[1..]).unwrap() {
            Decoded::Insn {
                insn: Insn::JccRel(Cond::Ne, rel),
                len,
            } => assert_eq!(0x2001 + len as i32 + rel, 0x2000),
            d => panic!("{d:?}"),
        }
    }

    #[test]
    fn call_label_and_indirect() {
        let out = assemble("call f\nf: ret\n", 0).unwrap();
        match decode_slice(&out.bytes).unwrap() {
            Decoded::Insn {
                insn: Insn::CallRel(rel),
                len,
            } => assert_eq!(len as i32 + rel, out.sym("f") as i32),
            d => panic!("{d:?}"),
        }
        assert_eq!(
            first("call eax"),
            Insn::Grp5 {
                op: Grp5Op::Call,
                rm: Rm::Reg(sm_machine::cpu::Reg::Eax)
            }
        );
    }

    #[test]
    fn byte_moves_via_byte_registers() {
        let b = asm("mov al, [esi]");
        assert_eq!(b[0], 0x8A);
        let b = asm("mov [edi], bl");
        assert_eq!(b[0], 0x88);
        let b = asm("mov byte [edi], 7");
        assert_eq!(b[0], 0xC6);
        let b = asm("movzx eax, byte [esi]");
        assert_eq!(&b[..2], &[0x0F, 0xB6]);
    }

    #[test]
    fn data_directives_layout() {
        let out = assemble(
            "start: .byte 1, 2\n.word 0xdeadbeef\nmsg: .asciz \"ok\"\n.align 4\nend: nop\n",
            0,
        )
        .unwrap();
        assert_eq!(&out.bytes[..2], &[1, 2]);
        assert_eq!(&out.bytes[2..6], &0xdeadbeef_u32.to_le_bytes());
        assert_eq!(&out.bytes[6..9], b"ok\0");
        assert_eq!(out.sym("end") % 4, 0);
    }

    #[test]
    fn equ_constants() {
        let out = assemble(".equ SYS_WRITE, 4\nmov eax, SYS_WRITE\n", 0).unwrap();
        assert_eq!(out.bytes[1], 4);
    }

    #[test]
    fn undefined_symbol_is_an_error() {
        let err = assemble("mov eax, nosuch\n", 0).unwrap_err();
        assert!(err.msg.contains("nosuch"), "{err}");
    }

    #[test]
    fn duplicate_label_is_an_error() {
        assert!(assemble("a: nop\na: nop\n", 0).is_err());
    }

    #[test]
    fn unknown_mnemonic_is_an_error() {
        let err = assemble("frobnicate eax\n", 0).unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn shift_forms() {
        assert_eq!(asm("shl eax, 4")[0], 0xC1);
        assert_eq!(asm("shr ebx, cl")[0], 0xD3);
    }

    #[test]
    fn sizing_is_stable_for_forward_labels() {
        // A forward label in an ALU immediate must use the 32-bit form even
        // though its value (0x10) would fit in 8 bits, so that pass-1 sizes
        // match pass-2 sizes.
        let out = assemble("add eax, tiny\n.equ ignored, 0\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\nnop\ntiny:\n", 0)
            .unwrap();
        assert_eq!(out.bytes[0], 0x81);
        assert_eq!(out.sym("tiny"), 6 + 10);
    }
}
