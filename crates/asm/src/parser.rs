//! Line parser: source text → statements with unresolved expressions.

use sm_machine::cpu::Reg;
use std::collections::HashMap;
use std::fmt;

/// Assembly error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-program errors).
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl AsmError {
    pub(crate) fn new(line: usize, msg: impl Into<String>) -> AsmError {
        AsmError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// One additive term of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Term {
    Num(i64),
    Sym(String),
}

/// A `+`/`-` chain of numbers, characters and symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Expr {
    /// (negated, term) pairs; the first pair may be negated too (`-4`).
    pub terms: Vec<(bool, Term)>,
}

impl Expr {
    pub(crate) fn num(v: i64) -> Expr {
        Expr {
            terms: vec![(false, Term::Num(v))],
        }
    }

    /// True if the expression references no symbols.
    pub(crate) fn is_const(&self) -> bool {
        self.terms.iter().all(|(_, t)| matches!(t, Term::Num(_)))
    }

    /// Evaluate against a symbol table.
    pub(crate) fn eval(&self, syms: &HashMap<String, i64>) -> Result<i64, String> {
        let mut acc = 0i64;
        for (neg, t) in &self.terms {
            let v = match t {
                Term::Num(n) => *n,
                Term::Sym(s) => *syms
                    .get(s)
                    .ok_or_else(|| format!("undefined symbol `{s}`"))?,
            };
            if *neg {
                acc = acc.wrapping_sub(v);
            } else {
                acc = acc.wrapping_add(v);
            }
        }
        Ok(acc)
    }

    /// Value if constant.
    pub(crate) fn const_val(&self) -> Option<i64> {
        self.is_const().then(|| self.eval(&HashMap::new()).unwrap())
    }
}

/// Operand size marker (`byte`/`dword` keywords).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpSize {
    Byte,
    Dword,
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Operand {
    Reg(Reg),
    ByteReg(Reg),
    Mem {
        size: Option<OpSize>,
        base: Option<Reg>,
        index: Option<(Reg, u8)>,
        disp: Expr,
    },
    Imm(Expr),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Stmt {
    Label(String),
    Insn { mnemonic: String, ops: Vec<Operand> },
    Byte(Vec<Expr>),
    Word(Vec<Expr>),
    Ascii(Vec<u8>),
    Space { len: Expr, fill: u8 },
    Align(u32),
    Equ(String, Expr),
}

/// A statement tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Line {
    pub no: usize,
    pub stmt: Stmt,
}

fn reg_from_name(s: &str) -> Option<Reg> {
    Reg::ALL.into_iter().find(|r| r.name() == s)
}

fn byte_reg_from_name(s: &str) -> Option<Reg> {
    Reg::ALL.into_iter().find(|r| r.byte_name() == s)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().unwrap().is_ascii_alphabetic()
            | (s.starts_with('_') || s.starts_with('.'))
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Strip a trailing comment, respecting `'c'` and `"str"` quoting.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_chr = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if (in_str || in_chr) && !prev_escape => {
                prev_escape = true;
                continue;
            }
            '"' if !in_chr && !prev_escape => in_str = !in_str,
            '\'' if !in_str && !prev_escape => in_chr = !in_chr,
            ';' | '#' if !in_str && !in_chr => return &line[..i],
            _ => {}
        }
        prev_escape = false;
    }
    line
}

/// Split on `,` at top level (respecting quotes).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut in_chr = false;
    let mut prev_escape = false;
    for c in s.chars() {
        match c {
            '\\' if (in_str || in_chr) && !prev_escape => {
                prev_escape = true;
                cur.push(c);
                continue;
            }
            '"' if !in_chr && !prev_escape => in_str = !in_str,
            '\'' if !in_str && !prev_escape => in_chr = !in_chr,
            ',' if !in_str && !in_chr => {
                out.push(cur.trim().to_string());
                cur.clear();
                prev_escape = false;
                continue;
            }
            _ => {}
        }
        prev_escape = false;
        cur.push(c);
    }
    if !cur.trim().is_empty() || !out.is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_term(s: &str) -> Result<Term, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty expression term".into());
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16)
            .map(Term::Num)
            .map_err(|_| format!("bad hex literal `{s}`"));
    }
    if s.starts_with('\'') {
        let inner = s
            .strip_prefix('\'')
            .and_then(|t| t.strip_suffix('\''))
            .ok_or_else(|| format!("bad char literal `{s}`"))?;
        let b = unescape(inner).map_err(|e| format!("bad char literal `{s}`: {e}"))?;
        if b.len() != 1 {
            return Err(format!("char literal `{s}` is not one byte"));
        }
        return Ok(Term::Num(b[0] as i64));
    }
    if s.chars().next().unwrap().is_ascii_digit() {
        return s
            .parse::<i64>()
            .map(Term::Num)
            .map_err(|_| format!("bad number `{s}`"));
    }
    if is_ident(s) {
        return Ok(Term::Sym(s.to_string()));
    }
    Err(format!("cannot parse term `{s}`"))
}

/// Parse a `+`/`-` expression.
pub(crate) fn parse_expr(s: &str) -> Result<Expr, String> {
    let s = s.trim();
    let mut terms = Vec::new();
    let mut neg = false;
    let mut cur = String::new();
    let mut chars = s.chars().peekable();
    // Leading sign.
    if let Some('-') = chars.peek() {
        neg = true;
        chars.next();
    } else if let Some('+') = chars.peek() {
        chars.next();
    }
    let mut in_chr = false;
    for c in chars {
        match c {
            '\'' => {
                in_chr = !in_chr;
                cur.push(c);
            }
            '+' | '-' if !in_chr => {
                terms.push((neg, parse_term(&cur)?));
                cur.clear();
                neg = c == '-';
            }
            _ => cur.push(c),
        }
    }
    terms.push((neg, parse_term(&cur)?));
    Ok(Expr { terms })
}

fn unescape(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            continue;
        }
        match chars.next() {
            Some('n') => out.push(b'\n'),
            Some('t') => out.push(b'\t'),
            Some('r') => out.push(b'\r'),
            Some('0') => out.push(0),
            Some('\\') => out.push(b'\\'),
            Some('\'') => out.push(b'\''),
            Some('"') => out.push(b'"'),
            Some('x') => {
                let h: String = chars.by_ref().take(2).collect();
                let v = u8::from_str_radix(&h, 16).map_err(|_| format!("bad \\x escape `{h}`"))?;
                out.push(v);
            }
            other => return Err(format!("bad escape `\\{}`", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// Parsed memory-operand body: base register, scaled index, displacement.
type MemBody = (Option<Reg>, Option<(Reg, u8)>, Expr);

/// Parse a memory operand body (between `[` and `]`).
fn parse_mem_body(s: &str) -> Result<MemBody, String> {
    let mut base: Option<Reg> = None;
    let mut index: Option<(Reg, u8)> = None;
    let mut disp_terms: Vec<(bool, Term)> = Vec::new();
    // Split on top-level + and - (no quoting inside mem operands).
    let mut pieces: Vec<(bool, String)> = Vec::new();
    let mut cur = String::new();
    let mut neg = false;
    for c in s.chars() {
        match c {
            '+' | '-' => {
                if !cur.trim().is_empty() {
                    pieces.push((neg, cur.trim().to_string()));
                    cur.clear();
                }
                neg = c == '-';
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        pieces.push((neg, cur.trim().to_string()));
    }
    for (neg, p) in pieces {
        if let Some((r, s)) = p.split_once('*') {
            let reg = reg_from_name(r.trim()).ok_or_else(|| format!("bad index register `{r}`"))?;
            let scale: u8 = s.trim().parse().map_err(|_| format!("bad scale `{s}`"))?;
            if ![1, 2, 4, 8].contains(&scale) {
                return Err(format!("scale must be 1/2/4/8, got {scale}"));
            }
            if reg == Reg::Esp {
                return Err("esp cannot be an index register".into());
            }
            if neg {
                return Err("scaled index cannot be negated".into());
            }
            if index.is_some() {
                return Err("two index registers in memory operand".into());
            }
            index = Some((reg, scale));
        } else if let Some(reg) = reg_from_name(&p) {
            if neg {
                return Err("register cannot be negated in memory operand".into());
            }
            if base.is_none() {
                base = Some(reg);
            } else if index.is_none() {
                if reg == Reg::Esp {
                    return Err("esp cannot be an index register".into());
                }
                index = Some((reg, 1));
            } else {
                return Err("three registers in memory operand".into());
            }
        } else {
            disp_terms.push((neg, parse_term(&p)?));
        }
    }
    let disp = if disp_terms.is_empty() {
        Expr::num(0)
    } else {
        Expr { terms: disp_terms }
    };
    Ok((base, index, disp))
}

fn parse_operand(s: &str) -> Result<Operand, String> {
    let s = s.trim();
    let (size, rest) = if let Some(r) = s.strip_prefix("byte ") {
        (Some(OpSize::Byte), r.trim())
    } else if let Some(r) = s.strip_prefix("dword ") {
        (Some(OpSize::Dword), r.trim())
    } else {
        (None, s)
    };
    if rest.starts_with('[') {
        let body = rest
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| format!("unterminated memory operand `{s}`"))?;
        let (base, index, disp) = parse_mem_body(body)?;
        return Ok(Operand::Mem {
            size,
            base,
            index,
            disp,
        });
    }
    if size.is_some() {
        return Err(format!("size prefix on non-memory operand `{s}`"));
    }
    if let Some(r) = reg_from_name(rest) {
        return Ok(Operand::Reg(r));
    }
    if let Some(r) = byte_reg_from_name(rest) {
        return Ok(Operand::ByteReg(r));
    }
    Ok(Operand::Imm(parse_expr(rest)?))
}

fn parse_string_literal(s: &str, line: usize) -> Result<Vec<u8>, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| AsmError::new(line, format!("expected string literal, got `{s}`")))?;
    unescape(inner).map_err(|e| AsmError::new(line, e))
}

/// Parse source text into statements.
pub(crate) fn parse(src: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let no = idx + 1;
        let mut rest = strip_comment(raw).trim();
        // Labels (possibly several on one line).
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let head = head.trim();
            if is_ident(head) && !head.starts_with('.') {
                out.push(Line {
                    no,
                    stmt: Stmt::Label(head.to_string()),
                });
                rest = tail[1..].trim();
            } else {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }
        let (word, args) = match rest.split_once(char::is_whitespace) {
            Some((w, a)) => (w, a.trim()),
            None => (rest, ""),
        };
        let stmt = if let Some(directive) = word.strip_prefix('.') {
            parse_directive(directive, args, no)?
        } else {
            let ops = split_operands(args)
                .iter()
                .map(|o| parse_operand(o).map_err(|e| AsmError::new(no, e)))
                .collect::<Result<Vec<_>, _>>()?;
            Stmt::Insn {
                mnemonic: word.to_ascii_lowercase(),
                ops,
            }
        };
        out.push(Line { no, stmt });
    }
    Ok(out)
}

fn parse_directive(name: &str, args: &str, no: usize) -> Result<Stmt, AsmError> {
    let exprs = || -> Result<Vec<Expr>, AsmError> {
        split_operands(args)
            .iter()
            .map(|e| parse_expr(e).map_err(|m| AsmError::new(no, m)))
            .collect()
    };
    match name {
        "byte" => Ok(Stmt::Byte(exprs()?)),
        "word" => Ok(Stmt::Word(exprs()?)),
        "ascii" => Ok(Stmt::Ascii(parse_string_literal(args, no)?)),
        "asciz" => {
            let mut b = parse_string_literal(args, no)?;
            b.push(0);
            Ok(Stmt::Ascii(b))
        }
        "space" => {
            let parts = split_operands(args);
            if parts.is_empty() || parts.len() > 2 {
                return Err(AsmError::new(no, ".space takes 1 or 2 arguments"));
            }
            let len = parse_expr(&parts[0]).map_err(|m| AsmError::new(no, m))?;
            let fill = if parts.len() == 2 {
                parse_expr(&parts[1])
                    .map_err(|m| AsmError::new(no, m))?
                    .const_val()
                    .ok_or_else(|| AsmError::new(no, ".space fill must be constant"))?
                    as u8
            } else {
                0
            };
            Ok(Stmt::Space { len, fill })
        }
        "align" => {
            let n = parse_expr(args)
                .map_err(|m| AsmError::new(no, m))?
                .const_val()
                .ok_or_else(|| AsmError::new(no, ".align takes a constant"))?;
            if n <= 0 || (n & (n - 1)) != 0 {
                return Err(AsmError::new(no, ".align takes a power of two"));
            }
            Ok(Stmt::Align(n as u32))
        }
        "equ" => {
            let parts = split_operands(args);
            if parts.len() != 2 || !is_ident(&parts[0]) {
                return Err(AsmError::new(no, ".equ takes `name, expr`"));
            }
            let e = parse_expr(&parts[1]).map_err(|m| AsmError::new(no, m))?;
            Ok(Stmt::Equ(parts[0].clone(), e))
        }
        other => Err(AsmError::new(no, format!("unknown directive `.{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_insns() {
        let lines = parse("start: mov eax, 1\n  int 0x80 ; exit\n").unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].stmt, Stmt::Label("start".into()));
        match &lines[1].stmt {
            Stmt::Insn { mnemonic, ops } => {
                assert_eq!(mnemonic, "mov");
                assert_eq!(ops.len(), 2);
            }
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn mem_operand_forms() {
        let op = |s: &str| parse_operand(s).unwrap();
        assert_eq!(
            op("[eax]"),
            Operand::Mem {
                size: None,
                base: Some(Reg::Eax),
                index: None,
                disp: Expr::num(0)
            }
        );
        match op("[ebp-8]") {
            Operand::Mem { base, disp, .. } => {
                assert_eq!(base, Some(Reg::Ebp));
                assert_eq!(disp.const_val(), Some(-8));
            }
            o => panic!("{o:?}"),
        }
        match op("[ebx+esi*4+12]") {
            Operand::Mem {
                base, index, disp, ..
            } => {
                assert_eq!(base, Some(Reg::Ebx));
                assert_eq!(index, Some((Reg::Esi, 4)));
                assert_eq!(disp.const_val(), Some(12));
            }
            o => panic!("{o:?}"),
        }
        match op("byte [edi]") {
            Operand::Mem { size, .. } => assert_eq!(size, Some(OpSize::Byte)),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn label_in_displacement() {
        match parse_operand("[buffer+4]").unwrap() {
            Operand::Mem { disp, .. } => {
                assert!(!disp.is_const());
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn expr_evaluation() {
        let mut syms = HashMap::new();
        syms.insert("base".to_string(), 0x1000i64);
        let e = parse_expr("base+0x10-8").unwrap();
        assert_eq!(e.eval(&syms).unwrap(), 0x1008);
        assert_eq!(parse_expr("'A'").unwrap().const_val(), Some(65));
        assert_eq!(parse_expr("-4").unwrap().const_val(), Some(-4));
    }

    #[test]
    fn string_escapes() {
        let lines = parse(".asciz \"hi\\n\\x00\\\"q\"").unwrap();
        match &lines[0].stmt {
            Stmt::Ascii(b) => assert_eq!(b, &[b'h', b'i', b'\n', 0, b'"', b'q', 0]),
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn comment_inside_string_is_kept() {
        let lines = parse(".ascii \"a;b#c\"").unwrap();
        match &lines[0].stmt {
            Stmt::Ascii(b) => assert_eq!(b, b"a;b#c"),
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn byte_registers() {
        assert_eq!(parse_operand("al").unwrap(), Operand::ByteReg(Reg::Eax));
        assert_eq!(parse_operand("bl").unwrap(), Operand::ByteReg(Reg::Ebx));
    }

    #[test]
    fn directives() {
        let lines = parse(".equ X, 5\n.byte 1, 2, X\n.space 16, 0xAA\n.align 4\n").unwrap();
        assert!(matches!(lines[0].stmt, Stmt::Equ(..)));
        assert!(matches!(&lines[1].stmt, Stmt::Byte(v) if v.len() == 3));
        assert!(matches!(lines[2].stmt, Stmt::Space { fill: 0xAA, .. }));
        assert_eq!(lines[3].stmt, Stmt::Align(4));
    }

    #[test]
    fn rejects_bad_scale_and_esp_index() {
        assert!(parse_operand("[eax+ebx*3]").is_err());
        assert!(parse_operand("[eax+esp*2]").is_err());
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("nop\n.align 3\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
