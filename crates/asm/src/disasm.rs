//! Disassembler: machine code → assembler-compatible text.
//!
//! Used by the forensics response mode to render captured shellcode (the
//! paper's Fig. 5c shows exactly such a dump) and by debugging helpers.

use sm_machine::isa::{decode_slice, AluOp, Decoded, Dir, Grp5Op, Insn, Rm, ShiftCount, UnOp};

/// One disassembled line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisLine {
    /// Virtual address of the instruction.
    pub addr: u32,
    /// Raw encoded bytes.
    pub bytes: Vec<u8>,
    /// Assembler-syntax text (`"(bad 0x0e)"` for invalid opcodes).
    pub text: String,
}

impl std::fmt::Display for DisLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let hex: Vec<String> = self.bytes.iter().map(|b| format!("{b:02x}")).collect();
        write!(
            f,
            "{:#010x}:  {:<24} {}",
            self.addr,
            hex.join(" "),
            self.text
        )
    }
}

/// Render one instruction in the syntax accepted by [`crate::assemble`].
/// Relative branches are rendered with absolute hexadecimal targets computed
/// as if the instruction were at address 0 (use [`disassemble`] for
/// position-aware output).
pub fn format_insn(insn: &Insn) -> String {
    format_insn_at(insn, 0, guess_len(insn))
}

fn guess_len(_insn: &Insn) -> u32 {
    0 // relative targets formatted via wrapping arithmetic; see format_insn_at
}

fn rm_str(rm: &Rm) -> String {
    rm.to_string()
}

fn byte_rm_str(rm: &Rm) -> String {
    match rm {
        Rm::Reg(r) => r.byte_name().to_string(),
        Rm::Mem(m) => format!("byte {m}"),
    }
}

fn format_insn_at(insn: &Insn, addr: u32, len: u32) -> String {
    let target =
        |rel: i32| -> String { format!("{:#x}", addr.wrapping_add(len).wrapping_add(rel as u32)) };
    match insn {
        Insn::Nop => "nop".into(),
        Insn::Hlt => "hlt".into(),
        Insn::Int(v) => format!("int {v:#x}"),
        Insn::Ret => "ret".into(),
        Insn::Leave => "leave".into(),
        Insn::Cdq => "cdq".into(),
        Insn::MovRegImm(r, imm) => format!("mov {r}, {imm:#x}"),
        Insn::PushReg(r) => format!("push {r}"),
        Insn::PopReg(r) => format!("pop {r}"),
        Insn::PushImm(v) => format!("push {v}"),
        Insn::IncReg(r) => format!("inc {r}"),
        Insn::DecReg(r) => format!("dec {r}"),
        Insn::CallRel(rel) => format!("call {}", target(*rel)),
        Insn::JmpRel(rel) => format!("jmp {}", target(*rel)),
        Insn::JccRel(c, rel) => format!("j{} {}", c.name(), target(*rel)),
        Insn::MovRmReg { byte, dir, rm, reg } => {
            let (r, m) = if *byte {
                (reg.byte_name().to_string(), byte_rm_str(rm))
            } else {
                (reg.to_string(), rm_str(rm))
            };
            match dir {
                Dir::ToRm => format!("mov {m}, {r}"),
                Dir::FromRm => format!("mov {r}, {m}"),
            }
        }
        Insn::MovRmImm { byte, rm, imm } => {
            if *byte {
                match rm {
                    Rm::Reg(r) => format!("mov {}, {:#x}", r.byte_name(), imm & 0xFF),
                    Rm::Mem(m) => format!("mov byte {m}, {:#x}", imm & 0xFF),
                }
            } else {
                match rm {
                    Rm::Reg(r) => format!("mov {r}, {imm:#x}"),
                    Rm::Mem(m) => format!("mov dword {m}, {imm:#x}"),
                }
            }
        }
        Insn::Movzx8 { dst, src } => format!("movzx {dst}, {}", byte_rm_str(src)),
        Insn::Lea(r, m) => format!("lea {r}, {m}"),
        Insn::Alu { op, dir, rm, reg } => {
            let name = op.name();
            match (op, dir) {
                (AluOp::Test, _) => format!("test {}, {reg}", rm_str(rm)),
                (_, Dir::ToRm) => format!("{name} {}, {reg}", rm_str(rm)),
                (_, Dir::FromRm) => format!("{name} {reg}, {}", rm_str(rm)),
            }
        }
        Insn::AluImm { op, rm, imm } => format!(
            "{} {}, {imm}",
            op.name(),
            match rm {
                Rm::Reg(r) => r.to_string(),
                Rm::Mem(m) => format!("dword {m}"),
            }
        ),
        Insn::Shift { op, rm, count } => match count {
            ShiftCount::Imm(i) => format!("{} {}, {}", op.name(), rm_str(rm), i & 31),
            ShiftCount::Cl => format!("{} {}, cl", op.name(), rm_str(rm)),
        },
        Insn::Grp3 { op, rm } => format!("{} {}", op.name(), rm_str(rm)),
        Insn::Grp5 { op, rm } => {
            let rm_text = match (op, rm) {
                // inc/dec/push of a memory operand need a size keyword.
                (Grp5Op::Inc | Grp5Op::Dec | Grp5Op::Push, Rm::Mem(m)) => format!("dword {m}"),
                _ => rm_str(rm),
            };
            match op {
                Grp5Op::Inc => format!("inc {rm_text}"),
                Grp5Op::Dec => format!("dec {rm_text}"),
                Grp5Op::Call => format!("call {rm_text}"),
                Grp5Op::Jmp => format!("jmp {rm_text}"),
                Grp5Op::Push => format!("push {rm_text}"),
            }
        }
    }
}

/// Disassemble a byte buffer that starts at virtual address `base`.
/// Undecodable bytes produce a `(bad 0xNN)` line and decoding resumes at the
/// next byte; a truncated final instruction produces a `(truncated)` line.
pub fn disassemble(bytes: &[u8], base: u32) -> Vec<DisLine> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let addr = base.wrapping_add(pos as u32);
        match decode_slice(&bytes[pos..]) {
            Ok(Decoded::Insn { insn, len }) => {
                out.push(DisLine {
                    addr,
                    bytes: bytes[pos..pos + len as usize].to_vec(),
                    text: format_insn_at(&insn, addr, len as u32),
                });
                pos += len as usize;
            }
            Ok(Decoded::Invalid { opcode }) => {
                out.push(DisLine {
                    addr,
                    bytes: vec![bytes[pos]],
                    text: format!("(bad {opcode:#04x})"),
                });
                pos += 1;
            }
            Err(_) => {
                out.push(DisLine {
                    addr,
                    bytes: bytes[pos..].to_vec(),
                    text: "(truncated)".into(),
                });
                break;
            }
        }
    }
    out
}

// Helpers exercised indirectly through UnOp/AluOp name() in formatting.
#[allow(dead_code)]
fn _assert_names(u: UnOp) -> &'static str {
    u.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn formats_paper_shellcode() {
        let bytes = b"\xbb\x00\x00\x00\x00\xb8\x01\x00\x00\x00\xcd\x80";
        let lines = disassemble(bytes, 0xbf000000);
        let texts: Vec<&str> = lines.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(texts, ["mov ebx, 0x0", "mov eax, 0x1", "int 0x80"]);
        assert_eq!(lines[1].addr, 0xbf000005);
    }

    #[test]
    fn branch_targets_are_absolute() {
        let out = assemble("jmp done\nnop\ndone: hlt\n", 0x4000).unwrap();
        let lines = disassemble(&out.bytes, 0x4000);
        assert_eq!(lines[0].text, format!("jmp {:#x}", out.sym("done")));
    }

    #[test]
    fn bad_bytes_are_marked_and_skipped() {
        let lines = disassemble(&[0x00, 0x90], 0);
        assert_eq!(lines[0].text, "(bad 0x00)");
        assert_eq!(lines[1].text, "nop");
    }

    #[test]
    fn truncated_tail_is_reported() {
        let lines = disassemble(&[0xB8, 0x01], 0);
        assert_eq!(lines[0].text, "(truncated)");
    }

    #[test]
    fn nop_sled_renders_as_nops() {
        // The paper's Fig. 5c dump leads with 0x90 bytes; they should be
        // legible as nops.
        let lines = disassemble(&[0x90; 4], 0);
        assert!(lines.iter().all(|l| l.text == "nop"));
    }

    #[test]
    fn memory_forms_roundtrip_through_assembler() {
        for src in [
            "mov eax, [ebp-8]",
            "mov [ebx+esi*4+12], ecx",
            "mov byte [edi], 0x41",
            "movzx edx, byte [esi+1]",
            "lea eax, [ebx+ebx*2]",
            "push dword [eax]",
            "inc dword [esp+4]",
            "test eax, eax",
            "not dword [ebp-12]",
            "call eax",
            "jmp [ebx]",
            "shl eax, 3",
            "sar edx, cl",
        ] {
            let bytes = assemble(src, 0).unwrap().bytes;
            let lines = disassemble(&bytes, 0);
            assert_eq!(lines.len(), 1, "{src}");
            let re = assemble(&lines[0].text, 0)
                .unwrap_or_else(|e| panic!("`{}` from `{src}`: {e}", lines[0].text));
            assert_eq!(re.bytes, bytes, "{src} → {}", lines[0].text);
        }
    }

    #[test]
    fn entire_guest_libc_disassembles_cleanly() {
        // Assemble a representative non-trivial program (every mnemonic
        // family) and require the disassembler to decode every byte of the
        // text section without a single `(bad)` or `(truncated)` entry.
        let src = "
            _start:
                push ebp
                mov ebp, esp
                sub esp, 32
                lea edi, [ebp-32]
                mov esi, 0x1000
                movzx eax, byte [esi]
                mov [edi+4], eax
                add eax, 5
                xor edx, edx
                mov ecx, 3
                div ecx
                shl eax, 2
                sar eax, 1
                not eax
                neg eax
                test eax, eax
                je out
                call f
                jmp [tbl]
            f:  ret
            out:
                leave
                ret
            tbl: .word 0
        ";
        let out = assemble(src, 0x1000).unwrap();
        let text_len = out.sym("tbl") - 0x1000;
        let lines = disassemble(&out.bytes[..text_len as usize], 0x1000);
        for l in &lines {
            assert!(
                !l.text.starts_with("(bad") && !l.text.starts_with("(trunc"),
                "undecodable at {:#x}: {}",
                l.addr,
                l.text
            );
        }
        assert!(lines.len() >= 20);
    }

    #[test]
    fn display_includes_addr_and_hex() {
        let lines = disassemble(&[0x90], 0x1000);
        let s = lines[0].to_string();
        assert!(s.contains("0x00001000"));
        assert!(s.contains("90"));
        assert!(s.contains("nop"));
    }
}
