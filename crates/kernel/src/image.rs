//! Executable image format ("SELF" — simulated ELF).
//!
//! The real system patches the Linux ELF loader (paper §5.1); our kernel
//! loads this deliberately ELF-shaped format: a list of segments, each with
//! a load address, file bytes, an in-memory size (BSS is the tail beyond the
//! file bytes) and R/W/X permission flags. Images can be serialized so they
//! can live in the ram filesystem and be started with `execve`, and carry an
//! optional signature for the DigSig-style verification of paper §4.3.

use std::fmt;

/// Segment permission: readable.
pub const SEG_R: u8 = 1 << 0;
/// Segment permission: writable.
pub const SEG_W: u8 = 1 << 1;
/// Segment permission: executable.
pub const SEG_X: u8 = 1 << 2;

const MAGIC: &[u8; 4] = b"SELF";

/// One loadable segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address (page alignment not required; mixed pages are a
    /// feature the paper explicitly supports).
    pub vaddr: u32,
    /// Bytes copied from the image.
    pub data: Vec<u8>,
    /// Total in-memory size; the tail beyond `data.len()` is zero-filled
    /// (BSS).
    pub mem_size: u32,
    /// `SEG_R | SEG_W | SEG_X` permission bits.
    pub flags: u8,
}

impl Segment {
    /// A read+execute code segment.
    pub fn code(vaddr: u32, data: Vec<u8>) -> Segment {
        let mem_size = data.len() as u32;
        Segment {
            vaddr,
            data,
            mem_size,
            flags: SEG_R | SEG_X,
        }
    }

    /// A read+write data segment with optional extra zeroed space.
    pub fn data(vaddr: u32, data: Vec<u8>, bss_extra: u32) -> Segment {
        let mem_size = data.len() as u32 + bss_extra;
        Segment {
            vaddr,
            data,
            mem_size,
            flags: SEG_R | SEG_W,
        }
    }

    /// A segment that is both writable and executable — the "mixed page"
    /// shape (JIT buffers, Java VM pages; paper §2).
    pub fn mixed(vaddr: u32, data: Vec<u8>, bss_extra: u32) -> Segment {
        let mem_size = data.len() as u32 + bss_extra;
        Segment {
            vaddr,
            data,
            mem_size,
            flags: SEG_R | SEG_W | SEG_X,
        }
    }

    /// End address (exclusive) of the in-memory extent.
    pub fn end(&self) -> u32 {
        self.vaddr + self.mem_size
    }

    /// True if the segment is writable and executable.
    pub fn is_mixed(&self) -> bool {
        self.flags & (SEG_W | SEG_X) == (SEG_W | SEG_X)
    }
}

/// A loadable executable or library image.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecImage {
    /// Human-readable name (conventionally the fs path).
    pub name: String,
    /// Loadable segments.
    pub segments: Vec<Segment>,
    /// Entry point (ignored for libraries).
    pub entry: u32,
    /// Shared libraries to map at load time (fs paths).
    pub libs: Vec<String>,
    /// Optional signature over the image contents (see
    /// `sm-core`'s verifier); `None` means unsigned.
    pub signature: Option<[u8; 32]>,
}

/// Error parsing a serialized image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageFormatError(pub String);

impl fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad image: {}", self.0)
    }
}

impl std::error::Error for ImageFormatError {}

impl ExecImage {
    /// Serialize to the on-"disk" byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        push_u32(&mut out, self.entry);
        push_str(&mut out, &self.name);
        push_u32(&mut out, self.segments.len() as u32);
        for s in &self.segments {
            push_u32(&mut out, s.vaddr);
            push_u32(&mut out, s.mem_size);
            out.push(s.flags);
            push_u32(&mut out, s.data.len() as u32);
            out.extend_from_slice(&s.data);
        }
        push_u32(&mut out, self.libs.len() as u32);
        for l in &self.libs {
            push_str(&mut out, l);
        }
        match &self.signature {
            Some(sig) => {
                out.push(1);
                out.extend_from_slice(sig);
            }
            None => out.push(0),
        }
        out
    }

    /// Parse the on-"disk" byte format.
    ///
    /// # Errors
    ///
    /// Returns [`ImageFormatError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<ExecImage, ImageFormatError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC.as_slice() {
            return Err(ImageFormatError("missing SELF magic".into()));
        }
        let entry = r.u32()?;
        let name = r.string()?;
        let nseg = r.u32()?;
        if nseg > 1024 {
            return Err(ImageFormatError(format!(
                "implausible segment count {nseg}"
            )));
        }
        let mut segments = Vec::with_capacity(nseg as usize);
        for _ in 0..nseg {
            let vaddr = r.u32()?;
            let mem_size = r.u32()?;
            let flags = r.u8()?;
            let dlen = r.u32()?;
            if (dlen as u64) > mem_size as u64 {
                return Err(ImageFormatError("segment data exceeds mem_size".into()));
            }
            let data = r.take(dlen as usize)?.to_vec();
            segments.push(Segment {
                vaddr,
                data,
                mem_size,
                flags,
            });
        }
        let nlibs = r.u32()?;
        if nlibs > 256 {
            return Err(ImageFormatError(format!("implausible lib count {nlibs}")));
        }
        let mut libs = Vec::with_capacity(nlibs as usize);
        for _ in 0..nlibs {
            libs.push(r.string()?);
        }
        let signature = match r.u8()? {
            0 => None,
            1 => {
                let mut sig = [0u8; 32];
                sig.copy_from_slice(r.take(32)?);
                Some(sig)
            }
            v => return Err(ImageFormatError(format!("bad signature tag {v}"))),
        };
        Ok(ExecImage {
            name,
            segments,
            entry,
            libs,
            signature,
        })
    }

    /// The bytes a signature covers: everything except the signature field
    /// itself.
    pub fn signed_content(&self) -> Vec<u8> {
        let mut copy = self.clone();
        copy.signature = None;
        copy.to_bytes()
    }

    /// True if any segment is writable+executable or if two segments with
    /// code and data share a page — the shapes only split memory (not the
    /// execute-disable bit) can protect.
    pub fn has_mixed_pages(&self) -> bool {
        use sm_machine::pte::vpn;
        if self.segments.iter().any(Segment::is_mixed) {
            return true;
        }
        for a in &self.segments {
            for b in &self.segments {
                if a.flags & SEG_X != 0
                    && b.flags & SEG_W != 0
                    && !std::ptr::eq(a, b)
                    && a.vaddr < b.end()
                    && b.vaddr < a.end()
                {
                    return true;
                }
                // Adjacent segments sharing a page boundary.
                if a.flags & SEG_X != 0
                    && b.flags & SEG_W != 0
                    && !std::ptr::eq(a, b)
                    && (vpn(a.end().saturating_sub(1)) == vpn(b.vaddr)
                        || vpn(b.end().saturating_sub(1)) == vpn(a.vaddr))
                {
                    return true;
                }
            }
        }
        false
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageFormatError> {
        if self.pos + n > self.bytes.len() {
            return Err(ImageFormatError("truncated image".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ImageFormatError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ImageFormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, ImageFormatError> {
        let n = self.u32()?;
        if n > 4096 {
            return Err(ImageFormatError(format!("implausible string length {n}")));
        }
        String::from_utf8(self.take(n as usize)?.to_vec())
            .map_err(|_| ImageFormatError("non-utf8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecImage {
        ExecImage {
            name: "/bin/demo".into(),
            segments: vec![
                Segment::code(0x0804_8000, vec![0x90, 0xF4]),
                Segment::data(0x0805_0000, b"data".to_vec(), 100),
            ],
            entry: 0x0804_8000,
            libs: vec!["/lib/libdemo.so".into()],
            signature: Some([7u8; 32]),
        }
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let parsed = ExecImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(parsed, img);
    }

    #[test]
    fn roundtrip_unsigned() {
        let mut img = sample();
        img.signature = None;
        let parsed = ExecImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(parsed, img);
    }

    #[test]
    fn truncated_fails() {
        let bytes = sample().to_bytes();
        for cut in [0, 3, 10, bytes.len() - 1] {
            assert!(ExecImage::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_magic_fails() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(ExecImage::from_bytes(&bytes).is_err());
    }

    #[test]
    fn signed_content_excludes_signature() {
        let mut a = sample();
        let mut b = sample();
        a.signature = Some([1; 32]);
        b.signature = Some([2; 32]);
        assert_eq!(a.signed_content(), b.signed_content());
    }

    #[test]
    fn segment_constructors() {
        let c = Segment::code(0x1000, vec![1, 2, 3]);
        assert_eq!(c.flags, SEG_R | SEG_X);
        assert_eq!(c.end(), 0x1003);
        let d = Segment::data(0x2000, vec![1], 7);
        assert_eq!(d.mem_size, 8);
        let m = Segment::mixed(0x3000, vec![], 16);
        assert!(m.is_mixed());
    }

    #[test]
    fn mixed_page_detection() {
        // W+X segment.
        let img = ExecImage {
            segments: vec![Segment::mixed(0x1000, vec![0x90], 0)],
            ..ExecImage::default()
        };
        assert!(img.has_mixed_pages());
        // Code and data on separate pages: not mixed.
        let img = ExecImage {
            segments: vec![
                Segment::code(0x1000, vec![0x90]),
                Segment::data(0x5000, vec![1], 0),
            ],
            ..ExecImage::default()
        };
        assert!(!img.has_mixed_pages());
        // Code and data sharing one page: mixed.
        let img = ExecImage {
            segments: vec![
                Segment::code(0x1000, vec![0x90; 16]),
                Segment::data(0x1800, vec![1], 0),
            ],
            ..ExecImage::default()
        };
        assert!(img.has_mixed_pages());
    }
}
