//! Ram filesystem and pipes.
//!
//! The evaluation needs a filesystem (Unixbench-style file I/O, storing
//! executable images for `execve`, the ProFTPD-style upload/download
//! scenario) and pipes (Unixbench pipe throughput and the pipe-based
//! context-switching stress test that is the paper's worst case, §6.2).

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// `open` flag: read-only.
pub const O_RDONLY: u32 = 0;
/// `open` flag: write-only.
pub const O_WRONLY: u32 = 1;
/// `open` flag: read-write.
pub const O_RDWR: u32 = 2;
/// `open` flag: create if missing.
pub const O_CREAT: u32 = 0x40;
/// `open` flag: truncate on open.
pub const O_TRUNC: u32 = 0x200;
/// `open` flag: append on write.
pub const O_APPEND: u32 = 0x400;

/// Simple flat ram filesystem: path → bytes.
#[derive(Debug, Default)]
pub struct RamFs {
    /// `pub(crate)` so [`crate::snapshot`] can serialize files in BTreeMap
    /// (sorted) order — the canonical encoding.
    pub(crate) files: BTreeMap<String, Vec<u8>>,
}

impl RamFs {
    /// Empty filesystem.
    pub fn new() -> RamFs {
        RamFs::default()
    }

    /// Create or replace a file.
    pub fn install(&mut self, path: impl Into<String>, data: Vec<u8>) {
        self.files.insert(path.into(), data);
    }

    /// Whole-file read.
    pub fn file(&self, path: &str) -> Option<&Vec<u8>> {
        self.files.get(path)
    }

    /// Whole-file mutable access (created empty if missing).
    pub fn file_mut(&mut self, path: &str) -> &mut Vec<u8> {
        self.files.entry(path.to_string()).or_default()
    }

    /// Read up to `len` bytes of `path` starting at byte `offset` (the
    /// `read(2)` transfer). Returns `None` if the file does not exist;
    /// reads at or past EOF return an empty vector.
    pub fn read_at(&self, path: &str, offset: usize, len: usize) -> Option<Vec<u8>> {
        let file = self.files.get(path)?;
        let start = offset.min(file.len());
        let n = len.min(file.len() - start);
        Some(file[start..start + n].to_vec())
    }

    /// Write `data` into `path` at `offset` — or at EOF when `append` —
    /// growing (and zero-filling) the file as needed. The file is created
    /// if missing. Returns the offset just past the written bytes.
    pub fn write_at(&mut self, path: &str, offset: usize, data: &[u8], append: bool) -> usize {
        let file = self.files.entry(path.to_string()).or_default();
        let at = if append { file.len() } else { offset };
        if file.len() < at + data.len() {
            file.resize(at + data.len(), 0);
        }
        file[at..at + data.len()].copy_from_slice(data);
        at + data.len()
    }

    /// Does the path exist?
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Remove a file; returns whether it existed.
    pub fn remove(&mut self, path: &str) -> bool {
        self.files.remove(path).is_some()
    }

    /// All paths (sorted — BTreeMap order).
    pub fn paths(&self) -> impl Iterator<Item = &String> {
        self.files.keys()
    }
}

/// Identifier of a pipe in the [`PipeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipeId(pub usize);

/// A unidirectional byte pipe with bounded capacity and endpoint
/// refcounts. Blocking is implemented by the scheduler: syscalls return
/// "would block" and the process is parked on the pipe id.
#[derive(Debug)]
pub struct Pipe {
    /// FIFO contents; `pub(crate)` for [`crate::snapshot`].
    pub(crate) buf: VecDeque<u8>,
    /// Bound on buffered bytes; `pub(crate)` for [`crate::snapshot`].
    pub(crate) capacity: usize,
    /// Open read endpoints.
    pub readers: u32,
    /// Open write endpoints.
    pub writers: u32,
}

/// Default pipe capacity (Linux's historic 4 KiB).
pub const PIPE_CAPACITY: usize = 4096;

impl Pipe {
    pub(crate) fn new(capacity: usize) -> Pipe {
        Pipe {
            buf: VecDeque::new(),
            capacity,
            readers: 1,
            writers: 1,
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Free space.
    pub fn room(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// Non-blocking write; returns bytes accepted.
    pub fn write(&mut self, data: &[u8]) -> usize {
        let n = data.len().min(self.room());
        self.buf.extend(&data[..n]);
        n
    }

    /// Non-blocking read; returns bytes read into `buf`.
    pub fn read(&mut self, buf: &mut [u8]) -> usize {
        let n = buf.len().min(self.buf.len());
        for b in buf.iter_mut().take(n) {
            *b = self.buf.pop_front().unwrap();
        }
        n
    }
}

/// Table of live pipes.
#[derive(Debug, Default)]
pub struct PipeTable {
    /// Slot vector with `None` holes preserved (pipe ids are slot indices,
    /// so [`crate::snapshot`] must restore holes verbatim).
    pub(crate) pipes: Vec<Option<Pipe>>,
}

impl PipeTable {
    /// Empty table.
    pub fn new() -> PipeTable {
        PipeTable::default()
    }

    /// Create a pipe with the default capacity.
    pub fn create(&mut self) -> PipeId {
        self.create_with_capacity(PIPE_CAPACITY)
    }

    /// Create a pipe with a specific capacity (tests use tiny pipes to
    /// force blocking).
    pub fn create_with_capacity(&mut self, capacity: usize) -> PipeId {
        if let Some(idx) = self.pipes.iter().position(Option::is_none) {
            self.pipes[idx] = Some(Pipe::new(capacity));
            return PipeId(idx);
        }
        self.pipes.push(Some(Pipe::new(capacity)));
        PipeId(self.pipes.len() - 1)
    }

    /// Access a pipe.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id — fd bookkeeping keeps pipes alive, so a
    /// dangling id is a kernel bug.
    pub fn get_mut(&mut self, id: PipeId) -> &mut Pipe {
        self.pipes[id.0].as_mut().expect("dangling pipe id")
    }

    /// Shared access to a pipe.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id.
    pub fn get(&self, id: PipeId) -> &Pipe {
        self.pipes[id.0].as_ref().expect("dangling pipe id")
    }

    /// Drop a read endpoint; the pipe is destroyed when both counts are 0.
    pub fn drop_reader(&mut self, id: PipeId) {
        let p = self.get_mut(id);
        p.readers -= 1;
        self.maybe_destroy(id);
    }

    /// Drop a write endpoint.
    pub fn drop_writer(&mut self, id: PipeId) {
        let p = self.get_mut(id);
        p.writers -= 1;
        self.maybe_destroy(id);
    }

    /// Add a read endpoint (fd duplication / fork).
    pub fn add_reader(&mut self, id: PipeId) {
        self.get_mut(id).readers += 1;
    }

    /// Add a write endpoint.
    pub fn add_writer(&mut self, id: PipeId) {
        self.get_mut(id).writers += 1;
    }

    fn maybe_destroy(&mut self, id: PipeId) {
        let p = self.get(id);
        if p.readers == 0 && p.writers == 0 {
            self.pipes[id.0] = None;
        }
    }

    /// Number of live pipes.
    pub fn live(&self) -> usize {
        self.pipes.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramfs_crud() {
        let mut fs = RamFs::new();
        assert!(!fs.exists("/etc/passwd"));
        fs.install("/etc/passwd", b"root:x:0:0".to_vec());
        assert_eq!(fs.file("/etc/passwd").unwrap(), b"root:x:0:0");
        fs.file_mut("/etc/passwd").extend_from_slice(b":::");
        assert!(fs.remove("/etc/passwd"));
        assert!(!fs.remove("/etc/passwd"));
    }

    #[test]
    fn read_at_clamps_to_eof() {
        let mut fs = RamFs::new();
        assert!(fs.read_at("/x", 0, 4).is_none());
        fs.install("/x", b"hello".to_vec());
        assert_eq!(fs.read_at("/x", 0, 3).unwrap(), b"hel");
        assert_eq!(fs.read_at("/x", 3, 99).unwrap(), b"lo");
        assert_eq!(fs.read_at("/x", 99, 4).unwrap(), b"");
    }

    #[test]
    fn write_at_grows_and_appends() {
        let mut fs = RamFs::new();
        assert_eq!(fs.write_at("/y", 2, b"ab", false), 4);
        assert_eq!(fs.file("/y").unwrap(), &vec![0, 0, b'a', b'b']);
        assert_eq!(fs.write_at("/y", 0, b"Z", false), 1);
        assert_eq!(fs.file("/y").unwrap(), &vec![b'Z', 0, b'a', b'b']);
        assert_eq!(fs.write_at("/y", 0, b"!", true), 5, "append ignores offset");
        assert_eq!(fs.file("/y").unwrap(), &vec![b'Z', 0, b'a', b'b', b'!']);
    }

    #[test]
    fn pipe_fifo_order() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.get_mut(id).write(b"abc"), 3);
        let mut buf = [0u8; 2];
        assert_eq!(t.get_mut(id).read(&mut buf), 2);
        assert_eq!(&buf, b"ab");
        let mut buf = [0u8; 8];
        assert_eq!(t.get_mut(id).read(&mut buf), 1);
        assert_eq!(buf[0], b'c');
    }

    #[test]
    fn pipe_capacity_limits_writes() {
        let mut t = PipeTable::new();
        let id = t.create_with_capacity(4);
        assert_eq!(t.get_mut(id).write(b"abcdef"), 4);
        assert_eq!(t.get_mut(id).room(), 0);
        let mut buf = [0u8; 2];
        t.get_mut(id).read(&mut buf);
        assert_eq!(t.get_mut(id).write(b"gh"), 2);
    }

    #[test]
    fn pipe_destroyed_when_both_ends_close() {
        let mut t = PipeTable::new();
        let id = t.create();
        assert_eq!(t.live(), 1);
        t.drop_reader(id);
        assert_eq!(t.live(), 1, "writer still holds it");
        t.drop_writer(id);
        assert_eq!(t.live(), 0);
        // Slot is recycled.
        let id2 = t.create();
        assert_eq!(id2, id);
    }

    #[test]
    fn endpoint_duplication() {
        let mut t = PipeTable::new();
        let id = t.create();
        t.add_reader(id);
        t.drop_reader(id);
        t.drop_writer(id);
        assert_eq!(t.live(), 1, "duplicated reader keeps pipe alive");
        t.drop_reader(id);
        assert_eq!(t.live(), 0);
    }
}
