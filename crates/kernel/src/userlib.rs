//! Guest-side "libc" and program builder.
//!
//! Guest programs (vulnerable servers, exploit payloads, benchmark
//! workloads) are written in `sm-asm` assembly. This module provides the
//! runtime they share — string routines, console/file I/O helpers, a
//! `brk`-based allocator, `setjmp`/`longjmp` — plus [`ProgramBuilder`],
//! which assembles a program into an [`ExecImage`] with separate code and
//! data segments (or a deliberately *mixed* writable+executable segment for
//! the JIT-style scenarios of paper §2).
//!
//! Calling convention: arguments in registers as documented per function;
//! `eax`, `ecx`, `edx` are caller-saved, `ebx`, `esi`, `edi`, `ebp` are
//! preserved unless they carry a result. `strcpy` is faithful to C — no
//! bounds checking — because the attack corpus depends on it.

use crate::image::{ExecImage, Segment};
use sm_asm::{assemble, AsmError};
use std::collections::HashMap;

/// Base address for program text (the classic i386 ELF load address).
pub const CODE_BASE: u32 = 0x0804_8000;

/// `.equ` definitions for every syscall number, so guest sources can write
/// `mov eax, SYS_WRITE`.
pub const SYSCALL_DEFS: &str = "
    .equ SYS_EXIT, 1
    .equ SYS_FORK, 2
    .equ SYS_READ, 3
    .equ SYS_WRITE, 4
    .equ SYS_OPEN, 5
    .equ SYS_CLOSE, 6
    .equ SYS_WAITPID, 7
    .equ SYS_EXECVE, 11
    .equ SYS_TIME, 13
    .equ SYS_LSEEK, 19
    .equ SYS_GETPID, 20
    .equ SYS_PAUSE, 29
    .equ SYS_KILL, 37
    .equ SYS_DUP, 41
    .equ SYS_DUP2, 63
    .equ SYS_PIPE, 42
    .equ SYS_BRK, 45
    .equ SYS_SIGNAL, 48
    .equ SYS_MMAP, 90
    .equ SYS_MUNMAP, 91
    .equ SYS_SIGRETURN, 119
    .equ SYS_YIELD, 158
    .equ SYS_LISTEN, 200
    .equ SYS_ACCEPT, 201
    .equ SYS_CONNECT, 202
    .equ SYS_DLOPEN, 210
    .equ SYS_REGISTER_RECOVERY, 211
";

/// Code section of the guest library.
pub const LIBC_CODE: &str = "
; ---- guest libc ------------------------------------------------------------

; exit: ebx = status. Does not return.
exit:
    mov eax, SYS_EXIT
    int 0x80

; strlen: esi = asciz string -> eax = length. Clobbers ecx.
strlen:
    xor eax, eax
strlen_loop:
    movzx ecx, byte [esi+eax]
    cmp ecx, 0
    je strlen_done
    inc eax
    jmp strlen_loop
strlen_done:
    ret

; print: esi = asciz string, written to stdout. Clobbers eax, ecx, edx.
print:
    push ebx
    call strlen
    mov edx, eax
    mov ecx, esi
    mov ebx, 1
    mov eax, SYS_WRITE
    int 0x80
    pop ebx
    ret

; strcpy: edi = dst, esi = src. NO BOUNDS CHECK (deliberately C-faithful).
; Clobbers eax, ecx.
strcpy:
    xor ecx, ecx
strcpy_loop:
    movzx eax, byte [esi+ecx]
    mov [edi+ecx], al
    cmp eax, 0
    je strcpy_done
    inc ecx
    jmp strcpy_loop
strcpy_done:
    ret

; memcpy: edi = dst, esi = src, ecx = len. Clobbers eax, ecx.
memcpy:
    push esi
    push edi
memcpy_loop:
    cmp ecx, 0
    je memcpy_done
    movzx eax, byte [esi]
    mov [edi], al
    inc esi
    inc edi
    dec ecx
    jmp memcpy_loop
memcpy_done:
    pop edi
    pop esi
    ret

; memset: edi = dst, eax = byte, ecx = len. Clobbers ecx.
memset:
    push edi
memset_loop:
    cmp ecx, 0
    je memset_done
    mov [edi], al
    inc edi
    dec ecx
    jmp memset_loop
memset_done:
    pop edi
    ret

; strcmp: esi vs edi -> eax = 0 if equal, 1 otherwise. Clobbers ecx, edx.
strcmp:
    xor ecx, ecx
strcmp_loop:
    movzx eax, byte [esi+ecx]
    movzx edx, byte [edi+ecx]
    cmp eax, edx
    jne strcmp_ne
    cmp eax, 0
    je strcmp_eq
    inc ecx
    jmp strcmp_loop
strcmp_eq:
    xor eax, eax
    ret
strcmp_ne:
    mov eax, 1
    ret

; read_line: ebx = fd, edi = buf, edx = max. Reads until newline/EOF, strips
; the newline, NUL-terminates -> eax = length. Clobbers ecx, edx.
read_line:
    push esi
    push ebp
    mov ebp, edx
    dec ebp
    xor esi, esi
read_line_loop:
    cmp esi, ebp
    jae read_line_done
    lea ecx, [edi+esi]
    mov edx, 1
    mov eax, SYS_READ
    int 0x80
    cmp eax, 1
    jne read_line_done
    movzx eax, byte [edi+esi]
    cmp eax, 10
    je read_line_done
    inc esi
    jmp read_line_loop
read_line_done:
    mov byte [edi+esi], 0
    mov eax, esi
    pop ebp
    pop esi
    ret

; itoa: eax = value, edi = buf -> decimal asciz, eax = digits written.
; Clobbers ecx, edx.
itoa:
    push ebx
    push esi
    push edi
    mov ebx, 10
    xor esi, esi
itoa_divloop:
    xor edx, edx
    div ebx
    add edx, 48
    push edx
    inc esi
    cmp eax, 0
    jne itoa_divloop
    mov eax, esi
itoa_outloop:
    cmp esi, 0
    je itoa_done
    pop edx
    mov [edi], dl
    inc edi
    dec esi
    jmp itoa_outloop
itoa_done:
    mov byte [edi], 0
    pop edi
    pop esi
    pop ebx
    ret

; atoi: esi = asciz digits -> eax. Clobbers ecx, edx.
atoi:
    xor eax, eax
    xor ecx, ecx
atoi_loop:
    movzx edx, byte [esi+ecx]
    cmp edx, 48
    jb atoi_done
    cmp edx, 57
    ja atoi_done
    lea eax, [eax+eax*4]
    shl eax, 1
    sub edx, 48
    add eax, edx
    inc ecx
    jmp atoi_loop
atoi_done:
    ret

; malloc: eax = size -> eax = pointer (8-byte aligned bump allocator over
; brk; free is a no-op). Clobbers ecx, edx.
malloc:
    push ebx
    mov ecx, eax
    add ecx, 7
    and ecx, -8
    mov eax, [heap_ptr]
    cmp eax, 0
    jne malloc_have_base
    mov eax, SYS_BRK
    mov ebx, 0
    int 0x80
    mov [heap_ptr], eax
malloc_have_base:
    mov eax, [heap_ptr]
    mov ebx, eax
    add ebx, ecx
    mov [heap_ptr], ebx
    push eax
    mov eax, SYS_BRK
    int 0x80
    pop eax
    pop ebx
    ret

; free: eax = pointer. No-op for the bump allocator.
free:
    ret

; fdputs: ebx = fd, esi = asciz string. Clobbers eax, ecx, edx.
fdputs:
    call strlen
    mov edx, eax
    mov ecx, esi
    mov eax, SYS_WRITE
    int 0x80
    ret

; fdput_num: ebx = fd, eax = value, written in decimal. Clobbers eax, ecx,
; edx. Uses the libc-private numtmp scratch buffer.
fdput_num:
    push esi
    push edi
    mov edi, numtmp
    call itoa
    mov esi, numtmp
    call fdputs
    pop edi
    pop esi
    ret

; setjmp: eax = jmp_buf (24 bytes) -> eax = 0.
; Layout: [0]=ebx [4]=esi [8]=edi [12]=ebp [16]=esp-after-return [20]=eip.
setjmp:
    mov [eax], ebx
    mov [eax+4], esi
    mov [eax+8], edi
    mov [eax+12], ebp
    mov ecx, [esp]
    mov [eax+20], ecx
    lea ecx, [esp+4]
    mov [eax+16], ecx
    xor eax, eax
    ret

; longjmp: eax = jmp_buf, edx = return value. Control re-emerges from the
; matching setjmp with eax = edx. An attacker-corrupted jmp_buf redirects
; this jmp — one of the Wilander attack targets.
longjmp:
    mov ebx, [eax]
    mov esi, [eax+4]
    mov edi, [eax+8]
    mov ebp, [eax+12]
    mov esp, [eax+16]
    mov ecx, [eax+20]
    mov eax, edx
    jmp ecx
";

/// Data section of the guest library.
pub const LIBC_DATA: &str = "
heap_ptr: .word 0
numtmp: .space 16
";

/// A built guest program: the loadable image plus the assembler's symbol
/// table (exploits use it to find buffer addresses the way a real attacker
/// uses a debugger/disassembler on the target binary).
#[derive(Debug, Clone)]
pub struct BuiltProgram {
    /// The loadable image.
    pub image: ExecImage,
    /// Every label and `.equ` symbol with its address/value.
    pub symbols: HashMap<String, u32>,
}

impl BuiltProgram {
    /// Address of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if undefined (a bug in the guest program, not user input).
    pub fn sym(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined guest symbol `{name}`"))
    }
}

/// Builds an [`ExecImage`] from assembly source.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), sm_asm::AsmError> {
/// use sm_kernel::userlib::ProgramBuilder;
///
/// let prog = ProgramBuilder::new("/bin/hello")
///     .code(
///         "_start:
///             mov esi, greeting
///             call print
///             mov ebx, 0
///             call exit",
///     )
///     .data("greeting: .asciz \"hello, world\\n\"")
///     .build()?;
/// assert_eq!(prog.image.name, "/bin/hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    code: String,
    data: String,
    libs: Vec<String>,
    stdlib: bool,
    mixed: bool,
    bss_extra: u32,
}

impl ProgramBuilder {
    /// Start a program named `name` (conventionally its fs path).
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            code: String::new(),
            data: String::new(),
            libs: Vec::new(),
            stdlib: true,
            mixed: false,
            bss_extra: 0,
        }
    }

    /// Append code-section source. Execution starts at `_start` (or the
    /// section top if no `_start` label is defined).
    pub fn code(mut self, src: &str) -> ProgramBuilder {
        self.code.push('\n');
        self.code.push_str(src);
        self
    }

    /// Append data-section source.
    pub fn data(mut self, src: &str) -> ProgramBuilder {
        self.data.push('\n');
        self.data.push_str(src);
        self
    }

    /// Request a shared library to be mapped at load time.
    pub fn lib(mut self, path: &str) -> ProgramBuilder {
        self.libs.push(path.to_string());
        self
    }

    /// Skip the guest libc (for minimal images).
    pub fn without_stdlib(mut self) -> ProgramBuilder {
        self.stdlib = false;
        self
    }

    /// Produce a single writable+executable segment instead of split
    /// code/data segments — the mixed-page program shape of paper Fig. 1b.
    pub fn mixed_segment(mut self) -> ProgramBuilder {
        self.mixed = true;
        self
    }

    /// Extra zero-filled bytes appended to the data segment (BSS).
    pub fn bss(mut self, extra: u32) -> ProgramBuilder {
        self.bss_extra = extra;
        self
    }

    /// Assemble and package the image.
    ///
    /// # Errors
    ///
    /// Propagates assembler errors (line numbers refer to the combined
    /// source: syscall defs, user code, libc, user data).
    pub fn build(self) -> Result<BuiltProgram, AsmError> {
        let mut src = String::new();
        src.push_str(SYSCALL_DEFS);
        src.push_str(&self.code);
        if self.stdlib {
            src.push_str(LIBC_CODE);
        }
        if !self.mixed {
            src.push_str("\n.align 4096\n");
        }
        src.push_str("\n__data_start:\n");
        src.push_str(&self.data);
        if self.stdlib {
            src.push_str(LIBC_DATA);
        }
        src.push('\n');
        let out = assemble(&src, CODE_BASE)?;
        let data_start = out.sym("__data_start");
        let entry = out.symbols.get("_start").copied().unwrap_or(CODE_BASE);
        let segments = if self.mixed {
            vec![Segment::mixed(CODE_BASE, out.bytes.clone(), self.bss_extra)]
        } else {
            let split = (data_start - CODE_BASE) as usize;
            let mut segs = vec![Segment::code(CODE_BASE, out.bytes[..split].to_vec())];
            let data_bytes = out.bytes[split..].to_vec();
            if !data_bytes.is_empty() || self.bss_extra > 0 {
                segs.push(Segment::data(data_start, data_bytes, self.bss_extra));
            }
            segs
        };
        Ok(BuiltProgram {
            image: ExecImage {
                name: self.name,
                segments,
                entry,
                libs: self.libs,
                signature: None,
            },
            symbols: out.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullEngine;
    use crate::kernel::{Kernel, RunExit};
    use crate::process::Pid;

    fn run_program(prog: &BuiltProgram) -> (Kernel, Pid) {
        let mut k = Kernel::with_engine(Box::new(NullEngine));
        let pid = k.spawn(&prog.image).expect("spawn");
        let exit = k.run(50_000_000);
        assert_eq!(exit, RunExit::AllExited, "program did not finish");
        (k, pid)
    }

    #[test]
    fn hello_world_end_to_end() {
        let prog = ProgramBuilder::new("/bin/hello")
            .code(
                "_start:
                    mov esi, msg
                    call print
                    mov ebx, 0
                    call exit",
            )
            .data("msg: .asciz \"hello, world\\n\"")
            .build()
            .unwrap();
        let (k, pid) = run_program(&prog);
        assert_eq!(k.sys.proc(pid).output_string(), "hello, world\n");
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    }

    #[test]
    fn strcpy_and_strlen_work() {
        let prog = ProgramBuilder::new("/bin/scpy")
            .code(
                "_start:
                    mov edi, dst
                    mov esi, srcmsg
                    call strcpy
                    mov esi, dst
                    call print
                    mov esi, dst
                    call strlen
                    mov ebx, eax
                    call exit",
            )
            .data(
                "srcmsg: .asciz \"copied\"
                 dst: .space 32",
            )
            .build()
            .unwrap();
        let (k, pid) = run_program(&prog);
        assert_eq!(k.sys.proc(pid).output_string(), "copied");
        assert_eq!(k.sys.proc(pid).exit_code, Some(6));
    }

    #[test]
    fn malloc_returns_usable_heap_memory() {
        let prog = ProgramBuilder::new("/bin/mal")
            .code(
                "_start:
                    mov eax, 64
                    call malloc
                    mov ebx, eax          ; keep pointer
                    mov dword [eax], 0x31323334
                    mov eax, 32
                    call malloc
                    cmp eax, ebx          ; distinct allocation
                    je bad
                    mov ecx, [ebx]
                    cmp ecx, 0x31323334
                    jne bad
                    mov ebx, 0
                    call exit
                bad:
                    mov ebx, 1
                    call exit",
            )
            .build()
            .unwrap();
        let (k, pid) = run_program(&prog);
        assert_eq!(
            k.sys.proc(pid).exit_code,
            Some(0),
            "{}",
            k.sys.proc(pid).output_string()
        );
    }

    #[test]
    fn itoa_atoi_roundtrip() {
        let prog = ProgramBuilder::new("/bin/itoa")
            .code(
                "_start:
                    mov eax, 31337
                    mov edi, numbuf
                    call itoa
                    mov esi, numbuf
                    call print
                    mov esi, numbuf
                    call atoi
                    mov ebx, eax
                    sub ebx, 31337       ; exit 0 iff roundtrip
                    call exit",
            )
            .data("numbuf: .space 16")
            .build()
            .unwrap();
        let (k, pid) = run_program(&prog);
        assert_eq!(k.sys.proc(pid).output_string(), "31337");
        assert_eq!(k.sys.proc(pid).exit_code, Some(0));
    }

    #[test]
    fn setjmp_longjmp_roundtrip() {
        let prog = ProgramBuilder::new("/bin/sjlj")
            .code(
                "_start:
                    mov eax, jbuf
                    call setjmp
                    cmp eax, 0
                    jne second_return
                    mov esi, first_msg
                    call print
                    mov eax, jbuf
                    mov edx, 7
                    call longjmp
                second_return:
                    mov ebx, eax          ; 7
                    mov esi, second_msg
                    call print
                    call exit",
            )
            .data(
                "jbuf: .space 24
                 first_msg: .asciz \"one \"
                 second_msg: .asciz \"two\"",
            )
            .build()
            .unwrap();
        let (k, pid) = run_program(&prog);
        assert_eq!(k.sys.proc(pid).output_string(), "one two");
        assert_eq!(k.sys.proc(pid).exit_code, Some(7));
    }

    #[test]
    fn read_line_consumes_console_input() {
        let prog = ProgramBuilder::new("/bin/rl")
            .code(
                "_start:
                    mov ebx, 0
                    mov edi, buf
                    mov edx, 32
                    call read_line
                    mov esi, buf
                    call print
                    mov ebx, 0
                    call exit",
            )
            .data("buf: .space 32")
            .build()
            .unwrap();
        let mut k = Kernel::with_engine(Box::new(NullEngine));
        let pid = k.spawn(&prog.image).unwrap();
        k.sys.proc_mut(pid).input = b"line one\nline two\n".to_vec();
        assert_eq!(k.run(50_000_000), RunExit::AllExited);
        assert_eq!(k.sys.proc(pid).output_string(), "line one");
    }

    #[test]
    fn mixed_segment_image_is_detected_as_mixed() {
        let prog = ProgramBuilder::new("/bin/jit")
            .mixed_segment()
            .code("_start: mov ebx, 0\n call exit")
            .build()
            .unwrap();
        assert!(prog.image.has_mixed_pages());
        assert_eq!(prog.image.segments.len(), 1);
    }

    #[test]
    fn separate_segments_are_not_mixed() {
        let prog = ProgramBuilder::new("/bin/clean")
            .code("_start: mov ebx, 0\n call exit")
            .data("x: .word 5")
            .build()
            .unwrap();
        assert!(!prog.image.has_mixed_pages());
        assert_eq!(prog.image.segments.len(), 2);
    }
}
