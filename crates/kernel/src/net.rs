//! Loopback "network": port-based rendezvous that pairs processes over two
//! pipes. Enough to run the paper's client/server scenarios — the exploit
//! drivers connecting to vulnerable daemons, ApacheBench hammering the web
//! server — without modelling a real protocol stack.

use crate::fs::{PipeId, PipeTable};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Per-direction socket buffer size (a typical TCP socket buffer; large
/// responses get batched in these rather than the 4 KiB pipe unit, which
/// is what lets big transfers saturate "the link" instead of the
/// scheduler).
pub const SOCKET_BUFFER: usize = 16 * 1024;

/// A fully established connection: two pipes, one per direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Client → server bytes.
    pub c2s: PipeId,
    /// Server → client bytes.
    pub s2c: PipeId,
}

/// Loopback network state.
#[derive(Debug, Default)]
pub struct NetStack {
    /// Port → pending-connection backlog; `pub(crate)` so
    /// [`crate::snapshot`] can serialize ports in sorted order.
    pub(crate) listeners: HashMap<u16, VecDeque<Connection>>,
}

impl NetStack {
    /// Empty network.
    pub fn new() -> NetStack {
        NetStack::default()
    }

    /// Start listening on a port. Returns `false` if already bound.
    pub fn listen(&mut self, port: u16) -> bool {
        if self.listeners.contains_key(&port) {
            return false;
        }
        self.listeners.insert(port, VecDeque::new());
        true
    }

    /// Whether something is listening on the port.
    pub fn has_listener(&self, port: u16) -> bool {
        self.listeners.contains_key(&port)
    }

    /// Client side of connect: allocate the two pipes, enqueue the server's
    /// half, and return the connection (the caller builds the client fd and
    /// bumps endpoint refcounts).
    ///
    /// Returns `None` when nobody is listening (connection refused /
    /// caller may block until a listener appears).
    pub fn connect(&mut self, pipes: &mut PipeTable, port: u16) -> Option<Connection> {
        let backlog = self.listeners.get_mut(&port)?;
        // `create` starts each pipe at one reader + one writer, which is
        // exactly the two socket fds (client holds c2s's writer and s2c's
        // reader; the server socket holds the opposites).
        let conn = Connection {
            c2s: pipes.create_with_capacity(SOCKET_BUFFER),
            s2c: pipes.create_with_capacity(SOCKET_BUFFER),
        };
        backlog.push_back(conn);
        Some(conn)
    }

    /// Server side of accept: dequeue a pending connection.
    pub fn accept(&mut self, port: u16) -> Option<Connection> {
        self.listeners.get_mut(&port)?.pop_front()
    }

    /// Number of queued, unaccepted connections on a port.
    pub fn backlog(&self, port: u16) -> usize {
        self.listeners.get(&port).map_or(0, VecDeque::len)
    }

    /// Stop listening, dropping any backlog (the caller must release the
    /// backlog's pipe endpoints first if it cares; in practice teardown
    /// happens at whole-system end).
    pub fn unlisten(&mut self, port: u16) -> bool {
        self.listeners.remove(&port).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_accept_flow() {
        let mut net = NetStack::new();
        let mut pipes = PipeTable::new();
        assert!(net.connect(&mut pipes, 80).is_none(), "nobody listening");
        assert!(net.listen(80));
        assert!(!net.listen(80), "double bind rejected");
        let conn = net.connect(&mut pipes, 80).unwrap();
        assert_eq!(net.backlog(80), 1);
        let got = net.accept(80).unwrap();
        assert_eq!(got, conn);
        assert_eq!(net.backlog(80), 0);
        assert!(net.accept(80).is_none());
    }

    #[test]
    fn connection_pipes_carry_data() {
        let mut net = NetStack::new();
        let mut pipes = PipeTable::new();
        net.listen(8080);
        let conn = net.connect(&mut pipes, 8080).unwrap();
        pipes.get_mut(conn.c2s).write(b"GET /");
        let mut buf = [0u8; 5];
        assert_eq!(pipes.get_mut(conn.c2s).read(&mut buf), 5);
        assert_eq!(&buf, b"GET /");
    }

    #[test]
    fn endpoints_account_for_exactly_two_sockets() {
        let mut net = NetStack::new();
        let mut pipes = PipeTable::new();
        net.listen(1);
        let conn = net.connect(&mut pipes, 1).unwrap();
        // One reader + one writer per direction: the client socket and the
        // (eventual) server socket. Closing both destroys the pipe.
        assert_eq!(pipes.get(conn.c2s).readers, 1);
        assert_eq!(pipes.get(conn.c2s).writers, 1);
        pipes.drop_reader(conn.c2s);
        pipes.drop_writer(conn.c2s);
        pipes.drop_reader(conn.s2c);
        pipes.drop_writer(conn.s2c);
        assert_eq!(pipes.live(), 0);
    }

    #[test]
    fn unlisten() {
        let mut net = NetStack::new();
        net.listen(9);
        assert!(net.unlisten(9));
        assert!(!net.unlisten(9));
        assert!(!net.has_listener(9));
    }
}
