//! Signals: numbers, dispositions and per-process signal state.
//!
//! Signal delivery is the kernel's "mixed page" case: the sigreturn
//! trampoline is written onto the user *stack* and then executed from it
//! (paper §2 cites exactly this Linux behaviour as a page that holds both
//! code and data). Under the split-memory engine the trampoline must be
//! installed on both the code and data frames of the split stack page —
//! see the engine's `write_user_code` hook.

use sm_machine::cpu::Regs;

/// Illegal instruction.
pub const SIGILL: u8 = 4;
/// Trace/breakpoint trap.
pub const SIGTRAP: u8 = 5;
/// Floating-point/divide error.
pub const SIGFPE: u8 = 8;
/// Kill (uncatchable).
pub const SIGKILL: u8 = 9;
/// User-defined signal 1.
pub const SIGUSR1: u8 = 10;
/// Segmentation violation.
pub const SIGSEGV: u8 = 11;
/// Broken pipe.
pub const SIGPIPE: u8 = 13;
/// Child status change (ignored by default).
pub const SIGCHLD: u8 = 17;
/// Number of signal slots.
pub const NSIG: usize = 32;

/// Disposition of one signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigAction {
    /// Default action (terminate for the fatal set, ignore otherwise).
    #[default]
    Default,
    /// Ignore the signal.
    Ignore,
    /// Run a user handler at this address.
    Handler(u32),
}

/// True if the default action for `sig` terminates the process.
pub fn default_is_fatal(sig: u8) -> bool {
    !matches!(sig, SIGCHLD)
}

/// Per-process signal state.
#[derive(Debug, Clone)]
pub struct SignalState {
    actions: [SigAction; NSIG],
    /// Pending signal queue (delivery order).
    pub pending: Vec<u8>,
    /// Context saved while a user handler runs (one level, like a
    /// minimalist sigcontext).
    pub saved_context: Option<Regs>,
}

impl Default for SignalState {
    fn default() -> SignalState {
        SignalState::new()
    }
}

impl SignalState {
    /// Fresh state: all defaults, nothing pending.
    pub fn new() -> SignalState {
        SignalState {
            actions: [SigAction::Default; NSIG],
            pending: Vec::new(),
            saved_context: None,
        }
    }

    /// Current disposition of `sig`.
    pub fn action(&self, sig: u8) -> SigAction {
        self.actions.get(sig as usize).copied().unwrap_or_default()
    }

    /// Set the disposition of `sig`. SIGKILL cannot be caught or ignored.
    /// Returns `false` (and changes nothing) for invalid or uncatchable
    /// signals.
    pub fn set_action(&mut self, sig: u8, act: SigAction) -> bool {
        if sig as usize >= NSIG || sig == SIGKILL {
            return false;
        }
        self.actions[sig as usize] = act;
        true
    }

    /// Queue a signal.
    pub fn raise(&mut self, sig: u8) {
        if (sig as usize) < NSIG {
            self.pending.push(sig);
        }
    }

    /// Dequeue the next pending signal.
    pub fn take_pending(&mut self) -> Option<u8> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.pending.remove(0))
        }
    }

    /// Reset handlers to default (on `execve`).
    pub fn reset_on_exec(&mut self) {
        for a in &mut self.actions {
            if matches!(a, SigAction::Handler(_)) {
                *a = SigAction::Default;
            }
        }
        self.saved_context = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigkill_is_uncatchable() {
        let mut s = SignalState::new();
        assert!(!s.set_action(SIGKILL, SigAction::Ignore));
        assert_eq!(s.action(SIGKILL), SigAction::Default);
    }

    #[test]
    fn pending_fifo() {
        let mut s = SignalState::new();
        s.raise(SIGUSR1);
        s.raise(SIGSEGV);
        assert_eq!(s.take_pending(), Some(SIGUSR1));
        assert_eq!(s.take_pending(), Some(SIGSEGV));
        assert_eq!(s.take_pending(), None);
    }

    #[test]
    fn exec_resets_handlers_but_not_ignores() {
        let mut s = SignalState::new();
        s.set_action(SIGUSR1, SigAction::Handler(0x1234));
        s.set_action(SIGPIPE, SigAction::Ignore);
        s.reset_on_exec();
        assert_eq!(s.action(SIGUSR1), SigAction::Default);
        assert_eq!(s.action(SIGPIPE), SigAction::Ignore);
    }

    #[test]
    fn default_fatality() {
        assert!(default_is_fatal(SIGSEGV));
        assert!(default_is_fatal(SIGILL));
        assert!(!default_is_fatal(SIGCHLD));
    }

    #[test]
    fn out_of_range_signal_is_rejected() {
        let mut s = SignalState::new();
        assert!(!s.set_action(40, SigAction::Ignore));
        s.raise(40); // silently dropped
        assert_eq!(s.take_pending(), None);
    }
}
