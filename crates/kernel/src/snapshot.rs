//! Whole-system checkpoint/restore: a versioned, integrity-checked
//! container over every piece of kernel and machine state.
//!
//! # Format
//!
//! ```text
//! magic      8 bytes  "SMKSNAP\0"
//! version    u32      container format version (currently 1)
//! count      u32      number of sections (<= 64)
//! manifest   count x { tag[4], offset u64, len u64, sha256[32] }
//! msha       32 bytes sha256 over everything above (magic..manifest)
//! payloads   concatenated section bytes, in manifest order
//! ```
//!
//! Offsets are relative to the start of the payload area. Validation at
//! load time runs strictly in this order: magic, version, manifest
//! structure, manifest checksum, per-section bounds and checksums, then
//! section parsing — so every corruption the chaos harness injects
//! ([`SnapshotFault`]) maps to a typed [`SnapshotError`]:
//!
//! * truncation → [`SnapshotError::Truncated`] (or a checksum error when
//!   the cut lands inside a payload),
//! * a flipped bit → [`SnapshotError::SectionChecksum`] /
//!   [`SnapshotError::ManifestChecksum`],
//! * reordered manifest entries → [`SnapshotError::ManifestChecksum`],
//! * a bumped version field → [`SnapshotError::UnsupportedVersion`]
//!   (checked *before* the manifest hash, exactly like a real reader
//!   refusing a future format).
//!
//! A corrupted snapshot never panics and never loads silently wrong; the
//! consumer degrades to an earlier checkpoint or a cold boot.
//!
//! # What round-trips
//!
//! Everything observable: the machine (via [`sm_machine::snapshot`]), the
//! process table with registers, address spaces, descriptors and signal
//! state, frame refcounts, scheduler state (run queue, loaded CR3,
//! watchdog), the ram filesystem, pipes (holes preserved — pipe ids are
//! slot indices), the loopback network, the event log, the kernel RNG and
//! chaos decision streams, kernel counters, the full [`KernelConfig`] and
//! the protection engine's own bookkeeping
//! ([`ProtectionEngine::snapshot_state`]). Serialization is canonical:
//! `save(restore(save(k))) == save(k)` byte for byte.

use crate::addrspace::{AddressSpace, FrameTable};
use crate::engine::ProtectionEngine;
use crate::events::{Event, EventLog, ResponseMode};
use crate::fs::{Pipe, PipeId, PipeTable, RamFs};
use crate::kernel::{Kernel, KernelConfig, System};
use crate::net::{Connection, NetStack};
use crate::process::{FdObject, Pid, ProcState, Process, WaitReason};
use crate::signal::{SigAction, SignalState, NSIG};
use crate::stats::KernelStats;
use sm_machine::chaos::SnapshotFault;
use sm_machine::cpu::Regs;
use sm_machine::pte::Frame;
use sm_machine::sha256::sha256;
use sm_machine::snapshot::{
    self as msnap, read_plan, write_plan, Reader, SnapshotError, Writer, MAX_TRACE_CAPACITY,
};
use sm_rng::StdRng;
use std::collections::BTreeMap;

/// Leading magic of a kernel snapshot container.
pub const MAGIC: [u8; 8] = *b"SMKSNAP\0";

/// Container format version this build writes and accepts.
pub const VERSION: u32 = 1;

/// Upper bound on manifest entries (the writer emits 12).
pub const MAX_SECTIONS: usize = 64;

/// Size of one manifest entry: tag + offset + len + sha256.
const ENTRY_SIZE: usize = 4 + 8 + 8 + 32;

// Structural limits for hostile input; all far above real configurations.
const MAX_PROCS: usize = 1 << 16;
const MAX_VMAS: usize = 1 << 16;
const MAX_FDS: usize = 1 << 16;
const MAX_TABLE_FRAMES: usize = 1 << 20;
const MAX_EVENTS: usize = 1 << 24;
const MAX_FILES: usize = 1 << 20;
const MAX_PIPES: usize = 1 << 20;
const MAX_PORTS: usize = 1 << 16;
const MAX_BACKLOG: usize = 1 << 20;
const MAX_QUEUE: usize = 1 << 16;
const MAX_FRAMES: usize = 1 << 20;
const MAX_PIPE_CAPACITY: usize = 1 << 30;

/// The `SplitDegraded` reason strings, mapped back to `&'static str` at
/// load time (the event stores a static string; an unknown reason in a
/// snapshot is malformed, not silently interned).
const DEGRADE_REASONS: [&str; 5] = [
    "splitting executable page",
    "splitting data page",
    "materialising code frame",
    "cow code-half copy",
    "mirroring kernel code",
];

// ---- shared helpers -------------------------------------------------------

fn write_regs(w: &mut Writer, r: &Regs) {
    for g in r.gpr {
        w.u32(g);
    }
    w.u32(r.eip);
    w.u32(r.eflags);
    w.u32(r.cr2);
    w.u32(r.cr3);
}

fn read_regs(r: &mut Reader) -> Result<Regs, SnapshotError> {
    let mut regs = Regs::default();
    for g in regs.gpr.iter_mut() {
        *g = r.u32()?;
    }
    regs.eip = r.u32()?;
    regs.eflags = r.u32()?;
    regs.cr2 = r.u32()?;
    regs.cr3 = r.u32()?;
    Ok(regs)
}

fn done(r: &Reader) -> Result<(), SnapshotError> {
    if r.is_done() {
        Ok(())
    } else {
        Err(SnapshotError::Malformed("trailing bytes in section"))
    }
}

// ---- CONF -----------------------------------------------------------------

fn save_config(c: &KernelConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(c.quantum_cycles);
    w.u32(c.stack_size);
    w.u32(c.stack_top);
    w.bool(c.aslr_stack);
    w.u64(c.seed);
    w.u32(c.heap_limit);
    w.u64(c.pipe_capacity as u64);
    write_plan(&mut w, &c.chaos);
    w.u64(c.livelock_threshold);
    w.bool(c.asid_tlbs);
    w.u32(c.trace);
    w.u64(c.trace_capacity as u64);
    w.opt_u32(c.trace_pid);
    w.into_bytes()
}

fn load_config(bytes: &[u8]) -> Result<KernelConfig, SnapshotError> {
    let mut r = Reader::new(bytes);
    let c = KernelConfig {
        quantum_cycles: r.u64()?,
        stack_size: r.u32()?,
        stack_top: r.u32()?,
        aslr_stack: r.bool()?,
        seed: r.u64()?,
        heap_limit: r.u32()?,
        pipe_capacity: r.count(MAX_PIPE_CAPACITY)?,
        chaos: read_plan(&mut r)?,
        livelock_threshold: r.u64()?,
        asid_tlbs: r.bool()?,
        trace: r.u32()?,
        trace_capacity: r.count(MAX_TRACE_CAPACITY)?,
        trace_pid: r.opt_u32()?,
        // Deliberately not serialized (the CONF format is frozen): the
        // pipeline is an execution strategy, not machine state — runs are
        // byte-identical either way — so a restored kernel takes the
        // restoring process's default.
        pipeline: crate::kernel::default_pipeline(),
    };
    done(&r)?;
    Ok(c)
}

// ---- PROC -----------------------------------------------------------------

fn write_wait_reason(w: &mut Writer, wr: &WaitReason) {
    match wr {
        WaitReason::PipeReadable(id) => {
            w.u8(0);
            w.u64(id.0 as u64);
        }
        WaitReason::PipeWritable(id) => {
            w.u8(1);
            w.u64(id.0 as u64);
        }
        WaitReason::Accept(port) => {
            w.u8(2);
            w.u16(*port);
        }
        WaitReason::Connect(port) => {
            w.u8(3);
            w.u16(*port);
        }
        WaitReason::Child => w.u8(4),
        WaitReason::Pause => w.u8(5),
    }
}

fn read_wait_reason(r: &mut Reader) -> Result<WaitReason, SnapshotError> {
    Ok(match r.u8()? {
        0 => WaitReason::PipeReadable(PipeId(r.count(MAX_PIPES)?)),
        1 => WaitReason::PipeWritable(PipeId(r.count(MAX_PIPES)?)),
        2 => WaitReason::Accept(r.u16()?),
        3 => WaitReason::Connect(r.u16()?),
        4 => WaitReason::Child,
        5 => WaitReason::Pause,
        _ => return Err(SnapshotError::Malformed("unknown wait reason")),
    })
}

fn write_fd(w: &mut Writer, fd: &FdObject) {
    match fd {
        FdObject::Console => w.u8(1),
        FdObject::File {
            path,
            offset,
            flags,
        } => {
            w.u8(2);
            w.str(path);
            w.u32(*offset);
            w.u32(*flags);
        }
        FdObject::PipeRead(id) => {
            w.u8(3);
            w.u64(id.0 as u64);
        }
        FdObject::PipeWrite(id) => {
            w.u8(4);
            w.u64(id.0 as u64);
        }
        FdObject::Socket { rx, tx } => {
            w.u8(5);
            w.u64(rx.0 as u64);
            w.u64(tx.0 as u64);
        }
    }
}

fn read_fd(r: &mut Reader) -> Result<Option<FdObject>, SnapshotError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(FdObject::Console),
        2 => Some(FdObject::File {
            path: r.str()?,
            offset: r.u32()?,
            flags: r.u32()?,
        }),
        3 => Some(FdObject::PipeRead(PipeId(r.count(MAX_PIPES)?))),
        4 => Some(FdObject::PipeWrite(PipeId(r.count(MAX_PIPES)?))),
        5 => Some(FdObject::Socket {
            rx: PipeId(r.count(MAX_PIPES)?),
            tx: PipeId(r.count(MAX_PIPES)?),
        }),
        _ => return Err(SnapshotError::Malformed("unknown fd kind")),
    })
}

fn write_signals(w: &mut Writer, s: &SignalState) {
    let non_default: Vec<(u8, SigAction)> = (0..NSIG as u8)
        .map(|sig| (sig, s.action(sig)))
        .filter(|(_, a)| *a != SigAction::Default)
        .collect();
    w.u64(non_default.len() as u64);
    for (sig, act) in non_default {
        w.u8(sig);
        match act {
            SigAction::Default => unreachable!("filtered above"),
            SigAction::Ignore => w.u8(1),
            SigAction::Handler(h) => {
                w.u8(2);
                w.u32(h);
            }
        }
    }
    w.bytes(&s.pending);
    match s.saved_context {
        None => w.u8(0),
        Some(regs) => {
            w.u8(1);
            write_regs(w, &regs);
        }
    }
}

fn read_signals(r: &mut Reader) -> Result<SignalState, SnapshotError> {
    let mut s = SignalState::new();
    let n = r.count(NSIG)?;
    for _ in 0..n {
        let sig = r.u8()?;
        let act = match r.u8()? {
            1 => SigAction::Ignore,
            2 => SigAction::Handler(r.u32()?),
            _ => return Err(SnapshotError::Malformed("unknown signal action")),
        };
        if !s.set_action(sig, act) {
            return Err(SnapshotError::Malformed("uncatchable or bad signal"));
        }
    }
    s.pending = r.bytes()?;
    s.saved_context = match r.u8()? {
        0 => None,
        1 => Some(read_regs(r)?),
        _ => return Err(SnapshotError::Malformed("bad saved-context tag")),
    };
    Ok(s)
}

fn write_aspace(w: &mut Writer, a: &AddressSpace) {
    w.u32(a.dir.0);
    w.u64(a.vmas.len() as u64);
    for v in &a.vmas {
        w.u32(v.start);
        w.u32(v.end);
        w.u8(v.flags);
        w.u8(match v.kind {
            crate::vma::VmaKind::Code => 0,
            crate::vma::VmaKind::Data => 1,
            crate::vma::VmaKind::Heap => 2,
            crate::vma::VmaKind::Stack => 3,
            crate::vma::VmaKind::Mmap => 4,
            crate::vma::VmaKind::Library => 5,
        });
        w.str(&v.label);
    }
    w.u32(a.brk_start);
    w.u32(a.brk);
    w.u32(a.stack_low);
    w.u32(a.stack_high);
    w.u32(a.mmap_next);
    w.u64(a.table_frames.len() as u64);
    for f in &a.table_frames {
        w.u32(f.0);
    }
}

fn read_aspace(r: &mut Reader) -> Result<AddressSpace, SnapshotError> {
    let dir = Frame(r.u32()?);
    let nvmas = r.count(MAX_VMAS)?;
    let mut vmas = Vec::with_capacity(nvmas.min(1024));
    for _ in 0..nvmas {
        let start = r.u32()?;
        let end = r.u32()?;
        if start >= end {
            return Err(SnapshotError::Malformed("empty VMA"));
        }
        let flags = r.u8()?;
        let kind = match r.u8()? {
            0 => crate::vma::VmaKind::Code,
            1 => crate::vma::VmaKind::Data,
            2 => crate::vma::VmaKind::Heap,
            3 => crate::vma::VmaKind::Stack,
            4 => crate::vma::VmaKind::Mmap,
            5 => crate::vma::VmaKind::Library,
            _ => return Err(SnapshotError::Malformed("unknown VMA kind")),
        };
        let label = r.str()?;
        vmas.push(crate::vma::Vma {
            start,
            end,
            flags,
            kind,
            label,
        });
    }
    let brk_start = r.u32()?;
    let brk = r.u32()?;
    let stack_low = r.u32()?;
    let stack_high = r.u32()?;
    let mmap_next = r.u32()?;
    let ntab = r.count(MAX_TABLE_FRAMES)?;
    let mut table_frames = Vec::with_capacity(ntab.min(1024));
    for _ in 0..ntab {
        table_frames.push(Frame(r.u32()?));
    }
    Ok(AddressSpace {
        dir,
        vmas,
        brk_start,
        brk,
        stack_low,
        stack_high,
        mmap_next,
        table_frames,
    })
}

fn save_procs(sys: &System) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(sys.procs.len() as u64);
    for p in sys.procs.values() {
        w.u32(p.pid.0);
        w.u32(p.ppid.0);
        w.str(&p.name);
        match p.state {
            ProcState::Ready => w.u8(0),
            ProcState::Blocked(ref wr) => {
                w.u8(1);
                write_wait_reason(&mut w, wr);
            }
            ProcState::Zombie => w.u8(2),
        }
        write_regs(&mut w, &p.ctx);
        write_aspace(&mut w, &p.aspace);
        w.u64(p.fds.len() as u64);
        for slot in &p.fds {
            match slot {
                None => w.u8(0),
                Some(fd) => write_fd(&mut w, fd),
            }
        }
        write_signals(&mut w, &p.signals);
        w.opt_u32(p.pending_step_addr);
        w.opt_u32(p.exit_code.map(|c| c as u32));
        w.bytes(&p.output);
        w.bytes(&p.input);
        w.bool(p.honeypot_log);
        w.opt_u32(p.recovery_handler);
        w.u64(p.user_cycles);
    }
    w.into_bytes()
}

fn load_procs(bytes: &[u8]) -> Result<BTreeMap<u32, Process>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.count(MAX_PROCS)?;
    let mut procs = BTreeMap::new();
    for _ in 0..n {
        let pid = Pid(r.u32()?);
        let ppid = Pid(r.u32()?);
        let name = r.str()?;
        let state = match r.u8()? {
            0 => ProcState::Ready,
            1 => ProcState::Blocked(read_wait_reason(&mut r)?),
            2 => ProcState::Zombie,
            _ => return Err(SnapshotError::Malformed("unknown process state")),
        };
        let ctx = read_regs(&mut r)?;
        let aspace = read_aspace(&mut r)?;
        let nfds = r.count(MAX_FDS)?;
        let mut fds = Vec::with_capacity(nfds.min(1024));
        for _ in 0..nfds {
            fds.push(read_fd(&mut r)?);
        }
        let signals = read_signals(&mut r)?;
        let pending_step_addr = r.opt_u32()?;
        let exit_code = r.opt_u32()?.map(|c| c as i32);
        let output = r.bytes()?;
        let input = r.bytes()?;
        let honeypot_log = r.bool()?;
        let recovery_handler = r.opt_u32()?;
        let user_cycles = r.u64()?;
        let p = Process {
            pid,
            ppid,
            name,
            state,
            ctx,
            aspace,
            fds,
            signals,
            pending_step_addr,
            exit_code,
            output,
            input,
            honeypot_log,
            recovery_handler,
            user_cycles,
        };
        if procs.insert(pid.0, p).is_some() {
            return Err(SnapshotError::Malformed("duplicate pid"));
        }
    }
    done(&r)?;
    Ok(procs)
}

// ---- FRAM -----------------------------------------------------------------

fn save_frames(ft: &FrameTable) -> Vec<u8> {
    let mut w = Writer::new();
    let mut pairs: Vec<(u32, u32)> = ft.rc.iter().map(|(&f, &c)| (f, c)).collect();
    pairs.sort_unstable();
    w.u64(pairs.len() as u64);
    for (f, c) in pairs {
        w.u32(f);
        w.u32(c);
    }
    w.into_bytes()
}

fn load_frames(bytes: &[u8]) -> Result<FrameTable, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.count(MAX_FRAMES)?;
    let mut ft = FrameTable::new();
    for _ in 0..n {
        let f = r.u32()?;
        let c = r.u32()?;
        if c == 0 {
            return Err(SnapshotError::Malformed("zero frame refcount"));
        }
        if ft.rc.insert(f, c).is_some() {
            return Err(SnapshotError::Malformed("duplicate frame refcount"));
        }
    }
    done(&r)?;
    Ok(ft)
}

// ---- SCHD -----------------------------------------------------------------

struct SchedState {
    run_queue: std::collections::VecDeque<Pid>,
    current: Option<Pid>,
    next_pid: u32,
    loaded_cr3_for: Option<Pid>,
    preempt: bool,
    watchdog: Option<(Pid, u32, u64)>,
    livelocked: Option<(Pid, u32)>,
}

fn save_sched(sys: &System) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(sys.run_queue.len() as u64);
    for pid in &sys.run_queue {
        w.u32(pid.0);
    }
    w.opt_u32(sys.current.map(|p| p.0));
    w.u32(sys.next_pid);
    w.opt_u32(sys.loaded_cr3_for.map(|p| p.0));
    w.bool(sys.preempt);
    match sys.watchdog {
        None => w.u8(0),
        Some((pid, eip, count)) => {
            w.u8(1);
            w.u32(pid.0);
            w.u32(eip);
            w.u64(count);
        }
    }
    match sys.livelocked {
        None => w.u8(0),
        Some((pid, eip)) => {
            w.u8(1);
            w.u32(pid.0);
            w.u32(eip);
        }
    }
    w.into_bytes()
}

fn load_sched(bytes: &[u8]) -> Result<SchedState, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.count(MAX_QUEUE)?;
    let mut run_queue = std::collections::VecDeque::with_capacity(n.min(1024));
    for _ in 0..n {
        run_queue.push_back(Pid(r.u32()?));
    }
    let current = r.opt_u32()?.map(Pid);
    let next_pid = r.u32()?;
    let loaded_cr3_for = r.opt_u32()?.map(Pid);
    let preempt = r.bool()?;
    let watchdog = match r.u8()? {
        0 => None,
        1 => Some((Pid(r.u32()?), r.u32()?, r.u64()?)),
        _ => return Err(SnapshotError::Malformed("bad watchdog tag")),
    };
    let livelocked = match r.u8()? {
        0 => None,
        1 => Some((Pid(r.u32()?), r.u32()?)),
        _ => return Err(SnapshotError::Malformed("bad livelock tag")),
    };
    done(&r)?;
    Ok(SchedState {
        run_queue,
        current,
        next_pid,
        loaded_cr3_for,
        preempt,
        watchdog,
        livelocked,
    })
}

// ---- FSYS / PIPE / NETW ---------------------------------------------------

fn save_fs(fs: &RamFs) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(fs.files.len() as u64);
    for (path, data) in &fs.files {
        w.str(path);
        w.bytes(data);
    }
    w.into_bytes()
}

fn load_fs(bytes: &[u8]) -> Result<RamFs, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.count(MAX_FILES)?;
    let mut fs = RamFs::new();
    for _ in 0..n {
        let path = r.str()?;
        let data = r.bytes()?;
        if fs.files.insert(path, data).is_some() {
            return Err(SnapshotError::Malformed("duplicate fs path"));
        }
    }
    done(&r)?;
    Ok(fs)
}

fn save_pipes(pt: &PipeTable) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(pt.pipes.len() as u64);
    for slot in &pt.pipes {
        match slot {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                let (a, b) = p.buf.as_slices();
                w.u64((a.len() + b.len()) as u64);
                w.raw(a);
                w.raw(b);
                w.u64(p.capacity as u64);
                w.u32(p.readers);
                w.u32(p.writers);
            }
        }
    }
    w.into_bytes()
}

fn load_pipes(bytes: &[u8]) -> Result<PipeTable, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.count(MAX_PIPES)?;
    let mut pt = PipeTable::new();
    for _ in 0..n {
        match r.u8()? {
            0 => pt.pipes.push(None),
            1 => {
                let nbuf = r.count(r.remaining())?;
                let buf: std::collections::VecDeque<u8> = r.take_raw(nbuf)?.to_vec().into();
                let capacity = r.count(MAX_PIPE_CAPACITY)?;
                if buf.len() > capacity {
                    return Err(SnapshotError::Malformed("pipe buffer over capacity"));
                }
                let mut p = Pipe::new(capacity);
                p.buf = buf;
                p.readers = r.u32()?;
                p.writers = r.u32()?;
                pt.pipes.push(Some(p));
            }
            _ => return Err(SnapshotError::Malformed("bad pipe slot tag")),
        }
    }
    done(&r)?;
    Ok(pt)
}

fn save_net(net: &NetStack) -> Vec<u8> {
    let mut w = Writer::new();
    let mut ports: Vec<u16> = net.listeners.keys().copied().collect();
    ports.sort_unstable();
    w.u64(ports.len() as u64);
    for port in ports {
        w.u16(port);
        let backlog = &net.listeners[&port];
        w.u64(backlog.len() as u64);
        for conn in backlog {
            w.u64(conn.c2s.0 as u64);
            w.u64(conn.s2c.0 as u64);
        }
    }
    w.into_bytes()
}

fn load_net(bytes: &[u8]) -> Result<NetStack, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.count(MAX_PORTS)?;
    let mut net = NetStack::new();
    for _ in 0..n {
        let port = r.u16()?;
        let nb = r.count(MAX_BACKLOG)?;
        let mut backlog = std::collections::VecDeque::with_capacity(nb.min(1024));
        for _ in 0..nb {
            backlog.push_back(Connection {
                c2s: PipeId(r.count(MAX_PIPES)?),
                s2c: PipeId(r.count(MAX_PIPES)?),
            });
        }
        if net.listeners.insert(port, backlog).is_some() {
            return Err(SnapshotError::Malformed("duplicate listener port"));
        }
    }
    done(&r)?;
    Ok(net)
}

// ---- EVNT -----------------------------------------------------------------

fn write_event(w: &mut Writer, e: &Event) {
    match e {
        Event::Exec { pid, path } => {
            w.u8(0);
            w.u32(pid.0);
            w.str(path);
        }
        Event::ProcessExit { pid, code } => {
            w.u8(1);
            w.u32(pid.0);
            w.u32(*code as u32);
        }
        Event::Signal { pid, sig } => {
            w.u8(2);
            w.u32(pid.0);
            w.u8(*sig);
        }
        Event::AttackDetected {
            pid,
            eip,
            mode,
            shellcode,
        } => {
            w.u8(3);
            w.u32(pid.0);
            w.u32(*eip);
            w.u8(match mode {
                ResponseMode::Break => 0,
                ResponseMode::Observe => 1,
                ResponseMode::Forensics => 2,
            });
            w.bytes(shellcode);
        }
        Event::SebekRead { pid, data } => {
            w.u8(4);
            w.u32(pid.0);
            w.bytes(data);
        }
        Event::Library {
            pid,
            name,
            verified,
        } => {
            w.u8(5);
            w.u32(pid.0);
            w.str(name);
            w.bool(*verified);
        }
        Event::RecoveryEntered { pid, handler } => {
            w.u8(6);
            w.u32(pid.0);
            w.u32(*handler);
        }
        Event::SplitDegraded { pid, vaddr, reason } => {
            w.u8(7);
            w.u32(pid.0);
            w.u32(*vaddr);
            w.str(reason);
        }
        Event::Note(s) => {
            w.u8(8);
            w.str(s);
        }
    }
}

fn read_event(r: &mut Reader) -> Result<Event, SnapshotError> {
    Ok(match r.u8()? {
        0 => Event::Exec {
            pid: Pid(r.u32()?),
            path: r.str()?,
        },
        1 => Event::ProcessExit {
            pid: Pid(r.u32()?),
            code: r.u32()? as i32,
        },
        2 => Event::Signal {
            pid: Pid(r.u32()?),
            sig: r.u8()?,
        },
        3 => Event::AttackDetected {
            pid: Pid(r.u32()?),
            eip: r.u32()?,
            mode: match r.u8()? {
                0 => ResponseMode::Break,
                1 => ResponseMode::Observe,
                2 => ResponseMode::Forensics,
                _ => return Err(SnapshotError::Malformed("unknown response mode")),
            },
            shellcode: r.bytes()?,
        },
        4 => Event::SebekRead {
            pid: Pid(r.u32()?),
            data: r.bytes()?,
        },
        5 => Event::Library {
            pid: Pid(r.u32()?),
            name: r.str()?,
            verified: r.bool()?,
        },
        6 => Event::RecoveryEntered {
            pid: Pid(r.u32()?),
            handler: r.u32()?,
        },
        7 => {
            let pid = Pid(r.u32()?);
            let vaddr = r.u32()?;
            let reason = r.str()?;
            let reason = DEGRADE_REASONS
                .iter()
                .find(|s| **s == reason)
                .copied()
                .ok_or(SnapshotError::Malformed("unknown degrade reason"))?;
            Event::SplitDegraded { pid, vaddr, reason }
        }
        8 => Event::Note(r.str()?),
        _ => return Err(SnapshotError::Malformed("unknown event kind")),
    })
}

fn save_events(log: &EventLog) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(log.entries().len() as u64);
    for (cycles, e) in log.entries() {
        w.u64(*cycles);
        write_event(&mut w, e);
    }
    w.into_bytes()
}

fn load_events(bytes: &[u8]) -> Result<EventLog, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.count(MAX_EVENTS)?;
    let mut log = EventLog::new();
    for _ in 0..n {
        let cycles = r.u64()?;
        let e = read_event(&mut r)?;
        log.push(cycles, e);
    }
    done(&r)?;
    Ok(log)
}

// ---- RAND / KSTA ----------------------------------------------------------

fn save_rand(sys: &System) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(sys.rng.state());
    match &sys.chaos {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            w.bytes(&msnap::save_chaos(c));
        }
    }
    w.into_bytes()
}

fn load_rand(
    bytes: &[u8],
) -> Result<(StdRng, Option<sm_machine::chaos::ChaosState>), SnapshotError> {
    let mut r = Reader::new(bytes);
    let rng = StdRng::seed_from_u64(r.u64()?);
    let chaos = match r.u8()? {
        0 => None,
        1 => Some(msnap::load_chaos(&r.bytes()?)?),
        _ => return Err(SnapshotError::Malformed("bad chaos tag")),
    };
    done(&r)?;
    Ok((rng, chaos))
}

fn save_kstats(s: &KernelStats) -> Vec<u8> {
    let mut w = Writer::new();
    for v in [
        s.context_switches,
        s.demand_pages,
        s.cow_breaks,
        s.syscalls,
        s.handler_signals,
        s.fatal_signals,
        s.processes_spawned,
        s.libraries_loaded,
        s.soft_tlb_fills,
    ] {
        w.u64(v);
    }
    w.into_bytes()
}

fn load_kstats(bytes: &[u8]) -> Result<KernelStats, SnapshotError> {
    let mut r = Reader::new(bytes);
    let s = KernelStats {
        context_switches: r.u64()?,
        demand_pages: r.u64()?,
        cow_breaks: r.u64()?,
        syscalls: r.u64()?,
        handler_signals: r.u64()?,
        fatal_signals: r.u64()?,
        processes_spawned: r.u64()?,
        libraries_loaded: r.u64()?,
        soft_tlb_fills: r.u64()?,
    };
    done(&r)?;
    Ok(s)
}

// ---- ENGN -----------------------------------------------------------------

fn save_engine(engine: &dyn ProtectionEngine) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(engine.name());
    w.bytes(&engine.snapshot_state());
    w.into_bytes()
}

// ---- container ------------------------------------------------------------

/// Serialize the complete kernel — machine, processes, filesystem, network,
/// scheduler, randomness, engine — into one integrity-checked container.
pub fn save(k: &Kernel) -> Vec<u8> {
    let sections: [([u8; 4], Vec<u8>); 12] = [
        (*b"CONF", save_config(&k.sys.config)),
        (*b"MACH", msnap::save_machine(&k.sys.machine)),
        (*b"PROC", save_procs(&k.sys)),
        (*b"FRAM", save_frames(&k.sys.frames)),
        (*b"SCHD", save_sched(&k.sys)),
        (*b"FSYS", save_fs(&k.sys.fs)),
        (*b"PIPE", save_pipes(&k.sys.pipes)),
        (*b"NETW", save_net(&k.sys.net)),
        (*b"EVNT", save_events(&k.sys.events)),
        (*b"RAND", save_rand(&k.sys)),
        (*b"KSTA", save_kstats(&k.sys.stats)),
        (*b"ENGN", save_engine(k.engine.as_ref())),
    ];
    let mut header = Writer::new();
    header.raw(&MAGIC);
    header.u32(VERSION);
    header.u32(sections.len() as u32);
    let mut offset = 0u64;
    for (tag, payload) in &sections {
        header.raw(tag);
        header.u64(offset);
        header.u64(payload.len() as u64);
        header.raw(&sha256(payload));
        offset += payload.len() as u64;
    }
    let mut out = header.into_bytes();
    let msha = sha256(&out);
    out.extend_from_slice(&msha);
    for (_, payload) in sections {
        out.extend_from_slice(&payload);
    }
    out
}

/// Borrowed `(tag, payload)` views into a validated container.
type SectionSlices<'a> = Vec<([u8; 4], &'a [u8])>;

/// Validate the container structure and return `(tag, payload)` slices.
fn sections(bytes: &[u8]) -> Result<SectionSlices<'_>, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.take_raw(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let count = r.u32()? as usize;
    if count > MAX_SECTIONS {
        return Err(SnapshotError::Malformed("too many sections"));
    }
    let mut entries: Vec<([u8; 4], u64, u64, [u8; 32])> = Vec::with_capacity(count);
    for _ in 0..count {
        let tag: [u8; 4] = r.take_raw(4)?.try_into().expect("fixed length");
        let offset = r.u64()?;
        let len = r.u64()?;
        let sha: [u8; 32] = r.take_raw(32)?.try_into().expect("fixed length");
        entries.push((tag, offset, len, sha));
    }
    let header_len = 8 + 4 + 4 + count * ENTRY_SIZE;
    let recorded_msha = r.take_raw(32)?;
    if sha256(&bytes[..header_len]) != recorded_msha {
        return Err(SnapshotError::ManifestChecksum);
    }
    let payload_area = &bytes[header_len + 32..];
    let mut out: Vec<([u8; 4], &[u8])> = Vec::with_capacity(count);
    for (tag, offset, len, sha) in entries {
        if out.iter().any(|(t, _)| *t == tag) {
            return Err(SnapshotError::DuplicateSection { tag });
        }
        let end = offset.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > payload_area.len() as u64 {
            return Err(SnapshotError::Truncated);
        }
        let payload = &payload_area[offset as usize..end as usize];
        if sha256(payload) != sha {
            return Err(SnapshotError::SectionChecksum { tag });
        }
        out.push((tag, payload));
    }
    Ok(out)
}

fn section<'a>(sections: &[([u8; 4], &'a [u8])], tag: [u8; 4]) -> Result<&'a [u8], SnapshotError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or(SnapshotError::MissingSection { tag })
}

/// Verify a snapshot's structure and checksums without restoring it (the
/// fast path for checkpoint self-checks after fault injection).
///
/// # Errors
///
/// The same structural errors [`restore`] reports, minus section parsing.
pub fn validate(bytes: &[u8]) -> Result<(), SnapshotError> {
    sections(bytes).map(|_| ())
}

/// Rebuild a kernel from [`save`] bytes, attaching `engine` (a freshly
/// constructed engine of the same kind the snapshot was taken under; its
/// bookkeeping is restored from the snapshot's engine section).
///
/// # Errors
///
/// Any structural, checksum or semantic violation in the byte stream
/// returns a [`SnapshotError`]. Corrupted snapshots never panic — callers
/// degrade to an earlier checkpoint or a cold boot.
pub fn restore(
    bytes: &[u8],
    mut engine: Box<dyn ProtectionEngine>,
) -> Result<Kernel, SnapshotError> {
    let secs = sections(bytes)?;
    // Engine identity first: mismatches are config errors, reported as such
    // even when the rest of the snapshot is fine.
    let mut er = Reader::new(section(&secs, *b"ENGN")?);
    let expected = er.str()?;
    if expected != engine.name() {
        return Err(SnapshotError::EngineMismatch {
            expected,
            found: engine.name().to_string(),
        });
    }
    let engine_state = er.bytes()?;
    done(&er)?;
    let config = load_config(section(&secs, *b"CONF")?)?;
    let machine = msnap::load_machine(section(&secs, *b"MACH")?)?;
    let procs = load_procs(section(&secs, *b"PROC")?)?;
    let frames = load_frames(section(&secs, *b"FRAM")?)?;
    let sched = load_sched(section(&secs, *b"SCHD")?)?;
    let fs = load_fs(section(&secs, *b"FSYS")?)?;
    let pipes = load_pipes(section(&secs, *b"PIPE")?)?;
    let net = load_net(section(&secs, *b"NETW")?)?;
    let events = load_events(section(&secs, *b"EVNT")?)?;
    let (rng, chaos) = load_rand(section(&secs, *b"RAND")?)?;
    let stats = load_kstats(section(&secs, *b"KSTA")?)?;
    engine
        .restore_state(&engine_state)
        .map_err(|_| SnapshotError::Malformed("engine state rejected"))?;
    // The cached live count is transient bookkeeping, not snapshot state:
    // recompute it from the restored process table (format unchanged).
    let live_count = procs
        .values()
        .filter(|p| p.state != ProcState::Zombie)
        .count();
    let mut sys = System {
        machine,
        frames,
        procs,
        pipes,
        fs,
        net,
        events,
        config,
        rng,
        stats,
        current: sched.current,
        chaos,
        run_queue: sched.run_queue,
        next_pid: sched.next_pid,
        live_count,
        loaded_cr3_for: sched.loaded_cr3_for,
        preempt: sched.preempt,
        watchdog: sched.watchdog,
        livelocked: sched.livelocked,
    };
    // The CFI event stream is transient engine-derived config, never part
    // of the machine dump: re-arm it exactly as Kernel::new does.
    sys.machine.config.cfi_events = engine.wants_cfi_events();
    Ok(Kernel { sys, engine })
}

/// Apply one chaos-scheduled corruption to serialized snapshot bytes. The
/// corruption site is drawn deterministically from `seed` (callers pass
/// something derived from the chaos stream so replays corrupt identically).
pub fn corrupt_snapshot(bytes: &mut Vec<u8>, fault: SnapshotFault, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    match fault {
        SnapshotFault::Truncate => {
            if bytes.is_empty() {
                return;
            }
            let cut = rng.next_u64() as usize % bytes.len();
            bytes.truncate(cut);
        }
        SnapshotFault::BitFlip => {
            if bytes.is_empty() {
                return;
            }
            let bit = rng.next_u64() as usize % (bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        SnapshotFault::SectionReorder => {
            // Swap two whole manifest entries without touching the manifest
            // hash — each entry stays self-consistent, so only the manifest
            // checksum can catch it.
            let base = 8 + 4 + 4;
            let count = if bytes.len() >= base {
                u32::from_le_bytes(bytes[base - 4..base].try_into().expect("fixed")) as usize
            } else {
                0
            };
            if count < 2 || bytes.len() < base + count * ENTRY_SIZE {
                // Degenerate container: fall back to a bit flip.
                corrupt_snapshot(bytes, SnapshotFault::BitFlip, seed ^ 1);
                return;
            }
            let i = rng.next_u64() as usize % count;
            let mut j = rng.next_u64() as usize % count;
            if i == j {
                j = (j + 1) % count;
            }
            for b in 0..ENTRY_SIZE {
                bytes.swap(base + i * ENTRY_SIZE + b, base + j * ENTRY_SIZE + b);
            }
        }
        SnapshotFault::VersionSkew => {
            if bytes.len() >= 12 {
                let v = u32::from_le_bytes(bytes[8..12].try_into().expect("fixed"));
                bytes[8..12].copy_from_slice(&v.wrapping_add(1).to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullEngine;
    use crate::kernel::RunExit;
    use crate::userlib::ProgramBuilder;

    fn busy_kernel() -> Kernel {
        let mut k = Kernel::with_engine(Box::new(NullEngine));
        k.sys.fs.install("/etc/motd", b"welcome\n".to_vec());
        k.sys.fs.install("/bin/true", vec![1, 2, 3]);
        let id = k.sys.pipes.create();
        k.sys.pipes.get_mut(id).write(b"buffered");
        k.sys.net.listen(8080);
        k.sys.net.connect(&mut k.sys.pipes, 8080);
        k.sys.log(Event::Note("checkpoint test".into()));
        k.sys.stats.syscalls = 7;
        k.sys.rng.next_u64();
        k
    }

    #[test]
    fn roundtrip_is_canonical() {
        let k = busy_kernel();
        let bytes = save(&k);
        let restored = restore(&bytes, Box::new(NullEngine)).unwrap();
        assert_eq!(save(&restored), bytes);
        assert_eq!(restored.sys.fs.file("/etc/motd").unwrap(), b"welcome\n");
        assert_eq!(restored.sys.net.backlog(8080), 1);
        assert_eq!(restored.sys.stats.syscalls, 7);
        assert_eq!(restored.sys.events.len(), 1);
        assert_eq!(
            restored.sys.rng.state(),
            k.sys.rng.state(),
            "RNG stream resumes exactly"
        );
    }

    #[test]
    fn interrupted_program_resumes_identically() {
        let prog = ProgramBuilder::new("/bin/hello")
            .code(
                "_start:
                    mov ecx, 200
                again:
                    push ecx
                    mov esi, msg
                    call print
                    pop ecx
                    dec ecx
                    cmp ecx, 0
                    jne again
                    mov ebx, 0
                    call exit",
            )
            .data("msg: .asciz \"hi\\n\"")
            .build()
            .unwrap();
        let mut a = Kernel::with_engine(Box::new(NullEngine));
        // The decode cache restores cold (it is not architectural state);
        // its only observable trace is extra same-page I-TLB hit counts
        // while instructions re-decode, which would break the byte-identity
        // check below. Disable it so both halves count fetches identically.
        a.sys.machine.config.decode_cache = false;
        let pid = a.spawn(&prog.image).unwrap();
        // Interrupt mid-program, checkpoint, and race the original against
        // the restored copy to completion.
        assert_eq!(a.run(2_000), RunExit::CyclesExhausted);
        let bytes = save(&a);
        let mut b = restore(&bytes, Box::new(NullEngine)).unwrap();
        let ea = a.run(50_000_000);
        let eb = b.run(50_000_000);
        assert_eq!(ea, RunExit::AllExited);
        assert_eq!(ea, eb);
        assert_eq!(a.sys.machine.cycles, b.sys.machine.cycles);
        assert_eq!(a.sys.machine.stats, b.sys.machine.stats);
        assert_eq!(a.sys.stats, b.sys.stats);
        assert_eq!(a.sys.proc(pid).output, b.sys.proc(pid).output);
        assert_eq!(b.sys.proc(pid).output_string(), "hi\n".repeat(200));
        assert_eq!(a.sys.proc(pid).exit_code, b.sys.proc(pid).exit_code);
        // The continued halves serialize identically too.
        assert_eq!(save(&a), save(&b));
    }

    #[test]
    fn every_fault_kind_is_detected() {
        let bytes = save(&busy_kernel());
        assert!(validate(&bytes).is_ok());
        for seed in 0..16 {
            for fault in [
                SnapshotFault::Truncate,
                SnapshotFault::BitFlip,
                SnapshotFault::SectionReorder,
                SnapshotFault::VersionSkew,
            ] {
                let mut corrupt = bytes.clone();
                corrupt_snapshot(&mut corrupt, fault, seed);
                if corrupt == bytes {
                    continue; // zero-length truncate draw etc.
                }
                let err = restore(&corrupt, Box::new(NullEngine))
                    .err()
                    .unwrap_or_else(|| panic!("{fault:?} seed {seed} loaded"));
                match fault {
                    SnapshotFault::VersionSkew => {
                        assert!(matches!(err, SnapshotError::UnsupportedVersion { .. }));
                    }
                    SnapshotFault::SectionReorder => {
                        assert_eq!(err, SnapshotError::ManifestChecksum);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn engine_mismatch_is_typed() {
        struct OtherEngine;
        impl ProtectionEngine for OtherEngine {
            fn name(&self) -> &'static str {
                "other"
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let bytes = save(&busy_kernel());
        let err = match restore(&bytes, Box::new(OtherEngine)) {
            Ok(_) => panic!("mismatched engine loaded"),
            Err(e) => e,
        };
        assert_eq!(
            err,
            SnapshotError::EngineMismatch {
                expected: "unprotected".into(),
                found: "other".into(),
            }
        );
    }

    #[test]
    fn missing_section_is_typed() {
        // Rebuild a container with one section dropped; the manifest is
        // re-hashed so only the missing tag trips.
        let bytes = save(&busy_kernel());
        let secs = sections(&bytes).unwrap();
        let kept: Vec<([u8; 4], Vec<u8>)> = secs
            .iter()
            .filter(|(t, _)| t != b"KSTA")
            .map(|(t, p)| (*t, p.to_vec()))
            .collect();
        let mut header = Writer::new();
        header.raw(&MAGIC);
        header.u32(VERSION);
        header.u32(kept.len() as u32);
        let mut offset = 0u64;
        for (tag, payload) in &kept {
            header.raw(tag);
            header.u64(offset);
            header.u64(payload.len() as u64);
            header.raw(&sha256(payload));
            offset += payload.len() as u64;
        }
        let mut out = header.into_bytes();
        let msha = sha256(&out);
        out.extend_from_slice(&msha);
        for (_, payload) in kept {
            out.extend_from_slice(&payload);
        }
        let err = match restore(&out, Box::new(NullEngine)) {
            Ok(_) => panic!("snapshot with missing section loaded"),
            Err(e) => e,
        };
        assert_eq!(err, SnapshotError::MissingSection { tag: *b"KSTA" });
    }
}
