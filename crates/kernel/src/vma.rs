//! Virtual memory areas: the kernel's per-process region map.

use crate::image::{SEG_R, SEG_W, SEG_X};
use std::fmt;

/// What a region is used for (drives split/NX policy decisions and makes
/// diagnostics readable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Program text.
    Code,
    /// Initialised data / BSS.
    Data,
    /// `brk` heap.
    Heap,
    /// Main stack.
    Stack,
    /// Anonymous or file-backed `mmap`.
    Mmap,
    /// Shared or dynamic library.
    Library,
}

impl fmt::Display for VmaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmaKind::Code => "code",
            VmaKind::Data => "data",
            VmaKind::Heap => "heap",
            VmaKind::Stack => "stack",
            VmaKind::Mmap => "mmap",
            VmaKind::Library => "library",
        };
        f.write_str(s)
    }
}

/// One mapped region `[start, end)` with `SEG_*` permissions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// Inclusive start address (page-aligned by the mappers).
    pub start: u32,
    /// Exclusive end address.
    pub end: u32,
    /// `SEG_R | SEG_W | SEG_X` bits.
    pub flags: u8,
    /// Region kind.
    pub kind: VmaKind,
    /// Diagnostic label (image or library name, "heap", ...).
    pub label: String,
}

impl Vma {
    /// Construct a region.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: u32, end: u32, flags: u8, kind: VmaKind, label: impl Into<String>) -> Vma {
        assert!(start < end, "empty VMA {start:#x}..{end:#x}");
        Vma {
            start,
            end,
            flags,
            kind,
            label: label.into(),
        }
    }

    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        self.start <= addr && addr < self.end
    }

    /// True if the region overlaps `[start, end)`.
    pub fn overlaps(&self, start: u32, end: u32) -> bool {
        self.start < end && start < self.end
    }

    /// Readable?
    pub fn readable(&self) -> bool {
        self.flags & SEG_R != 0
    }

    /// Writable?
    pub fn writable(&self) -> bool {
        self.flags & SEG_W != 0
    }

    /// Executable?
    pub fn executable(&self) -> bool {
        self.flags & SEG_X != 0
    }

    /// Writable *and* executable — the mixed shape only split memory can
    /// protect (paper §2, Fig. 1b).
    pub fn is_mixed(&self) -> bool {
        self.writable() && self.executable()
    }
}

impl fmt::Display for Vma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x}-{:#010x} {}{}{} {} {}",
            self.start,
            self.end,
            if self.readable() { "r" } else { "-" },
            if self.writable() { "w" } else { "-" },
            if self.executable() { "x" } else { "-" },
            self.kind,
            self.label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_and_overlap() {
        let v = Vma::new(0x1000, 0x3000, SEG_R | SEG_W, VmaKind::Data, "d");
        assert!(v.contains(0x1000));
        assert!(v.contains(0x2FFF));
        assert!(!v.contains(0x3000));
        assert!(v.overlaps(0x2000, 0x4000));
        assert!(!v.overlaps(0x3000, 0x4000));
        assert!(v.overlaps(0x0, 0x1001));
    }

    #[test]
    fn permission_helpers() {
        let v = Vma::new(0, 0x1000, SEG_R | SEG_X, VmaKind::Code, "c");
        assert!(v.readable() && v.executable() && !v.writable());
        assert!(!v.is_mixed());
        let m = Vma::new(0, 0x1000, SEG_R | SEG_W | SEG_X, VmaKind::Mmap, "jit");
        assert!(m.is_mixed());
    }

    #[test]
    fn display_is_proc_maps_like() {
        let v = Vma::new(0x1000, 0x2000, SEG_R | SEG_W, VmaKind::Heap, "heap");
        assert_eq!(v.to_string(), "0x00001000-0x00002000 rw- heap heap");
    }

    #[test]
    #[should_panic(expected = "empty VMA")]
    fn empty_region_panics() {
        let _ = Vma::new(0x1000, 0x1000, 0, VmaKind::Data, "bad");
    }
}
